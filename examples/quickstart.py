"""Quickstart: plan Stable Diffusion v2.1 training on one 8-GPU node.

Walks the full DiffusionPipe front-end (Fig. 7): profile the model,
search pipeline hyper-parameters, partition the backbone, fill bubbles
with the frozen encoders, and print the chosen plan with its timeline
and a slice of the generated per-device instruction streams.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DiffusionPipePlanner, PlannerOptions, Profiler, zoo
from repro.cluster import single_node
from repro.core import extract_bubbles, lower_timeline
from repro.harness import format_table, pct

GLOBAL_BATCH = 256


def main() -> None:
    cluster = single_node(8)
    model = zoo.stable_diffusion_v2_1(self_conditioning=False)
    print(f"model: {model.name}  |  cluster: {cluster.world_size}x "
          f"{cluster.device_spec.name}")

    # Step 1: profile every layer at a grid of batch sizes.
    profile = Profiler(cluster).profile(model)
    nt_ms = sum(
        profile.component_fwd_ms(c.name, 64) for c in model.non_trainable
    )
    t_ms = profile.component_train_ms("unet", 64)
    print(f"profiled: NT forward {nt_ms:.0f} ms vs backbone train "
          f"{t_ms:.0f} ms at B=64  (ratio {pct(nt_ms / t_ms)}, Table 1)")

    # Steps 2-5: search (S, M, D), partition, schedule, fill, select.
    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(keep_timeline=True, group_sizes=(2, 4, 8)),
    )
    ev = planner.plan(GLOBAL_BATCH)
    plan = ev.plan

    print(f"\nbest configuration at global batch {GLOBAL_BATCH}: "
          f"{plan.config_label}")
    rows = [
        ["iteration", f"{plan.iteration_ms:.1f} ms"],
        ["throughput", f"{plan.throughput:.1f} samples/s"],
        ["bubble ratio (unfilled)", pct(plan.bubble_ratio_unfilled)],
        ["bubble ratio (filled)", pct(plan.bubble_ratio_filled)],
        ["NT leftover after flush", f"{plan.leftover_ms:.1f} ms"],
        ["peak device memory", f"{plan.memory.peak_bytes / 1e9:.1f} GB"],
    ]
    print(format_table(["metric", "value"], rows))

    print("\nbackbone partition:")
    for st in plan.partition.down:
        print(f"  stage {st.component}[{st.lo}:{st.hi}] "
              f"x{st.replicas} device(s)")

    assert ev.timeline is not None
    print("\npipeline timeline (one iteration, backbone only):")
    print(ev.timeline.to_ascii(width=96))

    if plan.fill is not None:
        print(f"\nbubble filling: {len(plan.fill.items)} layer placements "
              f"across {plan.fill.num_bubbles} bubbles "
              f"({pct(plan.fill.fill_fraction)} of bubble time used)")
        for item in plan.fill.items[:6]:
            tag = "partial" if item.partial else "full"
            print(f"  bubble {item.bubble_index}: {item.component}[{item.layer}] "
                  f"{item.samples:.0f} samples ({tag}, {item.time_ms:.1f} ms)")
        if len(plan.fill.items) > 6:
            print(f"  ... and {len(plan.fill.items) - 6} more")

    # Step 6: lower to per-device instruction streams.
    bubbles = extract_bubbles(ev.timeline)
    meta = {i: (b.start, b.devices) for i, b in enumerate(bubbles)}
    streams = lower_timeline(ev.timeline, plan.fill.items if plan.fill else (), meta)
    print("\nfirst instructions of device 0:")
    for instr in streams[0][:8]:
        print(f"  {instr.describe()}")


if __name__ == "__main__":
    main()
