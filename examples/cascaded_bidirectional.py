"""Cascaded diffusion: bidirectional pipelines for CDM-LSUN.

Two backbones of similar size train over the *same* device chain in
opposite directions (§4.2, Fig. 3): each backbone's micro-batches slot
into the other's bubbles.  This example partitions CDM-LSUN, renders the
bidirectional timeline, and compares against the sequential/parallel
data-parallel strategies (DeepSpeed-S / DeepSpeed-P).

Run:  python examples/cascaded_bidirectional.py
"""

from __future__ import annotations

from repro import DiffusionPipePlanner, PlannerOptions, Profiler, zoo
from repro.baselines import (
    CDMStrategyConfig,
    ParallelCDMBaseline,
    SequentialCDMBaseline,
)
from repro.cluster import single_node
from repro.harness import format_table, pct

BATCHES = (128, 256, 512)


def main() -> None:
    cluster = single_node(8)
    model = zoo.cdm_lsun()
    profile = Profiler(cluster).profile(model)
    print(f"model: {model.name} with backbones {model.backbone_names}")

    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(group_sizes=(2, 4, 8), keep_timeline=True),
    )
    ev = planner.plan(256)
    plan = ev.plan
    print(f"\nbest plan at batch 256: {plan.config_label} "
          f"({plan.throughput:.0f} samples/s, "
          f"bubbles {pct(plan.bubble_ratio_filled)})")
    print("down pipeline (base_64):  "
          + " | ".join(f"[{s.lo}:{s.hi}]" for s in plan.partition.down))
    print("up pipeline   (sr_128):   "
          + " | ".join(f"[{s.lo}:{s.hi}]" for s in plan.partition.up))

    assert ev.timeline is not None
    print("\nbidirectional timeline (down + up interleaved per device):")
    print(ev.timeline.to_ascii(width=96))

    engines = [
        SequentialCDMBaseline(model, cluster, profile, CDMStrategyConfig()),
        ParallelCDMBaseline(model, cluster, profile, CDMStrategyConfig()),
        SequentialCDMBaseline(model, cluster, profile, CDMStrategyConfig(zero3=True)),
        ParallelCDMBaseline(model, cluster, profile, CDMStrategyConfig(zero3=True)),
    ]
    rows = []
    for batch in BATCHES:
        row = [str(batch)]
        dp = DiffusionPipePlanner(
            model, cluster, profile,
            options=PlannerOptions(group_sizes=(2, 4, 8)),
        ).plan(batch).plan
        row.append(f"{dp.throughput:.0f}")
        for eng in engines:
            res = eng.run(batch)
            row.append("OOM" if res.oom else f"{res.throughput:.0f}")
        rows.append(row)
    print()
    print(format_table(
        ["batch/backbone", "DiffusionPipe",
         *[e.name for e in engines]],
        rows,
        title="CDM-LSUN throughput on 8 GPUs (samples/s, Fig. 13c slice)",
    ))
    print("\nNote the paper's observation: throughput is comparable to "
          "DeepSpeed-P, but DiffusionPipe keeps scaling to batch sizes "
          "where the data-parallel strategies run out of memory.")


if __name__ == "__main__":
    main()
