"""Numerical proof of §3.2: cross-iteration pipeline training is
mathematically equivalent to data-parallel / synchronous training.

Runs real NumPy training four ways on the same toy diffusion-style
model (frozen encoder + trainable backbone):

1. single device, full batch                  (reference)
2. 1F1B pipeline, 4 micro-batches
3. pipeline + data parallelism (2 replicas)
4. cross-iteration prefetching of the frozen encoder

and shows the parameters stay bit-for-bit (up to float rounding)
identical, while the loss goes down.

Run:  python examples/numerical_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import (
    SGD,
    DataParallelPipelineTrainer,
    PipelineTrainer,
    SingleDeviceTrainer,
    clone_chain,
    cross_iteration_equivalence,
    frozen_encoder,
    mlp_chain,
)
from repro.engine.equivalence import max_param_diff
from repro.harness import format_table


def main() -> None:
    rng = np.random.default_rng(7)
    d_in, d_feat, d_out = 6, 5, 3

    encoder = frozen_encoder("enc", d_in, d_feat, rng)
    backbone = mlp_chain("unet", [d_feat, 16, 16, d_out], rng)

    # A fixed dataset: features come from the frozen encoder, like the
    # VAE/text encoders feeding the U-Net.
    x_raw = rng.normal(size=(16, d_in))
    target = rng.normal(size=(16, d_out))
    feats, _ = encoder.forward(x_raw)

    single = SingleDeviceTrainer(clone_chain(backbone), optimizer=SGD(lr=0.05))
    pipe = PipelineTrainer(
        clone_chain(backbone), boundaries=[2, 4], num_micro=4,
        optimizer_factory=lambda: SGD(lr=0.05),
    )
    mixed = DataParallelPipelineTrainer(
        clone_chain(backbone), boundaries=[2], num_micro=2, replicas=2,
        optimizer_factory=lambda: SGD(lr=0.05),
    )

    losses = []
    for step in range(10):
        l1 = single.step(feats, target)
        l2 = pipe.step(feats, target)
        l3 = mixed.step(feats, target)
        losses.append((step, l1, l2, l3))

    rows = [
        [str(s), f"{l1:.6f}", f"{l2:.6f}", f"{l3:.6f}"]
        for s, l1, l2, l3 in losses[:5]
    ] + [["...", "", "", ""], [str(losses[-1][0]),
         *(f"{v:.6f}" for v in losses[-1][1:])]]
    print(format_table(
        ["step", "single device", "1F1B pipeline (3 stages)",
         "pipeline x2 data parallel"],
        rows,
        title="training loss, three execution strategies",
    ))

    d_pipe = max_param_diff(single.chain.param_vector(), pipe.param_vector())
    d_mixed = max_param_diff(single.chain.param_vector(), mixed.param_vector())
    d_cross = cross_iteration_equivalence(iterations=6)
    print("\nmax parameter deviation after 10 steps:")
    print(f"  pipeline      vs single device: {d_pipe:.2e}")
    print(f"  pipeline + DP vs single device: {d_mixed:.2e}")
    print(f"  cross-iteration prefetch vs eager encoder: {d_cross:.2e}")
    assert d_pipe < 1e-10 and d_mixed < 1e-10 and d_cross == 0.0
    print("\nall three schedules compute identical updates -- the §3.2 "
          "equivalence claim, verified on real tensors.")


if __name__ == "__main__":
    main()
