"""ControlNet: bubble filling and partial-batch layers in action.

ControlNet's frozen part is nearly as expensive as its trainable branch
(Table 1: 76-89 %), and its VAE contains extra-long layers (> 400 ms at
batch 64) that fit no bubble at full batch — the case the paper's
partial-batch design (§5, Fig. 12) exists for.  This example compares
three planner variants (full / partial-batch disabled / filling
disabled) and traces how the extra-long layer is split across bubbles.

Run:  python examples/controlnet_bubble_filling.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import DiffusionPipePlanner, PlannerOptions, Profiler, zoo
from repro.cluster import single_node
from repro.harness import format_bars, format_table, pct

GLOBAL_BATCH = 256


def main() -> None:
    cluster = single_node(8)
    model = zoo.controlnet_v1_0(self_conditioning=False)
    profile = Profiler(cluster).profile(model)

    # The extra-long layers of Fig. 5b/6.
    times = []
    for comp in model.non_trainable:
        for i in range(profile.num_layers(comp.name)):
            times.append((comp.name, i, profile.fwd_ms(comp.name, i, 64)))
    top = sorted(times, key=lambda t: -t[2])[:3]
    print("top-3 longest frozen layers at B=64 (Fig. 6):")
    print(format_bars([f"{c}[{i}]" for c, i, _ in top],
                      [t for _, _, t in top], unit=" ms"))

    base = PlannerOptions(group_sizes=(2, 4, 8), keep_timeline=False)
    variants = {
        "DiffusionPipe (full)": base,
        "partial-batch disabled": replace(base, enable_partial_batch=False),
        "bubble filling disabled": replace(base, enable_bubble_filling=False),
    }

    rows = []
    plans = {}
    for name, opts in variants.items():
        planner = DiffusionPipePlanner(model, cluster, profile, options=opts)
        ev = planner.plan(GLOBAL_BATCH)
        plans[name] = ev.plan
        rows.append([
            name,
            f"{ev.plan.throughput:.1f}",
            pct(ev.plan.bubble_ratio_filled),
            f"{ev.plan.leftover_ms:.0f} ms",
            ev.plan.config_label,
        ])
    print()
    print(format_table(
        ["variant", "samples/s", "bubble ratio", "NT leftover", "config"],
        rows,
        title=f"Fig. 15-style ablation at global batch {GLOBAL_BATCH}",
    ))

    full = plans["DiffusionPipe (full)"]
    if full.fill is not None:
        partials = [i for i in full.fill.items if i.partial]
        print(f"\npartial-batch placements in the chosen plan "
              f"({len(partials)} of {len(full.fill.items)} items):")
        by_layer: dict[tuple[str, int], list] = {}
        for item in partials:
            by_layer.setdefault((item.component, item.layer), []).append(item)
        for (comp, layer), items in sorted(by_layer.items())[:5]:
            chunks = " + ".join(f"{i.samples:.0f}" for i in items)
            print(f"  {comp}[{layer}]: {chunks} samples across "
                  f"{len(items)} bubble(s)  (Fig. 12's split/concat)")

    speedup = (plans["DiffusionPipe (full)"].throughput
               / plans["bubble filling disabled"].throughput)
    print(f"\nbubble filling speeds ControlNet training up by "
          f"{speedup:.2f}x (paper reports up to 1.21x at this scale)")


if __name__ == "__main__":
    main()
