"""Pipeline executor and equivalence tests (§3.2's claim, numerically)."""

import numpy as np
import pytest

from repro.engine import (
    SGD,
    Adam,
    DataParallelPipelineTrainer,
    InstructionEngine,
    PipelineTrainer,
    SingleDeviceTrainer,
    clone_chain,
    compare_dp_pipeline_to_dp,
    compare_pipeline_to_single,
    cross_iteration_equivalence,
    mlp_chain,
    split_micro_batches,
)
from repro.engine.equivalence import max_param_diff
from repro.core.instructions import lower_timeline
from repro.errors import EngineError
from repro.schedule import StageExec, build_1f1b, build_gpipe, simulate


@pytest.fixture
def rng():
    return np.random.default_rng(1)


@pytest.fixture
def data(rng):
    return rng.normal(size=(8, 4)), rng.normal(size=(8, 2))


def test_split_micro_batches(data):
    x, y = data
    micro = split_micro_batches(x, y, 4)
    assert len(micro) == 4
    assert all(mx.shape == (2, 4) for mx, _ in micro)
    with pytest.raises(EngineError):
        split_micro_batches(x, y, 3)
    with pytest.raises(EngineError):
        split_micro_batches(x, y[:4], 2)


def test_pipeline_equals_single_device(rng, data):
    chain = mlp_chain("m", [4, 8, 8, 2], rng)
    x, y = data
    for boundaries, micro in [([2], 2), ([2, 4], 4), ([1, 3], 8)]:
        diff = compare_pipeline_to_single(
            chain, boundaries, x, y, num_micro=micro, steps=3
        )
        assert diff < 1e-12, (boundaries, micro, diff)


def test_pipeline_loss_matches_single(rng, data):
    chain = mlp_chain("m", [4, 6, 2], rng)
    x, y = data
    single = SingleDeviceTrainer(clone_chain(chain))
    pipe = PipelineTrainer(clone_chain(chain), [2], num_micro=2)
    l_single = single.step(x, y)
    l_pipe = pipe.step(x, y)
    assert l_pipe == pytest.approx(l_single, rel=1e-12)


def test_dp_pipeline_equals_single(rng, data):
    chain = mlp_chain("m", [4, 8, 2], rng)
    x, y = data
    diff = compare_dp_pipeline_to_dp(
        chain, [2], x, y, num_micro=2, replicas=2, steps=2
    )
    assert diff < 1e-12


def test_momentum_and_adam_preserve_equivalence(rng, data):
    chain = mlp_chain("m", [4, 8, 2], rng)
    x, y = data
    for factory in (lambda: SGD(lr=0.03, momentum=0.9), lambda: Adam(lr=1e-2)):
        single = SingleDeviceTrainer(clone_chain(chain), optimizer=factory())
        pipe = PipelineTrainer(
            clone_chain(chain), [2], num_micro=4, optimizer_factory=factory
        )
        for _ in range(3):
            single.step(x, y)
            pipe.step(x, y)
        assert max_param_diff(
            single.chain.param_vector(), pipe.param_vector()
        ) < 1e-12


def test_cross_iteration_equivalence_exact():
    assert cross_iteration_equivalence() == 0.0


def test_pipeline_trainer_validation(rng):
    chain = mlp_chain("m", [4, 8, 2], rng)
    with pytest.raises(EngineError):
        PipelineTrainer(chain, [2, 2])   # non-increasing boundaries
    with pytest.raises(EngineError):
        DataParallelPipelineTrainer(chain, [2], replicas=0)


def test_instruction_engine_matches_reference(rng, data):
    """Lowered 1F1B and GPipe programs both train identically to a
    single device."""
    x, y = data
    for builder, M in [(build_1f1b, 2), (build_gpipe, 4)]:
        chain = mlp_chain(f"m{M}", [4, 6, 2], rng)
        ref = SingleDeviceTrainer(clone_chain(chain), optimizer=SGD(lr=0.05))
        stages_meta = [
            StageExec(index=i, fwd_ms=1, bwd_ms=2, send_fwd_ms=0.1,
                      send_bwd_ms=0.1, sync_ms=0.5)
            for i in range(2)
        ]
        tl = simulate(builder(stages_meta, M), 2)
        streams = lower_timeline(tl)
        eng = InstructionEngine(
            [chain.slice(0, 2), chain.slice(2, 3)],
            streams,
            optimizer_factory=lambda: SGD(lr=0.05),
        )
        xs = np.split(x, M)
        ys = np.split(y, M)
        eng.run(dict(enumerate(xs)), dict(enumerate(ys)))
        ref.step(x, y)
        got = np.concatenate(
            [eng.stages[0].chain.param_vector(), eng.stages[1].chain.param_vector()]
        )
        assert max_param_diff(got, ref.chain.param_vector()) < 1e-12


def test_instruction_engine_deadlock_detection(rng, data):
    """A RECV with no matching SEND must raise, not hang."""
    from repro.core.instructions import Instruction, Op

    x, y = data
    chain = mlp_chain("m", [4, 6, 2], rng)
    streams = {
        0: [Instruction(Op.RECV, 0, {"micro_batch": 0, "dir": "bwd", "peer": 1})],
        1: [],
    }
    eng = InstructionEngine([chain.slice(0, 2), chain.slice(2, 3)], streams)
    with pytest.raises(EngineError, match="deadlock"):
        eng.run({0: x[:4]}, {0: y[:4]})


def test_optimizer_validation():
    with pytest.raises(EngineError):
        SGD(lr=0)
    with pytest.raises(EngineError):
        SGD(lr=0.1, momentum=1.0)
    with pytest.raises(EngineError):
        Adam(lr=-1)


def test_training_reduces_loss(rng):
    """Sanity: the pipeline actually learns a linear map."""
    true_w = rng.normal(size=(4, 2))
    x = rng.normal(size=(64, 4))
    y = x @ true_w
    chain = mlp_chain("m", [4, 16, 2], rng)
    pipe = PipelineTrainer(chain, [2], num_micro=4,
                           optimizer_factory=lambda: SGD(lr=0.1))
    first = pipe.step(x, y)
    for _ in range(60):
        last = pipe.step(x, y)
    assert last < first * 0.2
