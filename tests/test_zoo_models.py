"""Model-zoo structure and calibration tests."""

import pytest

from repro.cluster import a100_80gb
from repro.models.zoo import (
    cdm_imagenet,
    cdm_lsun,
    controlnet_v1_0,
    stable_diffusion_v2_1,
    timed_layer,
    uniform_model,
)
from repro.models.zoo.calibration import (
    flops_for_forward_time,
    layer_forward_time_ms,
    layers_from_time_weights,
    total_forward_ms,
    total_train_ms,
)
from repro.errors import ConfigurationError


def test_sd_structure():
    m = stable_diffusion_v2_1()
    assert m.backbone_names == ("unet",)
    assert {c.name for c in m.non_trainable} == {"text_encoder", "vae_encoder"}
    assert m.self_conditioning
    assert m.components["unet"].num_layers == 33
    assert m.components["text_encoder"].num_layers == 23
    assert m.components["vae_encoder"].num_layers == 19


def test_sd_table1_calibration():
    """The zoo reproduces Table 1 row 1 within 1.5 pp."""
    dev = a100_80gb()
    m = stable_diffusion_v2_1()
    nt = [l for c in m.non_trainable for l in c.layers]
    paper = {8: 0.38, 16: 0.41, 32: 0.43, 64: 0.44}
    for b, expected in paper.items():
        ratio = total_forward_ms(nt, b, dev) / total_train_ms(
            m.components["unet"].layers, b, dev
        )
        assert abs(ratio - expected) < 0.015, (b, ratio)


def test_controlnet_table1_calibration():
    dev = a100_80gb()
    m = controlnet_v1_0()
    nt = [l for c in m.non_trainable for l in c.layers]
    paper = {8: 0.76, 16: 0.81, 32: 0.86, 64: 0.89}
    for b, expected in paper.items():
        ratio = total_forward_ms(nt, b, dev) / total_train_ms(
            m.components["control_branch"].layers, b, dev
        )
        assert abs(ratio - expected) < 0.025, (b, ratio)


def test_controlnet_structure():
    m = controlnet_v1_0()
    assert m.components["hint_encoder"].depends_on == ("vae_encoder",)
    nt_layers = sum(c.num_layers for c in m.non_trainable)
    assert nt_layers == 65  # Fig. 5b's index range


def test_sd_param_budget():
    m = stable_diffusion_v2_1()
    # ~865 M params in fp16.
    assert m.components["unet"].param_bytes == pytest.approx(865e6 * 2)


def test_cdm_models():
    lsun = cdm_lsun()
    assert lsun.backbone_names == ("base_64", "sr_128")
    assert not lsun.self_conditioning
    inet = cdm_imagenet()
    assert inet.backbone_names == ("sr_128", "sr_256")
    # Little non-trainable work (the class embedding only).
    assert sum(c.num_layers for c in lsun.non_trainable) == 2


def test_extra_long_layer_exists():
    dev = a100_80gb()
    m = stable_diffusion_v2_1()
    times = [
        layer_forward_time_ms(l, 64, dev)
        for l in m.components["vae_encoder"].layers
    ]
    assert max(times) > 400.0


def test_flops_inversion_roundtrip():
    dev = a100_80gb()
    flops = flops_for_forward_time(12.5, 32, dev, fixed_overhead_ms=0.1)
    from repro.models import LayerSpec

    layer = LayerSpec(name="x", flops_per_sample=flops, fixed_overhead_ms=0.1)
    assert layer_forward_time_ms(layer, 32, dev) == pytest.approx(12.5)
    with pytest.raises(ConfigurationError):
        flops_for_forward_time(0.01, 32, dev, fixed_overhead_ms=0.1)


def test_layers_from_time_weights_distribution():
    dev = a100_80gb()
    layers = layers_from_time_weights(
        "x", [1.0, 3.0], 40.0, trainable=False, param_bytes_total=8e6,
        output_bytes_per_sample=100, device=dev,
    )
    t0 = layer_forward_time_ms(layers[0], 64, dev)
    t1 = layer_forward_time_ms(layers[1], 64, dev)
    assert t0 + t1 == pytest.approx(40.0)
    assert t1 == pytest.approx(30.0)
    assert layers[0].param_bytes == pytest.approx(2e6)
    with pytest.raises(ConfigurationError):
        layers_from_time_weights(
            "x", [], 10.0, trainable=False, param_bytes_total=1,
            output_bytes_per_sample=1,
        )


def test_timed_layer_anchor_exact():
    dev = a100_80gb()
    l = timed_layer("t", 7.5, batch_size=16, device=dev)
    assert layer_forward_time_ms(l, 16, dev) == pytest.approx(7.5)


def test_uniform_model_shape():
    m = uniform_model(backbone_layers=5, encoder_layers=3)
    assert m.components["backbone"].num_layers == 5
    assert m.components["encoder"].num_layers == 3
