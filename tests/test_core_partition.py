"""Single-backbone DP partitioner tests (§4.1, §4.3)."""

import pytest

from repro.cluster import CollectiveModel, CommCosts, single_node
from repro.core import PartitionContext, StageCosts, partition_backbone
from repro.core.partition import pareto_insert
from repro.errors import ConfigurationError, PartitionError

from .conftest import make_synthetic_db

FAST_P2P = CommCosts(bandwidth=6e8, latency=0.005)
FAST_AR = CommCosts(bandwidth=1e9, latency=0.1)


def _ctx(db=None, batch=64.0, M=4, sc=False, p2p=FAST_P2P, ar=FAST_AR):
    return PartitionContext(
        profile=db or make_synthetic_db(),
        component="backbone",
        batch_per_group=batch,
        num_micro_batches=M,
        p2p=p2p,
        allreduce=ar,
        self_conditioning=sc,
    )


def test_uniform_backbone_splits_evenly():
    """8 identical layers into 2/4 stages -> equal layer counts."""
    for S in (2, 4):
        plan = partition_backbone(_ctx(), S, S)
        sizes = [st.num_layers for st in plan.down]
        assert sizes == [8 // S] * S
        # Chain is contiguous and covers all layers.
        assert plan.down[0].lo == 0
        assert plan.down[-1].hi == 8
        for a, b in zip(plan.down, plan.down[1:]):
            assert a.hi == b.lo


def test_skewed_backbone_balances_time():
    """One heavy layer attracts a singleton stage."""
    db = make_synthetic_db(
        backbone_times=[(10, 20)] * 3 + [(60, 120)] + [(10, 20)] * 2,
    )
    plan = partition_backbone(_ctx(db), 2, 2)
    heavy_stage = next(st for st in plan.down if st.lo <= 3 < st.hi)
    # The heavy stage should not also carry most light layers.
    assert heavy_stage.num_layers <= 3


def test_w_value_matches_stage_costs():
    plan = partition_backbone(_ctx(), 2, 2)
    ctx = _ctx()
    costs = StageCosts(ctx, replicas=1)
    expected_w = max(
        costs.t0(st.lo, st.hi) for st in plan.down
    )
    assert plan.w_ms == pytest.approx(expected_w)
    # Objective = (M + 2S - 2) W + Y.
    M, S = 4, 2
    assert plan.t_max_ms == pytest.approx((M + 2 * S - 2) * plan.w_ms + plan.y_ms)


def test_replication_uses_group_devices():
    plan = partition_backbone(_ctx(), 2, 8)
    assert all(st.replicas == 4 for st in plan.down)
    assert plan.group_size == 8


def test_micro_batch_size_property():
    plan = partition_backbone(_ctx(batch=64, M=4), 2, 2)
    assert plan.micro_batch == 16.0


def test_infeasible_cases():
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 9, 9)      # more stages than layers
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 3, 2)      # more stages than devices
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 3, 8)      # 3 does not divide 8
    with pytest.raises(ConfigurationError):
        partition_backbone(_ctx(), 0, 2)


def test_comm_bound_stage_cost():
    """With a tiny p2p bandwidth the boundary dominates T0."""
    slow = CommCosts(bandwidth=1.0, latency=0.0)  # 1 byte/ms
    ctx = _ctx(p2p=slow)
    costs = StageCosts(ctx, replicas=1)
    # Stage [4, 8): receives layer 3's output: 1e4 B/sample * 16 samples.
    t0 = costs.t0(4, 8)
    comm = 2 * 1e4 * 16 / 1.0
    assert t0 == pytest.approx(comm)


def test_sync_gap_uses_prefix_backward():
    ctx = _ctx()
    costs = StageCosts(ctx, replicas=1)
    # Stage starting at layer 4: compensation = bwd of layers 0..3 at
    # local batch 16 -> 4 * 20ms * (16/64).
    assert costs.compensation_ms(4) == pytest.approx(4 * 20.0 * 16 / 64)
    assert costs.sync_gap(4, 8) == pytest.approx(
        costs.sync_ms(4, 8) - costs.compensation_ms(4)
    )
    # First stage has zero compensation: fully exposed sync.
    assert costs.compensation_ms(0) == 0.0


def test_self_conditioning_increases_bound():
    plain = partition_backbone(_ctx(sc=False), 2, 2)
    sc = partition_backbone(_ctx(sc=True), 2, 2)
    assert sc.t_max_ms > plain.t_max_ms
    assert sc.self_conditioning


def test_self_conditioning_t0():
    ctx = _ctx(sc=True)
    costs = StageCosts(ctx, replicas=1)
    # 2 * fwd + bwd for the compute branch of Eqn. 17.
    local = 16
    fwd = 4 * 10.0 * local / 64
    bwd = 4 * 20.0 * local / 64
    assert costs.t0_sc(0, 4) == pytest.approx(2 * fwd + bwd)
    assert costs.t0(0, 4) == pytest.approx(fwd + bwd)


def test_pareto_insert():
    frontier = []
    assert pareto_insert(frontier, (1.0, 2.0, "a"), 2)
    assert pareto_insert(frontier, (2.0, 1.0, "b"), 2)
    # Dominated point rejected.
    assert not pareto_insert(frontier, (2.0, 3.0, "c"), 2)
    # Dominating point evicts.
    assert pareto_insert(frontier, (0.5, 0.5, "d"), 2)
    assert [e[2] for e in frontier] == ["d"]


def test_heterogeneous_matches_homogeneous_when_optimal():
    """On a uniform backbone with S | D, free replication should do at
    least as well as forced-equal replication."""
    hom = partition_backbone(_ctx(), 2, 4)
    het = partition_backbone(_ctx(), 2, 4, heterogeneous=True)
    assert het.t_max_ms <= hom.t_max_ms + 1e-9
    assert sum(st.replicas for st in het.down) <= 4


def test_heterogeneous_uneven_devices():
    """Heterogeneous replication handles S !| D."""
    plan = partition_backbone(_ctx(), 2, 3, heterogeneous=True)
    assert plan.num_stages == 2
    assert sum(st.replicas for st in plan.down) <= 3
    # The heavier share of devices goes somewhere useful: both stages
    # keep at least one device.
    assert all(st.replicas >= 1 for st in plan.down)


def test_stage_costs_validation():
    with pytest.raises(ConfigurationError):
        StageCosts(_ctx(), replicas=0)
