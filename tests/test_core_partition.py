"""Single-backbone DP partitioner tests (§4.1, §4.3)."""

import pytest

from repro.cluster import CommCosts
from repro.core import PartitionContext, StageCosts, partition_backbone
from repro.core.partition import pareto_insert
from repro.errors import ConfigurationError, PartitionError

from .conftest import make_synthetic_db

FAST_P2P = CommCosts(bandwidth=6e8, latency=0.005)
FAST_AR = CommCosts(bandwidth=1e9, latency=0.1)


def _ctx(db=None, batch=64.0, M=4, sc=False, p2p=FAST_P2P, ar=FAST_AR):
    return PartitionContext(
        profile=db or make_synthetic_db(),
        component="backbone",
        batch_per_group=batch,
        num_micro_batches=M,
        p2p=p2p,
        allreduce=ar,
        self_conditioning=sc,
    )


def test_uniform_backbone_splits_evenly():
    """8 identical layers into 2/4 stages -> equal layer counts."""
    for S in (2, 4):
        plan = partition_backbone(_ctx(), S, S)
        sizes = [st.num_layers for st in plan.down]
        assert sizes == [8 // S] * S
        # Chain is contiguous and covers all layers.
        assert plan.down[0].lo == 0
        assert plan.down[-1].hi == 8
        for a, b in zip(plan.down, plan.down[1:]):
            assert a.hi == b.lo


def test_skewed_backbone_balances_time():
    """One heavy layer attracts a singleton stage."""
    db = make_synthetic_db(
        backbone_times=[(10, 20)] * 3 + [(60, 120)] + [(10, 20)] * 2,
    )
    plan = partition_backbone(_ctx(db), 2, 2)
    heavy_stage = next(st for st in plan.down if st.lo <= 3 < st.hi)
    # The heavy stage should not also carry most light layers.
    assert heavy_stage.num_layers <= 3


def test_w_value_matches_stage_costs():
    plan = partition_backbone(_ctx(), 2, 2)
    ctx = _ctx()
    costs = StageCosts(ctx, replicas=1)
    expected_w = max(
        costs.t0(st.lo, st.hi) for st in plan.down
    )
    assert plan.w_ms == pytest.approx(expected_w)
    # Objective = (M + 2S - 2) W + Y.
    M, S = 4, 2
    assert plan.t_max_ms == pytest.approx((M + 2 * S - 2) * plan.w_ms + plan.y_ms)


def test_replication_uses_group_devices():
    plan = partition_backbone(_ctx(), 2, 8)
    assert all(st.replicas == 4 for st in plan.down)
    assert plan.group_size == 8


def test_micro_batch_size_property():
    plan = partition_backbone(_ctx(batch=64, M=4), 2, 2)
    assert plan.micro_batch == 16.0


def test_infeasible_cases():
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 9, 9)      # more stages than layers
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 3, 2)      # more stages than devices
    with pytest.raises(PartitionError):
        partition_backbone(_ctx(), 3, 8)      # 3 does not divide 8
    with pytest.raises(PartitionError):
        # r = 4 replicas but only 2 samples per micro-batch: sub-sample
        # local batches are unrunnable (same floor as the het DP).
        partition_backbone(_ctx(batch=4, M=2), 2, 8)
    with pytest.raises(ConfigurationError):
        partition_backbone(_ctx(), 0, 2)


def test_comm_bound_stage_cost():
    """With a tiny p2p bandwidth the boundary dominates T0."""
    slow = CommCosts(bandwidth=1.0, latency=0.0)  # 1 byte/ms
    ctx = _ctx(p2p=slow)
    costs = StageCosts(ctx, replicas=1)
    # Stage [4, 8): receives layer 3's output: 1e4 B/sample * 16 samples.
    t0 = costs.t0(4, 8)
    comm = 2 * 1e4 * 16 / 1.0
    assert t0 == pytest.approx(comm)


def test_sync_gap_uses_prefix_backward():
    ctx = _ctx()
    costs = StageCosts(ctx, replicas=1)
    # Stage starting at layer 4: compensation = bwd of layers 0..3 at
    # local batch 16 -> 4 * 20ms * (16/64).
    assert costs.compensation_ms(4) == pytest.approx(4 * 20.0 * 16 / 64)
    assert costs.sync_gap(4, 8) == pytest.approx(
        costs.sync_ms(4, 8) - costs.compensation_ms(4)
    )
    # First stage has zero compensation: fully exposed sync.
    assert costs.compensation_ms(0) == 0.0


def test_self_conditioning_increases_bound():
    plain = partition_backbone(_ctx(sc=False), 2, 2)
    sc = partition_backbone(_ctx(sc=True), 2, 2)
    assert sc.t_max_ms > plain.t_max_ms
    assert sc.self_conditioning


def test_self_conditioning_t0():
    ctx = _ctx(sc=True)
    costs = StageCosts(ctx, replicas=1)
    # 2 * fwd + bwd for the compute branch of Eqn. 17.
    local = 16
    fwd = 4 * 10.0 * local / 64
    bwd = 4 * 20.0 * local / 64
    assert costs.t0_sc(0, 4) == pytest.approx(2 * fwd + bwd)
    assert costs.t0(0, 4) == pytest.approx(fwd + bwd)


def test_pareto_insert():
    frontier = []
    assert pareto_insert(frontier, (1.0, 2.0, "a"), 2)
    assert pareto_insert(frontier, (2.0, 1.0, "b"), 2)
    # Dominated point rejected.
    assert not pareto_insert(frontier, (2.0, 3.0, "c"), 2)
    # Dominating point evicts.
    assert pareto_insert(frontier, (0.5, 0.5, "d"), 2)
    assert [e[2] for e in frontier] == ["d"]


def test_heterogeneous_matches_homogeneous_when_optimal():
    """On a uniform backbone with S | D, free replication should do at
    least as well as forced-equal replication."""
    hom = partition_backbone(_ctx(), 2, 4)
    het = partition_backbone(_ctx(), 2, 4, heterogeneous=True)
    assert het.t_max_ms <= hom.t_max_ms + 1e-9
    assert sum(st.replicas for st in het.down) <= 4


def test_heterogeneous_uneven_devices():
    """Heterogeneous replication handles S !| D."""
    plan = partition_backbone(_ctx(), 2, 3, heterogeneous=True)
    assert plan.num_stages == 2
    assert sum(st.replicas for st in plan.down) <= 3
    # The heavier share of devices goes somewhere useful: both stages
    # keep at least one device.
    assert all(st.replicas >= 1 for st in plan.down)


def test_heterogeneous_equals_homogeneous_when_forced():
    """D = S leaves exactly one device per stage: both DPs face the same
    space and must return the same objective."""
    hom = partition_backbone(_ctx(), 2, 2)
    het = partition_backbone(_ctx(), 2, 2, heterogeneous=True)
    assert het.t_max_ms == pytest.approx(hom.t_max_ms, rel=1e-12)
    assert [st.replicas for st in het.down] == [1, 1]


def test_heterogeneous_repeated_call_bit_identical():
    db = make_synthetic_db()
    a = partition_backbone(_ctx(db), 2, 3, heterogeneous=True)
    b = partition_backbone(_ctx(db), 2, 3, heterogeneous=True)
    assert a == b  # second call reads the memoized DP table


def test_heterogeneous_cache_is_micro_batch_keyed():
    """The DP table key uses the micro-batch *size*, not (batch, M):
    sweeps with the same ratio share one table, and M only enters the
    final objective selection."""
    from repro.core import PlannerCaches

    db = make_synthetic_db()
    caches = PlannerCaches()
    partition_backbone(
        _ctx(db, batch=64, M=4), 2, 3, heterogeneous=True, caches=caches
    )
    n_tables = caches.het.entry_count(db)
    # Same micro-batch size (32/2 == 64/4): table is reused.
    partition_backbone(
        _ctx(db, batch=32, M=2), 2, 3, heterogeneous=True, caches=caches
    )
    assert caches.het.entry_count(db) == n_tables
    # Different micro-batch size: a new table.
    partition_backbone(
        _ctx(db, batch=64, M=2), 2, 3, heterogeneous=True, caches=caches
    )
    assert caches.het.entry_count(db) == n_tables + 1


def test_heterogeneous_dp_prunes_dead_states():
    """The last DP stage only materialises full-chain prefixes, and no
    state exceeds the device budget or starves a remaining stage."""
    from repro.core import PlannerCaches
    from repro.core.partition import _het_frontiers

    ctx = _ctx()
    S, D, L = 3, 5, 8
    history, _ = _het_frontiers(ctx, L, S, D, PlannerCaches())
    for s in range(1, S + 1):
        for state in history[s]:
            l, d = state[0], state[1]
            assert s <= l <= L - (S - s)
            assert s <= d <= D - (S - s)
    # Last stage: only full-chain prefixes, keyed (l, d, last-stage r).
    assert all(state[0] == L for state in history[S])
    assert all(len(state) == 3 for state in history[S])


def test_heterogeneous_respects_micro_batch_floor():
    """A stage replica must see at least one sample per micro-batch:
    with micro-batch 1 the DP may not replicate any stage (larger r
    would mean unrunnable sub-sample local batches), and with
    micro-batch 3 no stage may exceed 3 replicas."""
    plan = partition_backbone(
        _ctx(batch=2, M=2), 2, 6, heterogeneous=True
    )  # micro-batch 1.0
    assert [st.replicas for st in plan.down] == [1, 1]
    plan = partition_backbone(
        _ctx(batch=6, M=2), 2, 8, heterogeneous=True
    )  # micro-batch 3.0
    assert all(st.replicas <= 3 for st in plan.down)
    assert all(plan.micro_batch / st.replicas >= 1.0 for st in plan.down)


def test_heterogeneous_sc_feedback_not_pruned():
    """Regression: the feedback term T_F depends on the *last* stage's
    replica count, so a final-stage entry dominated on (w, w_sc, y) can
    still be the optimum.  Heavy first layer + light last layer whose
    output (the feedback payload) is huge: r=(2, 1) strictly dominates
    r=(1, 2) on the frontier triple, but r=(1, 2) halves T_F and wins
    the objective.  The DP must keep both (last-stage buckets are keyed
    by r) and return the brute-force optimum."""
    import itertools

    from repro.profiling.records import LayerProfile

    def layer(i, f, b, out):
        return LayerProfile(
            component="bb", layer_index=i, layer_name=f"l{i}",
            batches=(1.0, 64.0), fwd_ms=(f / 64, f), bwd_ms=(b / 64, b),
            param_bytes=1e6, grad_bytes=1e6,
            output_bytes_per_sample=out,
            activation_bytes_per_sample=1.0, trainable=True,
        )

    from repro.profiling import ProfileDB

    db = ProfileDB([layer(0, 100.0, 200.0, 1.0), layer(1, 1.0, 2.0, 1e6)])
    ctx = PartitionContext(
        profile=db, component="bb", batch_per_group=64.0,
        num_micro_batches=1, p2p=CommCosts(bandwidth=3200.0, latency=0.0),
        allreduce=FAST_AR, self_conditioning=True,
        self_conditioning_prob=0.9,
    )
    S, D, L = 2, 3, 2
    plan = partition_backbone(ctx, S, D, heterogeneous=True)

    best = None
    for cut in itertools.combinations(range(1, L), S - 1):
        slices = list(zip((0, *cut), (*cut, L)))
        for rs in itertools.product(range(1, D + 1), repeat=S):
            if sum(rs) > D:
                continue
            w = w_sc = 0.0
            y = float("-inf")
            for (a, b), r in zip(slices, rs):
                c = StageCosts(ctx, r)
                w = max(w, c.t0(a, b))
                w_sc = max(w_sc, c.t0_sc(a, b))
                y = max(y, c.sync_gap(a, b))
            tf = StageCosts(ctx, rs[-1]).feedback_ms()
            coeff = ctx.num_micro_batches + 2 * S - 2
            p = ctx.self_conditioning_prob
            obj = p * (coeff * w_sc + y + tf) + (1 - p) * (coeff * w + y)
            if best is None or obj < best[0]:
                best = (obj, rs)

    assert plan.t_max_ms == pytest.approx(best[0], rel=1e-9)
    assert [st.replicas for st in plan.down] == list(best[1]) == [1, 2]


def test_per_replica_sync_model_resolved_in_stage_costs():
    """With an ``allreduce_by_r`` resolver, StageCosts prices Eqn. 4
    with the constants of its own replica count; without one it falls
    back to the flat pair."""
    import itertools

    ar_by_r = lambda r: CommCosts(bandwidth=1e9 * r, latency=0.2 / r)  # noqa: E731
    ctx = PartitionContext(
        profile=make_synthetic_db(), component="backbone",
        batch_per_group=64.0, num_micro_batches=4,
        p2p=FAST_P2P, allreduce=FAST_AR,
        allreduce_by_r=ar_by_r, allreduce_key=("t", 1e9, 0.2),
    )
    for r in (1, 2, 3):
        assert StageCosts(ctx, r).sync_costs == ar_by_r(r)
    flat = _ctx()
    assert StageCosts(flat, 2).sync_costs == FAST_AR
    with pytest.raises(ConfigurationError, match="allreduce_key"):
        PartitionContext(
            profile=make_synthetic_db(), component="backbone",
            batch_per_group=64.0, num_micro_batches=4,
            p2p=FAST_P2P, allreduce=FAST_AR, allreduce_by_r=ar_by_r,
        )

    # Brute force: the heterogeneous DP is optimal under the r-indexed
    # sync model (each stage's Y term uses its own constants).
    S, D = 2, 3
    L = ctx.profile.num_layers("backbone")
    plan = partition_backbone(ctx, S, D, heterogeneous=True)
    best = float("inf")
    for cut in itertools.combinations(range(1, L), S - 1):
        slices = list(zip((0, *cut), (*cut, L)))
        for rs in itertools.product(range(1, D + 1), repeat=S):
            if sum(rs) > D:
                continue
            w = 0.0
            y = float("-inf")
            for (a, b), r in zip(slices, rs):
                c = StageCosts(ctx, r)
                w = max(w, c.t0(a, b))
                y = max(y, c.sync_gap(a, b))
            coeff = ctx.num_micro_batches + 2 * S - 2
            best = min(best, coeff * w + y)
    assert plan.t_max_ms == pytest.approx(best, rel=1e-9)


def test_het_cache_keyed_by_sync_model():
    """Two contexts differing only in their sync resolver constants
    must not share a heterogeneous DP table."""
    from repro.core import PlannerCaches

    db = make_synthetic_db()
    caches = PlannerCaches()

    def ctx_with(key, scale):
        return PartitionContext(
            profile=db, component="backbone", batch_per_group=64.0,
            num_micro_batches=4, p2p=FAST_P2P, allreduce=FAST_AR,
            allreduce_by_r=lambda r: CommCosts(
                bandwidth=scale * r, latency=0.1
            ),
            allreduce_key=key,
        )

    partition_backbone(
        ctx_with(("a", 1e9), 1e9), 2, 3, heterogeneous=True, caches=caches
    )
    n = caches.het.entry_count(db)
    # Same constants: memo hit, no new table.
    partition_backbone(
        ctx_with(("a", 1e9), 1e9), 2, 3, heterogeneous=True, caches=caches
    )
    assert caches.het.entry_count(db) == n
    # Different resolver constants: a new table.
    partition_backbone(
        ctx_with(("a", 5e8), 5e8), 2, 3, heterogeneous=True, caches=caches
    )
    assert caches.het.entry_count(db) == n + 1


def test_stage_costs_validation():
    with pytest.raises(ConfigurationError):
        StageCosts(_ctx(), replicas=0)
