"""Planner (front-end workflow) tests."""

import pytest

from repro.core import DiffusionPipePlanner, PlannerOptions
from repro.core.caches import PlannerCaches
from repro.errors import ConfigurationError
from repro.models.zoo import uniform_model


def _options(**kw):
    base = dict(
        max_stages=4,
        micro_batch_counts=(1, 2, 4),
        group_sizes=(2, 4),
        check_memory=False,
    )
    base.update(kw)
    return PlannerOptions(**base)


def test_candidate_configs_feasibility(cluster8, uniform, uniform_profile):
    planner = DiffusionPipePlanner(uniform, cluster8, uniform_profile, _options())
    configs = list(planner.candidate_configs(64))
    assert configs
    for D, S, M in configs:
        assert 8 % D == 0
        assert D % S == 0
        dp = 8 // D
        assert 64 % dp == 0
        assert (64 / dp) % M == 0


def test_plan_picks_max_throughput(cluster8, uniform, uniform_profile):
    planner = DiffusionPipePlanner(uniform, cluster8, uniform_profile, _options())
    all_plans = planner.candidate_plans(64)
    best = planner.plan(64)
    assert best.plan.throughput == max(ev.plan.throughput for ev in all_plans)


def test_filling_improves_iteration(cluster8, uniform, uniform_profile):
    filled = DiffusionPipePlanner(
        uniform, cluster8, uniform_profile, _options()
    ).plan(64)
    unfilled = DiffusionPipePlanner(
        uniform, cluster8, uniform_profile,
        _options(enable_bubble_filling=False),
    ).plan(64)
    assert filled.plan.throughput >= unfilled.plan.throughput
    assert filled.plan.bubble_ratio_filled <= filled.plan.bubble_ratio_unfilled


def test_evaluate_specific_config(cluster8, uniform, uniform_profile):
    planner = DiffusionPipePlanner(uniform, cluster8, uniform_profile, _options())
    ev = planner.evaluate(64, group_size=2, num_stages=2, num_micro=2)
    assert ev is not None
    p = ev.plan
    assert p.partition.num_stages == 2
    assert p.data_parallel_degree == 4
    assert p.iteration_ms > 0
    assert p.throughput == pytest.approx(64 / p.iteration_ms * 1e3)
    assert p.config_label == "S=2 M=2 D=2 dp=4"


def test_keep_timeline_option(cluster8, uniform, uniform_profile):
    planner = DiffusionPipePlanner(
        uniform, cluster8, uniform_profile, _options(keep_timeline=True)
    )
    ev = planner.evaluate(64, 2, 2, 2)
    assert ev.timeline is not None
    assert ev.timeline.makespan == pytest.approx(ev.plan.pipeline_ms)


def test_self_conditioning_expectation(cluster8):
    model_sc = uniform_model(self_conditioning=True)
    model_plain = uniform_model(self_conditioning=False)
    from repro.profiling import Profiler

    prof = Profiler(cluster8).profile(model_sc)
    sc = DiffusionPipePlanner(model_sc, cluster8, prof, _options()).evaluate(
        64, 2, 2, 2
    )
    plain = DiffusionPipePlanner(model_plain, cluster8, prof, _options()).evaluate(
        64, 2, 2, 2
    )
    # The expected iteration with a 0.5-probability extra forward is
    # strictly longer than vanilla but far less than 2x.
    assert sc.plan.iteration_ms > plain.plan.iteration_ms
    assert sc.plan.iteration_ms < 1.7 * plain.plan.iteration_ms


def test_cdm_plan_is_bidirectional(cluster8, cascaded, cascaded_profile):
    planner = DiffusionPipePlanner(
        cascaded, cluster8, cascaded_profile, _options(cdm_cut_step=1)
    )
    ev = planner.evaluate(64, 2, 2, 2)
    assert ev.plan.partition.is_bidirectional
    # Throughput counts both backbones' samples.
    assert ev.plan.throughput == pytest.approx(
        2 * 64 / ev.plan.iteration_ms * 1e3
    )


def test_memory_gate_rejects_oversized(cluster8, uniform):
    """With a tiny device, every config OOMs and planning fails."""
    from repro.cluster import ClusterSpec, DeviceSpec
    from repro.profiling import Profiler

    tiny_dev = DeviceSpec(name="tiny", memory_bytes=1e3)
    tiny = ClusterSpec(num_machines=1, devices_per_machine=8, device_spec=tiny_dev)
    prof = Profiler(tiny).profile(uniform)
    planner = DiffusionPipePlanner(
        uniform, tiny, prof, _options(check_memory=True)
    )
    with pytest.raises(ConfigurationError):
        planner.plan(64)


def test_three_backbones_rejected(cluster8):
    from repro.models.zoo import timed_component
    from repro.models import ModelSpec

    comps = [
        timed_component(f"b{i}", [5.0] * 3, trainable=True) for i in range(3)
    ]
    model = ModelSpec("m3", comps, backbone_names=("b0", "b1", "b2"))
    with pytest.raises(ConfigurationError, match="two backbones"):
        DiffusionPipePlanner(model, cluster8)


def test_planner_options_validation():
    with pytest.raises(ConfigurationError):
        PlannerOptions(max_stages=1)
    with pytest.raises(ConfigurationError):
        PlannerOptions(micro_batch_counts=())
    with pytest.raises(ConfigurationError):
        PlannerOptions(dp_kernel="simd")
    with pytest.raises(ConfigurationError):
        PlannerOptions(fill_shape_quantum=-0.5)


def test_planner_engines_agree_end_to_end(uniform, uniform_profile, cluster8):
    """The full planner sweep is bit-identical under both DP engines."""
    plans = {}
    for kern in ("array", "reference"):
        planner = DiffusionPipePlanner(
            uniform, cluster8, uniform_profile,
            _options(dp_kernel=kern), caches=PlannerCaches(),
        )
        plans[kern] = planner.plan(64)
    a, r = plans["array"], plans["reference"]
    assert a.plan.throughput.hex() == r.plan.throughput.hex()
    assert a.plan.iteration_ms.hex() == r.plan.iteration_ms.hex()
    assert a.plan.partition == r.plan.partition


def test_heterogeneous_flag_opens_non_divisible_configs(uniform, uniform_profile):
    """With heterogeneous replication the sweep keeps (S, D) combos
    where S does not divide D, and evaluating one yields a valid plan."""
    from repro.cluster import single_node

    cluster = single_node(6)
    hom = DiffusionPipePlanner(
        uniform, cluster, uniform_profile,
        _options(group_sizes=(6,), micro_batch_counts=(1, 2)),
    )
    het = DiffusionPipePlanner(
        uniform, cluster, uniform_profile,
        _options(group_sizes=(6,), micro_batch_counts=(1, 2),
                 heterogeneous_replication=True),
    )
    hom_configs = set(hom.candidate_configs(12))
    het_configs = set(het.candidate_configs(12))
    assert all(D % S == 0 for D, S, _ in hom_configs)
    assert any(D % S != 0 for D, S, _ in het_configs)
    assert hom_configs <= het_configs

    ev = het.evaluate(12, group_size=6, num_stages=4, num_micro=2)
    assert ev is not None
    chain = ev.plan.partition.down
    assert sum(st.replicas for st in chain) <= 6
    assert all(st.replicas >= 1 for st in chain)
    assert ev.plan.partition.group_size == 6


def test_heterogeneous_floor_is_per_stage(uniform, uniform_profile):
    """The homogeneous feasibility floor (micro_batch / (D/S) >= 1)
    must not prune heterogeneous configs: the het DP picks per-stage
    replicas itself, capped at floor(micro_batch)."""
    from repro.cluster import single_node

    cluster = single_node(6)
    opts = dict(group_sizes=(6,), micro_batch_counts=(2,))
    hom = DiffusionPipePlanner(
        uniform, cluster, uniform_profile, _options(**opts)
    )
    het = DiffusionPipePlanner(
        uniform, cluster, uniform_profile,
        _options(heterogeneous_replication=True, **opts),
    )
    # Batch 4, M=2 -> micro-batch 2: uniform r=3 would need 3 samples,
    # so the homogeneous sweep prunes (D=6, S=2) — but r=(2, 2) etc.
    # are perfectly runnable.
    assert (6, 2, 2) not in set(hom.candidate_configs(4))
    assert (6, 2, 2) in set(het.candidate_configs(4))
    ev = het.evaluate(4, group_size=6, num_stages=2, num_micro=2)
    assert ev is not None
    chain = ev.plan.partition.down
    assert all(ev.plan.partition.micro_batch / st.replicas >= 1.0 for st in chain)


def test_candidate_configs_exact_divisibility(uniform, uniform_profile):
    """Divisibility is tested with exact rational arithmetic.  The old
    float formulation computed ``batch_per_group = global_batch / dp``
    with binary rounding: past 2^53 the quotient snaps to the nearest
    representable float, so ``% M`` both rejected feasible splits and
    admitted infeasible ones."""
    from repro.cluster import single_node

    planner = DiffusionPipePlanner(
        uniform, single_node(16), uniform_profile,
        _options(group_sizes=(8,), micro_batch_counts=(2, 3), max_stages=2),
    )
    # world 16, D=8 -> dp=2.  batch_per_group = 2^53 + 1 exactly — an
    # odd multiple of 3 whose float rounds to the even 2^53.
    global_batch = 2 * (2**53 + 1)
    configs = set(planner.candidate_configs(global_batch))
    # Feasible: (2^53 + 1) % 3 == 0; float arithmetic said 2 != 0.
    assert (8, 2, 3) in configs
    # Infeasible: 2^53 + 1 is odd; float arithmetic said % 2 == 0.
    assert (8, 2, 2) not in configs


def test_heterogeneous_flag_opens_non_divisible_cdm_configs(
    cascaded, cascaded_profile
):
    """Cascaded models now participate in heterogeneous sweeps: the
    bidirectional DP assigns per-position replica counts, so (S, D)
    combos with S !| D are admitted and evaluate to valid plans."""
    from repro.cluster import single_node

    cluster = single_node(6)
    opts = dict(group_sizes=(6,), micro_batch_counts=(1, 2), cdm_cut_step=1)
    hom = DiffusionPipePlanner(
        cascaded, cluster, cascaded_profile, _options(**opts)
    )
    het = DiffusionPipePlanner(
        cascaded, cluster, cascaded_profile,
        _options(heterogeneous_replication=True, **opts),
    )
    hom_configs = set(hom.candidate_configs(12))
    het_configs = set(het.candidate_configs(12))
    assert all(D % S == 0 for D, S, _ in hom_configs)
    assert any(D % S != 0 for D, S, _ in het_configs)
    assert hom_configs <= het_configs

    ev = het.evaluate(12, group_size=6, num_stages=4, num_micro=2)
    assert ev is not None
    p = ev.plan.partition
    assert p.is_bidirectional
    S = p.num_stages
    assert sum(st.replicas for st in p.down) <= 6
    for i in range(S):
        assert p.down[i].replicas == p.up[S - 1 - i].replicas


def test_bidirectional_timeline_weights_cover_both_chains(
    cascaded, cascaded_profile
):
    """Chain position i hosts down stage i and up stage S-1-i, so the
    simulator's device weights must be derived from both chains — on a
    heterogeneous plan they vary per position."""
    from repro.cluster import single_node

    cluster = single_node(6)
    planner = DiffusionPipePlanner(
        cascaded, cluster, cascaded_profile,
        _options(group_sizes=(6,), micro_batch_counts=(2,), cdm_cut_step=1,
                 heterogeneous_replication=True, keep_timeline=True),
    )
    ev = planner.evaluate(12, group_size=6, num_stages=4, num_micro=2)
    assert ev is not None and ev.timeline is not None
    p = ev.plan.partition
    S = p.num_stages
    for i in range(S):
        expected = max(p.down[i].replicas, p.up[S - 1 - i].replicas)
        assert ev.timeline.device_weights[i] == expected
    assert ev.timeline.total_physical_devices == sum(
        st.replicas for st in p.down
    )


def test_eval_cache_shared_across_planners(cluster8, uniform, uniform_profile):
    """Planners sharing one PlannerCaches (same model/profile/options)
    reuse each other's simulate-and-fill results; filling ablations get
    distinct entries (the filling knobs are part of the key)."""
    from repro.core import PlannerCaches

    caches = PlannerCaches()
    DiffusionPipePlanner(
        uniform, cluster8, uniform_profile, _options(), caches=caches
    ).plan(64)
    n = len(caches.evals)
    assert n > 0
    DiffusionPipePlanner(
        uniform, cluster8, uniform_profile, _options(), caches=caches
    ).plan(64)
    assert len(caches.evals) == n
    DiffusionPipePlanner(
        uniform, cluster8, uniform_profile,
        _options(enable_bubble_filling=False), caches=caches,
    ).plan(64)
    assert len(caches.evals) > n


def test_timeline_cache_lru():
    """The timeline memo is a bounded LRU: hits move entries to the
    back, inserts at capacity evict the least recently used, and the
    store counts hits/misses/evictions."""
    from repro.core import PlannerCaches

    caches = PlannerCaches(timeline_max=3)
    timelines = caches.timelines
    for i in range(3):
        timelines.put(("k", i), f"tl{i}")
    # Touch the oldest entry: it becomes most-recently-used.
    assert timelines.get(("k", 0)) == "tl0"
    timelines.put(("k", 3), "tl3")
    # ("k", 1) was the LRU entry and is the only one evicted.
    assert timelines.get(("k", 1)) is None
    assert timelines.get(("k", 0)) == "tl0"
    assert timelines.get(("k", 2)) == "tl2"
    assert timelines.get(("k", 3)) == "tl3"
    # Re-inserting an existing key refreshes it without evicting.
    timelines.put(("k", 0), "tl0")
    assert len(timelines) == 3
    stats = timelines.stats()
    assert stats.hits == 4 and stats.misses == 1 and stats.evictions == 1
