"""Memory estimator tests."""

import pytest

from repro.core.plan import PartitionPlan, StageAssignment
from repro.errors import ConfigurationError
from repro.memory import (
    component_state_bytes,
    data_parallel_memory_report,
    frozen_state_bytes,
    pipeline_memory_report,
    stage_activation_bytes,
    stage_state_bytes,
)
from repro.models import ComponentSpec, LayerSpec, ModelSpec


def _model(backbone_layers=4, act_bytes=1e6, param_bytes=2e6):
    bb_layers = [
        LayerSpec(
            name=f"b{i}", flops_per_sample=1e9, param_bytes=param_bytes,
            output_bytes_per_sample=1e4, activation_bytes_per_sample=act_bytes,
            trainable=True,
        )
        for i in range(backbone_layers)
    ]
    enc_layers = [
        LayerSpec(
            name="e0", flops_per_sample=1e9, param_bytes=4e6,
            output_bytes_per_sample=1e4, trainable=False,
        )
    ]
    return ModelSpec(
        "m",
        [
            ComponentSpec("enc", enc_layers, trainable=False),
            ComponentSpec("bb", bb_layers, trainable=True, depends_on=("enc",)),
        ],
        backbone_names=("bb",),
    )


def test_state_bytes_accounting():
    m = _model()
    bb = m.components["bb"]
    # 16 bytes/param for trainable: params = 4 layers * 2e6/2 = 4e6 params.
    assert component_state_bytes(bb) == 4e6 * 16
    enc = m.components["enc"]
    # Frozen: fp16 only -> same as param_bytes.
    assert component_state_bytes(enc) == 4e6
    assert frozen_state_bytes(m) == 4e6


def test_stage_level_accounting():
    m = _model()
    st = StageAssignment("bb", 0, 2)
    assert stage_state_bytes(m, st) == 2e6 * 16
    assert stage_activation_bytes(m, st, local_batch=8) == 2 * 1e6 * 8


def test_pipeline_memory_1f1b_window():
    m = _model()
    plan = PartitionPlan(
        down=(StageAssignment("bb", 0, 2), StageAssignment("bb", 2, 4)),
        num_stages=2, num_micro_batches=4, group_size=2, batch_per_group=32,
    )
    rep = pipeline_memory_report(m, plan, capacity_bytes=1e12)
    # Stage 0 holds min(S, M)=2 in-flight micro-batches of 8 samples.
    expected_stage0 = (
        frozen_state_bytes(m)
        + 2e6 * 16
        + 2 * (2 * 1e6 * 8)
    )
    assert rep.peak_bytes == pytest.approx(expected_stage0)
    assert rep.fits


def test_gpipe_memory_exceeds_1f1b():
    m = _model()
    plan = PartitionPlan(
        down=(StageAssignment("bb", 0, 2), StageAssignment("bb", 2, 4)),
        num_stages=2, num_micro_batches=4, group_size=2, batch_per_group=32,
    )
    f1b = pipeline_memory_report(m, plan, capacity_bytes=1e12)
    gp = pipeline_memory_report(m, plan, capacity_bytes=1e12, schedule="gpipe")
    assert gp.peak_bytes > f1b.peak_bytes
    with pytest.raises(ConfigurationError):
        pipeline_memory_report(m, plan, capacity_bytes=1e12, schedule="pipedream")


def test_data_parallel_memory_and_oom():
    m = _model(act_bytes=1e9)
    small = data_parallel_memory_report(m, 1, capacity_bytes=80e9)
    assert small.fits
    big = data_parallel_memory_report(m, 64, capacity_bytes=80e9)
    assert not big.fits
    assert big.breakdown["activations"] == pytest.approx(4 * 1e9 * 64)


def test_zero3_shards_states():
    m = _model()
    ddp = data_parallel_memory_report(m, 8, capacity_bytes=80e9, world_size=8)
    z3 = data_parallel_memory_report(
        m, 8, capacity_bytes=80e9, zero3=True, world_size=8
    )
    assert z3.peak_bytes < ddp.peak_bytes
    assert z3.breakdown["trainable_states"] < ddp.breakdown["trainable_states"]


def test_validation():
    m = _model()
    with pytest.raises(ConfigurationError):
        data_parallel_memory_report(m, 0, capacity_bytes=1)
    with pytest.raises(ConfigurationError):
        data_parallel_memory_report(m, 8, capacity_bytes=1, world_size=0)
