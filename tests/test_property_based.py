"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CollectiveModel, CommCosts, single_node
from repro.core import (
    CDMPartitionContext,
    PartitionContext,
    extract_bubbles,
    partition_backbone,
    partition_cdm,
    valid_partial_samples,
)
from repro.core.filling import ComponentState, fill_one_bubble
from repro.core.bubbles import Bubble, total_bubble_device_time
from repro.core.partition import pareto_insert
from repro.engine import SGD, PipelineTrainer, SingleDeviceTrainer, clone_chain, mlp_chain
from repro.engine.equivalence import max_param_diff
from repro.profiling import ProfileDB
from repro.schedule import (
    StageExec,
    Task,
    build_1f1b,
    build_gpipe,
    simulate,
    simulate_reference,
)

FAST = CommCosts(bandwidth=6e8, latency=0.005)

# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------

stage_times = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=50.0),
        st.floats(min_value=0.5, max_value=100.0),
    ),
    min_size=2,
    max_size=5,
)


@given(stage_times, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_1f1b_makespan_bounds(times, M):
    """Makespan is at least the busiest device's work and at most the
    serial total; bubble ratio lies in [0, 1)."""
    stages = [
        StageExec(index=i, fwd_ms=f, bwd_ms=b) for i, (f, b) in enumerate(times)
    ]
    tl = simulate(build_1f1b(stages, M), len(stages))
    per_stage = [M * (f + b) for f, b in times]
    serial = sum(per_stage)
    assert tl.makespan >= max(per_stage) - 1e-9
    assert tl.makespan <= serial + 1e-6
    assert 0.0 <= tl.bubble_ratio() < 1.0


@given(stage_times, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_gpipe_never_faster_than_critical_path(times, M):
    stages = [
        StageExec(index=i, fwd_ms=f, bwd_ms=b) for i, (f, b) in enumerate(times)
    ]
    tl = simulate(build_gpipe(stages, M), len(stages))
    # Critical path >= one micro-batch traversing all stages + draining
    # the slowest stage.
    f_total = sum(f for f, _ in times)
    b_total = sum(b for _, b in times)
    assert tl.makespan >= f_total + b_total - 1e-9


@st.composite
def task_graphs(draw):
    """Random DAGs: arbitrary resources, priorities, fan-in, zero durations."""
    n = draw(st.integers(min_value=1, max_value=24))
    tasks = []
    for i in range(n):
        dep_pool = list(range(i))
        deps = draw(
            st.lists(st.sampled_from(dep_pool), max_size=min(3, i), unique=True)
        ) if dep_pool else []
        tasks.append(
            Task(
                task_id=f"t{i}",
                resource=f"r{draw(st.integers(min_value=0, max_value=3))}",
                duration=draw(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.1, max_value=20.0),
                    )
                ),
                deps=tuple(f"t{j}" for j in deps),
                priority=(
                    draw(st.integers(min_value=0, max_value=2)),
                    draw(st.integers(min_value=0, max_value=2)),
                ),
            )
        )
    return tasks


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_event_engine_matches_reference_on_random_dags(tasks):
    """The event-driven engine and the reference list scheduler commit
    identical intervals on arbitrary task graphs."""
    fast = simulate(tasks, 1)
    ref = simulate_reference(tasks, 1)
    assert [
        (iv.start, iv.end, iv.task.task_id) for iv in fast.intervals
    ] == [(iv.start, iv.end, iv.task.task_id) for iv in ref.intervals]


@given(stage_times, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_bubble_extraction_conserves_idle_time(times, M):
    """Sum of bubble device-times equals the timeline's idle accounting."""
    stages = [
        StageExec(index=i, fwd_ms=f, bwd_ms=b) for i, (f, b) in enumerate(times)
    ]
    tl = simulate(build_1f1b(stages, M), len(stages))
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    assert total_bubble_device_time(bubbles) == np.float64(
        tl.bubble_device_time()
    ) or abs(total_bubble_device_time(bubbles) - tl.bubble_device_time()) < 1e-6


# ---------------------------------------------------------------------------
# Partitioner invariants
# ---------------------------------------------------------------------------

layer_times = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=100.0),
    ),
    min_size=4,
    max_size=12,
)


def _ctx_from_times(times, M=2):
    db = ProfileDB.from_layer_times(
        {"bb": list(times)}, batches=(1.0, 64.0), trainable={"bb": True}
    )
    return PartitionContext(
        profile=db, component="bb", batch_per_group=64.0,
        num_micro_batches=M, p2p=FAST, allreduce=FAST,
    )


@given(layer_times, st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_partition_covers_chain_contiguously(times, S):
    if S > len(times):
        return
    plan = partition_backbone(_ctx_from_times(times), S, S)
    assert plan.down[0].lo == 0
    assert plan.down[-1].hi == len(times)
    for a, b in zip(plan.down, plan.down[1:]):
        assert a.hi == b.lo
    assert all(st_.num_layers >= 1 for st_ in plan.down)


@given(
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_het_objective_never_exceeds_homogeneous(times, S, k):
    """On ``S | D`` clusters the heterogeneous DP can always pick the
    uniform ``r = D/S`` assignment, so its objective must never exceed
    the homogeneous chain DP's."""
    if S > len(times):
        return
    D = S * k
    ctx = _ctx_from_times(times)
    hom = partition_backbone(ctx, S, D)
    het = partition_backbone(ctx, S, D, heterogeneous=True)
    assert het.t_max_ms <= hom.t_max_ms + 1e-9 * max(1.0, hom.t_max_ms)


@given(layer_times, st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_het_backtracking_contiguous_and_device_conserving(times, S):
    """Non-divisible case (D = S + 1): the backtracked chain must be
    contiguous, cover all layers and never over-subscribe devices."""
    if S > len(times):
        return
    D = S + 1  # S + 1 is never a multiple of S for S >= 2
    plan = partition_backbone(_ctx_from_times(times), S, D, heterogeneous=True)
    assert plan.down[0].lo == 0
    assert plan.down[-1].hi == len(times)
    for a, b in zip(plan.down, plan.down[1:]):
        assert a.hi == b.lo
    assert all(st_.replicas >= 1 for st_ in plan.down)
    assert sum(st_.replicas for st_ in plan.down) <= D


def _cdm_ctx_from_times(down_times, up_times, M=2):
    db = ProfileDB.from_layer_times(
        {"down": list(down_times), "up": list(up_times)},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )
    mk = lambda comp: PartitionContext(  # noqa: E731
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=M, p2p=FAST, allreduce=FAST,
    )
    return CDMPartitionContext(down=mk("down"), up=mk("up"))


@given(
    layer_times,
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_het_cdm_objective_never_exceeds_uniform(down_times, up_times, S, k):
    """On ``S | D`` clusters the heterogeneous CDM DP can always pick
    the uniform ``r = D/S`` assignment for every chain position, so its
    objective must never exceed the uniform DP's."""
    if S > min(len(down_times), len(up_times)):
        return
    D = S * k
    ctx = _cdm_ctx_from_times(down_times, up_times)
    uni = partition_cdm(ctx, S, D)
    het = partition_cdm(ctx, S, D, heterogeneous=True)
    assert het.t_max_ms <= uni.t_max_ms + 1e-9 * max(1.0, uni.t_max_ms)


@given(layer_times, layer_times, st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_het_cdm_backtracking_valid_chains(down_times, up_times, S):
    """Non-divisible case (D = S + 1): both backtracked chains must be
    contiguous, cover their backbone, never over-subscribe devices, and
    co-located stages must share one replica count."""
    if S > min(len(down_times), len(up_times)):
        return
    D = S + 1  # never a multiple of S for S >= 2
    plan = partition_cdm(
        _cdm_ctx_from_times(down_times, up_times), S, D, heterogeneous=True
    )
    ld, lu = len(down_times), len(up_times)
    for chain, L in ((plan.down, ld), (plan.up, lu)):
        assert chain[0].lo == 0
        assert chain[-1].hi == L
        for a, b in zip(chain, chain[1:]):
            assert a.hi == b.lo
        assert all(st_.replicas >= 1 for st_ in chain)
    assert sum(st_.replicas for st_ in plan.down) <= D
    for i in range(S):
        assert plan.down[i].replicas == plan.up[S - 1 - i].replicas


@given(
    layer_times,
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_het_cdm_memo_hit_bit_identical(down_times, up_times, S, M):
    """A repeated heterogeneous CDM call (same profile, same inputs)
    hits the per-profile DP memo and returns a bit-identical plan."""
    if S > min(len(down_times), len(up_times)):
        return
    ctx = _cdm_ctx_from_times(down_times, up_times, M=M)
    D = S + 1
    first = partition_cdm(ctx, S, D, heterogeneous=True)
    second = partition_cdm(ctx, S, D, heterogeneous=True)
    assert first == second


@given(layer_times)
@settings(max_examples=30, deadline=None)
def test_partition_w_is_lower_bounded_by_mean(times):
    """max stage time >= total / S for any partition: the DP's W too."""
    S = 2
    ctx = _ctx_from_times(times)
    plan = partition_backbone(ctx, S, S)
    total = sum((f + b) for f, b in times) * (32 / 64)  # micro batch 32
    assert plan.w_ms >= total / S - 1e-6


@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_pareto_frontier_invariant(points):
    frontier: list[tuple] = []
    for i, (w, y) in enumerate(points):
        pareto_insert(frontier, (w, y, i), 2)
    # No point in the frontier dominates another.
    for a in frontier:
        for b in frontier:
            if a is b:
                continue
            assert not (a[0] <= b[0] and a[1] <= b[1]), (a, b)
    # Every input point is dominated by (or equal to) some frontier point.
    for w, y in points:
        assert any(fw <= w and fy <= y for fw, fy, _ in frontier)


# ---------------------------------------------------------------------------
# Filling invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.5, max_value=30.0), min_size=1, max_size=8),
    st.floats(min_value=1.0, max_value=100.0),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_fill_never_exceeds_bubble(times, bubble_ms, d):
    db = ProfileDB.from_layer_times(
        {"e": [(t, 0.0) for t in times]},
        batches=(1.0, 64.0),
        trainable={"e": False},
        scale_with_batch=False,
    )
    state = ComponentState(name="e", num_layers=len(times), batch=64.0)
    bubble = Bubble(start=0.0, end=bubble_ms, devices=tuple(range(d)), weight=d)
    fill = fill_one_bubble(db, [state], bubble, 0)
    assert fill.time_ms <= bubble_ms + 1e-6
    assert sum(i.time_ms for i in fill.items) == np.float64(fill.time_ms) or abs(
        sum(i.time_ms for i in fill.items) - fill.time_ms
    ) < 1e-9
    # Items reference valid layers, in order per component.
    layers = [i.layer for i in fill.items]
    assert layers == sorted(layers)


@st.composite
def fill_instances(draw):
    """A random NT workload (1-2 components) plus a random bubble list."""
    from repro.models import ModelSpec
    from repro.models.zoo import timed_component

    comps = {}
    for c in range(draw(st.integers(min_value=1, max_value=2))):
        n = draw(st.integers(min_value=1, max_value=4))
        t = draw(st.floats(min_value=1.0, max_value=80.0))
        comps[f"c{c}"] = [(t, 0.0)] * n
    db = ProfileDB.from_layer_times(
        {**comps, "bb": [(1.0, 1.0)]},
        batches=(1.0, 64.0),
        trainable={**{k: False for k in comps}, "bb": True},
        scale_with_batch=True,
    )
    backbone = timed_component("bb", [1.0], trainable=True)
    specs = [timed_component(n, [1.0] * len(v)) for n, v in comps.items()]
    model = ModelSpec("fuzz", [backbone] + specs, backbone_names=("bb",))
    bubbles = []
    t0 = 0.0
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        dur = draw(st.floats(min_value=2.0, max_value=100.0))
        w = draw(st.integers(min_value=1, max_value=4))
        bubbles.append(
            Bubble(start=t0, end=t0 + dur, devices=tuple(range(w)), weight=w)
        )
        t0 += dur + 1.0
    return db, model, bubbles


@given(fill_instances(), st.sampled_from(["greedy", "lookahead", "none"]))
@settings(max_examples=40, deadline=None)
def test_any_strategy_respects_capacity_and_conserves_samples(instance, strategy):
    """Every strategy's fill fits each bubble's wall-clock capacity, and
    per-layer sample accounting (full + partial items vs the final
    component states) conserves the batch."""
    from repro.core import BubbleFiller

    db, model, bubbles = instance
    filler = BubbleFiller(db, model, batch=64, strategy=strategy)
    report = filler.fill(bubbles, leftover_devices=2)
    assert report.strategy == strategy
    # Capacity: per bubble, placed time fits the duration.
    for b_index, bubble in enumerate(bubbles):
        placed = sum(
            i.time_ms for i in report.items if i.bubble_index == b_index
        )
        assert placed <= bubble.duration + 1e-6
    # Every strategy reports exactly one utilization entry per bubble.
    assert len(report.per_bubble) == len(bubbles)
    for u in report.per_bubble:
        placed = sum(
            i.time_ms for i in report.items if i.bubble_index == u.bubble_index
        )
        assert abs(placed - u.filled_ms) < 1e-9
        assert 0.0 <= u.utilization <= 1.0
    # Conservation: scheduled samples + the state's remaining samples
    # account for exactly one batch per started layer, none beyond.
    scheduled: dict[tuple[str, int], float] = {}
    for item in report.items:
        key = (item.component, item.layer)
        scheduled[key] = scheduled.get(key, 0.0) + item.samples
    for name, state in filler.states.items():
        for layer in range(state.num_layers):
            got = scheduled.get((name, layer), 0.0)
            if layer < state.next_layer:
                assert abs(got - state.batch) < 1e-6, (name, layer)
            elif layer == state.next_layer:
                assert abs(got - (state.batch - state.remaining)) < 1e-6
            else:
                assert got == 0.0
    # The leftover equals the remaining work at the leftover width.
    assert report.leftover_ms == pytest.approx(filler.leftover_ms(2))


@given(fill_instances())
@settings(max_examples=40, deadline=None)
def test_lookahead_never_worse_than_greedy(instance):
    from repro.core import BubbleFiller

    db, model, bubbles = instance
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    look = BubbleFiller(db, model, batch=64, strategy="lookahead").fill(
        bubbles, leftover_devices=2
    )
    assert look.leftover_ms <= greedy.leftover_ms


def _normalized_bubbles(bubbles):
    """Bubble list modulo ulp-level noise: sub-nanosecond slivers are
    dropped and adjacent same-set bubbles merged.  The reference's
    midpoint sampling cannot resolve segments one ulp wide (the midpoint
    rounds onto an edge), so the two implementations may legitimately
    disagree there; at any physical scale they are identical."""
    merged = []
    for b in bubbles:
        if b.duration <= 1e-9:
            continue
        if (
            merged
            and merged[-1][2] == b.devices
            and abs(merged[-1][1] - b.start) <= 1e-9
        ):
            merged[-1] = (merged[-1][0], b.end, b.devices)
        else:
            merged.append((b.start, b.end, b.devices))
    return [(round(s, 6), round(e, 6), d) for s, e, d in merged]


@given(stage_times, st.integers(min_value=1, max_value=5), st.booleans())
@settings(max_examples=30, deadline=None)
def test_sweep_line_extraction_matches_reference(times, M, include_sync):
    """The O(E log E) sweep-line and the quadratic breakpoint scan
    commit the same bubbles (modulo ulp-wide slivers the midpoint scan
    cannot resolve) on simulated 1F1B timelines."""
    from repro.core import extract_bubbles_reference

    stages = [
        StageExec(index=i, fwd_ms=f, bwd_ms=b, sync_ms=5.0)
        for i, (f, b) in enumerate(times)
    ]
    tl = simulate(build_1f1b(stages, M), len(stages))
    # Unfiltered view only: a ulp sliver can split a bubble around the
    # min-duration threshold, making the filtered lists incomparable by
    # normalization (the filtered case is equivalence-tested on
    # noise-free timelines in test_core_bubbles / benchmarks).
    fast = extract_bubbles(
        tl, min_duration_ms=0.0, include_sync_spans=include_sync
    )
    ref = extract_bubbles_reference(
        tl, min_duration_ms=0.0, include_sync_spans=include_sync
    )
    assert _normalized_bubbles(fast) == _normalized_bubbles(ref)


@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=1.0, max_value=128.0),
)
@settings(max_examples=50, deadline=None)
def test_valid_partial_samples_properties(d, remaining):
    out = valid_partial_samples(batch=128.0, idle_devices=d, remaining=remaining)
    for total in out:
        assert total <= remaining + 1e-9
        assert (total / d) in (4, 8, 12, 16, 24, 32, 48, 64, 96)
    assert out == sorted(out)


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=16),
    st.floats(min_value=1.0, max_value=1e9),
)
@settings(max_examples=50, deadline=None)
def test_allreduce_consistent_with_costs(n, size):
    coll = CollectiveModel(single_node(16))
    ranks = list(range(n))
    costs = coll.allreduce_costs(ranks)
    direct = coll.allreduce(ranks, size)
    via_costs = size / costs.bandwidth + costs.latency
    assert abs(direct - via_costs) < 1e-6 * max(direct, 1.0)


# ---------------------------------------------------------------------------
# Numeric engine
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=15, deadline=None)
def test_pipeline_equivalence_random_models(seed, micro):
    rng = np.random.default_rng(seed)
    chain = mlp_chain("m", [3, 5, 5, 2], rng)
    x = rng.normal(size=(8, 3))
    y = rng.normal(size=(8, 2))
    single = SingleDeviceTrainer(clone_chain(chain), optimizer=SGD(lr=0.05))
    pipe = PipelineTrainer(clone_chain(chain), [2], num_micro=micro,
                           optimizer_factory=lambda: SGD(lr=0.05))
    single.step(x, y)
    pipe.step(x, y)
    assert max_param_diff(single.chain.param_vector(), pipe.param_vector()) < 1e-11
