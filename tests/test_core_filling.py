"""Bubble filling tests (§5, Algorithms 1 and 2)."""

import pytest

from repro.core import (
    Bubble,
    BubbleFiller,
    ComponentState,
    fill_one_bubble,
    full_batch_candidates,
    valid_partial_samples,
)
from repro.core.filling import apply_fill
from repro.errors import FillingError
from repro.profiling import ProfileDB


def _flat_db(times_by_comp, batches=(1.0, 64.0)):
    """Batch-INDEPENDENT layer times: simplest algebra for Alg. 1/2."""
    return ProfileDB.from_layer_times(
        {k: [(t, 0.0) for t in v] for k, v in times_by_comp.items()},
        batches=batches,
        trainable={k: False for k in times_by_comp},
        scale_with_batch=False,
    )


def _state(name, db, batch=64.0):
    return ComponentState(name=name, num_layers=db.num_layers(name), batch=batch)


def _bubble(duration, weight=1, start=0.0, devices=None):
    devices = devices or tuple(range(weight))
    return Bubble(start=start, end=start + duration, devices=devices, weight=weight)


# -- Algorithm 2 (FFC) ------------------------------------------------------------


def test_ffc_single_component_prefixes():
    db = _flat_db({"e": [3.0, 3.0, 3.0, 3.0]})
    cands, dropped = full_batch_candidates(
        db, [_state("e", db)], bubble_ms=7.0, idle_devices=1
    )
    assert dropped == 0
    # k0 = 2 (3+3 <= 7 < 9); candidates k in {2, 1, 0}.
    counts = sorted(c.counts for c in cands)
    assert counts == [(0,), (1,), (2,)]
    times = {c.counts: c.time_ms for c in cands}
    assert times[(2,)] == pytest.approx(6.0)


def test_ffc_two_components_cross_product():
    db = _flat_db({"a": [2.0, 2.0], "b": [3.0]})
    states = [_state("a", db), _state("b", db)]
    cands, _ = full_batch_candidates(db, states, bubble_ms=5.0, idle_devices=1)
    combos = {c.counts for c in cands}
    # All combinations with total time <= 5: (2,0),(1,1),(1,0),(0,1),(0,0).
    assert combos == {(2, 0), (1, 1), (1, 0), (0, 1), (0, 0)}


def test_ffc_respects_head_remaining_batch():
    """The head layer of a partially-processed component runs on the
    remaining samples: at batch-linear times, half the samples = half
    the time."""
    db = ProfileDB.from_layer_times(
        {"e": [(8.0, 0.0), (8.0, 0.0)]},
        batches=(1.0, 64.0),
        trainable={"e": False},
        scale_with_batch=True,
    )
    st = _state("e", db)
    st.remaining = 32.0  # half of the 64-sample batch still pending
    cands, _ = full_batch_candidates(db, [st], bubble_ms=5.0, idle_devices=1)
    times = {c.counts: c.time_ms for c in cands}
    # Head at 32 samples costs ~4 ms -> fits; the next (full) layer wouldn't.
    assert times[(1,)] == pytest.approx(4.0, rel=0.05)


def test_ffc_zero_bubble():
    db = _flat_db({"e": [3.0]})
    cands, _ = full_batch_candidates(db, [_state("e", db)], 0.0, 1)
    assert {c.counts for c in cands} == {(0,)}
    with pytest.raises(FillingError):
        full_batch_candidates(db, [_state("e", db)], -1.0, 1)
    with pytest.raises(FillingError):
        full_batch_candidates(db, [_state("e", db)], 5.0, 0)


# -- getValidNumSamples ---------------------------------------------------------------


def test_valid_partial_samples_menu():
    # d=2 idle devices, full batch 64: totals are menu * 2 capped at 64.
    samples = valid_partial_samples(batch=64, idle_devices=2, remaining=64)
    assert samples == [8.0, 16.0, 24.0, 32.0, 48.0, 64.0]
    # Remaining limits the choice.
    assert valid_partial_samples(64, 2, remaining=20) == [8.0, 16.0]
    # Nothing fits when remaining is tiny.
    assert valid_partial_samples(64, 2, remaining=4) == []


# -- Algorithm 1 ------------------------------------------------------------------


def test_fill_one_bubble_prefers_longest():
    db = _flat_db({"a": [4.0, 4.0, 4.0]})
    fill = fill_one_bubble(db, [_state("a", db)], _bubble(9.0), 0,
                           enable_partial_batch=False)
    assert len(fill.items) == 2
    assert fill.time_ms == pytest.approx(8.0)


def test_fill_one_bubble_adds_partial_layer():
    """A long head layer that doesn't fit whole gets a partial batch."""
    db = ProfileDB.from_layer_times(
        {"a": [(64.0, 0.0)]},  # 64 ms at batch 64 -> 1 ms per sample
        batches=(1.0, 64.0),
        trainable={"a": False},
    )
    fill = fill_one_bubble(db, [_state("a", db)], _bubble(17.0), 0)
    assert len(fill.items) == 1
    item = fill.items[0]
    assert item.partial
    # Largest menu batch whose time fits 17 ms: 16 samples = ~16 ms.
    assert item.samples == 16.0
    assert item.time_ms == pytest.approx(16.0, rel=0.05)


def test_fill_one_bubble_partial_disabled():
    db = ProfileDB.from_layer_times(
        {"a": [(64.0, 0.0)]}, batches=(1.0, 64.0), trainable={"a": False},
    )
    fill = fill_one_bubble(db, [_state("a", db)], _bubble(17.0), 0,
                           enable_partial_batch=False)
    assert fill.items == ()


def test_apply_fill_advances_states():
    db = _flat_db({"a": [4.0, 4.0, 4.0]})
    states = {"a": _state("a", db)}
    fill = fill_one_bubble(db, [states["a"]], _bubble(9.0), 0,
                           enable_partial_batch=False)
    apply_fill(states, fill)
    assert states["a"].next_layer == 2
    assert states["a"].remaining == 64.0


def test_partial_batch_remainder_scheduling():
    """After a partial fill, the head layer continues with the leftover
    samples in the next bubble (Fig. 12)."""
    db = ProfileDB.from_layer_times(
        {"a": [(64.0, 0.0)]}, batches=(1.0, 64.0), trainable={"a": False},
    )
    states = {"a": _state("a", db)}
    f0 = fill_one_bubble(db, [states["a"]], _bubble(33.0), 0)
    apply_fill(states, f0)
    assert states["a"].next_layer == 0
    assert states["a"].remaining == 32.0
    # Second bubble takes the remaining 32 samples as a full-batch layer.
    f1 = fill_one_bubble(db, [states["a"]], _bubble(40.0), 1)
    apply_fill(states, f1)
    assert states["a"].done


def test_component_state_validation():
    st = ComponentState(name="x", num_layers=2, batch=64)
    with pytest.raises(FillingError):
        st.consume_full(3)
    with pytest.raises(FillingError):
        st.consume_partial(1, 8)   # not the head layer
    with pytest.raises(FillingError):
        st.consume_partial(0, 100)  # more than remaining
    st.consume_partial(0, 64)
    assert st.next_layer == 1


# -- end-to-end BubbleFiller ---------------------------------------------------------


def test_filler_respects_dependencies(cluster8, two_encoder, two_encoder_profile):
    """encoder_b must not run before encoder_a completes."""
    filler = BubbleFiller(two_encoder_profile, two_encoder, batch=64)
    ready = filler.ready_components()
    assert [s.name for s in ready] == ["encoder_a"]
    # Huge bubbles: everything fits, in dependency order.
    bubbles = [_bubble(1e4, start=0.0), _bubble(1e4, start=2e4)]
    report = filler.fill(bubbles, leftover_devices=2)
    assert report.complete
    a_done = max(k for k, it in enumerate(report.items) if it.component == "encoder_a")
    b_first = min(k for k, it in enumerate(report.items) if it.component == "encoder_b")
    assert a_done < b_first


def test_filler_leftover_when_bubbles_small(uniform, uniform_profile):
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    report = filler.fill([_bubble(5.0)], leftover_devices=2)
    assert not report.complete
    assert report.leftover_ms > 0
    # Leftover shrinks with more devices.
    filler2 = BubbleFiller(uniform_profile, uniform, batch=64)
    report2 = filler2.fill([_bubble(5.0)], leftover_devices=4)
    assert report2.leftover_ms < report.leftover_ms


def test_filler_long_layer_needs_partial(long_layer, long_layer_profile):
    """The 400 ms layer cannot fit a 100 ms bubble at full batch; with
    partial batching the filler still makes progress through it."""
    bubbles = [_bubble(100.0, start=200.0 * i) for i in range(30)]
    with_partial = BubbleFiller(
        long_layer_profile, long_layer, batch=64, enable_partial_batch=True
    ).fill(bubbles, leftover_devices=2)
    without = BubbleFiller(
        long_layer_profile, long_layer, batch=64, enable_partial_batch=False
    ).fill(bubbles, leftover_devices=2)
    assert with_partial.filled_device_time_ms > without.filled_device_time_ms
    assert with_partial.leftover_ms < without.leftover_ms
    # The long layer blocked everything behind it in the no-partial run.
    filled_layers = {(i.component, i.layer) for i in without.items}
    long_idx = 5  # long_layer_model puts the 400ms layer at index 5
    assert all(l <= long_idx for c, l in filled_layers)


def test_filler_validation(uniform, uniform_profile):
    with pytest.raises(FillingError):
        BubbleFiller(uniform_profile, uniform, batch=0)
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    with pytest.raises(FillingError):
        filler.leftover_ms(0)
