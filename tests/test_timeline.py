"""Timeline metrics tests."""

import pytest

from repro.errors import SimulationError
from repro.schedule import Task, TaskKind, Timeline, device_resource
from repro.schedule.timeline import Interval


def _iv(start, end, dev, kind=TaskKind.FORWARD, tid=None):
    task = Task(
        task_id=tid or f"t{start}-{end}-{dev}-{kind.value}",
        resource=device_resource(dev),
        duration=end - start,
        kind=kind,
        device=dev,
    )
    return Interval(start, end, task)


def test_makespan_and_busy_spans():
    tl = Timeline([_iv(0, 5, 0), _iv(7, 10, 0)], num_devices=1)
    assert tl.makespan == 10
    assert tl.busy_spans(0, {TaskKind.FORWARD}) == [(0, 5), (7, 10)]


def test_busy_span_merging():
    tl = Timeline([_iv(0, 5, 0), _iv(5, 8, 0), _iv(4, 6, 0)], num_devices=1)
    assert tl.busy_spans(0, {TaskKind.FORWARD}) == [(0, 8)]


def test_idle_spans():
    tl = Timeline([_iv(2, 5, 0), _iv(8, 10, 0)], num_devices=1)
    idles = tl.idle_spans(0)
    assert [(s.start, s.end) for s in idles] == [(0, 2), (5, 8)]


def test_idle_spans_sync_handling():
    ivs = [_iv(0, 4, 0), _iv(4, 6, 0, TaskKind.SYNC), _iv(8, 10, 0)]
    tl = Timeline(ivs, num_devices=1)
    # Sync counts as busy for bubble-ratio purposes...
    strict = tl.idle_spans(0, include_sync_as_busy=True)
    assert [(s.start, s.end) for s in strict] == [(6, 8)]
    # ...but as available time for bubble filling.
    fillable = tl.idle_spans(0, include_sync_as_busy=False)
    assert [(s.start, s.end) for s in fillable] == [(4, 8)]


def test_bubble_metrics_with_weights():
    # Device 0 busy [0,10); device 1 busy [5,10) -> 5 ms idle on dev 1.
    tl = Timeline(
        [_iv(0, 10, 0), _iv(5, 10, 1)],
        num_devices=2,
        device_weights={0: 2, 1: 2},
    )
    assert tl.bubble_device_time() == 10.0   # 5 ms x weight 2
    assert tl.total_physical_devices == 4
    assert tl.bubble_ratio() == pytest.approx(10.0 / (10.0 * 4))


def test_compute_device_time():
    tl = Timeline([_iv(0, 4, 0), _iv(0, 2, 1)], num_devices=2,
                  device_weights={0: 1, 1: 3})
    assert tl.compute_device_time() == 4 + 2 * 3


def test_ascii_rendering():
    tl = Timeline(
        [_iv(0, 5, 0), _iv(5, 10, 0, TaskKind.BACKWARD), _iv(2, 4, 1, TaskKind.SYNC)],
        num_devices=2,
    )
    art = tl.to_ascii(width=20)
    lines = art.splitlines()
    assert len(lines) == 3  # 2 devices + axis
    assert "F" in lines[0] and "B" in lines[0]
    assert "=" in lines[1]
    assert Timeline([], 1).to_ascii() == "(empty timeline)"


def test_interval_validation():
    task = Task(
        task_id="ok", resource=device_resource(0), duration=1.0,
        kind=TaskKind.FORWARD, device=0,
    )
    with pytest.raises(SimulationError):
        Interval(5, 3, task)
    with pytest.raises(SimulationError):
        Timeline([], num_devices=0)
