"""Test package marker.

Making ``tests`` a package lets pytest import test modules as
``tests.<module>`` so the relative ``from .conftest import ...`` helper
imports resolve regardless of how pytest is invoked.
"""
