"""Cluster topology tests."""

import pytest

from repro.cluster import (
    EFA_400G,
    NVSWITCH,
    ClusterSpec,
    LinkSpec,
    p4de_cluster,
    single_node,
)
from repro.errors import ConfigurationError


def test_world_size_and_ranking():
    c = p4de_cluster(2)
    assert c.world_size == 16
    assert c.machine_of(0) == 0
    assert c.machine_of(7) == 0
    assert c.machine_of(8) == 1
    d = c.device(9)
    assert (d.machine, d.local_rank) == (1, 1)
    assert len(c.devices()) == 16


def test_same_machine():
    c = p4de_cluster(2)
    assert c.same_machine(0, 7)
    assert not c.same_machine(7, 8)


def test_link_selection():
    c = p4de_cluster(2)
    assert c.link(0, 1) is NVSWITCH
    assert c.link(0, 8) is EFA_400G
    # Self link has zero latency.
    self_link = c.link(3, 3)
    assert self_link.latency == 0.0


def test_p2p_time():
    c = single_node(8)
    t = c.p2p_time_ms(0, 1, 600e6)  # 600 MB over 600e6 B/ms NVSwitch
    assert t == pytest.approx(NVSWITCH.latency + 1.0)


def test_group_link_bottleneck():
    c = p4de_cluster(2)
    assert c.group_link(range(8)) is NVSWITCH
    assert c.group_link(range(16)) is EFA_400G
    assert c.spans_machines(range(16))
    assert not c.spans_machines(range(8))


def test_rank_validation():
    c = single_node(4)
    with pytest.raises(ConfigurationError):
        c.device(4)
    with pytest.raises(ConfigurationError):
        c.machine_of(-1)
    with pytest.raises(ConfigurationError):
        c.group_link([])


def test_link_validation():
    with pytest.raises(ConfigurationError):
        LinkSpec(bandwidth=0, latency=0)
    with pytest.raises(ConfigurationError):
        LinkSpec(bandwidth=1, latency=-1)
    with pytest.raises(ConfigurationError):
        NVSWITCH.transfer_time_ms(-5)


def test_cluster_validation():
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_machines=0)
