"""Cluster topology tests."""

import pytest

from repro.cluster import (
    EFA_400G,
    NVSWITCH,
    ClusterSpec,
    LinkSpec,
    p4de_cluster,
    single_node,
)
from repro.errors import ConfigurationError


def test_world_size_and_ranking():
    c = p4de_cluster(2)
    assert c.world_size == 16
    assert c.machine_of(0) == 0
    assert c.machine_of(7) == 0
    assert c.machine_of(8) == 1
    d = c.device(9)
    assert (d.machine, d.local_rank) == (1, 1)
    assert len(c.devices()) == 16


def test_same_machine():
    c = p4de_cluster(2)
    assert c.same_machine(0, 7)
    assert not c.same_machine(7, 8)


def test_link_selection():
    c = p4de_cluster(2)
    assert c.link(0, 1) is NVSWITCH
    assert c.link(0, 8) is EFA_400G
    # Self link has zero latency.
    self_link = c.link(3, 3)
    assert self_link.latency == 0.0


def test_p2p_time():
    c = single_node(8)
    t = c.p2p_time_ms(0, 1, 600e6)  # 600 MB over 600e6 B/ms NVSwitch
    assert t == pytest.approx(NVSWITCH.latency + 1.0)


def test_group_link_bottleneck():
    c = p4de_cluster(2)
    assert c.group_link(range(8)) is NVSWITCH
    assert c.group_link(range(16)) is EFA_400G
    assert c.spans_machines(range(16))
    assert not c.spans_machines(range(8))


def test_rank_validation():
    c = single_node(4)
    with pytest.raises(ConfigurationError):
        c.device(4)
    with pytest.raises(ConfigurationError):
        c.machine_of(-1)
    with pytest.raises(ConfigurationError):
        c.group_link([])


def test_link_validation():
    with pytest.raises(ConfigurationError):
        LinkSpec(bandwidth=0, latency=0)
    with pytest.raises(ConfigurationError):
        LinkSpec(bandwidth=1, latency=-1)
    with pytest.raises(ConfigurationError):
        NVSWITCH.transfer_time_ms(-5)


def test_cluster_validation():
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_machines=0)


# -- heterogeneity overrides --------------------------------------------------


def test_speed_factor_overrides():
    c = single_node(4, speed_factors={1: 0.5, 3: 2.0})
    assert not c.homogeneous
    assert c.speed_factor(0) == 1.0
    assert c.speed_factor(1) == 0.5
    assert c.speed_factor(3) == 2.0
    assert c.group_speed_factor([0, 1]) == 0.5
    assert c.group_speed_factor([0, 3]) == 1.0
    assert c.device(1).speed_factor == 0.5
    assert c.device(1).scaled_time_ms(10.0) == 20.0
    with pytest.raises(ConfigurationError):
        single_node(4, speed_factors={1: 0.0})
    with pytest.raises(ConfigurationError):
        single_node(4, speed_factors={7: 0.5})


def test_identity_overrides_canonicalise_away():
    """A no-op override map compares (and hashes) equal to homogeneous."""
    base = single_node(4)
    noop = single_node(4, speed_factors={2: 1.0})
    assert noop.homogeneous
    assert noop == base
    assert hash(noop) == hash(base)
    # Same for a device_specs entry repeating the base spec and a link
    # override repeating the default link.
    from repro.cluster import a100_80gb

    assert ClusterSpec(
        num_machines=1, devices_per_machine=4, device_specs={0: a100_80gb()}
    ) == ClusterSpec(num_machines=1, devices_per_machine=4)
    assert ClusterSpec(
        num_machines=2, link_overrides={(0, 1): EFA_400G}
    ) == ClusterSpec(num_machines=2)
    # A real override is a different cluster.
    assert single_node(4, speed_factors={2: 0.5}) != base
    assert hash(single_node(4, speed_factors={2: 0.5})) != hash(base)


def test_speed_factor_map_order_is_canonical():
    a = single_node(4, speed_factors={1: 0.5, 3: 0.75})
    b = single_node(4, speed_factors={3: 0.75, 1: 0.5})
    assert a == b
    assert hash(a) == hash(b)


def test_device_spec_overrides():
    from repro.cluster import v100_32gb

    old = v100_32gb()
    c = single_node(4, device_spec=None)
    het = ClusterSpec(
        num_machines=1, devices_per_machine=4, device_specs={2: old}
    )
    assert het.device_spec_of(0) == c.device_spec
    assert het.device_spec_of(2) == old
    assert het.device(2).spec.name == "V100-32GB"
    assert het.min_memory_bytes() == old.memory_bytes
    assert c.min_memory_bytes() == c.device_spec.memory_bytes


def test_link_overrides():
    slow = LinkSpec(bandwidth=EFA_400G.bandwidth / 4, latency=0.1)
    c = ClusterSpec(num_machines=3, link_overrides={(1, 2): slow})
    assert not c.homogeneous
    # The overridden pair, queried in either order.
    assert c.machine_pair_link(1, 2) is slow
    assert c.machine_pair_link(2, 1) is slow
    assert c.link(8, 16) is slow
    assert c.link(16, 8) is slow
    # Untouched pairs keep their defaults.
    assert c.link(0, 8) is EFA_400G
    assert c.link(0, 1) is NVSWITCH
    # Group bottleneck picks the narrowest pairwise link.
    assert c.group_link(range(24)) is slow
    assert c.group_link(range(16)) is EFA_400G
    assert c.group_link(range(8)) is NVSWITCH
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_machines=2, link_overrides={(0, 3): slow})


def test_intra_link_override_single_machine():
    slow_intra = LinkSpec(bandwidth=NVSWITCH.bandwidth / 10, latency=0.01)
    c = ClusterSpec(num_machines=2, link_overrides={(1, 1): slow_intra})
    assert c.link(8, 9) is slow_intra
    assert c.link(0, 1) is NVSWITCH
    assert c.group_link(range(8, 16)) is slow_intra
    # Self links take the local machine's (possibly overridden) intra
    # bandwidth at zero latency.
    assert c.link(8, 8).bandwidth == slow_intra.bandwidth
    assert c.link(8, 8).latency == 0.0


def test_homogeneous_fast_path_identity():
    """Without overrides the link accessors return the exact same objects
    as before the heterogeneity fields existed."""
    c = p4de_cluster(2)
    assert c.homogeneous
    assert c.link(0, 1) is NVSWITCH
    assert c.link(0, 8) is EFA_400G
    assert c.group_link(range(8)) is NVSWITCH
    assert c.group_link(range(16)) is EFA_400G
