"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import a100_80gb, single_node
from repro.models.zoo import (
    cascaded_model,
    long_layer_model,
    two_encoder_model,
    uniform_model,
)
from repro.profiling import ProfileDB, Profiler


@pytest.fixture
def device():
    return a100_80gb()


@pytest.fixture
def cluster4():
    return single_node(4)


@pytest.fixture
def cluster8():
    return single_node(8)


@pytest.fixture
def uniform():
    """8 uniform backbone layers @10 ms, 6 encoder layers @4 ms (B=64)."""
    return uniform_model()


@pytest.fixture
def uniform_profile(uniform, cluster8):
    return Profiler(cluster8).profile(uniform)


@pytest.fixture
def two_encoder():
    return two_encoder_model()


@pytest.fixture
def two_encoder_profile(two_encoder, cluster8):
    return Profiler(cluster8).profile(two_encoder)


@pytest.fixture
def cascaded():
    return cascaded_model()


@pytest.fixture
def cascaded_profile(cascaded, cluster8):
    return Profiler(cluster8).profile(cascaded)


@pytest.fixture
def long_layer():
    return long_layer_model()


@pytest.fixture
def long_layer_profile(long_layer, cluster8):
    return Profiler(cluster8).profile(long_layer)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_synthetic_db(
    backbone_times=((10.0, 20.0),) * 8,
    encoder_times=((4.0, 0.0),) * 6,
    batches=(1.0, 64.0),
) -> ProfileDB:
    """A hand-built ProfileDB: 'backbone' trainable + 'encoder' frozen."""
    return ProfileDB.from_layer_times(
        {"backbone": list(backbone_times), "encoder": list(encoder_times)},
        batches=batches,
        trainable={"backbone": True, "encoder": False},
    )
