"""Gate: no module-level cache globals may return to ``repro.core``.

The cache-ownership refactor moved every planner memo (``_CHAIN_CACHE``,
``_HET_CACHE``, ``_CDM_CACHE``, ``_CDM_HET_CACHE``, ``_PREFIX_CACHE``,
``_TIMELINE_CACHE``) into :class:`PlannerCaches` fields.  This test
walks the ASTs of every module in ``repro.core`` and fails on any
module-level assignment that smells like a cache store, so a future
change cannot quietly reintroduce process-global warm state outside
the sanctioned :func:`default_caches` singleton.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import repro.core

CORE_DIR = Path(repro.core.__file__).parent

#: module-level names that must not exist: the historical globals were
#: all-caps with a CACHE component (``_TIMELINE_CACHE`` etc.); capacity
#: constants like ``CHAIN_CACHE_MAX_TABLES`` are public and fine.
FORBIDDEN_NAME = re.compile(r"^_[A-Z0-9_]*CACHE[A-Z0-9_]*$")

#: module-level calls that would build a mutable store at import time.
FORBIDDEN_CTORS = {"WeakKeyDictionary", "OrderedDict", "defaultdict"}

#: the one sanctioned module-level store: the lazily-built default
#: PlannerCaches singleton (starts as None, built under a lock).
ALLOWED = {("caches.py", "_default_caches")}


def _assigned_names(node: ast.stmt):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id


def _ctor_name(node: ast.stmt) -> str | None:
    value = getattr(node, "value", None)
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def test_core_has_no_module_level_cache_globals():
    offenders = []
    for path in sorted(CORE_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in tree.body:  # module level only, by construction
            names = list(_assigned_names(node))
            for name in names:
                if (path.name, name) in ALLOWED:
                    continue
                if FORBIDDEN_NAME.match(name):
                    offenders.append(f"{path.name}: {name} (cache-global name)")
            ctor = _ctor_name(node)
            if ctor in FORBIDDEN_CTORS and not any(
                (path.name, n) in ALLOWED for n in names
            ):
                offenders.append(
                    f"{path.name}: module-level {ctor}() store "
                    f"(assigned to {names or '?'})"
                )
    assert not offenders, (
        "module-level cache globals are retired; own state in "
        "PlannerCaches instead:\n  " + "\n  ".join(offenders)
    )


def test_default_caches_is_the_only_module_state():
    """The sanctioned singleton exists, is lazily built, and planners
    constructed without an explicit handle share it."""
    from repro.core import DiffusionPipePlanner, default_caches
    from repro.core.caches import PlannerCaches

    assert isinstance(default_caches(), PlannerCaches)
    assert default_caches() is default_caches()

    from repro.cluster import single_node
    from repro.models.zoo import stable_diffusion_v2_1
    from repro.profiling import Profiler

    model = stable_diffusion_v2_1()
    cluster = single_node(2)
    profile = Profiler(cluster).profile(model)
    a = DiffusionPipePlanner(model, cluster, profile)
    b = DiffusionPipePlanner(model, cluster, profile)
    assert a.caches is default_caches() and b.caches is a.caches
    c = DiffusionPipePlanner(model, cluster, profile, caches=PlannerCaches())
    assert c.caches is not default_caches()
