"""Gate: no module-level cache globals may return to ``repro.core``.

The cache-ownership refactor moved every planner memo (``_CHAIN_CACHE``,
``_HET_CACHE``, ``_CDM_CACHE``, ``_CDM_HET_CACHE``, ``_PREFIX_CACHE``,
``_TIMELINE_CACHE``) into :class:`PlannerCaches` fields.  The AST walk
that used to live here is now the ``cache-globals`` rule of the shared
:mod:`repro.analysis` engine; this test is a thin wrapper so the gate
and ``repro analyze`` can never drift apart.
"""

from __future__ import annotations

from repro.analysis import analyze


def test_core_has_no_module_level_cache_globals():
    findings = analyze(rule_names_=["cache-globals"])
    assert not findings, (
        "module-level cache globals are retired; own state in "
        "PlannerCaches instead:\n  "
        + "\n  ".join(f.format() for f in findings)
    )


def test_gate_runs_through_the_shared_engine():
    """No duplicated AST walker: this module delegates to
    :mod:`repro.analysis` instead of importing :mod:`ast` itself."""
    assert "ast" not in globals()


def test_default_caches_is_the_only_module_state():
    """The sanctioned singleton exists, is lazily built, and planners
    constructed without an explicit handle share it."""
    from repro.core import DiffusionPipePlanner, default_caches
    from repro.core.caches import PlannerCaches

    assert isinstance(default_caches(), PlannerCaches)
    assert default_caches() is default_caches()

    from repro.cluster import single_node
    from repro.models.zoo import stable_diffusion_v2_1
    from repro.profiling import Profiler

    model = stable_diffusion_v2_1()
    cluster = single_node(2)
    profile = Profiler(cluster).profile(model)
    a = DiffusionPipePlanner(model, cluster, profile)
    b = DiffusionPipePlanner(model, cluster, profile)
    assert a.caches is default_caches() and b.caches is a.caches
    c = DiffusionPipePlanner(model, cluster, profile, caches=PlannerCaches())
    assert c.caches is not default_caches()
