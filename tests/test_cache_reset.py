"""Epoch reset of the float-keyed interpolation memos.

`ProfileDB._stage_cache` and each `LayerProfile`'s per-batch
forward/backward memos are plain dicts on the hottest interpolation
path — deliberately without per-hit LRU bookkeeping.  A long-lived
service sweeping unbounded distinct batch values grows them without
bound; `ProfileDB.reset_caches()` (wired into `PlannerCaches.clear`)
is the cheap generation reset that keeps them bounded.
"""

from repro.core import BubbleFiller, PlannerCaches
from repro.core.bubbles import Bubble
from tests.conftest import make_synthetic_db


def _touch(db, batch):
    db.stage_fwd_ms("backbone", 0, 8, batch)
    db.stage_bwd_ms("backbone", 0, 8, batch)
    db.fwd_ms("encoder", 0, batch)


def test_profile_reset_caches_empties_all_memos():
    db = make_synthetic_db()
    for b in range(1, 50):
        _touch(db, float(b))
    layer = db.layer("backbone", 0)
    assert len(db._stage_cache) > 0
    assert len(layer._fwd_cache) > 0
    assert len(layer._bwd_cache) > 0
    db.reset_caches()
    assert len(db._stage_cache) == 0
    for comp in db.components():
        for lp in db.layers(comp):
            assert len(lp._fwd_cache) == 0
            assert len(lp._bwd_cache) == 0
    # Values recompute identically after the reset.
    before = db.stage_fwd_ms("backbone", 0, 8, 17.0)
    db.reset_caches()
    assert db.stage_fwd_ms("backbone", 0, 8, 17.0) == before


def test_long_lived_sweep_stays_bounded_with_epoch_resets():
    """Sweeping distinct batch values grows the memos monotonically;
    a periodic PlannerCaches.clear() keeps the high-water mark at one
    epoch's worth instead of the whole history."""
    db = make_synthetic_db()
    caches = PlannerCaches()
    epoch_size = 100
    high_water = 0
    for epoch in range(4):
        for i in range(epoch_size):
            _touch(db, 1.0 + epoch * epoch_size + i)
        high_water = max(high_water, len(db._stage_cache))
        caches.clear([db])
        assert len(db._stage_cache) == 0
    # Without resets four epochs would have accumulated 4x the entries.
    assert high_water <= 2 * epoch_size + 1


def test_planner_caches_clear_also_drops_prefix_cache():
    from repro.models.zoo import uniform_model
    from repro.cluster import single_node
    from repro.profiling import Profiler

    model = uniform_model()
    profile = Profiler(single_node(8)).profile(model)
    caches = PlannerCaches()
    filler = BubbleFiller(profile, model, batch=64, caches=caches)
    filler.fill(
        [Bubble(start=0.0, end=25.0, devices=(0,), weight=1)],
        leftover_devices=2,
    )
    assert caches.prefixes.entry_count(profile) > 0
    caches.evals.put(("k",), ("v",))
    caches.partition.put(("k",), "v")
    caches.comm.put("k", "v")
    caches.clear([profile])
    assert caches.prefixes.entry_count(profile) == 0
    assert not len(caches.evals)
    assert not len(caches.partition)
    assert not len(caches.comm)
