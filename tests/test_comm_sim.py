"""In-process channel (NCCL stand-in) tests."""

import numpy as np
import pytest

from repro.engine import ChannelSet, allreduce_sum
from repro.errors import EngineError


def test_fifo_ordering():
    ch = ChannelSet()
    a = np.array([1.0])
    b = np.array([2.0])
    ch.send(0, 1, a)
    ch.send(0, 1, b)
    assert ch.recv(0, 1)[0] == 1.0
    assert ch.recv(0, 1)[0] == 2.0
    assert ch.pending() == 0


def test_tags_separate_streams():
    ch = ChannelSet()
    ch.send(0, 1, np.array([1.0]), tag="act")
    ch.send(0, 1, np.array([2.0]), tag="grad")
    assert ch.recv(0, 1, tag="grad")[0] == 2.0
    assert ch.recv(0, 1, tag="act")[0] == 1.0


def test_recv_empty_raises():
    ch = ChannelSet()
    with pytest.raises(EngineError, match="data dependency"):
        ch.recv(0, 1)


def test_send_to_self_rejected():
    ch = ChannelSet()
    with pytest.raises(EngineError):
        ch.send(2, 2, np.zeros(1))


def test_accounting():
    ch = ChannelSet()
    ch.send(0, 1, np.zeros(10))
    ch.send(1, 0, np.zeros(5))
    assert ch.messages_sent == 2
    assert ch.bytes_sent == 15 * 8
    assert ch.pending() == 2


def test_allreduce_sum_exact():
    tensors = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    out = allreduce_sum(tensors)
    assert all(np.array_equal(t, np.array([4.0, 6.0])) for t in out)
    # Outputs are copies, not views of each other.
    out[0][0] = 99.0
    assert out[1][0] == 4.0
    with pytest.raises(EngineError):
        allreduce_sum([])
    with pytest.raises(EngineError):
        allreduce_sum([np.zeros(2), np.zeros(3)])
