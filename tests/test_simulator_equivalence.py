"""Equivalence of the event-driven simulator and the reference engine.

``simulate`` (event-driven, heap-based) must produce *identical*
interval sequences — same tasks, same start/end times, same commit
order — as ``simulate_reference`` (the original full-rescan list
scheduler) on every schedule family the repository builds: FIFO-1F1B,
GPipe, bidirectional, self-conditioning variants, filled schedules with
injected non-trainable work, and planner-produced task graphs over the
model-zoo fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.core.planner import DiffusionPipePlanner, PlannerOptions
from repro.schedule import (
    StageExec,
    Task,
    TaskKind,
    build_1f1b,
    build_bidirectional,
    build_gpipe,
    device_resource,
    simulate,
    simulate_reference,
)
from repro.errors import ScheduleError


def _keys(timeline):
    return [
        (iv.start, iv.end, iv.task.task_id, iv.task.resource)
        for iv in timeline.intervals
    ]


def assert_equivalent(tasks, num_devices, weights=None):
    fast = simulate(tasks, num_devices, weights)
    ref = simulate_reference(tasks, num_devices, weights)
    assert _keys(fast) == _keys(ref)
    assert fast.makespan == ref.makespan
    assert fast.bubble_ratio() == ref.bubble_ratio()
    return fast


UNIFORM = [StageExec(index=i, fwd_ms=10.0, bwd_ms=20.0) for i in range(4)]
SKEWED = [
    StageExec(index=0, fwd_ms=5.0, bwd_ms=9.0, send_fwd_ms=1.0, send_bwd_ms=1.0,
              sync_ms=12.0),
    StageExec(index=1, fwd_ms=20.0, bwd_ms=37.0, send_fwd_ms=2.0, send_bwd_ms=2.0,
              sync_ms=30.0),
    StageExec(index=2, fwd_ms=8.0, bwd_ms=15.0, sync_ms=6.0),
]
REPLICATED = [
    StageExec(index=i, fwd_ms=7.0 + i, bwd_ms=13.0 + 2 * i, send_fwd_ms=0.5,
              send_bwd_ms=0.5, sync_ms=4.0, replicas=2)
    for i in range(2)
]


@pytest.mark.parametrize("stages", [UNIFORM, SKEWED, REPLICATED])
@pytest.mark.parametrize("M", [1, 2, 4, 7])
def test_1f1b_equivalence(stages, M):
    assert_equivalent(build_1f1b(stages, M), len(stages),
                      {i: s.replicas for i, s in enumerate(stages)})


@pytest.mark.parametrize("stages", [UNIFORM, SKEWED])
@pytest.mark.parametrize("M", [1, 3, 6])
def test_gpipe_equivalence(stages, M):
    assert_equivalent(build_gpipe(stages, M), len(stages))


@pytest.mark.parametrize("M", [2, 4])
def test_1f1b_self_conditioning_equivalence(M):
    tasks = build_1f1b(SKEWED, M, self_conditioning=True, feedback_ms=3.5)
    assert_equivalent(tasks, len(SKEWED))


@pytest.mark.parametrize("M", [1, 2, 4])
def test_bidirectional_equivalence(M):
    down = [StageExec(index=i, fwd_ms=10.0 + i, bwd_ms=21.0 - i, sync_ms=5.0,
                      send_fwd_ms=1.0, send_bwd_ms=1.0) for i in range(3)]
    up = [StageExec(index=i, fwd_ms=6.0 + 2 * i, bwd_ms=11.0 + i, sync_ms=4.0,
                    send_fwd_ms=0.7, send_bwd_ms=0.7) for i in range(3)]
    assert_equivalent(build_bidirectional(down, up, M, M), 3)


def test_filled_schedule_equivalence():
    """A 1F1B schedule with non-trainable fill work injected into the
    warm-up/cool-down bubbles (what §5's filling produces)."""
    tasks = list(build_1f1b(UNIFORM, 4))
    bwd_ids = [t.task_id for t in tasks if t.kind == TaskKind.BACKWARD]
    for i in range(3):
        # NT layers on the last device, gated on early backward work.
        tasks.append(
            Task(
                task_id=f"nt{i}",
                resource=device_resource(3),
                duration=4.0,
                deps=(bwd_ids[i],),
                kind=TaskKind.NT_FORWARD,
                priority=(9, i),
                device=3,
            )
        )
    assert_equivalent(tasks, 4)


def test_zero_duration_and_zero_dep_equivalence():
    """Ordering-only tasks (duration 0) and the zero-dependency
    ``default=0.0`` ready-time path behave identically."""
    tasks = [
        Task(task_id="gate", resource="ctl", duration=0.0, priority=(0,)),
        Task(task_id="a", resource=device_resource(0), duration=5.0,
             deps=("gate",), priority=(1,), device=0),
        Task(task_id="b", resource=device_resource(0), duration=0.0,
             deps=("a",), priority=(0,), device=0),
        Task(task_id="c", resource=device_resource(0), duration=3.0,
             priority=(2,), device=0),
    ]
    assert_equivalent(tasks, 1)


def test_work_conserving_dispatch_equivalence():
    """A lower-priority task that is ready earlier must run first on
    both engines (work-conserving FIFO dispatch)."""
    tasks = [
        Task(task_id="early", resource="r", duration=2.0, priority=(5,)),
        Task(task_id="dep", resource="other", duration=1.0, priority=(0,)),
        Task(task_id="late", resource="r", duration=2.0, deps=("dep",),
             priority=(0,)),
    ]
    tl = assert_equivalent(tasks, 1)
    order = [iv.task.task_id for iv in tl.intervals if iv.task.resource == "r"]
    assert order == ["early", "late"]


def test_empty_graph_equivalence():
    assert _keys(simulate([], 2)) == _keys(simulate_reference([], 2)) == []


def test_cycle_raises_on_both_engines():
    tasks = [
        Task(task_id="a", resource="r", duration=1.0, deps=("b",)),
        Task(task_id="b", resource="r", duration=1.0, deps=("a",)),
    ]
    with pytest.raises(ScheduleError):
        simulate(tasks, 1)
    with pytest.raises(ScheduleError):
        simulate_reference(tasks, 1)


def test_planner_schedules_equivalence(uniform, uniform_profile, cluster8):
    """Planner-built task graphs over the zoo fixtures (real comm/sync
    times) simulate identically on both engines."""
    planner = DiffusionPipePlanner(
        uniform, cluster8, uniform_profile,
        options=PlannerOptions(max_stages=4, check_memory=False),
    )
    for S, M in [(2, 2), (2, 4), (4, 4), (4, 8)]:
        partition = planner._partition(64.0, S, S, M)
        stages = planner._stage_execs(partition.down, 64.0 / M, sc=False)
        assert_equivalent(build_1f1b(stages, M), S)


def _random_dag(rng, n, num_resources=5, max_deps=3):
    tasks = []
    for i in range(n):
        ndeps = rng.randint(0, min(max_deps, i))
        deps = tuple(rng.sample([f"t{j}" for j in range(i)], ndeps))
        tasks.append(
            Task(
                task_id=f"t{i}",
                resource=f"r{rng.randrange(num_resources)}",
                duration=rng.choice(
                    [0.0, float(rng.randint(1, 4)), rng.uniform(0.1, 9.0)]
                ),
                deps=deps,
                priority=(rng.randint(0, 3), rng.randint(0, 3)),
            )
        )
    return tasks


def test_randomized_dag_equivalence():
    """Seeded random DAG stress: mixed resources, priorities, zero
    durations, fan-in/fan-out dependencies."""
    rng = random.Random(1234)
    for _ in range(150):
        assert_equivalent(_random_dag(rng, rng.randint(1, 50)), 1)


def test_randomized_dag_equivalence_large():
    """~10x larger seeded DAGs — tractable because the reference engine
    keeps an incremental ready-set (cached per-resource candidates)
    instead of rescanning every ready task per commit."""
    rng = random.Random(99)
    for _ in range(8):
        n = rng.randint(300, 500)
        tasks = _random_dag(rng, n, num_resources=8, max_deps=4)
        assert_equivalent(tasks, 1)
