"""CLI tests."""

import json

import pytest

from repro.cli import main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "stable-diffusion-v2.1" in out
    assert "cdm-lsun" in out
    assert "dit-xl-pixart" in out


def test_plan_command(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    trace_path = tmp_path / "trace.json"
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "256",
        "--out", str(plan_path), "--trace", str(trace_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "bubble ratio" in out
    plan = json.loads(plan_path.read_text())
    assert plan["model_name"] == "stable-diffusion-v2.1"
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--model", "controlnet", "--gpus", "8",
        "--batches", "64", "128",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "DiffusionPipe" in out
    assert "GPipe" in out
    assert "DeepSpeed" in out


def test_table_commands(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["plan", "--model", "gpt5"])


def test_bad_gpu_count():
    with pytest.raises(SystemExit):
        main(["plan", "--model", "sd", "--gpus", "1"])
    with pytest.raises(SystemExit):
        # Beyond one machine the world must tile p4de nodes.
        main(["plan", "--model", "sd", "--gpus", "12"])


def test_group_size_menu_respects_machine_boundaries():
    """Pipeline groups are contiguous rank blocks, so the menu may only
    offer sizes that tile a machine: on multi-machine p4de worlds a
    D=3/D=6 group would straddle the inter-node link while being priced
    off the first (intra-node) group."""
    from repro.cli import _build_cluster, _group_sizes

    assert _group_sizes(_build_cluster(8)) == (2, 4, 8)
    assert _group_sizes(_build_cluster(16)) == (2, 4, 8)
    assert _group_sizes(_build_cluster(24)) == (2, 4, 8)  # not 3, 6
    # Single node: every divisor stays on the one machine.
    assert _group_sizes(_build_cluster(6)) == (2, 3, 6)


def test_plan_heterogeneous_cdm_non_divisible(capsys):
    """The acceptance path: a cdm-* model on a non-divisible cluster
    (D=6, up to 4 chain positions) plans end to end with
    --heterogeneous instead of exiting."""
    rc = main([
        "plan", "--model", "cdm-lsun", "--gpus", "6", "--batch", "96",
        "--heterogeneous",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "S=" in out and "D=" in out
    assert "throughput" in out


def test_plan_speed_factors_flag(capsys):
    """--speed-factors builds a heterogeneous cluster and the planner
    prices the slow device: the plan is valid but strictly slower than
    the homogeneous one."""
    assert main(["plan", "--model", "sd", "--gpus", "6", "--batch", "96"]) == 0
    plain = capsys.readouterr().out
    rc = main([
        "plan", "--model", "sd", "--gpus", "6", "--batch", "96",
        "--speed-factors", "0=0.5",
    ])
    assert rc == 0
    slow = capsys.readouterr().out

    def iteration_ms(out):
        row = next(l for l in out.splitlines() if "iteration" in l)
        return float(row.split("|")[1].strip().split()[0])

    assert iteration_ms(slow) > iteration_ms(plain)


def test_sweep_speed_factors_flag(capsys):
    rc = main([
        "sweep", "--model", "sd", "--gpus", "6", "--batches", "96",
        "--speed-factors", "1=0.5",
    ])
    assert rc == 0
    assert "DiffusionPipe" in capsys.readouterr().out


def test_bad_speed_factors_rejected():
    with pytest.raises(SystemExit, match="RANK=FACTOR"):
        main(["plan", "--gpus", "6", "--speed-factors", "half"])
    with pytest.raises(SystemExit, match="invalid --speed-factors"):
        # Rank 9 is out of range on a 6-device world.
        main(["plan", "--gpus", "6", "--speed-factors", "9=0.5"])
    with pytest.raises(SystemExit, match="invalid --speed-factors"):
        main(["plan", "--gpus", "6", "--speed-factors", "0=-1.0"])


def test_plan_fill_strategy_flag(capsys, tmp_path):
    """--fill-strategy threads the registry name through the planner and
    surfaces the fill telemetry rows."""
    plan_path = tmp_path / "plan.json"
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
        "--fill-strategy", "lookahead", "--out", str(plan_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fill strategy" in out
    assert "lookahead" in out
    assert "bubbles filled" in out
    plan = json.loads(plan_path.read_text())
    assert plan["fill"]["strategy"] == "lookahead"
    assert "candidates_dropped" in plan["fill"]
    assert plan["fill"]["per_bubble"]


def test_plan_lookahead_beam_flag(capsys, tmp_path):
    """--lookahead-beam threads into PlannerOptions; the exported plan
    carries the search telemetry and the table surfaces it."""
    plan_path = tmp_path / "plan.json"
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
        "--fill-strategy", "lookahead", "--lookahead-beam", "8",
        "--out", str(plan_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lookahead" in out
    plan = json.loads(plan_path.read_text())
    assert plan["fill"]["strategy"] == "lookahead"
    assert "states_pruned" in plan["fill"]
    assert "beam_peak" in plan["fill"]
    if plan["fill"]["beam_peak"]:
        assert "beam peak" in out and "states pruned" in out


def test_plan_lookahead_beam_rejects_nonpositive():
    rc = None
    try:
        rc = main([
            "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
            "--fill-strategy", "lookahead", "--lookahead-beam", "0",
        ])
    except Exception:
        return  # ConfigurationError surfaced — also acceptable
    assert rc != 0


def test_plan_fill_strategy_reference(capsys):
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
        "--fill-strategy", "lookahead_reference",
    ])
    assert rc == 0
    assert "lookahead_reference" in capsys.readouterr().out


def test_plan_fill_strategy_none(capsys):
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
        "--fill-strategy", "none",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "none" in out


def test_fill_strategy_rejects_unknown():
    with pytest.raises(SystemExit):
        main([
            "plan", "--model", "sd", "--gpus", "8", "--batch", "64",
            "--fill-strategy", "psychic",
        ])
