"""CLI tests."""

import json

import pytest

from repro.cli import main


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "stable-diffusion-v2.1" in out
    assert "cdm-lsun" in out
    assert "dit-xl-pixart" in out


def test_plan_command(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    trace_path = tmp_path / "trace.json"
    rc = main([
        "plan", "--model", "sd", "--gpus", "8", "--batch", "256",
        "--out", str(plan_path), "--trace", str(trace_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "bubble ratio" in out
    plan = json.loads(plan_path.read_text())
    assert plan["model_name"] == "stable-diffusion-v2.1"
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--model", "controlnet", "--gpus", "8",
        "--batches", "64", "128",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "DiffusionPipe" in out
    assert "GPipe" in out
    assert "DeepSpeed" in out


def test_table_commands(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["plan", "--model", "gpt5"])


def test_bad_gpu_count():
    with pytest.raises(SystemExit):
        main(["plan", "--model", "sd", "--gpus", "12"])
