"""Instruction-lowering tests (Fig. 7 step 6)."""

import pytest

from repro.core import FillItem, Op, format_streams, lower_timeline
from repro.errors import ScheduleError
from repro.schedule import StageExec, build_1f1b, simulate


def _timeline(S=2, M=2, sync=5.0):
    stages = [
        StageExec(index=i, fwd_ms=10, bwd_ms=20, send_fwd_ms=1,
                  send_bwd_ms=1, sync_ms=sync)
        for i in range(S)
    ]
    return simulate(build_1f1b(stages, M), S)


def test_lowering_produces_per_device_streams():
    tl = _timeline()
    streams = lower_timeline(tl)
    assert set(streams) == {0, 1}
    for dev, stream in streams.items():
        ops = [i.op for i in stream]
        assert ops.count(Op.FORWARD) == 2
        assert ops.count(Op.BACKWARD) == 2
        assert Op.ALLREDUCE_GRADS in ops
        # Optimiser step closes the stream.
        assert ops[-1] == Op.OPTIMIZER_STEP


def test_comm_becomes_send_recv_pairs():
    tl = _timeline()
    streams = lower_timeline(tl)
    sends = [i for i in streams[0] if i.op == Op.SEND and i.args.get("dir") == "fwd"]
    recvs = [i for i in streams[1] if i.op == Op.RECV and i.args.get("dir") == "fwd"]
    assert len(sends) == len(recvs) == 2
    assert all(s.args["peer"] == 1 for s in sends)
    assert all(r.args["peer"] == 0 for r in recvs)


def test_instruction_order_matches_execution():
    tl = _timeline()
    streams = lower_timeline(tl)
    # On device 0: both forwards precede the first backward (warm-up).
    ops0 = [i.op for i in streams[0] if i.op in (Op.FORWARD, Op.BACKWARD)]
    assert ops0[:2] == [Op.FORWARD, Op.FORWARD]


def test_fill_items_lowered_to_nt_forward():
    tl = _timeline()
    items = [FillItem("enc", 3, 32.0, 5.0, bubble_index=0, partial=True)]
    bubbles = {0: (12.0, (1,))}
    streams = lower_timeline(tl, items, bubbles)
    nt = [i for i in streams[1] if i.op == Op.NT_FORWARD]
    assert len(nt) == 1
    assert nt[0].args["component"] == "enc"
    assert nt[0].args["samples"] == 32.0


def test_fill_items_require_bubble_metadata():
    tl = _timeline()
    items = [FillItem("enc", 0, 32.0, 5.0, bubble_index=7)]
    with pytest.raises(ScheduleError):
        lower_timeline(tl, items, None)
    with pytest.raises(ScheduleError):
        lower_timeline(tl, items, {0: (0.0, (0,))})  # bubble 7 unknown


def test_format_streams_renders():
    tl = _timeline()
    text = format_streams(lower_timeline(tl))
    assert "device 0:" in text
    assert "forward" in text
    assert "allreduce_grads" in text
