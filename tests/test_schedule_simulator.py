"""Discrete-event simulator tests."""

import pytest

from repro.errors import ScheduleError
from repro.schedule import Task, TaskKind, device_resource, simulate
from repro.schedule.tasks import link_resource, validate_task_graph


def _t(tid, res, dur, deps=(), prio=(), dev=None, kind=TaskKind.OTHER):
    return Task(
        task_id=tid, resource=res, duration=dur, deps=tuple(deps),
        kind=kind, priority=prio, device=dev,
    )


def test_sequential_dependency_chain():
    tasks = [
        _t("a", device_resource(0), 5, dev=0),
        _t("b", device_resource(0), 3, deps=["a"], dev=0),
        _t("c", device_resource(1), 2, deps=["b"], dev=1),
    ]
    tl = simulate(tasks, 2)
    assert tl.makespan == 10
    ends = {iv.task.task_id: iv.end for iv in tl.intervals}
    assert ends == {"a": 5, "b": 8, "c": 10}


def test_resource_serialisation():
    tasks = [
        _t("a", device_resource(0), 5, dev=0),
        _t("b", device_resource(0), 5, dev=0),
    ]
    tl = simulate(tasks, 1)
    assert tl.makespan == 10


def test_parallel_resources():
    tasks = [
        _t("a", device_resource(0), 5, dev=0),
        _t("b", device_resource(1), 5, dev=1),
    ]
    tl = simulate(tasks, 2)
    assert tl.makespan == 5


def test_priority_breaks_ties():
    tasks = [
        _t("lo", device_resource(0), 1, prio=(1,), dev=0),
        _t("hi", device_resource(0), 1, prio=(0,), dev=0),
    ]
    tl = simulate(tasks, 1)
    starts = {iv.task.task_id: iv.start for iv in tl.intervals}
    assert starts["hi"] == 0
    assert starts["lo"] == 1


def test_work_conserving_dispatch():
    """A lower-priority task that is ready earlier runs first: priority
    must not starve the resource."""
    tasks = [
        _t("gate", device_resource(1), 10, dev=1),
        # hi becomes ready only at t=10; lo is ready at t=0.
        _t("hi", device_resource(0), 1, deps=["gate"], prio=(0,), dev=0),
        _t("lo", device_resource(0), 4, prio=(5,), dev=0),
    ]
    tl = simulate(tasks, 2)
    starts = {iv.task.task_id: iv.start for iv in tl.intervals}
    assert starts["lo"] == 0
    assert starts["hi"] == 10


def test_cycle_detection():
    tasks = [
        _t("a", device_resource(0), 1, deps=["b"]),
        _t("b", device_resource(0), 1, deps=["a"]),
    ]
    with pytest.raises(ScheduleError, match="cycle"):
        simulate(tasks, 1)


def test_unknown_dependency_rejected():
    with pytest.raises(ScheduleError, match="unknown"):
        simulate([_t("a", device_resource(0), 1, deps=["ghost"])], 1)


def test_duplicate_ids_rejected():
    tasks = [_t("a", device_resource(0), 1), _t("a", device_resource(0), 1)]
    with pytest.raises(ScheduleError, match="duplicate"):
        simulate(tasks, 1)


def test_zero_duration_tasks():
    tasks = [
        _t("a", device_resource(0), 0, dev=0),
        _t("b", device_resource(0), 5, deps=["a"], dev=0),
    ]
    tl = simulate(tasks, 1)
    assert tl.makespan == 5


def test_empty_graph():
    tl = simulate([], 2)
    assert tl.makespan == 0.0
    assert tl.bubble_ratio() == 0.0


def test_comm_on_links_does_not_block_devices():
    tasks = [
        _t("f0", device_resource(0), 5, dev=0),
        _t("c", link_resource(0, 1), 3, deps=["f0"], kind=TaskKind.COMM),
        _t("f0b", device_resource(0), 5, deps=["f0"], dev=0),
        _t("f1", device_resource(1), 5, deps=["c"], dev=1),
    ]
    tl = simulate(tasks, 2)
    ends = {iv.task.task_id: iv.end for iv in tl.intervals}
    # Device 0 continues while the transfer is in flight.
    assert ends["f0b"] == 10
    assert ends["f1"] == 13


def test_validate_task_graph_self_dependency():
    with pytest.raises(ScheduleError):
        Task(task_id="a", resource="r", duration=1, deps=("a",))
    with pytest.raises(ScheduleError):
        Task(task_id="a", resource="r", duration=-1)
    by_id = validate_task_graph([_t("a", "r", 1)])
    assert set(by_id) == {"a"}
