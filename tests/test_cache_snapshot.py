"""Snapshot/restore of :class:`PlannerCaches`.

The on-disk format re-keys weak profile references by content
fingerprint, so a snapshot taken in one process restores onto a
*freshly re-profiled* model in another.  These tests cover the
round trip (counts, warm hits, identical plans), the subset/skip
semantics, and rejection of unknown versions and foreign files.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cluster import single_node
from repro.core import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from repro.core.caches import SNAPSHOT_MAGIC
from repro.errors import SnapshotError
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler

OPTIONS = PlannerOptions(group_sizes=(2,), micro_batch_counts=(1, 2, 4))
BATCHES = (32, 64)


def _warm_sweep(caches, profile, model, cluster):
    planner = DiffusionPipePlanner(
        model, cluster, profile, options=OPTIONS, caches=caches
    )
    return {b: planner.plan(b).plan for b in BATCHES}


def test_snapshot_round_trip_onto_fresh_profile(tmp_path):
    model = stable_diffusion_v2_1()
    cluster = single_node(2)
    profile = Profiler(cluster).profile(model)

    warm = PlannerCaches()
    plans = _warm_sweep(warm, profile, model, cluster)
    path = tmp_path / "caches.snap"
    written = warm.snapshot(path)
    assert written["chains"] > 0 and written["prefixes"] > 0
    assert written["timelines"] > 0

    # Fresh process simulation: new caches, freshly re-profiled model.
    fresh_profile = Profiler(cluster).profile(model)
    assert fresh_profile is not profile
    assert fresh_profile.fingerprint() == profile.fingerprint()
    cold = PlannerCaches()
    restored = cold.load(path, [fresh_profile])
    assert restored["chains"] == written["chains"]
    assert restored["prefixes"] == written["prefixes"]
    assert restored["timelines"] == written["timelines"]
    assert restored["skipped"] == 0

    replay = _warm_sweep(cold, fresh_profile, model, cluster)
    assert replay == plans, "snapshot-warmed plans must be bit-identical"
    stats = cold.stats()
    assert stats.store("chains").hits > 0
    assert stats.store("timelines").hits > 0
    assert stats.store("timelines").misses == 0, (
        "every simulation should replay from the restored memo"
    )


def test_snapshot_skips_unknown_profiles(tmp_path):
    model = stable_diffusion_v2_1()
    cluster = single_node(2)
    profile = Profiler(cluster).profile(model)
    warm = PlannerCaches()
    _warm_sweep(warm, profile, model, cluster)
    path = tmp_path / "caches.snap"
    written = warm.snapshot(path, include_timelines=False)

    other = PlannerCaches()
    counts = other.load(path, [])  # no live profiles at all
    assert counts["skipped"] >= written["chains"] + written["prefixes"]
    assert counts["chains"] == 0 and other.prefixes.entry_count() == 0


def test_snapshot_rejects_unknown_version(tmp_path):
    path = tmp_path / "future.snap"
    with open(path, "wb") as fh:
        pickle.dump(
            {"magic": SNAPSHOT_MAGIC, "version": 999, "stores": {}}, fh
        )
    with pytest.raises(SnapshotError, match="version 999"):
        PlannerCaches().load(path, [])


def test_snapshot_rejects_foreign_files(tmp_path):
    not_a_snapshot = tmp_path / "other.pkl"
    with open(not_a_snapshot, "wb") as fh:
        pickle.dump({"magic": "something-else"}, fh)
    with pytest.raises(SnapshotError, match="bad magic"):
        PlannerCaches().load(not_a_snapshot, [])

    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"\x00\x01\x02 this is not a pickle")
    with pytest.raises(SnapshotError, match="cannot read"):
        PlannerCaches().load(garbage, [])

    with pytest.raises(SnapshotError, match="cannot read"):
        PlannerCaches().load(tmp_path / "does-not-exist", [])
