"""Differential tests of the array DP kernels against their oracles.

The vectorized table builders of :mod:`repro.core.partition_kernels`
promise *bit-identical* outputs to the pure-Python ``*_reference``
folds they replaced — same max/+ compositions, same associativity, same
tie-breaking, exact float equality.  This suite fuzzes (L, S, D, layer
costs) with hypothesis and compares the full frontier tables, the
feedback times and the backtracked plans across all three pricing
modes (default, self-conditioning, zero-bubble) and both CDM flavours
(uniform ``fixed_r`` and heterogeneous), plus the capped-fold replay
engine in isolation.  Comparisons are exact: every float is checked by
``.hex()``, entry order included.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.collectives import CommCosts
from repro.core.caches import PlannerCaches
from repro.core.partition import (
    PartitionContext,
    _chain_frontiers,
    _het_frontiers,
    partition_backbone,
)
from repro.core.partition_cdm import (
    CDMPartitionContext,
    _cdm_frontiers,
    _cdm_het_frontiers,
    partition_cdm,
)
from repro.core import partition_kernels as pk
from repro.profiling import ProfileDB

FAST = CommCosts(bandwidth=6e8, latency=0.005)

layer_times = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=100.0),
    ),
    min_size=4,
    max_size=10,
)

#: (self_conditioning, pricing) — the three table flavours of the
#: single-backbone DPs
PRICINGS = [(False, "default"), (True, "default"), (False, "zerobubble")]


def _ctx(times, sc=False, pricing="default", M=2):
    db = ProfileDB.from_layer_times(
        {"bb": list(times)}, batches=(1.0, 64.0), trainable={"bb": True}
    )
    return PartitionContext(
        profile=db, component="bb", batch_per_group=64.0,
        num_micro_batches=M, p2p=FAST, allreduce=FAST,
        self_conditioning=sc, pricing=pricing,
    )


def _assert_cells_identical(ref_cell, arr_cell, where):
    assert len(ref_cell) == len(arr_cell), where
    for e_ref, e_arr in zip(ref_cell, arr_cell):
        assert len(e_ref) == len(e_arr), where
        for v_ref, v_arr in zip(e_ref, e_arr):
            if isinstance(v_ref, float):
                assert float(v_ref).hex() == float(v_arr).hex(), (
                    where, e_ref, e_arr,
                )
            else:
                assert v_ref == v_arr, (where, e_ref, e_arr)


def _assert_chain_identical(h_ref, h_arr):
    assert len(h_ref) == len(h_arr)
    for s, (row_ref, row_arr) in enumerate(zip(h_ref, h_arr)):
        assert len(row_ref) == len(row_arr)
        for l, (c_ref, c_arr) in enumerate(zip(row_ref, row_arr)):
            _assert_cells_identical(c_ref, c_arr, (s, l))


def _assert_dicts_identical(h_ref, h_arr):
    assert len(h_ref) == len(h_arr)
    for s, (d_ref, d_arr) in enumerate(zip(h_ref, h_arr)):
        # Key *order* matters: downstream selection iterates the dicts.
        assert list(d_ref.keys()) == list(d_arr.keys()), s
        for k in d_ref:
            _assert_cells_identical(d_ref[k], d_arr[k], (s, k))


# ---------------------------------------------------------------------------
# Chain DP
# ---------------------------------------------------------------------------


@given(
    layer_times,
    st.integers(min_value=2, max_value=4),
    st.sampled_from(PRICINGS),
)
@settings(max_examples=40, deadline=None)
def test_chain_table_differential(times, S, mode):
    if S > len(times):
        return
    sc, pricing = mode
    ctx = _ctx(times, sc=sc, pricing=pricing)
    L = len(times)
    h_ref, tf_ref = _chain_frontiers(
        ctx, 2, L, S, PlannerCaches(), dp_kernel="reference"
    )
    h_arr, tf_arr = _chain_frontiers(
        ctx, 2, L, S, PlannerCaches(), dp_kernel="array"
    )
    assert float(tf_ref).hex() == float(tf_arr).hex()
    _assert_chain_identical(h_ref, h_arr)


@given(layer_times, st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_chain_backtracked_plan_differential(times, S):
    if S > len(times):
        return
    ctx = _ctx(times)
    ref = partition_backbone(
        ctx, S, S, caches=PlannerCaches(), dp_kernel="reference"
    )
    arr = partition_backbone(
        ctx, S, S, caches=PlannerCaches(), dp_kernel="array"
    )
    assert ref == arr
    assert float(ref.t_max_ms).hex() == float(arr.t_max_ms).hex()
    assert float(ref.w_ms).hex() == float(arr.w_ms).hex()


# ---------------------------------------------------------------------------
# Heterogeneous 1F1B DP
# ---------------------------------------------------------------------------


@given(
    layer_times,
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(PRICINGS),
)
@settings(max_examples=40, deadline=None)
def test_het_table_differential(times, S, extra, mode):
    if S > len(times):
        return
    sc, pricing = mode
    D = S + extra  # covers divisible and non-divisible device counts
    ctx = _ctx(times, sc=sc, pricing=pricing)
    L = len(times)
    h_ref, tf_ref = _het_frontiers(
        ctx, L, S, D, PlannerCaches(), dp_kernel="reference"
    )
    h_arr, tf_arr = _het_frontiers(
        ctx, L, S, D, PlannerCaches(), dp_kernel="array"
    )
    assert set(tf_ref) == set(tf_arr)
    for r in tf_ref:
        assert float(tf_ref[r]).hex() == float(tf_arr[r]).hex()
    _assert_dicts_identical(h_ref, h_arr)


@given(layer_times, st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_het_backtracked_plan_differential(times, S):
    if S > len(times):
        return
    ctx = _ctx(times)
    D = S + 1
    ref = partition_backbone(
        ctx, S, D, heterogeneous=True, caches=PlannerCaches(),
        dp_kernel="reference",
    )
    arr = partition_backbone(
        ctx, S, D, heterogeneous=True, caches=PlannerCaches(),
        dp_kernel="array",
    )
    assert ref == arr
    assert float(ref.t_max_ms).hex() == float(arr.t_max_ms).hex()


# ---------------------------------------------------------------------------
# CDM DP, both flavours
# ---------------------------------------------------------------------------


def _cdm_ctx(down_times, up_times, M=2):
    db = ProfileDB.from_layer_times(
        {"down": list(down_times), "up": list(up_times)},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )
    mk = lambda comp: PartitionContext(  # noqa: E731
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=M, p2p=FAST, allreduce=FAST,
    )
    return CDMPartitionContext(down=mk("down"), up=mk("up"))


@given(
    layer_times,
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.sampled_from([1, 2]),
    st.sampled_from([2, 8]),
)
@settings(max_examples=30, deadline=None)
def test_cdm_uniform_table_differential(dts, uts, S, cut_step, mf):
    if S > min(len(dts), len(uts)):
        return
    ctx = _cdm_ctx(dts, uts)
    ld, lu = len(dts), len(uts)
    f_ref = _cdm_frontiers(
        ctx, S, 2, PlannerCaches(), cut_step=cut_step, max_frontier=mf,
        ld=ld, lu=lu, dp_kernel="reference",
    )
    f_arr = _cdm_frontiers(
        ctx, S, 2, PlannerCaches(), cut_step=cut_step, max_frontier=mf,
        ld=ld, lu=lu, dp_kernel="array",
    )
    _assert_dicts_identical(f_ref, f_arr)


@given(
    layer_times,
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.sampled_from([1, 2]),
    st.sampled_from([2, 8]),
)
@settings(max_examples=30, deadline=None)
def test_cdm_het_table_differential(dts, uts, S, extra, cut_step, mf):
    if S > min(len(dts), len(uts)):
        return
    ctx = _cdm_ctx(dts, uts)
    ld, lu = len(dts), len(uts)
    D = S + extra
    f_ref = _cdm_het_frontiers(
        ctx, S, D, PlannerCaches(), cut_step=cut_step, max_frontier=mf,
        ld=ld, lu=lu, dp_kernel="reference",
    )
    f_arr = _cdm_het_frontiers(
        ctx, S, D, PlannerCaches(), cut_step=cut_step, max_frontier=mf,
        ld=ld, lu=lu, dp_kernel="array",
    )
    _assert_dicts_identical(f_ref, f_arr)


@given(
    layer_times,
    layer_times,
    st.integers(min_value=2, max_value=3),
    st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_cdm_backtracked_plan_differential(dts, uts, S, het):
    if S > min(len(dts), len(uts)):
        return
    ctx = _cdm_ctx(dts, uts)
    D = S + 1 if het else S * 2
    ref = partition_cdm(
        ctx, S, D, heterogeneous=het, caches=PlannerCaches(),
        dp_kernel="reference",
    )
    arr = partition_cdm(
        ctx, S, D, heterogeneous=het, caches=PlannerCaches(),
        dp_kernel="array",
    )
    assert ref == arr
    assert float(ref.t_max_ms).hex() == float(arr.t_max_ms).hex()


# ---------------------------------------------------------------------------
# Capped-fold replay engine
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=6),
    st.sampled_from([1, 2, 4]),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_lockstep_fold_matches_reference(seed, n_targets, max_batches,
                                         cap, force_lockstep):
    """``_lockstep_fold`` replays the capped fold bit-identically to
    ``_fold_reference`` for every target, on both sides of its hybrid
    cost-model split (forced all-lockstep vs the default, which sends
    small instances to the python fold)."""
    rng = random.Random(seed)
    w, y, bidx, pil, seg_of = [], [], [], [], []
    per_target = []
    gb = 0
    for t in range(n_targets):
        rows, batches = [], []
        arrivals = 0
        for _ in range(rng.randint(1, max_batches)):
            for _ in range(rng.randint(1, 5)):
                # Continuous draws: candidate values are a.s. distinct,
                # matching the production stream (the upstream Pareto
                # screen never emits equal-valued same-batch mates).
                w.append(rng.random() * 100)
                y.append(rng.random() * 100)
                bidx.append(gb)
                pil.append(arrivals)
                seg_of.append(t)
                rows.append((w[-1], y[-1], len(w) - 1))
                batches.append(gb)
                arrivals += 1
            gb += 1
        per_target.append((rows, batches))
    saved = pk._REPLAY_ROUND_COST
    try:
        if force_lockstep:
            # Zero round cost pushes the hybrid split to all-lockstep;
            # the default constants send instances this small to the
            # python fold, so both replay paths get exercised.
            pk._REPLAY_ROUND_COST = 0.0
        scnt, idx = pk._lockstep_fold(
            np.array(w), np.array(y),
            np.array(bidx, dtype=np.int64), np.array(pil, dtype=np.int64),
            np.array(seg_of, dtype=np.int64),
            np.ones(len(w), dtype=bool),
            np.arange(n_targets, dtype=np.int64),
            cap,
        )
    finally:
        pk._REPLAY_ROUND_COST = saved
    for t, (rows, batches) in enumerate(per_target):
        expect = pk._fold_reference(rows, batches, cap)
        got = idx[t, : scnt[t]].tolist()
        assert got == [e[2] for e in expect], t


# ---------------------------------------------------------------------------
# Cached tables are immutable against caller-side mutation
# ---------------------------------------------------------------------------


def test_cached_chain_table_survives_caller_mutation():
    """The memo wrappers freeze frontier cells to tuples: a caller that
    takes a local copy of a frontier and mutates it cannot corrupt the
    cached table (the regression behind the docstring's read-only
    contract)."""
    times = [(3.0, 7.0), (2.0, 5.0), (4.0, 9.0), (1.0, 2.0), (6.0, 3.0)]
    ctx = _ctx(times)
    caches = PlannerCaches()
    h1, tf1 = _chain_frontiers(ctx, 2, 5, 3, caches)
    snapshot = [
        [[tuple(e) for e in cell] for cell in row] for row in h1
    ]
    # Cells are frozen: in-place mutation is impossible.
    assert all(isinstance(cell, tuple) for row in h1 for cell in row)
    with pytest.raises((TypeError, AttributeError)):
        h1[3][5] += (("junk",),)  # tuples reject in-place concat on rows
    # A caller working on a local copy mutates only the copy.
    local = [list(row) for row in h1]
    local[3] = [()] * len(local[3])
    h2, tf2 = _chain_frontiers(ctx, 2, 5, 3, caches)
    assert tf2 == tf1
    assert [
        [[tuple(e) for e in cell] for cell in row] for row in h2
    ] == snapshot


def test_cached_het_and_cdm_tables_survive_caller_mutation():
    times = [(3.0, 7.0), (2.0, 5.0), (4.0, 9.0), (1.0, 2.0)]
    ctx = _ctx(times)
    caches = PlannerCaches()
    h1, _ = _het_frontiers(ctx, 4, 2, 3, caches)
    key = next(iter(h1[1]))
    snapshot = [tuple(e) for e in h1[1][key]]
    assert isinstance(h1[1][key], tuple)
    local = dict(h1[1])
    local[key] = ()
    h2, _ = _het_frontiers(ctx, 4, 2, 3, caches)
    assert [tuple(e) for e in h2[1][key]] == snapshot

    cctx = _cdm_ctx(times, times)
    f1 = _cdm_frontiers(
        cctx, 2, 2, caches, cut_step=1, max_frontier=4, ld=4, lu=4
    )
    key = next(iter(f1[1]))
    snapshot = [tuple(e) for e in f1[1][key]]
    assert isinstance(f1[1][key], tuple)
    local = dict(f1[1])
    local[key] = ()
    f2 = _cdm_frontiers(
        cctx, 2, 2, caches, cut_step=1, max_frontier=4, ld=4, lu=4
    )
    assert [tuple(e) for e in f2[1][key]] == snapshot


# ---------------------------------------------------------------------------
# Cut-grid plan reuse across stage-local batches
# ---------------------------------------------------------------------------


def test_cdm_plan_reused_across_adjacent_batches():
    """Within a sweep, adjacent stage-local batches share the CDM cut
    grid: the geometry/transition plan is built once and re-scaled with
    each batch's cost slabs instead of rebuilt (``caches.kernel_plans``
    is keyed on geometry only, never on batch sizes)."""
    times = [(3.0, 7.0), (2.0, 5.0), (4.0, 9.0), (1.0, 2.0), (6.0, 3.0)]
    caches = PlannerCaches()
    results = []
    for batch in (64.0, 32.0):
        db = ProfileDB.from_layer_times(
            {"down": times, "up": times},
            batches=(1.0, 64.0),
            trainable={"down": True, "up": True},
        )
        mk = lambda comp: PartitionContext(  # noqa: E731
            profile=db, component=comp, batch_per_group=batch,
            num_micro_batches=2, p2p=FAST, allreduce=FAST,
        )
        cctx = CDMPartitionContext(down=mk("down"), up=mk("up"))
        results.append(
            _cdm_frontiers(
                cctx, 2, 2, caches, cut_step=1, max_frontier=4,
                ld=5, lu=5, dp_kernel="array",
            )
        )
    # One plan build (miss), one warm reuse: the second batch's table
    # came from re-scaled cost slabs over the shared plan arrays.
    assert caches.kernel_plans.misses == 1
    assert caches.kernel_plans.hits >= 1
    # And the warm-plan table is still bit-identical to the oracle.
    db = ProfileDB.from_layer_times(
        {"down": times, "up": times},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )
    mk = lambda comp: PartitionContext(  # noqa: E731
        profile=db, component=comp, batch_per_group=32.0,
        num_micro_batches=2, p2p=FAST, allreduce=FAST,
    )
    cctx = CDMPartitionContext(down=mk("down"), up=mk("up"))
    f_ref = _cdm_frontiers(
        cctx, 2, 2, PlannerCaches(), cut_step=1, max_frontier=4,
        ld=5, lu=5, dp_kernel="reference",
    )
    _assert_dicts_identical(f_ref, results[1])
