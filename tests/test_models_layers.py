"""LayerSpec tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models import LayerSpec, conv_block, transformer_block


def test_layer_defaults():
    l = LayerSpec(name="l", flops_per_sample=1e9, output_bytes_per_sample=100)
    assert l.activation_bytes_per_sample == 100
    assert l.trainable
    assert l.grad_bytes == 0.0  # no params


def test_layer_sizes_scale_with_batch():
    l = LayerSpec(
        name="l", flops_per_sample=1e9, param_bytes=1e6,
        output_bytes_per_sample=100, activation_bytes_per_sample=400,
    )
    assert l.output_bytes(8) == 800
    assert l.activation_bytes(8) == 3200
    assert l.forward_flops(4) == 4e9
    assert l.backward_flops(4) == 8e9
    assert l.grad_bytes == 1e6


def test_frozen_copy():
    l = LayerSpec(name="l", flops_per_sample=1e9, param_bytes=1e6)
    f = l.frozen()
    assert not f.trainable
    assert f.backward_flops(8) == 0.0
    assert f.grad_bytes == 0.0
    assert l.trainable  # original untouched


def test_scaled_copy():
    l = LayerSpec(
        name="l", flops_per_sample=1e9, param_bytes=1e6,
        output_bytes_per_sample=100,
    )
    s = l.scaled(2.0)
    assert s.flops_per_sample == 2e9
    assert s.param_bytes == 2e6
    assert s.output_bytes_per_sample == 200
    with pytest.raises(ConfigurationError):
        l.scaled(0)


def test_validation():
    with pytest.raises(ConfigurationError):
        LayerSpec(name="x", flops_per_sample=-1)
    with pytest.raises(ConfigurationError):
        LayerSpec(name="x", flops_per_sample=1, param_bytes=-1)
    with pytest.raises(ConfigurationError):
        LayerSpec(name="x", flops_per_sample=1, output_bytes_per_sample=-1)
    with pytest.raises(ConfigurationError):
        LayerSpec(name="x", flops_per_sample=1, backward_flops_multiplier=-1)


def test_transformer_block_footprint():
    b = transformer_block("t", hidden=1024, seq_len=77)
    # Parameters: (4 + 8) h^2 at 2 bytes each.
    assert b.param_bytes == pytest.approx(12 * 1024 * 1024 * 2)
    assert b.output_bytes_per_sample == 1024 * 77 * 2
    assert b.flops_per_sample > 0
    assert b.trainable


def test_conv_block_footprint():
    b = conv_block("c", 64, 128, resolution=32, trainable=False)
    assert b.param_bytes == 64 * 128 * 9 * 2
    assert b.output_bytes_per_sample == 128 * 32 * 32 * 2
    assert not b.trainable
    with pytest.raises(ConfigurationError):
        conv_block("c", 64, 128, resolution=0)
