"""Tests for the :mod:`repro.analysis` rule engine.

Each rule gets a firing fixture and a near-miss (the closest legal
spelling) on a tmp tree whose layout mimics the package, so the scope
globs are exercised with the real package-relative paths
(``core/x.py``, ``service/x.py``, ...).  The engine itself is covered
for suppressions (used, stale, unknown-id, rule-subset), the JSON
finding schema, registry errors, and the two acceptance gates: the
shipped tree is clean, and a full run stays under the 2 s budget.
"""

from __future__ import annotations

import json
import textwrap
import time

import pytest

from repro.analysis import (
    Finding,
    analyze,
    get_rule,
    rule_names,
)
from repro.cli import main
from repro.errors import ConfigurationError


def run(tmp_path, rel, code, rules):
    """Write ``code`` at package-relative ``rel`` and analyze the tree."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return analyze(paths=[tmp_path], rule_names_=rules)


# -- registry ---------------------------------------------------------------


def test_rule_catalog():
    assert rule_names() == (
        "cache-globals",
        "determinism",
        "float-equality",
        "lock-discipline",
        "registry-bypass",
    )
    for name in rule_names():
        rule = get_rule(name)
        assert rule.name == name
        assert rule.description
        assert rule.scope


def test_unknown_rule_matches_registry_error_style():
    with pytest.raises(ConfigurationError, match="unknown analysis rule"):
        get_rule("nope")
    with pytest.raises(ConfigurationError, match="registered:"):
        analyze(rule_names_=["nope"])


# -- cache-globals ----------------------------------------------------------


def test_cache_globals_fires_on_name_and_ctor(tmp_path):
    findings = run(tmp_path, "core/fresh.py", """\
        from collections import OrderedDict

        _NEW_CACHE = {}
        store = OrderedDict()
        """, ["cache-globals"])
    assert [f.rule for f in findings] == ["cache-globals"] * 2
    assert findings[0].path == "core/fresh.py"
    assert findings[0].line == 3


def test_cache_globals_near_misses(tmp_path):
    findings = run(tmp_path, "core/fresh.py", """\
        CHAIN_CACHE_MAX_TABLES = 4      # public capacity constant

        def build():
            _LOCAL_CACHE = {}           # function-local, not module state
            return _LOCAL_CACHE
        """, ["cache-globals"])
    assert findings == []


def test_cache_globals_scope_is_core_only(tmp_path):
    findings = run(tmp_path, "harness/fresh.py", "_NEW_CACHE = {}\n",
                   ["cache-globals"])
    assert findings == []


# -- registry-bypass --------------------------------------------------------


def test_registry_bypass_fires_on_builder_imports(tmp_path):
    findings = run(tmp_path, "harness/bad.py", """\
        from repro.schedule.onef1b import build_1f1b
        from ..schedule import build_gpipe
        import repro.schedule.zerobubble
        """, ["registry-bypass"])
    assert len(findings) >= 3
    assert all(f.rule == "registry-bypass" for f in findings)


def test_registry_bypass_near_misses(tmp_path):
    findings = run(tmp_path, "harness/ok.py", """\
        from repro.schedule import get_family
        from repro.baselines.gpipe import GPipeBaseline  # not a builder
        """, ["registry-bypass"])
    assert findings == []


def test_registry_bypass_skips_schedule_package(tmp_path):
    findings = run(tmp_path, "schedule/families.py",
                   "from .onef1b import build_1f1b\n", ["registry-bypass"])
    assert findings == []


# -- lock-discipline --------------------------------------------------------

LOCKED_CLASS = """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = {}
            self._log = []

        def bad_write(self, k, v):
            self._data[k] = v

        def bad_mutator(self, x):
            self._log.append(x)

        def good(self, k, v):
            with self._lock:
                self._data[k] = v
                self._log.append(v)

        def read(self, k):
            return self._data.get(k)
    """


def test_lock_discipline_fires_outside_lock(tmp_path):
    findings = run(tmp_path, "service/state.py", LOCKED_CLASS,
                   ["lock-discipline"])
    msgs = [f.message for f in findings]
    assert len(findings) == 2
    assert any("bad_write" in m and "writes self._data" in m for m in msgs)
    assert any("bad_mutator" in m and ".append()" in m for m in msgs)


def test_lock_discipline_ignores_unlocked_classes(tmp_path):
    findings = run(tmp_path, "service/plain.py", """\
        class Plain:
            def set(self, v):
                self._v = v
        """, ["lock-discipline"])
    assert findings == []


def test_lock_discipline_scope(tmp_path):
    # same class outside service/ and core/caches|lru: out of scope
    findings = run(tmp_path, "core/planner.py", LOCKED_CLASS,
                   ["lock-discipline"])
    assert findings == []


# -- determinism ------------------------------------------------------------


def test_determinism_fires_on_each_bug_class(tmp_path):
    findings = run(tmp_path, "core/impure.py", """\
        import random
        import time

        def stamp():
            return time.time()

        def shuffle(xs):
            random.shuffle(xs)

        def key(obj):
            return id(obj)

        def dedup(xs):
            return list(set(xs))

        def walk(xs):
            for x in set(xs):
                print(x)
        """, ["determinism"])
    assert len(findings) == 5
    assert {f.rule for f in findings} == {"determinism"}


def test_determinism_near_misses(tmp_path):
    findings = run(tmp_path, "core/pure.py", """\
        import random

        def rng(seed):
            return random.Random(seed)

        def dedup(xs):
            return sorted(set(xs))

        def dedup_keep_order(xs):
            return list(dict.fromkeys(xs))
        """, ["determinism"])
    assert findings == []


def test_determinism_covers_elastic_path(tmp_path):
    """The elastic module lives under ``core/`` precisely so the
    determinism rule covers it: a replan triggered by device churn must
    still be a pure function of (model, cluster, batch), so a wall
    clock leaking into an elastic event or session is flagged like any
    other planner impurity."""
    findings = run(tmp_path, "core/elastic.py", """\
        import time

        def event_stamp():
            return time.monotonic()
        """, ["determinism"])
    assert len(findings) == 1
    assert findings[0].rule == "determinism"
    assert findings[0].path.endswith("core/elastic.py")


def test_determinism_scope_excludes_service(tmp_path):
    # the service layer's latency telemetry may read wall clocks
    findings = run(tmp_path, "service/telemetry.py",
                   "import time\nNOW = time.perf_counter()\n",
                   ["determinism"])
    assert findings == []


def test_determinism_fires_on_numpy_global_randomness(tmp_path):
    findings = run(tmp_path, "core/rng.py", """\
        import numpy as np
        from numpy.random import shuffle

        def noise(n):
            return np.random.rand(n)

        def reseed():
            np.random.seed(0)

        def entropy_rng():
            return np.random.default_rng()
        """, ["determinism"])
    assert len(findings) == 4
    assert {f.rule for f in findings} == {"determinism"}
    msgs = [f.message for f in findings]
    assert any("np.random.rand" in m for m in msgs)
    assert any("np.random.seed" in m for m in msgs)
    assert any("shuffle" in m and "numpy.random" in m for m in msgs)
    assert any("without a seed" in m for m in msgs)


def test_determinism_numpy_near_misses(tmp_path):
    findings = run(tmp_path, "core/rng_ok.py", """\
        import numpy as np
        from numpy.random import Generator, SeedSequence

        def rng(seed):
            return np.random.default_rng(seed)

        def rng_kw(seed):
            return np.random.default_rng(seed=seed)

        def typed(g: np.random.Generator):
            return g

        def dedup(xs):
            return np.array(sorted(set(xs)))
        """, ["determinism"])
    assert findings == []


def test_determinism_fires_on_array_construction_over_set(tmp_path):
    findings = run(tmp_path, "core/arr.py", """\
        import numpy as np

        def build(xs):
            return np.array(set(xs))

        def build2(xs):
            return np.asarray({x + 1 for x in xs})

        def build3(xs):
            return np.fromiter(frozenset(xs), dtype=float)
        """, ["determinism"])
    assert len(findings) == 3
    assert all("hash seed" in f.message for f in findings)
    assert [f.line for f in findings] == [4, 7, 10]


# -- float-equality ---------------------------------------------------------


def test_float_equality_fires(tmp_path):
    findings = run(tmp_path, "core/cmp.py", """\
        def f(x, a, b, c):
            if x == 0.5:
                return 1
            return a / b != c
        """, ["float-equality"])
    assert len(findings) == 2
    assert all(f.rule == "float-equality" for f in findings)


def test_float_equality_near_misses(tmp_path):
    findings = run(tmp_path, "core/cmp.py", """\
        def f(x, a, b):
            if x == 5:          # integer compare
                return 1
            return a <= 0.5 or b >= 0.5   # ordering, not equality
        """, ["float-equality"])
    assert findings == []


def test_float_equality_exempts_equivalence_module(tmp_path):
    findings = run(tmp_path, "engine/equivalence.py",
                   "def eq(a):\n    return a == 0.5\n", ["float-equality"])
    assert findings == []


# -- suppressions -----------------------------------------------------------


def test_suppression_on_line_and_line_above(tmp_path):
    findings = run(tmp_path, "core/s.py", """\
        def f(obj, x):
            a = id(obj)  # repro: allow[determinism] memo key, never serialized
            # repro: allow[determinism] same, annotated above
            b = id(x)
            return a, b
        """, ["determinism"])
    assert findings == []


def test_one_comment_may_carry_several_ids(tmp_path):
    findings = run(tmp_path, "core/s.py", """\
        def f(obj):
            # repro: allow[determinism, float-equality] fixture
            return id(obj) == 0.5
        """, ["determinism", "float-equality"])
    assert findings == []


def test_stale_suppression_is_reported(tmp_path):
    findings = run(tmp_path, "core/s.py", """\
        def f(x):
            return x + 1  # repro: allow[determinism] nothing here anymore
        """, ["determinism"])
    assert [f.rule for f in findings] == ["unused-suppression"]
    assert "matches no finding" in findings[0].message


def test_unknown_rule_id_in_suppression_is_reported(tmp_path):
    findings = run(tmp_path, "core/s.py",
                   "X = 1  # repro: allow[no-such-rule] typo\n",
                   ["determinism"])
    assert [f.rule for f in findings] == ["unused-suppression"]
    assert "unknown rule" in findings[0].message


def test_rule_subset_does_not_misreport_other_suppressions(tmp_path):
    # the lock-discipline allow is only checkable when that rule runs
    findings = run(tmp_path, "core/s.py", """\
        def f(x):
            return x  # repro: allow[lock-discipline] checked by another rule
        """, ["determinism"])
    assert findings == []


def test_docstring_mention_is_not_a_suppression(tmp_path):
    findings = run(tmp_path, "core/s.py", '''\
        """Syntax doc: write # repro: allow[determinism] to sanction."""

        X = 1
        ''', ["determinism"])
    assert findings == []


# -- finding schema ---------------------------------------------------------


def test_finding_json_round_trip():
    finding = Finding(path="core/x.py", line=7, rule="determinism",
                      message="id() is a process-local address")
    payload = json.loads(json.dumps(finding.as_dict()))
    assert Finding.from_dict(payload) == finding
    assert finding.format() == (
        "core/x.py:7: [determinism] id() is a process-local address"
    )


def test_findings_sort_by_path_then_line(tmp_path):
    findings = run(tmp_path, "core/two.py", """\
        def f(a, obj):
            x = a == 0.5
            y = id(obj)
            return x, y
        """, ["determinism", "float-equality"])
    assert [(f.line, f.rule) for f in findings] == [
        (2, "float-equality"), (3, "determinism"),
    ]


# -- acceptance gates -------------------------------------------------------


def test_shipped_tree_is_clean_and_fast():
    start = time.perf_counter()
    findings = analyze()
    elapsed = time.perf_counter() - start
    assert findings == [], "\n".join(f.format() for f in findings)
    assert elapsed < 2.0, f"analyze() took {elapsed:.2f}s (budget 2s)"


# -- CLI --------------------------------------------------------------------


def test_cli_analyze_clean_tree(capsys):
    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_analyze_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in rule_names():
        assert name in out


def test_cli_analyze_unknown_rule(capsys):
    assert main(["analyze", "--rule", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown analysis rule" in err


def test_cli_analyze_findings_exit_one(capsys, tmp_path):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "impure.py").write_text("import time\nT = time.time()\n")
    rc = main(["analyze", str(tmp_path), "--rule", "determinism"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "core/impure.py:2" in out
    assert "[determinism]" in out


def test_cli_analyze_json_schema(capsys, tmp_path):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "impure.py").write_text("import time\nT = time.time()\n")
    rc = main(["analyze", str(tmp_path), "--rule", "determinism", "--json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["determinism"]
    assert payload["count"] == len(payload["findings"]) == 1
    finding = Finding.from_dict(payload["findings"][0])
    assert finding.path == "core/impure.py"
    assert finding.line == 2
