"""Brute-force reference checks.

On small instances, enumerate *every* feasible solution and verify the
library's dynamic programs and greedy algorithms achieve the optimum
they claim:

* single-backbone partition DP (§4.1) vs all ways to cut L layers into
  S stages;
* the self-conditioning variant (§4.3);
* bidirectional CDM DP (§4.2) vs all cut pairs;
* Algorithm 1's per-bubble choice vs all (full-prefix x partial-batch)
  combinations.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CommCosts
from repro.core import (
    Bubble,
    CDMPartitionContext,
    PartitionContext,
    StageCosts,
    fill_one_bubble,
    partition_backbone,
    partition_cdm,
)
from repro.core.filling import ComponentState, valid_partial_samples
from repro.core.partition_cdm import _ScaledCosts
from repro.profiling import ProfileDB

FAST = CommCosts(bandwidth=6e8, latency=0.005)
SLOWER = CommCosts(bandwidth=5e7, latency=0.015)


def _ctx(times, M=2, sc=False, p2p=FAST, comp="bb"):
    db = ProfileDB.from_layer_times(
        {comp: list(times)}, batches=(1.0, 64.0), trainable={comp: True}
    )
    return PartitionContext(
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=M, p2p=p2p, allreduce=FAST,
        self_conditioning=sc,
    )


def _cuts(L, S):
    """All interior cut tuples for L layers into S stages."""
    return itertools.combinations(range(1, L), S - 1)


def _objective_single(ctx, costs, slices, sc):
    S = len(slices)
    M = ctx.num_micro_batches
    w = max(costs.t0(a, b) for a, b in slices)
    w_sc = max(costs.t0_sc(a, b) for a, b in slices) if sc else w
    y = max(costs.sync_gap(a, b) for a, b in slices)
    coeff = M + 2 * S - 2
    vanilla = coeff * w + y
    if not sc:
        return vanilla
    p = ctx.self_conditioning_prob
    tf = costs.feedback_ms()
    return p * (coeff * w_sc + y + tf) + (1 - p) * vanilla


layer_time_lists = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=40.0),
        st.floats(min_value=1.0, max_value=80.0),
    ),
    min_size=4,
    max_size=7,
)


@given(layer_time_lists, st.integers(min_value=2, max_value=3),
       st.booleans(), st.booleans())
@settings(max_examples=40, deadline=None)
def test_partition_dp_is_optimal(times, S, sc, slow_comm):
    """The Pareto DP's objective equals the brute-force optimum."""
    if S > len(times):
        return
    ctx = _ctx(times, sc=sc, p2p=SLOWER if slow_comm else FAST)
    plan = partition_backbone(ctx, S, S)
    costs = StageCosts(ctx, replicas=1)
    L = len(times)
    best = min(
        _objective_single(ctx, costs, list(zip((0, *cut), (*cut, L))), sc)
        for cut in _cuts(L, S)
    )
    assert plan.t_max_ms == pytest.approx(best, rel=1e-9)


@given(
    st.lists(st.tuples(st.floats(2, 30), st.floats(2, 60)), min_size=3, max_size=5),
    st.lists(st.tuples(st.floats(2, 30), st.floats(2, 60)), min_size=3, max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_cdm_dp_is_optimal(down_times, up_times):
    """The bidirectional DP equals brute force over all cut pairs."""
    S = 2
    db = ProfileDB.from_layer_times(
        {"down": list(down_times), "up": list(up_times)},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )
    mk = lambda comp: PartitionContext(
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=2, p2p=FAST, allreduce=FAST,
    )
    ctx = CDMPartitionContext(down=mk("down"), up=mk("up"))
    plan = partition_cdm(ctx, S, S)

    dc = _ScaledCosts(ctx.down, 1, ctx.comm_scale)
    uc = _ScaledCosts(ctx.up, 1, ctx.comm_scale)
    ld, lu = len(down_times), len(up_times)
    coeff = ctx.m_cdm + 2 * S - 2
    best = float("inf")
    for cd in range(1, ld):
        for cu in range(1, lu):
            # chain position 0: down [0,cd) + up [cu,lu) (up stage 1);
            # chain position 1: down [cd,ld) + up [0,cu) (up stage 0).
            pairs = [
                ((0, cd), (cu, lu)),
                ((cd, ld), (0, cu)),
            ]
            w = max(max(dc.t0(*d), uc.t0(*u)) for d, u in pairs)
            y = max(max(dc.sync_gap(d[0], d[1]), uc.sync_gap(u[0], u[1]))
                    for d, u in pairs)
            best = min(best, coeff * w + y)
    assert plan.t_max_ms == pytest.approx(best, rel=1e-9)


@given(
    st.lists(st.tuples(st.floats(2, 30), st.floats(2, 60)), min_size=3, max_size=4),
    st.lists(st.tuples(st.floats(2, 30), st.floats(2, 60)), min_size=3, max_size=4),
    st.integers(min_value=2, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_het_cdm_dp_is_optimal(down_times, up_times, D):
    """The heterogeneous bidirectional DP equals brute force over all
    (cut pair, per-position replica assignment) combinations, with an
    r-dependent all-reduce resolver so the per-replica-count sync model
    is exercised too."""
    S = 2
    db = ProfileDB.from_layer_times(
        {"down": list(down_times), "up": list(up_times)},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )
    # Sync constants that genuinely vary with the replica count.
    ar_by_r = lambda r: CommCosts(  # noqa: E731
        bandwidth=4e8 * (1.0 + 0.5 * r), latency=0.05 * r
    )
    mk = lambda comp: PartitionContext(  # noqa: E731
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=2, p2p=FAST, allreduce=FAST,
        allreduce_by_r=ar_by_r, allreduce_key=("brute", 4e8, 0.05),
    )
    ctx = CDMPartitionContext(down=mk("down"), up=mk("up"))
    # A generous frontier cap isolates DP correctness from the
    # worst-case pruning heuristic.
    plan = partition_cdm(ctx, S, D, heterogeneous=True, max_frontier=64)

    ld, lu = len(down_times), len(up_times)
    coeff = ctx.m_cdm + 2 * S - 2
    costs: dict[tuple[str, int], _ScaledCosts] = {}

    def sc(which, pctx, r):
        key = (which, r)
        if key not in costs:
            costs[key] = _ScaledCosts(pctx, r, ctx.comm_scale)
        return costs[key]

    best = float("inf")
    for cd in range(1, ld):
        for cu in range(1, lu):
            for r0 in range(1, D):
                for r1 in range(1, D - r0 + 1):
                    # position 0: down [0,cd) + up [cu,lu), r0 replicas;
                    # position 1: down [cd,ld) + up [0,cu), r1 replicas.
                    stages = [
                        (sc("d", ctx.down, r0), (0, cd),
                         sc("u", ctx.up, r0), (cu, lu)),
                        (sc("d", ctx.down, r1), (cd, ld),
                         sc("u", ctx.up, r1), (0, cu)),
                    ]
                    w = max(
                        max(d.t0(*ds), u.t0(*us)) for d, ds, u, us in stages
                    )
                    y = max(
                        max(d.sync_gap(*ds), u.sync_gap(*us))
                        for d, ds, u, us in stages
                    )
                    best = min(best, coeff * w + y)
    assert plan.t_max_ms == pytest.approx(best, rel=1e-9)


@given(
    st.lists(st.floats(min_value=1.0, max_value=20.0), min_size=1, max_size=5),
    st.floats(min_value=2.0, max_value=60.0),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=40, deadline=None)
def test_fill_one_bubble_is_optimal_single_component(times, bubble_ms, d):
    """Alg. 1's pick equals brute force over (prefix, partial) choices
    for one ready component with batch-linear layer times."""
    batch = 64.0
    db = ProfileDB.from_layer_times(
        {"e": [(t, 0.0) for t in times]},
        batches=(1.0, batch),
        trainable={"e": False},
    )
    state = ComponentState(name="e", num_layers=len(times), batch=batch)
    bubble = Bubble(start=0.0, end=bubble_ms, devices=tuple(range(d)), weight=d)
    fill = fill_one_bubble(db, [state], bubble, 0)

    def layer_time(idx, samples):
        return db.fwd_ms("e", idx, samples / d)

    best = 0.0
    for k in range(len(times) + 1):
        t_full = sum(layer_time(i, batch) for i in range(k))
        if t_full > bubble_ms + 1e-9:
            break
        cand = t_full
        if k < len(times):
            for samples in valid_partial_samples(batch, d, batch):
                t = layer_time(k, samples)
                if t_full + t <= bubble_ms + 1e-9:
                    cand = max(cand, t_full + t)
        best = max(best, cand)
    assert fill.time_ms == pytest.approx(best, abs=1e-9)


def test_partition_dp_known_instance():
    """A hand-checkable instance: layers [10, 10, 30, 10] (+2x bwd),
    S=2, M=2 -> optimal cut isolates the pair summing closest to half."""
    times = [(10, 20), (10, 20), (30, 60), (10, 20)]
    ctx = _ctx(times, M=2)
    plan = partition_backbone(ctx, 2, 2)
    # Total = 180 ms (at B=64) -> micro 32 halves everything.
    # Candidate cuts (fwd+bwd at micro 32): [15|75], [30|60], [75|15].
    # Best max = 60 at cut after layer 2... wait: cut=2 -> [30, 60].
    assert [s.num_layers for s in plan.down] == [2, 2]
    assert plan.w_ms == pytest.approx(60.0 * (32 / 64) * 2)
