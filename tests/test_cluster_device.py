"""Device model tests."""

import pytest

from repro.cluster import DeviceSpec, a100_40gb, a100_80gb, v100_32gb
from repro.cluster.device import Device
from repro.errors import ConfigurationError


def test_default_a100():
    dev = a100_80gb()
    assert dev.name == "A100-80GB"
    assert dev.memory_bytes == 80e9


def test_variants():
    assert a100_40gb().memory_bytes == 40e9
    v = v100_32gb()
    assert v.memory_bytes == 32e9
    assert v.peak_flops_per_ms < a100_80gb().peak_flops_per_ms


def test_utilisation_monotone():
    dev = a100_80gb()
    utils = [dev.utilisation(b) for b in (1, 2, 4, 8, 16, 32, 64, 128)]
    assert utils == sorted(utils)
    assert utils[-1] < dev.max_utilisation
    assert dev.utilisation(0) == 0.0


def test_utilisation_saturates():
    dev = a100_80gb()
    assert dev.utilisation(1e9) == pytest.approx(dev.max_utilisation, rel=1e-6)


def test_compute_time_includes_overhead():
    dev = a100_80gb()
    assert dev.compute_time_ms(0.0, 8) == dev.kernel_overhead_ms
    t1 = dev.compute_time_ms(1e12, 8)
    t2 = dev.compute_time_ms(2e12, 8)
    # Twice the FLOPs is twice the compute part (same overhead).
    assert t2 - t1 == pytest.approx(t1 - dev.kernel_overhead_ms, rel=1e-9)


def test_compute_time_batch_effect():
    dev = a100_80gb()
    # Same total FLOPs executes faster at higher utilisation (bigger batch).
    assert dev.compute_time_ms(1e12, 64) < dev.compute_time_ms(1e12, 4)


def test_invalid_device_specs():
    with pytest.raises(ConfigurationError):
        DeviceSpec(peak_flops_per_ms=0)
    with pytest.raises(ConfigurationError):
        DeviceSpec(memory_bytes=-1)
    with pytest.raises(ConfigurationError):
        DeviceSpec(max_utilisation=1.5)
    with pytest.raises(ConfigurationError):
        a100_80gb().utilisation(-1)
    with pytest.raises(ConfigurationError):
        a100_80gb().compute_time_ms(-1, 8)


def test_device_instance_validation():
    with pytest.raises(ConfigurationError):
        Device(rank=-1, machine=0, local_rank=0)
    dev = Device(rank=3, machine=0, local_rank=3)
    assert dev.spec.name == "A100-80GB"
