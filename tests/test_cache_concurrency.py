"""Concurrency and lifetime guarantees of :class:`PlannerCaches`.

* a thread pool hammering one shared instance raises nothing, produces
  plans bit-identical to a serial run, and leaves every store within
  its bound;
* dropping a :class:`PlannerCaches` instance frees its timelines — the
  memo must not leak entries (or Timeline objects) into the process
  default instance.
"""

from __future__ import annotations

import gc
import weakref
from concurrent.futures import ThreadPoolExecutor

from repro.cluster import single_node
from repro.core import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from repro.core.caches import default_caches
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler

BATCHES = (32, 64, 96)
OPTIONS = PlannerOptions(group_sizes=(2, 4), micro_batch_counts=(1, 2, 4))


def _sweep(model, cluster, profile, caches):
    """Fresh planner on the shared caches; plans for every batch."""
    planner = DiffusionPipePlanner(
        model, cluster, profile, options=OPTIONS, caches=caches
    )
    return {b: planner.plan(b).plan for b in BATCHES}


def test_shared_caches_thread_pool_smoke():
    model = stable_diffusion_v2_1()
    cluster = single_node(4)
    profile = Profiler(cluster).profile(model)

    serial = _sweep(model, cluster, profile, PlannerCaches())

    shared = PlannerCaches()
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [
            pool.submit(_sweep, model, cluster, profile, shared)
            for _ in range(16)
        ]
        results = [f.result() for f in futures]  # raises on any exception

    for result in results:
        assert result == serial, "concurrent plans must match serial plans"

    # Every store stayed within its construction-time bound.
    for stats in shared.stats().stores:
        assert stats.entries >= 0
    assert len(shared.timelines) <= shared.timelines.max_entries
    assert len(shared.partition) <= shared.partition.max_entries
    assert len(shared.evals) <= shared.evals.max_entries
    assert shared.prefixes.entry_count(profile) <= 8192
    # The work actually went through the shared instance.
    tl = shared.stats().store("timelines")
    assert tl.hits > 0 and tl.entries > 0


def test_dropping_planner_caches_frees_timelines():
    model = stable_diffusion_v2_1()
    cluster = single_node(2)
    profile = Profiler(cluster).profile(model)

    before = len(default_caches().timelines)

    caches = PlannerCaches()
    planner = DiffusionPipePlanner(
        model, cluster, profile, options=OPTIONS, caches=caches
    )
    planner.plan(64)
    items = caches.timelines.items()
    assert items, "the sweep must have memoised timelines"
    timeline_refs = [weakref.ref(value) for _, value in items]
    caches_ref = weakref.ref(caches)

    # Nothing leaked into the process-wide default instance.
    assert len(default_caches().timelines) == before

    del planner, caches, items
    gc.collect()
    assert caches_ref() is None, "PlannerCaches instance must be collectable"
    alive = [r for r in timeline_refs if r() is not None]
    assert not alive, (
        f"{len(alive)}/{len(timeline_refs)} timelines survived their "
        "owning PlannerCaches — the memo is leaking"
    )
