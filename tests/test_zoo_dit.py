"""DiT (transformer-backbone) zoo model tests — the §7 extension."""

import pytest

from repro.cluster import single_node
from repro.core import DiffusionPipePlanner, PlannerOptions
from repro.models.zoo import dit_xl
from repro.profiling import Profiler


@pytest.fixture(scope="module")
def dit():
    return dit_xl()


@pytest.fixture(scope="module")
def dit_profile(dit):
    return Profiler(single_node(8)).profile(dit)


def test_dit_structure(dit):
    assert dit.backbone_names == ("dit",)
    assert {c.name for c in dit.non_trainable} == {"t5_encoder", "vae_encoder"}
    assert dit.components["dit"].num_layers == 30
    assert dit.components["t5_encoder"].num_layers == 26
    # T5-XXL dominates the frozen parameter budget (~4.6 B params).
    assert dit.components["t5_encoder"].param_bytes > 8e9


def test_dit_uniform_blocks_partition_evenly(dit, dit_profile):
    """28 uniform DiT blocks split near-evenly by the DP partitioner."""
    cluster = single_node(8)
    planner = DiffusionPipePlanner(
        dit, cluster, dit_profile,
        options=PlannerOptions(max_stages=2, micro_batch_counts=(2,),
                               group_sizes=(2,), check_memory=False),
    )
    plan = planner.evaluate(64, 2, 2, 2).plan
    sizes = [st.num_layers for st in plan.partition.down]
    assert abs(sizes[0] - sizes[1]) <= 2


def test_dit_bubble_filling_near_complete(dit, dit_profile):
    """The heavy T5 frozen part nearly eliminates bubbles (§7's thesis)."""
    cluster = single_node(8)
    planner = DiffusionPipePlanner(
        dit, cluster, dit_profile,
        options=PlannerOptions(group_sizes=(2, 4, 8)),
    )
    ev = planner.plan(256)
    assert ev.plan.bubble_ratio_unfilled > 0.10
    assert ev.plan.bubble_ratio_filled < 0.03
    assert ev.plan.memory is not None and ev.plan.memory.fits


def test_dit_nt_share_between_sd_and_controlnet(dit, dit_profile):
    nt = sum(
        dit_profile.component_fwd_ms(c.name, 64) for c in dit.non_trainable
    )
    t = dit_profile.component_train_ms("dit", 64)
    # SD is ~0.44, ControlNet ~0.89; DiT with T5-XXL sits between.
    assert 0.5 < nt / t < 0.85
