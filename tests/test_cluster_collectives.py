"""Collective cost-model tests."""

import pytest

from repro.cluster import CollectiveModel, p4de_cluster, single_node
from repro.errors import ConfigurationError

#: disable the Table-2 calibration for clean alpha-beta arithmetic
NO_CAL = dict(inter_node_efficiency={1: 1.0}, ring_fixed_overhead_ms={1: 0.0})


def test_allreduce_single_device_free():
    coll = CollectiveModel(single_node(8), **NO_CAL)
    assert coll.allreduce([0], 1e9) == 0.0


def test_allreduce_ring_formula():
    c = single_node(8)
    coll = CollectiveModel(c, **NO_CAL)
    n, size = 8, 1e9
    link = c.intra_link
    expected = 2 * (n - 1) * link.latency + 2 * (n - 1) / n * size / link.bandwidth
    assert coll.allreduce(list(range(8)), size) == pytest.approx(expected)


def test_allgather_is_half_allreduce_traffic():
    coll = CollectiveModel(single_node(8), **NO_CAL)
    ranks = list(range(8))
    ar = coll.allreduce(ranks, 1e9)
    ag = coll.allgather(ranks, 1e9)
    # Ring all-gather moves half the bytes and half the latency hops.
    assert ag == pytest.approx(ar / 2)
    assert coll.reduce_scatter(ranks, 1e9) == ag


def test_broadcast():
    c = single_node(4)
    coll = CollectiveModel(c, **NO_CAL)
    t = coll.broadcast(list(range(4)), 600e6)
    assert t == pytest.approx(3 * c.intra_link.latency + 1.0)
    assert coll.broadcast([0], 1e9) == 0.0


def test_inter_node_efficiency_applies():
    c = p4de_cluster(2)
    fast = CollectiveModel(c, inter_node_efficiency={1: 1.0},
                           ring_fixed_overhead_ms={1: 0.0})
    slow = CollectiveModel(c, inter_node_efficiency={1: 1.0, 2: 0.5},
                           ring_fixed_overhead_ms={1: 0.0})
    ranks = list(range(16))
    assert slow.allreduce(ranks, 1e9) > fast.allreduce(ranks, 1e9)
    # Intra-node groups are unaffected by the inter-node curve.
    assert slow.allreduce(list(range(8)), 1e9) == pytest.approx(
        fast.allreduce(list(range(8)), 1e9)
    )


def test_fixed_overhead_applies_per_call():
    c = single_node(8)
    coll = CollectiveModel(c, inter_node_efficiency={1: 1.0},
                           ring_fixed_overhead_ms={1: 28.0})
    base = CollectiveModel(c, **NO_CAL)
    ranks = list(range(8))
    assert coll.allreduce(ranks, 1e6) == pytest.approx(
        base.allreduce(ranks, 1e6) + 28.0
    )
    assert coll.allgather(ranks, 1e6) == pytest.approx(
        base.allgather(ranks, 1e6) + 28.0
    )


def test_efficiency_interpolation():
    c = p4de_cluster(8)
    coll = CollectiveModel(c)
    # 3 machines interpolates between the 2- and 4-machine anchors.
    t2 = coll.allreduce(list(range(16)), 1e9)
    t3 = coll.allreduce(list(range(24)), 1e9)
    t4 = coll.allreduce(list(range(32)), 1e9)
    assert t2 < t3 < t4


def test_efficiency_interpolation_clamped():
    """Uncalibrated machine counts never interpolate above nominal bandwidth.

    The raw curve has efficiency 2.0 at two nodes (hierarchical
    all-reduce); a straight line from there to the 4-node point would give
    a 3-machine flat ring "efficiency" ~1.25, i.e. faster than its own
    nominal link.  Between calibrated anchors the segment endpoints are
    clamped at 1.0; the anchors themselves stay raw.
    """
    c = p4de_cluster(8)
    coll = CollectiveModel(c)
    for machines in (3, 5, 6, 7):
        ranks = list(range(machines * 8))
        eff = coll._ring_efficiency(ranks)
        assert eff <= 1.0, f"{machines} machines: efficiency {eff} > 1"
    # 3 machines sits on the clamped 1.0 -> 0.494 segment, midway.
    assert coll._ring_efficiency(list(range(24))) == pytest.approx(0.747)
    # Beyond the 2-4 segment the curve never had values above 1, so the
    # clamp is a no-op there: plain interpolation between 4 and 8.
    assert coll._ring_efficiency(list(range(48))) == pytest.approx(
        0.494 + 0.5 * (0.404 - 0.494)
    )


def test_efficiency_exact_anchors_unclamped():
    """Calibrated machine counts return the raw Table-2 values — including
    the >1 hierarchical-all-reduce point at two nodes."""
    c = p4de_cluster(8)
    coll = CollectiveModel(c)
    assert coll._ring_efficiency(list(range(16))) == 2.0
    assert coll._ring_efficiency(list(range(32))) == 0.494
    assert coll._ring_efficiency(list(range(64))) == 0.404


def test_three_machines_never_beat_two():
    """Regression: a 3-machine all-reduce of the same size is never
    cheaper than the 2-machine one (it was, via the interpolation spike).
    """
    c = p4de_cluster(8)
    coll = CollectiveModel(c)
    for size in (1e6, 1e8, 1e9, 8e9):
        t2 = coll.allreduce(list(range(16)), size)
        t3 = coll.allreduce(list(range(24)), size)
        assert t3 >= t2


def test_broadcast_pays_ring_calibration():
    """Regression: multi-node broadcast pays the same achieved-bandwidth
    and fixed-overhead calibration as the other ring collectives."""
    c = p4de_cluster(2)
    cal = CollectiveModel(
        c,
        inter_node_efficiency={1: 1.0, 2: 0.5},
        ring_fixed_overhead_ms={1: 0.0, 2: 100.0},
    )
    raw = CollectiveModel(c, **NO_CAL)
    size = 1e9
    one_machine = list(range(8))
    two_machines = list(range(16))
    # Intra-node: calibration keyed {1: ...} leaves it untouched.
    assert cal.broadcast(one_machine, size) == pytest.approx(
        raw.broadcast(one_machine, size)
    )
    # Inter-node: fixed overhead plus halved achieved bandwidth.
    base = raw.broadcast(two_machines, size)
    link = c.inter_link
    assert cal.broadcast(two_machines, size) == pytest.approx(
        100.0 + 15 * link.latency + size / (link.bandwidth * 0.5)
    )
    assert cal.broadcast(two_machines, size) > base
    # Under the default calibration the 2-machine group still pays the
    # fixed term, so it can never undercut the alpha-beta floor.
    assert CollectiveModel(c).broadcast(two_machines, size) > base


def test_allreduce_costs_consistency():
    """allreduce(size) == size / R_ar + L_ar exactly (the DP's form)."""
    c = p4de_cluster(2)
    coll = CollectiveModel(c)
    ranks = list(range(16))
    costs = coll.allreduce_costs(ranks)
    for size in (1e6, 1e8, 2e9):
        assert coll.allreduce(ranks, size) == pytest.approx(
            size / costs.bandwidth + costs.latency
        )
    single = coll.allreduce_costs([3])
    assert single.bandwidth == float("inf")
    assert single.latency == 0.0


def test_p2p_costs():
    c = p4de_cluster(2)
    coll = CollectiveModel(c)
    intra = coll.p2p_costs(0, 1)
    inter = coll.p2p_costs(0, 8)
    assert intra.bandwidth > inter.bandwidth
    assert coll.p2p(0, 1, 6e8) == pytest.approx(
        6e8 / intra.bandwidth + intra.latency
    )


def test_group_validation():
    coll = CollectiveModel(single_node(4))
    with pytest.raises(ConfigurationError):
        coll.allreduce([], 1e6)
    with pytest.raises(ConfigurationError):
        coll.allreduce([0, 1], -1)
