"""Collective cost-model tests."""

import pytest

from repro.cluster import CollectiveModel, p4de_cluster, single_node
from repro.errors import ConfigurationError

#: disable the Table-2 calibration for clean alpha-beta arithmetic
NO_CAL = dict(inter_node_efficiency={1: 1.0}, ring_fixed_overhead_ms={1: 0.0})


def test_allreduce_single_device_free():
    coll = CollectiveModel(single_node(8), **NO_CAL)
    assert coll.allreduce([0], 1e9) == 0.0


def test_allreduce_ring_formula():
    c = single_node(8)
    coll = CollectiveModel(c, **NO_CAL)
    n, size = 8, 1e9
    link = c.intra_link
    expected = 2 * (n - 1) * link.latency + 2 * (n - 1) / n * size / link.bandwidth
    assert coll.allreduce(list(range(8)), size) == pytest.approx(expected)


def test_allgather_is_half_allreduce_traffic():
    coll = CollectiveModel(single_node(8), **NO_CAL)
    ranks = list(range(8))
    ar = coll.allreduce(ranks, 1e9)
    ag = coll.allgather(ranks, 1e9)
    # Ring all-gather moves half the bytes and half the latency hops.
    assert ag == pytest.approx(ar / 2)
    assert coll.reduce_scatter(ranks, 1e9) == ag


def test_broadcast():
    c = single_node(4)
    coll = CollectiveModel(c, **NO_CAL)
    t = coll.broadcast(list(range(4)), 600e6)
    assert t == pytest.approx(3 * c.intra_link.latency + 1.0)
    assert coll.broadcast([0], 1e9) == 0.0


def test_inter_node_efficiency_applies():
    c = p4de_cluster(2)
    fast = CollectiveModel(c, inter_node_efficiency={1: 1.0},
                           ring_fixed_overhead_ms={1: 0.0})
    slow = CollectiveModel(c, inter_node_efficiency={1: 1.0, 2: 0.5},
                           ring_fixed_overhead_ms={1: 0.0})
    ranks = list(range(16))
    assert slow.allreduce(ranks, 1e9) > fast.allreduce(ranks, 1e9)
    # Intra-node groups are unaffected by the inter-node curve.
    assert slow.allreduce(list(range(8)), 1e9) == pytest.approx(
        fast.allreduce(list(range(8)), 1e9)
    )


def test_fixed_overhead_applies_per_call():
    c = single_node(8)
    coll = CollectiveModel(c, inter_node_efficiency={1: 1.0},
                           ring_fixed_overhead_ms={1: 28.0})
    base = CollectiveModel(c, **NO_CAL)
    ranks = list(range(8))
    assert coll.allreduce(ranks, 1e6) == pytest.approx(
        base.allreduce(ranks, 1e6) + 28.0
    )
    assert coll.allgather(ranks, 1e6) == pytest.approx(
        base.allgather(ranks, 1e6) + 28.0
    )


def test_efficiency_interpolation():
    c = p4de_cluster(8)
    coll = CollectiveModel(c)
    # 3 machines interpolates between the 2- and 4-machine anchors.
    t2 = coll.allreduce(list(range(16)), 1e9)
    t3 = coll.allreduce(list(range(24)), 1e9)
    t4 = coll.allreduce(list(range(32)), 1e9)
    assert t2 < t3 < t4


def test_allreduce_costs_consistency():
    """allreduce(size) == size / R_ar + L_ar exactly (the DP's form)."""
    c = p4de_cluster(2)
    coll = CollectiveModel(c)
    ranks = list(range(16))
    costs = coll.allreduce_costs(ranks)
    for size in (1e6, 1e8, 2e9):
        assert coll.allreduce(ranks, size) == pytest.approx(
            size / costs.bandwidth + costs.latency
        )
    single = coll.allreduce_costs([3])
    assert single.bandwidth == float("inf")
    assert single.latency == 0.0


def test_p2p_costs():
    c = p4de_cluster(2)
    coll = CollectiveModel(c)
    intra = coll.p2p_costs(0, 1)
    inter = coll.p2p_costs(0, 8)
    assert intra.bandwidth > inter.bandwidth
    assert coll.p2p(0, 1, 6e8) == pytest.approx(
        6e8 / intra.bandwidth + intra.latency
    )


def test_group_validation():
    coll = CollectiveModel(single_node(4))
    with pytest.raises(ConfigurationError):
        coll.allreduce([], 1e6)
    with pytest.raises(ConfigurationError):
        coll.allreduce([0, 1], -1)
