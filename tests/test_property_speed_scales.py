"""Hypothesis properties of the speed-scaled partition DPs.

Two invariants the heterogeneous threading must never break:

* **reduction**: an all-nominal ``speed_scales`` tuple — every factor
  exactly 1.0 — produces *bit-identical* plans to ``speed_scales=None``
  in both engines.  The scaled code path always divides (no identity
  gate), so this leans on IEEE-754 exactness of ``x / 1.0 == x``; a
  future "optimisation" that reorders the scaled arithmetic would
  surface here immediately.
* **exchange**: under equal per-layer costs, the strictly slower of
  two devices never ends up with strictly more layers than its faster
  twin.  (The ISSUE phrases this as "never in a strictly smaller
  stage", which inverts the provable direction: by the exchange
  argument, swapping a larger slow stage with a smaller fast one
  strictly reduces the pair's bottleneck, so the optimum loads the
  *faster* device at least as heavily.)

Plus the differential gate extended to scaled inputs: the array and
reference engines agree bit-for-bit on arbitrary mixed factors.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.collectives import CommCosts
from repro.core.caches import PlannerCaches
from repro.core.partition import PartitionContext, partition_backbone

from .conftest import make_synthetic_db

FAST_P2P = CommCosts(bandwidth=6e8, latency=0.005)
FAST_AR = CommCosts(bandwidth=1e9, latency=0.1)


def _ctx(db, scales, *, M=4, sc=False, pricing="default"):
    return PartitionContext(
        profile=db,
        component="backbone",
        batch_per_group=64.0,
        num_micro_batches=M,
        p2p=FAST_P2P,
        allreduce=FAST_AR,
        self_conditioning=sc,
        speed_scales=scales,
        pricing=pricing,
    )


layer_times = st.lists(
    st.tuples(st.floats(1.0, 50.0), st.floats(1.0, 80.0)),
    min_size=4,
    max_size=8,
)


@settings(max_examples=20, deadline=None)
@given(
    times=layer_times,
    S=st.integers(2, 3),
    kern=st.sampled_from(["array", "reference"]),
    het=st.booleans(),
    pricing=st.sampled_from(["default", "zerobubble"]),
)
def test_all_nominal_scales_reduce_to_homogeneous(times, S, kern, het, pricing):
    db = make_synthetic_db(backbone_times=tuple(times))
    D = 4
    if D % S != 0:
        het = True  # the homogeneous replication path needs S | D
    base = partition_backbone(
        _ctx(db, None, pricing=pricing), S, D,
        heterogeneous=het, caches=PlannerCaches(), dp_kernel=kern,
    )
    unit = partition_backbone(
        _ctx(db, (1.0,) * D, pricing=pricing), S, D,
        heterogeneous=het, caches=PlannerCaches(), dp_kernel=kern,
    )
    assert unit == base
    assert unit.t_max_ms.hex() == base.t_max_ms.hex()
    assert unit.w_ms.hex() == base.w_ms.hex()
    assert unit.y_ms.hex() == base.y_ms.hex()


@settings(max_examples=20, deadline=None)
@given(
    times=layer_times,
    scales=st.tuples(*([st.floats(0.25, 1.0)] * 4)),
    S=st.integers(2, 3),
    het=st.booleans(),
    sc=st.booleans(),
)
def test_engines_agree_bit_identically_on_scaled_inputs(
    times, scales, S, het, sc
):
    db = make_synthetic_db(backbone_times=tuple(times))
    if 4 % S != 0:
        het = True  # the homogeneous replication path needs S | D
    plans = {
        kern: partition_backbone(
            _ctx(db, scales, sc=sc), S, 4,
            heterogeneous=het, caches=PlannerCaches(), dp_kernel=kern,
        )
        for kern in ("array", "reference")
    }
    a, r = plans["array"], plans["reference"]
    assert a == r
    assert a.t_max_ms.hex() == r.t_max_ms.hex()


@settings(max_examples=30, deadline=None)
@given(
    slow=st.floats(0.2, 0.7),
    t=st.floats(5.0, 40.0),
    slow_first=st.booleans(),
    kern=st.sampled_from(["array", "reference"]),
)
def test_slower_device_never_takes_strictly_more_layers(
    slow, t, slow_first, kern
):
    """Exchange invariant on the two-device chain: uniform layer costs,
    one device strictly slower, the slow stage's layer count is <= the
    fast stage's in the returned optimum."""
    db = make_synthetic_db(backbone_times=((t, 2.0 * t),) * 8)
    scales = (slow, 1.0) if slow_first else (1.0, slow)
    plan = partition_backbone(
        _ctx(db, scales), 2, 2,
        heterogeneous=False, caches=PlannerCaches(), dp_kernel=kern,
    )
    layers = [stage.hi - stage.lo for stage in plan.down]
    slow_layers, fast_layers = (
        (layers[0], layers[1]) if slow_first else (layers[1], layers[0])
    )
    assert slow_layers <= fast_layers, (
        f"slow device (factor {slow:.3f}) got {slow_layers} layers vs "
        f"{fast_layers} on the nominal device"
    )
