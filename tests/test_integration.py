"""End-to-end integration tests across the full front-end + back-end."""

import numpy as np
import pytest

from repro.cluster import single_node
from repro.core import (
    DiffusionPipePlanner,
    PlannerOptions,
    extract_bubbles,
    lower_timeline,
    Op,
)
from repro.engine import SGD, InstructionEngine, SingleDeviceTrainer, clone_chain, mlp_chain
from repro.engine.equivalence import max_param_diff
from repro.models.zoo import stable_diffusion_v2_1, uniform_model
from repro.profiling import Profiler


def test_full_frontend_on_stable_diffusion():
    """Plan SD v2.1 on one node end to end and check the paper's
    qualitative claims hold on the resulting plan."""
    cluster = single_node(8)
    model = stable_diffusion_v2_1(self_conditioning=False)
    profile = Profiler(cluster).profile(model)
    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(
            max_stages=4, micro_batch_counts=(1, 2, 4), group_sizes=(2, 4),
            keep_timeline=True,
        ),
    )
    ev = planner.plan(256)
    plan = ev.plan
    # Near-complete bubble elimination.
    assert plan.bubble_ratio_filled < 0.10
    assert plan.bubble_ratio_filled < plan.bubble_ratio_unfilled
    # The NT part fits (mostly) in bubbles: leftover is a small share.
    assert plan.leftover_ms < 0.25 * plan.pipeline_ms
    # Memory fits on 80 GB devices.
    assert plan.memory is not None and plan.memory.fits
    # The retained timeline agrees with the plan's pipeline time.
    assert ev.timeline.makespan == pytest.approx(plan.pipeline_ms)


def test_planned_schedule_lowers_and_executes():
    """The planner's timeline lowers to instructions that the numeric
    engine executes to the exact same result as single-device training."""
    cluster = single_node(8)
    model = uniform_model(backbone_layers=6)
    profile = Profiler(cluster).profile(model)
    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(
            max_stages=2, micro_batch_counts=(2,), group_sizes=(2,),
            keep_timeline=True, check_memory=False,
            enable_bubble_filling=False,
        ),
    )
    ev = planner.evaluate(64, group_size=2, num_stages=2, num_micro=2)
    assert ev is not None and ev.timeline is not None
    streams = lower_timeline(ev.timeline)

    # Build a numeric model whose stage split mirrors the plan: the
    # planner cut the 6-layer backbone at some boundary; express the
    # same proportion over a 6-Dense chain (layer i <-> Dense i).
    rng = np.random.default_rng(3)
    dims = [4, 8, 8, 8, 8, 8, 2]
    chain = mlp_chain("m", dims, rng, activation="tanh")
    # mlp_chain interleaves Dense+act; map stage boundary in layers to
    # the Dense index in the chain (2 chain entries per Dense except last).
    cut_layers = ev.plan.partition.down[0].hi
    cut_chain = 2 * cut_layers
    ref = SingleDeviceTrainer(clone_chain(chain), optimizer=SGD(lr=0.05))
    eng = InstructionEngine(
        [chain.slice(0, cut_chain), chain.slice(cut_chain, len(chain.layers))],
        streams,
        optimizer_factory=lambda: SGD(lr=0.05),
    )
    x = rng.normal(size=(8, 4))
    y = rng.normal(size=(8, 2))
    eng.run({0: x[:4], 1: x[4:]}, {0: y[:4], 1: y[4:]})
    ref.step(x, y)
    got = np.concatenate([s.chain.param_vector() for s in eng.stages])
    assert max_param_diff(got, ref.chain.param_vector()) < 1e-12


def test_noisy_profile_still_plans():
    """Profiling noise (the paper's explanation for residual bubbles)
    degrades but does not break planning."""
    cluster = single_node(8)
    model = uniform_model()
    clean = Profiler(cluster).profile(model)
    noisy = Profiler(cluster, noise_std=0.05, seed=11).profile(model)
    opts = PlannerOptions(
        max_stages=2, micro_batch_counts=(2, 4), group_sizes=(2,),
        check_memory=False,
    )
    p_clean = DiffusionPipePlanner(model, cluster, clean, opts).plan(64)
    p_noisy = DiffusionPipePlanner(model, cluster, noisy, opts).plan(64)
    assert p_noisy.plan.throughput > 0
    # Same order of magnitude.
    assert 0.5 < p_noisy.plan.throughput / p_clean.plan.throughput < 2.0


def test_instruction_streams_have_nt_work_when_filled():
    cluster = single_node(8)
    model = uniform_model(encoder_layers=8, encoder_layer_ms=6.0)
    profile = Profiler(cluster).profile(model)
    planner = DiffusionPipePlanner(
        model, cluster, profile,
        options=PlannerOptions(
            max_stages=2, micro_batch_counts=(2,), group_sizes=(2,),
            keep_timeline=True, check_memory=False, min_bubble_ms=1.0,
        ),
    )
    ev = planner.evaluate(64, 2, 2, 2)
    assert ev is not None and ev.plan.fill is not None
    bubbles = extract_bubbles(ev.timeline, min_duration_ms=1.0)
    meta = {i: (b.start, b.devices) for i, b in enumerate(bubbles)}
    streams = lower_timeline(ev.timeline, ev.plan.fill.items, meta)
    nt_ops = [
        i for s in streams.values() for i in s if i.op == Op.NT_FORWARD
    ]
    assert nt_ops, "expected NT_FORWARD instructions from bubble filling"
