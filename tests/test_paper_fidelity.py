"""Paper-fidelity pins: constants and behaviours the paper specifies
explicitly.  These tests guard against silent drift from the paper."""

import pytest

from repro.core import VALID_LOCAL_BATCHES, DEFAULT_MIN_BUBBLE_MS
from repro.core.partition_cdm import CDM_COMM_SCALE
from repro.memory import (
    FROZEN_STATE_BYTES_PER_PARAM,
    TRAINABLE_STATE_BYTES_PER_PARAM,
)
from repro.models.zoo import (
    cdm_imagenet,
    cdm_lsun,
    controlnet_v1_0,
    stable_diffusion_v2_1,
)
from repro.schedule.bidirectional import BIDIRECTIONAL_COMM_SCALE


def test_partial_batch_menu_is_papers():
    """§5: 'We empirically use 4, 8, 12, 16, 24, 32, 48, 64 and 96 as
    the local batch size candidates.'"""
    assert VALID_LOCAL_BATCHES == (4, 8, 12, 16, 24, 32, 48, 64, 96)


def test_min_bubble_threshold_is_10ms():
    """§5 footnote 3: only bubbles longer than 10 ms are filled."""
    assert DEFAULT_MIN_BUBBLE_MS == 10.0


def test_bidirectional_comm_enlargement_is_2x():
    """§4.2: 'we reasonably enlarge the communication time ... by a
    factor of 2'."""
    assert CDM_COMM_SCALE == 2.0
    assert BIDIRECTIONAL_COMM_SCALE == 2.0


def test_mixed_precision_adam_state_bytes():
    """fp16 param + fp16 grad + fp32 master + 2x fp32 Adam moments."""
    assert TRAINABLE_STATE_BYTES_PER_PARAM == 16.0
    assert FROZEN_STATE_BYTES_PER_PARAM == 2.0


def test_table5_training_configurations():
    """Table 5: SD and ControlNet train with self-conditioning enabled,
    the CDMs without."""
    assert stable_diffusion_v2_1().self_conditioning
    assert controlnet_v1_0().self_conditioning
    assert not cdm_lsun().self_conditioning
    assert not cdm_imagenet().self_conditioning
    # Chen et al. 2022: activation probability 0.5.
    assert stable_diffusion_v2_1().self_conditioning_prob == 0.5


def test_cdm_imagenet_trains_backbones_2_and_3():
    """§6 Models: 'For CDM-ImageNet, we only train its second and third
    backbones'."""
    assert cdm_imagenet().backbone_names == ("sr_128", "sr_256")


def test_testbed_matches_paper():
    """§6 Test-bed: 8x p4de.24xlarge, A100-80GB, EFA 400 Gbps,
    NVSwitch 600 GBps."""
    from repro.cluster import EFA_400G, NVSWITCH, p4de_cluster

    cluster = p4de_cluster(8)
    assert cluster.world_size == 64
    assert cluster.devices_per_machine == 8
    assert cluster.device_spec.memory_bytes == 80e9
    assert NVSWITCH.bandwidth == pytest.approx(600e6)       # bytes/ms
    assert EFA_400G.bandwidth == pytest.approx(50e6)        # bytes/ms


def test_gpipe_paper_configuration():
    """§6 Baselines: GPipe evaluated with 2 stages and 4 micro-batches."""
    from repro.baselines import GPipeConfig

    cfg = GPipeConfig()
    assert cfg.num_stages == 2
    assert cfg.num_micro_batches == 4
