"""Self-conditioning numeric-engine tests (§4.3)."""

import numpy as np
import pytest

from repro.engine import (
    SGD,
    SelfConditionedPipelineTrainer,
    SelfConditionedTrainer,
    clone_chain,
    mlp_chain,
    self_conditioning_equivalence,
)
from repro.engine.equivalence import max_param_diff
from repro.errors import EngineError


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def test_equivalence_exact():
    assert self_conditioning_equivalence() < 1e-12


def test_equivalence_across_micro_counts():
    for micro in (1, 2, 4):
        assert self_conditioning_equivalence(num_micro=micro, batch=8) < 1e-12


def test_sc_changes_updates(rng):
    """Activating self-conditioning must change the computation
    (otherwise the schedule extension is vacuous)."""
    d_in, d_out = 4, 3
    chain = mlp_chain("sc", [d_in + d_out, 10, d_out], rng)
    x = rng.normal(size=(8, d_in))
    y = rng.normal(size=(8, d_out))
    on = SelfConditionedTrainer(clone_chain(chain), d_out, optimizer=SGD(lr=0.05))
    off = SelfConditionedTrainer(clone_chain(chain), d_out, optimizer=SGD(lr=0.05))
    on.step(x, y, active=True)
    off.step(x, y, active=False)
    assert max_param_diff(on.chain.param_vector(), off.chain.param_vector()) > 1e-8


def test_sc_wave_stores_no_activations(rng):
    """The SC pass contributes no gradients: training with SC active on
    a frozen-input estimate still produces finite, correct updates and
    the loss decreases."""
    d_in, d_out = 4, 2
    chain = mlp_chain("sc", [d_in + d_out, 16, d_out], rng)
    trainer = SelfConditionedPipelineTrainer(
        chain, [2], d_out, num_micro=2, optimizer_factory=lambda: SGD(lr=0.1)
    )
    x = rng.normal(size=(16, d_in))
    true_w = rng.normal(size=(d_in, d_out))
    y = x @ true_w
    first = trainer.step(x, y)
    for _ in range(40):
        last = trainer.step(x, y)
    assert last < first


def test_sc_validation(rng):
    chain = mlp_chain("sc", [6, 8, 2], rng)
    with pytest.raises(EngineError):
        SelfConditionedPipelineTrainer(chain, [2, 2], 2)
    SelfConditionedTrainer(chain, 2)
    with pytest.raises(EngineError):
        # conditioning batch mismatch
        from repro.engine.self_conditioning import _concat_condition

        _concat_condition(np.zeros((4, 3)), np.zeros((5, 2)))
