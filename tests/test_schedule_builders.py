"""1F1B / GPipe / bidirectional schedule-builder tests."""

import pytest

from repro.errors import ConfigurationError
from repro.schedule import (
    StageExec,
    TaskKind,
    build_1f1b,
    build_bidirectional,
    build_gpipe,
    simulate,
    validate_stages,
)


def _stages(S, f=10.0, b=20.0, comm=0.0, sync=0.0):
    return [
        StageExec(index=i, fwd_ms=f, bwd_ms=b, send_fwd_ms=comm,
                  send_bwd_ms=comm, sync_ms=sync)
        for i in range(S)
    ]


def _sim(tasks, S):
    return simulate(tasks, S)


def test_stage_exec_validation():
    with pytest.raises(ConfigurationError):
        StageExec(index=-1, fwd_ms=1, bwd_ms=1)
    with pytest.raises(ConfigurationError):
        StageExec(index=0, fwd_ms=-1, bwd_ms=1)
    with pytest.raises(ConfigurationError):
        StageExec(index=0, fwd_ms=1, bwd_ms=1, replicas=0)
    with pytest.raises(ConfigurationError):
        validate_stages([])
    with pytest.raises(ConfigurationError):
        validate_stages([StageExec(index=1, fwd_ms=1, bwd_ms=1)])
    s = StageExec(index=0, fwd_ms=2, bwd_ms=4)
    assert s.sc_fwd_ms == 2  # defaults to fwd


def test_1f1b_makespan_matches_theory():
    """Balanced stages, no comm: span = (M + S - 1) * (f + b)."""
    S, M, f, b = 4, 4, 10.0, 20.0
    tl = _sim(build_1f1b(_stages(S, f, b), M), S)
    assert tl.makespan == pytest.approx((M + S - 1) * (f + b))


def test_1f1b_bubble_ratio_matches_theory():
    S, M = 4, 4
    tl = _sim(build_1f1b(_stages(S), M), S)
    assert tl.bubble_ratio() == pytest.approx((S - 1) / (M + S - 1))


def test_1f1b_task_counts():
    S, M = 3, 2
    tasks = build_1f1b(_stages(S), M)
    kinds = {}
    for t in tasks:
        kinds[t.kind] = kinds.get(t.kind, 0) + 1
    assert kinds[TaskKind.FORWARD] == S * M
    assert kinds[TaskKind.BACKWARD] == S * M
    assert kinds[TaskKind.COMM] == 2 * (S - 1) * M
    assert kinds[TaskKind.SYNC] == S


def test_1f1b_memory_window():
    """Stage 0 may have at most S in-flight micro-batches: with M >> S
    its forwards are throttled by completed backwards."""
    S, M = 2, 6
    tl = _sim(build_1f1b(_stages(S), M), S)
    fwd_starts = sorted(
        iv.start
        for iv in tl.intervals
        if iv.task.kind == TaskKind.FORWARD and iv.task.meta["stage"] == 0
    )
    bwd_ends = sorted(
        iv.end
        for iv in tl.intervals
        if iv.task.kind == TaskKind.BACKWARD and iv.task.meta["stage"] == 0
    )
    # The (S+1)-th forward cannot start before the 1st backward ends.
    assert fwd_starts[S] >= bwd_ends[0]


def test_gpipe_all_forwards_before_backwards():
    S, M = 2, 4
    tl = _sim(build_gpipe(_stages(S), M), S)
    for dev in range(S):
        fwd_end = max(
            iv.end for iv in tl.intervals
            if iv.task.kind == TaskKind.FORWARD and iv.task.device == dev
        )
        bwd_start = min(
            iv.start for iv in tl.intervals
            if iv.task.kind == TaskKind.BACKWARD and iv.task.device == dev
        )
        assert bwd_start >= fwd_end


def test_gpipe_vs_1f1b_same_span_when_balanced():
    """With balanced stages and no comm, GPipe and 1F1B have the same
    critical path (they differ in memory, not time)."""
    S, M = 4, 4
    a = _sim(build_1f1b(_stages(S), M), S).makespan
    g = _sim(build_gpipe(_stages(S), M), S).makespan
    assert a == pytest.approx(g)


def test_self_conditioning_adds_forward_wave():
    S, M = 2, 2
    plain = build_1f1b(_stages(S), M)
    sc = build_1f1b(_stages(S), M, self_conditioning=True, feedback_ms=1.0)
    sc_kinds = [t for t in sc if t.kind == TaskKind.SC_FORWARD]
    assert len(sc_kinds) == S * M
    assert len(sc) > len(plain)
    tl_sc = _sim(sc, S)
    tl_plain = _sim(plain, S)
    assert tl_sc.makespan > tl_plain.makespan


def test_self_conditioning_feedback_ordering():
    """The main forward of a micro-batch on stage 0 starts only after
    the SC wave reaches the last stage and feeds back."""
    S, M = 3, 1
    tl = _sim(build_1f1b(_stages(S), M, self_conditioning=True,
                         feedback_ms=5.0), S)
    sc_last_end = max(
        iv.end for iv in tl.intervals if iv.task.kind == TaskKind.SC_FORWARD
        and iv.task.meta["stage"] == S - 1
    )
    main_first = min(
        iv.start for iv in tl.intervals if iv.task.kind == TaskKind.FORWARD
        and iv.task.meta["stage"] == 0
    )
    assert main_first >= sc_last_end + 5.0


def test_sync_runs_after_last_backward():
    S, M = 2, 2
    tl = _sim(build_1f1b(_stages(S, sync=7.0), M), S)
    for dev in range(S):
        syncs = [iv for iv in tl.intervals if iv.task.kind == TaskKind.SYNC
                 and iv.task.device == dev]
        assert len(syncs) == 1
        last_bwd = max(
            iv.end for iv in tl.intervals
            if iv.task.kind == TaskKind.BACKWARD and iv.task.device == dev
        )
        assert syncs[0].start >= last_bwd
    assert tl.makespan >= 7.0 + (M + S - 1) * 30.0


def test_bidirectional_combines_two_pipelines():
    S, M = 2, 2
    tasks = build_bidirectional(_stages(S, f=10, b=20), _stages(S, f=10, b=20), M, M)
    tl = _sim(tasks, S)
    # Both pipelines' work lands on both devices.
    for dev in range(S):
        ids = {iv.task.task_id for iv in tl.intervals if iv.task.device == dev}
        assert any(i.startswith("dn/") for i in ids)
        assert any(i.startswith("up/") for i in ids)
    # Utilisation beats a single unidirectional pipeline's.
    single = _sim(build_1f1b(_stages(S), M), S)
    assert tl.bubble_ratio() < single.bubble_ratio()


def test_bidirectional_stage_count_mismatch():
    with pytest.raises(ConfigurationError):
        build_bidirectional(_stages(2), _stages(3), 2, 2)


def test_bidirectional_colocated_replica_mismatch():
    """Chain position i hosts down stage i and up stage S-1-i on the
    same devices, so their replica counts must agree."""
    down = [
        StageExec(index=0, fwd_ms=1, bwd_ms=2, replicas=2),
        StageExec(index=1, fwd_ms=1, bwd_ms=2, replicas=1),
    ]
    up_ok = [
        StageExec(index=0, fwd_ms=1, bwd_ms=2, replicas=1),
        StageExec(index=1, fwd_ms=1, bwd_ms=2, replicas=2),
    ]
    build_bidirectional(down, up_ok, 2, 2)  # mirrored counts: fine
    up_bad = [
        StageExec(index=0, fwd_ms=1, bwd_ms=2, replicas=2),
        StageExec(index=1, fwd_ms=1, bwd_ms=2, replicas=1),
    ]
    with pytest.raises(ConfigurationError, match="co-located"):
        build_bidirectional(down, up_bad, 2, 2)


def test_comm_scale_doubles_transfers():
    S, M = 2, 1
    t1 = build_1f1b(_stages(S, comm=4.0), M, comm_scale=1.0)
    t2 = build_1f1b(_stages(S, comm=4.0), M, comm_scale=2.0)
    c1 = next(t for t in t1 if t.kind == TaskKind.COMM)
    c2 = next(t for t in t2 if t.kind == TaskKind.COMM)
    assert c2.duration == 2 * c1.duration


def test_invalid_micro_batches():
    with pytest.raises(ConfigurationError):
        build_1f1b(_stages(2), 0)
    with pytest.raises(ConfigurationError):
        build_gpipe(_stages(2), -1)
