"""Golden-baseline gate for the schedule-family refactor.

The ``ScheduleFamily`` registry re-routes every schedule build
(``onef1b``, ``bidirectional``, ``gpipe``) through a common code path.
This test pins the refactor to the exact pre-refactor numbers: the
fig. 13a / 13c / 15 sweep outputs were captured at the commit *before*
the registry landed (``python tests/test_golden_schedules.py
--capture``) and every run since must reproduce them bit-for-bit
(floats compared via ``float.hex``).

If this test fails after an intentional behaviour change to the
planner or cost model, re-capture the goldens in the same commit and
say so in the commit message; it must never be re-captured to paper
over an unintended diff from a schedule-construction refactor.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_sweeps.json"

#: trimmed scale grid: 8 and 16 GPUs cover both the single-machine and
#: the multi-node planner paths while keeping the gate fast.
MACHINE_COUNTS = (1, 2)
FIG15_BATCHES = (256, 384)


def _hex(x: float) -> str:
    return float(x).hex()


def _cells_to_json(cells) -> list[list]:
    return [
        [c.system, c.gpus, c.batch, _hex(c.throughput), c.oom, c.label]
        for c in cells
    ]


def _ablation_to_json(result) -> dict:
    return {
        name: {str(b): _hex(t) for b, t in by_batch.items()}
        for name, by_batch in result.items()
    }


def compute_golden() -> dict:
    """Re-run the fig. 13a/13c/15 computations the goldens were cut from."""
    from repro.cluster import single_node
    from repro.harness import (
        CDM_LSUN_BATCHES,
        SD_BATCHES,
        CDMThroughputSweep,
        ThroughputSweep,
        ablation_throughputs,
    )
    from repro.models.zoo import (
        cdm_lsun,
        controlnet_v1_0,
        stable_diffusion_v2_1,
    )
    from repro.profiling import Profiler

    out: dict = {}
    for key, sc in (("fig13a", False), ("fig13a_sc", True)):
        sweep = ThroughputSweep(
            lambda: stable_diffusion_v2_1(self_conditioning=sc),
            machine_counts=MACHINE_COUNTS,
            batches=SD_BATCHES,
        )
        out[key] = _cells_to_json(sweep.run())
    sweep = CDMThroughputSweep(
        cdm_lsun, machine_counts=MACHINE_COUNTS, batches=CDM_LSUN_BATCHES
    )
    out["fig13c"] = _cells_to_json(sweep.run())

    cluster8 = single_node(8)
    for key, factory in (
        ("fig15_sd", lambda: stable_diffusion_v2_1(self_conditioning=False)),
        ("fig15_controlnet", lambda: controlnet_v1_0(self_conditioning=False)),
    ):
        model = factory()
        profile = Profiler(cluster8).profile(model)
        out[key] = _ablation_to_json(
            ablation_throughputs(model, cluster8, profile, batches=FIG15_BATCHES)
        )
    return out


def test_sweeps_match_pre_refactor_goldens():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = compute_golden()
    assert current.keys() == golden.keys()
    for key in golden:
        assert current[key] == golden[key], (
            f"{key}: registry-built schedules diverged from the "
            "pre-refactor builders (bit-identity gate)"
        )


if __name__ == "__main__":
    import sys

    if "--capture" not in sys.argv:
        sys.exit("usage: python tests/test_golden_schedules.py --capture")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_golden(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
