"""NumPy layer library tests, including gradient checks."""

import numpy as np
import pytest

from repro.engine import Chain, Dense, ReLU, Tanh, mlp_chain, mse_loss
from repro.engine.tensor_nn import add_grads, frozen_encoder
from repro.errors import EngineError


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_dense_shapes_and_grad(rng):
    layer = Dense("fc", 4, 3, rng)
    x = rng.normal(size=(5, 4))
    y, cache = layer.forward(x)
    assert y.shape == (5, 3)
    dy = rng.normal(size=(5, 3))
    dx, grads = layer.backward(dy, cache)
    assert dx.shape == x.shape
    assert grads["W"].shape == (4, 3)
    assert grads["b"].shape == (3,)

    # Check dW against numerical differentiation of sum(dy * y).
    def loss():
        out, _ = layer.forward(x)
        return float(np.sum(dy * out))

    num = numerical_grad(loss, layer.params["W"])
    assert np.allclose(num, grads["W"], atol=1e-5)
    num_b = numerical_grad(loss, layer.params["b"])
    assert np.allclose(num_b, grads["b"], atol=1e-5)


def test_dense_bad_input(rng):
    layer = Dense("fc", 4, 3, rng)
    with pytest.raises(EngineError):
        layer.forward(rng.normal(size=(5, 7)))


def test_activations_grad(rng):
    for act in (ReLU("r"), Tanh("t")):
        x = rng.normal(size=(6, 4))
        y, cache = act.forward(x)
        dy = rng.normal(size=y.shape)
        dx, grads = act.backward(dy, cache)
        assert grads == {}

        def loss(act=act, x=x, dy=dy):
            out, _ = act.forward(x)
            return float(np.sum(dy * out))

        num = numerical_grad(loss, x)
        assert np.allclose(num, dx, atol=1e-5)


def test_chain_forward_backward_consistency(rng):
    chain = mlp_chain("m", [4, 6, 3], rng)
    x = rng.normal(size=(8, 4))
    y = rng.normal(size=(8, 3))
    out, caches = chain.forward(x)
    loss, dy = mse_loss(out, y)
    dx, grads = chain.backward(dy, caches)
    assert dx.shape == x.shape
    # Every Dense layer reports gradients.
    dense_names = [l.name for l in chain.layers if l.params]
    assert set(grads) == set(dense_names)

    # End-to-end numerical check on the first layer's weights.
    W = chain.layers[0].params["W"]

    def full_loss():
        out, _ = chain.forward(x)
        return mse_loss(out, y)[0]

    num = numerical_grad(full_loss, W)
    assert np.allclose(num, grads[chain.layers[0].name]["W"], atol=1e-5)


def test_chain_slice_shares_params(rng):
    chain = mlp_chain("m", [4, 6, 3], rng)
    part = chain.slice(0, 2)
    assert part.layers[0] is chain.layers[0]
    with pytest.raises(EngineError):
        chain.slice(2, 2)
    with pytest.raises(EngineError):
        Chain([])


def test_mse_loss_gradient_scale(rng):
    pred = rng.normal(size=(4, 3))
    target = rng.normal(size=(4, 3))
    loss, dpred = mse_loss(pred, target)
    assert loss == pytest.approx(float(np.mean((pred - target) ** 2)))
    assert np.allclose(dpred, 2 * (pred - target) / pred.size)
    with pytest.raises(EngineError):
        mse_loss(pred, target[:2])


def test_frozen_encoder_not_trainable(rng):
    enc = frozen_encoder("e", 4, 3, rng)
    assert all(not l.trainable for l in enc.layers)
    x = rng.normal(size=(5, 4))
    out, _ = enc.forward(x)
    assert out.shape == (5, 3)


def test_add_grads_accumulates(rng):
    a = {"l": {"W": np.ones((2, 2))}}
    add_grads(a, {"l": {"W": np.full((2, 2), 2.0)}})
    assert np.allclose(a["l"]["W"], 3.0)
    add_grads(a, {"m": {"b": np.ones(2)}})
    assert "m" in a


def test_param_vector_deterministic(rng):
    chain = mlp_chain("m", [3, 4, 2], rng)
    v1 = chain.param_vector()
    v2 = chain.param_vector()
    assert np.array_equal(v1, v2)
    assert v1.size == 3 * 4 + 4 + 4 * 2 + 2


def test_mlp_chain_validation(rng):
    with pytest.raises(EngineError):
        mlp_chain("m", [4], rng)
    with pytest.raises(EngineError):
        mlp_chain("m", [4, 3], rng, activation="gelu")
