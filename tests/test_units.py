"""Unit helpers."""

import pytest

from repro import units


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3
    assert units.kb(2) == 2048
    assert units.mb(1) == units.MB
    assert units.gb(3) == 3 * units.GB


def test_time_conversions():
    assert units.seconds(1500.0) == 1.5
    assert units.ms_from_seconds(2.0) == 2000.0


def test_bandwidth_conversions():
    # 400 Gbit/s == 50e6 bytes per ms.
    assert units.gbps_to_bytes_per_ms(400) == pytest.approx(50e6)
    # 600 GB/s == 600e6 bytes per ms.
    assert units.gBps_to_bytes_per_ms(600) == pytest.approx(600e6)
    # 312 TFLOP/s == 3.12e11 FLOP per ms.
    assert units.tflops_to_flops_per_ms(312) == pytest.approx(3.12e11)


def test_fmt_ms():
    assert units.fmt_ms(2500.0) == "2.50 s"
    assert units.fmt_ms(12.345) == "12.35 ms"
    assert units.fmt_ms(0.5) == "500.0 us"


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2.00 KiB"
    assert units.fmt_bytes(3 * units.MB) == "3.00 MiB"
    assert units.fmt_bytes(1.5 * units.GB) == "1.50 GiB"
