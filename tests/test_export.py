"""Export (trace + plan serialisation) tests."""

import json

import pytest

from repro.core import DiffusionPipePlanner, PlannerOptions
from repro.core.plan import FillItem
from repro.errors import ConfigurationError
from repro.export import (
    load_plan,
    partition_from_dict,
    partition_to_dict,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    timeline_to_chrome_trace,
)
from repro.schedule import StageExec, build_1f1b, simulate


def _timeline():
    stages = [
        StageExec(index=i, fwd_ms=10, bwd_ms=20, send_fwd_ms=1,
                  send_bwd_ms=1, sync_ms=3)
        for i in range(2)
    ]
    return simulate(build_1f1b(stages, 2), 2)


def _plan(cluster8, uniform, uniform_profile):
    planner = DiffusionPipePlanner(
        uniform, cluster8, uniform_profile,
        options=PlannerOptions(
            max_stages=2, micro_batch_counts=(2,), group_sizes=(2,),
            check_memory=True,
        ),
    )
    return planner.evaluate(64, 2, 2, 2).plan


def test_chrome_trace_structure(tmp_path):
    tl = _timeline()
    path = tmp_path / "trace.json"
    trace = timeline_to_chrome_trace(tl, path=str(path))
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    # All compute tasks present: 2 stages x 2 micro x (fwd + bwd) = 8.
    device_events = [e for e in events if e["tid"].startswith("device")]
    assert len(device_events) >= 8
    # Round-trips through JSON on disk.
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == len(events)
    # Times are microseconds (10 ms forward -> 10000 us).
    fwd = next(e for e in events if e["name"].startswith("fwd[0,0]"))
    assert fwd["dur"] == pytest.approx(10_000)


def test_chrome_trace_with_fill_items():
    tl = _timeline()
    items = [FillItem("enc", 2, 32.0, 6.0, bubble_index=0, partial=True)]
    trace = timeline_to_chrome_trace(tl, items, {0: (5.0, (1,))})
    nt = [e for e in trace["traceEvents"] if e["name"].startswith("nt:")]
    assert len(nt) == 1
    assert nt[0]["args"]["partial"] is True
    with pytest.raises(ConfigurationError):
        timeline_to_chrome_trace(tl, items, None)
    with pytest.raises(ConfigurationError):
        timeline_to_chrome_trace(tl, items, {9: (0.0, (0,))})


def test_plan_roundtrip(tmp_path, cluster8, uniform, uniform_profile):
    plan = _plan(cluster8, uniform, uniform_profile)
    d = plan_to_dict(plan)
    back = plan_from_dict(json.loads(json.dumps(d)))
    assert back == plan

    path = tmp_path / "plan.json"
    save_plan(plan, str(path))
    assert load_plan(str(path)) == plan


def test_partition_roundtrip(cluster8, uniform, uniform_profile):
    plan = _plan(cluster8, uniform, uniform_profile)
    p = plan.partition
    assert partition_from_dict(partition_to_dict(p)) == p


def test_fill_telemetry_roundtrip(cluster8, uniform, uniform_profile):
    """states_pruned / beam_peak survive (de)serialisation exactly."""
    from dataclasses import replace

    plan = _plan(cluster8, uniform, uniform_profile)
    assert plan.fill is not None
    plan = replace(
        plan, fill=replace(plan.fill, strategy="lookahead",
                           states_pruned=17, beam_peak=42)
    )
    d = json.loads(json.dumps(plan_to_dict(plan)))
    assert d["fill"]["states_pruned"] == 17
    assert d["fill"]["beam_peak"] == 42
    back = plan_from_dict(d)
    assert back.fill.states_pruned == 17
    assert back.fill.beam_peak == 42
    assert back == plan


def test_pre_telemetry_exports_still_load(cluster8, uniform, uniform_profile):
    """Plans written before the lookahead-telemetry fields (and before
    the strategy refactor) deserialise with zeroed defaults."""
    plan = _plan(cluster8, uniform, uniform_profile)
    d = plan_to_dict(plan)
    # Strip every post-refactor fill key, as an old export would lack them.
    for key in ("strategy", "candidates_dropped", "per_bubble",
                "states_pruned", "beam_peak"):
        d["fill"].pop(key, None)
    back = plan_from_dict(json.loads(json.dumps(d)))
    assert back.fill.strategy == "greedy"
    assert back.fill.candidates_dropped == 0
    assert back.fill.per_bubble == ()
    assert back.fill.states_pruned == 0
    assert back.fill.beam_peak == 0
    assert back.fill.leftover_ms == plan.fill.leftover_ms
    assert back.fill.items == plan.fill.items
