"""Cross-iteration composition tests (§3.2)."""

import pytest

from repro.core import (
    FillReport,
    compose_iteration,
    extract_bubbles,
    packed_fill_strict_credit,
    strict_idle_in_bubbles,
)
from repro.core.plan import BubbleUtilization, FillItem
from repro.schedule import StageExec, Task, TaskKind, Timeline, build_1f1b, simulate
from repro.schedule import device_resource
from repro.schedule.timeline import Interval


def _timeline(S=2, M=2, f=10.0, b=20.0):
    stages = [StageExec(index=i, fwd_ms=f, bwd_ms=b) for i in range(S)]
    return simulate(build_1f1b(stages, M), S)


def _report(filled=30.0, bubble=60.0, leftover=0.0):
    return FillReport(
        items=(FillItem("e", 0, 64, filled, 0),),
        filled_device_time_ms=filled,
        bubble_device_time_ms=bubble,
        leftover_ms=leftover,
        num_bubbles=1,
        complete=leftover == 0.0,
    )


def test_unfilled_iteration_is_serial():
    tl = _timeline()
    est = compose_iteration(tl, None, nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan + 100.0)
    assert est.leftover_ms == 100.0
    assert est.bubble_ratio_filled == est.bubble_ratio_unfilled


def test_filled_iteration_hides_nt():
    tl = _timeline()
    # The timeline's idle device-time is 60 ms; fill it completely.
    est = compose_iteration(tl, _report(filled=60.0, leftover=0.0),
                            nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan)
    assert est.warmup_extra_ms == 100.0
    assert est.saved_ms == 100.0
    assert est.bubble_ratio_filled == 0.0
    assert est.bubble_ratio_filled < est.bubble_ratio_unfilled


def test_leftover_appends_to_iteration():
    tl = _timeline()
    est = compose_iteration(tl, _report(leftover=25.0), nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan + 25.0)
    assert est.saved_ms == pytest.approx(75.0)


def test_ratio_accounting_with_devices():
    tl = _timeline()
    est2 = compose_iteration(tl, _report(), nt_total_ms=100.0, total_devices=2)
    est4 = compose_iteration(tl, _report(), nt_total_ms=100.0, total_devices=4)
    # Same idle time spread over more devices -> smaller ratio.
    assert est4.bubble_ratio_filled < est2.bubble_ratio_filled


def test_fill_report_fraction():
    rep = _report(filled=30.0, bubble=60.0)
    assert rep.fill_fraction == pytest.approx(0.5)
    empty = FillReport(
        items=(), filled_device_time_ms=0.0, bubble_device_time_ms=0.0,
        leftover_ms=0.0, num_bubbles=0, complete=True,
    )
    assert empty.fill_fraction == 0.0


# -- view-consistent filled bubble-ratio (sync-heavy regression) --------------------


def _iv(start, end, dev, kind=TaskKind.FORWARD):
    task = Task(
        task_id=f"{kind.value}@{dev}:{start}", resource=device_resource(dev),
        duration=end - start, kind=kind, device=dev,
    )
    return Interval(start, end, task)


def _sync_heavy_timeline():
    """dev0: compute [0,10), a sub-threshold strict-idle gap [10,18),
    compute [18,30), then a 70 ms gradient sync; dev1 busy throughout.
    Strict idle = 8 ms (outside any fillable bubble); the only fillable
    bubble is the sync span [30,100)."""
    return Timeline(
        [
            _iv(0, 10, 0),
            _iv(18, 30, 0),
            _iv(30, 100, 0, TaskKind.SYNC),
            _iv(0, 100, 1),
        ],
        num_devices=2,
    )


def test_strict_idle_in_bubbles_overlap():
    tl = _sync_heavy_timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=10.0, include_sync_spans=True)
    assert [(b.start, b.end) for b in bubbles] == [(30.0, 100.0)]
    # The sync bubble contains no strict idle at all...
    assert strict_idle_in_bubbles(tl, bubbles) == 0.0
    # ...while with the threshold lowered the 8 ms strict gap is inside.
    all_bubbles = extract_bubbles(tl, min_duration_ms=0.0,
                                  include_sync_spans=True)
    assert strict_idle_in_bubbles(tl, all_bubbles) == pytest.approx(8.0)


def test_sync_heavy_fill_does_not_clamp_ratio_to_zero():
    """Work overlapped with gradient sync must not erase the strict-idle
    gap that was never fillable (the old accounting clamped to 0)."""
    tl = _sync_heavy_timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=10.0, include_sync_spans=True)
    assert tl.bubble_device_time() == pytest.approx(8.0)  # strict view
    fill = FillReport(
        items=(FillItem("e", 0, 64, 50.0, 0),),
        filled_device_time_ms=50.0,          # all of it rides the sync span
        bubble_device_time_ms=70.0,
        leftover_ms=0.0,
        num_bubbles=1,
        complete=True,
    )
    est = compose_iteration(tl, fill, nt_total_ms=60.0, bubbles=bubbles)
    # 8 ms of strict idle remain: it was outside the fillable pool.
    assert est.bubble_ratio_filled == pytest.approx(
        8.0 / (est.iteration_ms * 2)
    )
    assert est.bubble_ratio_filled > 0.0
    # Without bubble metadata the historical (clamping) accounting applies.
    est_legacy = compose_iteration(tl, fill, nt_total_ms=60.0)
    assert est_legacy.bubble_ratio_filled == 0.0


def test_fill_within_strict_capacity_keeps_historical_accounting():
    """When the filled time fits the strict capacity inside the bubbles,
    the refined accounting reduces to the historical subtraction."""
    tl = _timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=0.0, include_sync_spans=True)
    rep = _report(filled=30.0, bubble=60.0)
    with_bubbles = compose_iteration(tl, rep, nt_total_ms=100.0, bubbles=bubbles)
    without = compose_iteration(tl, rep, nt_total_ms=100.0)
    assert with_bubbles.bubble_ratio_filled == without.bubble_ratio_filled


# -- placement-aware per-bubble strict accounting ----------------------------------


def _sync_prefix_timeline():
    """dev0: compute [0,10), a 60 ms gradient sync [10,70), strict idle
    [70,110), compute [110,120); dev1 busy throughout.  The fillable
    bubble is [10,110) — a 60 ms sync *prefix* followed by 40 ms of
    strict idle — so work packed from the bubble start rides the sync
    span first."""
    return Timeline(
        [
            _iv(0, 10, 0),
            _iv(10, 70, 0, TaskKind.SYNC),
            _iv(110, 120, 0),
            _iv(0, 120, 1),
        ],
        num_devices=2,
    )


def _placed_report(filled_ms, bubbles):
    per_bubble = tuple(
        BubbleUtilization(
            bubble_index=i, duration_ms=b.duration, weight=b.weight,
            filled_ms=filled_ms,
        )
        for i, b in enumerate(bubbles)
    )
    return FillReport(
        items=(FillItem("e", 0, 64, filled_ms, 0),),
        filled_device_time_ms=filled_ms,
        bubble_device_time_ms=sum(b.device_time for b in bubbles),
        leftover_ms=0.0,
        num_bubbles=len(bubbles),
        complete=True,
        per_bubble=per_bubble,
    )


def test_packed_credit_intersects_strict_spans():
    tl = _sync_prefix_timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=10.0, include_sync_spans=True)
    assert [(b.start, b.end) for b in bubbles] == [(10.0, 110.0)]
    # A 50 ms fill packs [10, 60): entirely on the sync span.
    assert packed_fill_strict_credit(tl, bubbles, _placed_report(50.0, bubbles)) == 0.0
    # A 70 ms fill packs [10, 80): 10 ms spill onto the strict idle.
    assert packed_fill_strict_credit(
        tl, bubbles, _placed_report(70.0, bubbles)
    ) == pytest.approx(10.0)
    # A full 100 ms fill covers all 40 ms of strict idle.
    assert packed_fill_strict_credit(
        tl, bubbles, _placed_report(100.0, bubbles)
    ) == pytest.approx(40.0)


def test_work_on_strict_idle_first_overstated_utilization():
    """The regression the placement-aware accounting exists for: a fill
    that rides a sync prefix removes *no* strict idle, but the
    work-on-strict-idle-first assumption credited it against the strict
    capacity and reported the bubble as (partially) utilized."""
    tl = _sync_prefix_timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=10.0, include_sync_spans=True)
    assert tl.bubble_device_time() == pytest.approx(40.0)  # strict view
    placed = _placed_report(50.0, bubbles)  # packs [10, 60): sync only
    est = compose_iteration(tl, placed, nt_total_ms=60.0, bubbles=bubbles)
    # All 40 ms of strict idle remain: nothing was placed on it.
    assert est.bubble_ratio_filled == pytest.approx(40.0 / (est.iteration_ms * 2))
    # The capacity-capped legacy path (no per-bubble placement data)
    # would have credited min(50, 40) = 40 ms — utilization overstated.
    legacy = FillReport(
        items=placed.items,
        filled_device_time_ms=placed.filled_device_time_ms,
        bubble_device_time_ms=placed.bubble_device_time_ms,
        leftover_ms=0.0, num_bubbles=1, complete=True,
    )
    est_legacy = compose_iteration(tl, legacy, nt_total_ms=60.0, bubbles=bubbles)
    assert est_legacy.bubble_ratio_filled == 0.0
    assert est.bubble_ratio_filled > est_legacy.bubble_ratio_filled


def test_packed_credit_reduces_to_historical_on_sync_free_bubbles():
    """Sync-free bubbles: every packed window lies on strict idle, so
    the placement-aware credit equals the filled device-time and the
    ratio matches the historical subtraction bit for bit."""
    tl = _timeline()
    bubbles = extract_bubbles(tl, min_duration_ms=0.0, include_sync_spans=True)
    filled = 10.0
    per_bubble = tuple(
        BubbleUtilization(bubble_index=i, duration_ms=b.duration,
                          weight=b.weight,
                          filled_ms=filled if i == 0 else 0.0)
        for i, b in enumerate(bubbles)
    )
    placed = FillReport(
        items=(FillItem("e", 0, 64, filled, 0),),
        filled_device_time_ms=filled * bubbles[0].weight,
        bubble_device_time_ms=sum(b.device_time for b in bubbles),
        leftover_ms=0.0, num_bubbles=len(bubbles), complete=True,
        per_bubble=per_bubble,
    )
    assert packed_fill_strict_credit(tl, bubbles, placed) == pytest.approx(
        placed.filled_device_time_ms
    )
    est = compose_iteration(tl, placed, nt_total_ms=100.0, bubbles=bubbles)
    legacy = FillReport(
        items=placed.items,
        filled_device_time_ms=placed.filled_device_time_ms,
        bubble_device_time_ms=placed.bubble_device_time_ms,
        leftover_ms=0.0, num_bubbles=len(bubbles), complete=True,
    )
    est_legacy = compose_iteration(tl, legacy, nt_total_ms=100.0, bubbles=bubbles)
    assert est.bubble_ratio_filled == est_legacy.bubble_ratio_filled
