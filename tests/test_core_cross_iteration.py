"""Cross-iteration composition tests (§3.2)."""

import pytest

from repro.core import FillReport, compose_iteration
from repro.core.plan import FillItem
from repro.schedule import StageExec, build_1f1b, simulate


def _timeline(S=2, M=2, f=10.0, b=20.0):
    stages = [StageExec(index=i, fwd_ms=f, bwd_ms=b) for i in range(S)]
    return simulate(build_1f1b(stages, M), S)


def _report(filled=30.0, bubble=60.0, leftover=0.0):
    return FillReport(
        items=(FillItem("e", 0, 64, filled, 0),),
        filled_device_time_ms=filled,
        bubble_device_time_ms=bubble,
        leftover_ms=leftover,
        num_bubbles=1,
        complete=leftover == 0.0,
    )


def test_unfilled_iteration_is_serial():
    tl = _timeline()
    est = compose_iteration(tl, None, nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan + 100.0)
    assert est.leftover_ms == 100.0
    assert est.bubble_ratio_filled == est.bubble_ratio_unfilled


def test_filled_iteration_hides_nt():
    tl = _timeline()
    # The timeline's idle device-time is 60 ms; fill it completely.
    est = compose_iteration(tl, _report(filled=60.0, leftover=0.0),
                            nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan)
    assert est.warmup_extra_ms == 100.0
    assert est.saved_ms == 100.0
    assert est.bubble_ratio_filled == 0.0
    assert est.bubble_ratio_filled < est.bubble_ratio_unfilled


def test_leftover_appends_to_iteration():
    tl = _timeline()
    est = compose_iteration(tl, _report(leftover=25.0), nt_total_ms=100.0)
    assert est.iteration_ms == pytest.approx(tl.makespan + 25.0)
    assert est.saved_ms == pytest.approx(75.0)


def test_ratio_accounting_with_devices():
    tl = _timeline()
    est2 = compose_iteration(tl, _report(), nt_total_ms=100.0, total_devices=2)
    est4 = compose_iteration(tl, _report(), nt_total_ms=100.0, total_devices=4)
    # Same idle time spread over more devices -> smaller ratio.
    assert est4.bubble_ratio_filled < est2.bubble_ratio_filled


def test_fill_report_fraction():
    rep = _report(filled=30.0, bubble=60.0)
    assert rep.fill_fraction == pytest.approx(0.5)
    empty = FillReport(
        items=(), filled_device_time_ms=0.0, bubble_device_time_ms=0.0,
        leftover_ms=0.0, num_bubbles=0, complete=True,
    )
    assert empty.fill_fraction == 0.0
