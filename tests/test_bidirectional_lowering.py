"""Instruction lowering of bidirectional (CDM) timelines."""

from repro.core import Op, lower_timeline
from repro.schedule import StageExec, build_bidirectional, simulate


def _stages(S=2, f=10.0, b=20.0):
    return [
        StageExec(index=i, fwd_ms=f, bwd_ms=b, send_fwd_ms=1,
                  send_bwd_ms=1, sync_ms=2)
        for i in range(S)
    ]


def test_bidirectional_timeline_lowers_per_device():
    tasks = build_bidirectional(_stages(), _stages(), 2, 2)
    tl = simulate(tasks, 2)
    streams = lower_timeline(tl)
    assert set(streams) == {0, 1}
    for dev, stream in streams.items():
        ops = [i.op for i in stream]
        # Each device runs forwards/backwards of both pipelines:
        # 2 pipelines x 2 micro-batches each.
        assert ops.count(Op.FORWARD) == 4
        assert ops.count(Op.BACKWARD) == 4
        # Two all-reduces: one per pipeline's resident stage.
        assert ops.count(Op.ALLREDUCE_GRADS) == 2
        assert ops[-1] == Op.OPTIMIZER_STEP


def test_bidirectional_send_recv_symmetry():
    tasks = build_bidirectional(_stages(), _stages(), 2, 2)
    tl = simulate(tasks, 2)
    streams = lower_timeline(tl)
    sends = sum(1 for s in streams.values() for i in s if i.op == Op.SEND)
    recvs = sum(1 for s in streams.values() for i in s if i.op == Op.RECV)
    assert sends == recvs
    # Down pipeline ships 0->1, up pipeline 1->0: both devices send.
    assert any(i.op == Op.SEND for i in streams[0])
    assert any(i.op == Op.SEND for i in streams[1])
