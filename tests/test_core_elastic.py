"""Elastic events, session warm-reuse, and cluster-keyed cache hygiene."""

from __future__ import annotations

import pytest

from repro.cluster import DeviceSpec, single_node
from repro.cluster.topology import ClusterSpec, LinkSpec
from repro.core import (
    DiffusionPipePlanner,
    ElasticEvent,
    ElasticSession,
    PlannerCaches,
    PlannerOptions,
)
from repro.core.elastic import apply_event
from repro.errors import ConfigurationError


def _options(**kw):
    base = dict(
        max_stages=4,
        micro_batch_counts=(1, 2, 4),
        group_sizes=(2, 4),
        check_memory=False,
    )
    base.update(kw)
    return PlannerOptions(**base)


# -- events -----------------------------------------------------------------


def test_event_validation():
    with pytest.raises(ConfigurationError, match="unknown elastic event"):
        ElasticEvent("reboot")
    with pytest.raises(ConfigurationError, match="at least one machine"):
        ElasticEvent("join", machines=0)
    with pytest.raises(ConfigurationError, match="only applies to joining"):
        ElasticEvent("leave", speed_factor=0.5)
    with pytest.raises(ConfigurationError, match="must be positive"):
        ElasticEvent("join", speed_factor=0.0)


def test_leave_drops_overrides_on_departed_ranks():
    cluster = ClusterSpec(
        num_machines=2,
        devices_per_machine=2,
        speed_factors={1: 0.5, 3: 0.25},
        device_specs={2: DeviceSpec(name="small", memory_bytes=1e9)},
        link_overrides={(0, 1): LinkSpec(bandwidth=1e6, latency=1.0)},
    )
    after = apply_event(cluster, ElasticEvent("leave"))
    assert after.num_machines == 1
    # Rank 1 survives with its factor; ranks 2/3 and the cross-machine
    # link left with their machine.
    assert after.speed_factors == ((1, 0.5),)
    assert after.device_specs == ()
    assert after.link_overrides == ()


def test_join_tags_new_ranks_with_speed_factor():
    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    after = apply_event(
        cluster, ElasticEvent("join", speed_factor=0.5)
    )
    assert after.num_machines == 2
    assert after.speed_factors == ((2, 0.5), (3, 0.5))
    # A nominal-speed join is a pure membership change.
    assert apply_event(cluster, ElasticEvent("join")).speed_factors == ()


def test_leave_join_roundtrip_restores_identity():
    cluster = ClusterSpec(num_machines=3, devices_per_machine=2)
    churned = apply_event(cluster, ElasticEvent("leave"))
    assert churned != cluster
    restored = apply_event(churned, ElasticEvent("join"))
    assert restored == cluster
    assert hash(restored) == hash(cluster)


def test_leave_cannot_empty_the_cluster():
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    with pytest.raises(ConfigurationError, match="cannot remove"):
        apply_event(cluster, ElasticEvent("leave", machines=2))


# -- session ----------------------------------------------------------------


def test_session_weak_scales_the_batch(uniform, uniform_profile):
    session = ElasticSession(
        uniform,
        ClusterSpec(num_machines=2, devices_per_machine=2),
        batch_per_device=16.0,
        profile=uniform_profile,
        options=_options(group_sizes=(2,)),
        caches=PlannerCaches(),
    )
    assert session.global_batch == 64.0
    session.apply(ElasticEvent("leave"))
    assert session.global_batch == 32.0
    assert session.events == [ElasticEvent("leave")]
    ev = session.replan()
    assert ev.plan.global_batch == 32.0
    # The per-group batch is world-independent under weak scaling.
    assert ev.plan.partition.batch_per_group == 32.0


def test_session_replan_tracks_membership(uniform, uniform_profile):
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    session = ElasticSession(
        uniform,
        cluster,
        batch_per_device=16.0,
        profile=uniform_profile,
        options=_options(group_sizes=(2,)),
        caches=PlannerCaches(),
    )
    before = session.replan()
    session.apply(ElasticEvent("leave"))
    session.replan()
    session.apply(ElasticEvent("join"))
    assert session.cluster == cluster
    after = session.replan()
    assert after.plan == before.plan


def test_session_rejects_nonpositive_batch(uniform, uniform_profile):
    with pytest.raises(ConfigurationError, match="batch_per_device"):
        ElasticSession(
            uniform,
            single_node(4),
            batch_per_device=0.0,
            profile=uniform_profile,
        )


# -- cluster-keyed cache hygiene (the aliasing regression) ------------------


def test_speed_override_never_aliases_warm_cache(uniform, uniform_profile):
    """Clusters differing only in a per-device speed override must not
    alias each other's warm planner entries, while a separately
    constructed but identical cluster still shares them."""
    caches = PlannerCaches()
    base = single_node(4)
    DiffusionPipePlanner(
        uniform, base, uniform_profile, _options(group_sizes=(4,)),
        caches=caches,
    ).plan(64)
    n_evals = len(caches.evals)
    n_partitions = len(caches.partition)
    assert n_evals > 0 and n_partitions > 0

    # Same topology, one slow device: every planner-level memo must
    # miss (new entries appear) and the plan must actually differ.
    slow = single_node(4, speed_factors={0: 0.5})
    assert slow != base
    slow_ev = DiffusionPipePlanner(
        uniform, slow, uniform_profile, _options(group_sizes=(4,)),
        caches=caches,
    ).plan(64)
    assert len(caches.partition) > n_partitions
    assert len(caches.evals) > n_evals

    # A fresh-but-identical homogeneous cluster adds nothing: the
    # canonicalised spec compares equal, so every memo warm-hits.
    n_evals = len(caches.evals)
    n_partitions = len(caches.partition)
    again_ev = DiffusionPipePlanner(
        uniform, single_node(4), uniform_profile,
        _options(group_sizes=(4,)), caches=caches,
    ).plan(64)
    assert len(caches.partition) == n_partitions
    assert len(caches.evals) == n_evals

    # The slow device slows the plan: its window's compute is scaled
    # up in both the DP and the simulated timeline.
    assert slow_ev.plan.iteration_ms > again_ev.plan.iteration_ms


def test_identity_speed_override_is_homogeneous(uniform, uniform_profile):
    """A factor-1.0 override is canonicalised away, so it neither
    splits the warm cache nor changes the plan."""
    caches = PlannerCaches()
    plain = DiffusionPipePlanner(
        uniform, single_node(4), uniform_profile,
        _options(group_sizes=(4,)), caches=caches,
    ).plan(64)
    n_partitions = len(caches.partition)
    noop = DiffusionPipePlanner(
        uniform, single_node(4, speed_factors={0: 1.0}), uniform_profile,
        _options(group_sizes=(4,)), caches=caches,
    ).plan(64)
    assert len(caches.partition) == n_partitions
    assert noop.plan == plain.plan


def test_chunked_schedule_rejects_speed_factors(uniform, uniform_profile):
    with pytest.raises(ConfigurationError, match="speed factors"):
        DiffusionPipePlanner(
            uniform,
            single_node(4, speed_factors={0: 0.5}),
            uniform_profile,
            _options(schedule="interleaved"),
        )


def test_memory_gate_uses_smallest_device(uniform, uniform_profile):
    """One under-provisioned device makes the whole cluster infeasible:
    the OOM bound is the minimum capacity, not the base spec's."""
    cluster = ClusterSpec(
        num_machines=1,
        devices_per_machine=4,
        device_specs={3: DeviceSpec(name="tiny", memory_bytes=1e3)},
    )
    planner = DiffusionPipePlanner(
        uniform, cluster, uniform_profile,
        _options(group_sizes=(4,), check_memory=True),
    )
    with pytest.raises(ConfigurationError):
        planner.plan(64)
