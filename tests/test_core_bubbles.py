"""Bubble identification tests (§5)."""

import pytest

from repro.core import Bubble, extract_bubbles, longest_bubble, total_bubble_device_time
from repro.errors import FillingError
from repro.schedule import (
    StageExec,
    Task,
    TaskKind,
    Timeline,
    build_1f1b,
    device_resource,
    simulate,
)
from repro.schedule.timeline import Interval


def _iv(start, end, dev, kind=TaskKind.FORWARD):
    task = Task(
        task_id=f"{kind.value}@{dev}:{start}", resource=device_resource(dev),
        duration=end - start, kind=kind, device=dev,
    )
    return Interval(start, end, task)


def test_bubble_dataclass_validation():
    with pytest.raises(FillingError):
        Bubble(start=5, end=5, devices=(0,), weight=1)
    with pytest.raises(FillingError):
        Bubble(start=0, end=5, devices=(), weight=1)
    with pytest.raises(FillingError):
        Bubble(start=0, end=5, devices=(0,), weight=0)
    b = Bubble(start=0, end=5, devices=(0, 1), weight=2)
    assert b.duration == 5
    assert b.device_time == 10


def test_constant_idle_set_segmentation():
    """Warm-up staircase: the idle set shrinks step by step, producing
    one bubble per constant set."""
    # dev0 busy [0,30); dev1 busy [10,30); dev2 busy [20,30).
    tl = Timeline(
        [_iv(0, 30, 0), _iv(10, 30, 1), _iv(20, 30, 2)], num_devices=3
    )
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    as_tuples = [(b.start, b.end, b.devices) for b in bubbles]
    assert as_tuples == [(0, 10, (1, 2)), (10, 20, (2,))]


def test_min_duration_filter():
    tl = Timeline([_iv(0, 5, 0), _iv(8, 100, 0)], num_devices=1)
    all_bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    assert len(all_bubbles) == 1
    assert extract_bubbles(tl, min_duration_ms=10.0) == []
    with pytest.raises(FillingError):
        extract_bubbles(tl, min_duration_ms=-1)


def test_sync_spans_included_when_fillable():
    ivs = [_iv(0, 10, 0), _iv(10, 20, 0, TaskKind.SYNC), _iv(0, 20, 1)]
    tl = Timeline(ivs, num_devices=2)
    fillable = extract_bubbles(tl, min_duration_ms=0.0, include_sync_spans=True)
    strict = extract_bubbles(tl, min_duration_ms=0.0, include_sync_spans=False)
    assert sum(b.device_time for b in fillable) == 10.0
    assert strict == []


def test_weights_counted():
    tl = Timeline(
        [_iv(0, 20, 0), _iv(10, 20, 1)],
        num_devices=2,
        device_weights={0: 1, 1: 4},
    )
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    assert len(bubbles) == 1
    assert bubbles[0].weight == 4
    assert total_bubble_device_time(bubbles) == 40.0


def test_longest_bubble_helper():
    tl = Timeline([_iv(0, 5, 0), _iv(30, 35, 0)], num_devices=1)
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    top = longest_bubble(bubbles)
    assert top is not None and top.duration == 25.0
    assert longest_bubble([]) is None


def test_bubbles_of_real_1f1b_schedule():
    stages = [StageExec(index=i, fwd_ms=10, bwd_ms=20) for i in range(4)]
    tl = simulate(build_1f1b(stages, 4), 4)
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    # Total bubble device-time equals the timeline's own accounting.
    assert total_bubble_device_time(bubbles) == pytest.approx(
        tl.bubble_device_time()
    )
    # Chronologically sorted, non-overlapping in time per device.
    starts = [b.start for b in bubbles]
    assert starts == sorted(starts)


def test_empty_timeline():
    assert extract_bubbles(Timeline([], 2)) == []


def test_sweep_line_matches_reference_on_crafted_timelines():
    """Sweep-line vs the retained quadratic oracle: weights, sync spans,
    custom horizons, shared edges."""
    from repro.core import extract_bubbles_reference

    cases = [
        Timeline([_iv(0, 30, 0), _iv(10, 30, 1), _iv(20, 30, 2)], 3),
        Timeline([_iv(0, 5, 0), _iv(8, 100, 0)], 1),
        Timeline(
            [_iv(0, 10, 0), _iv(10, 20, 0, TaskKind.SYNC), _iv(0, 20, 1)], 2
        ),
        Timeline(
            [_iv(0, 20, 0), _iv(10, 20, 1)], 2, device_weights={0: 1, 1: 4}
        ),
        # Edges shared across devices: one device's idle ends exactly
        # where another's begins.
        Timeline([_iv(0, 10, 0), _iv(10, 20, 1), _iv(0, 20, 2)], 3),
        Timeline([], 2),
    ]
    for tl in cases:
        for sync in (True, False):
            for min_ms in (0.0, 10.0):
                for horizon in (None, 15.0):
                    fast = extract_bubbles(
                        tl, min_duration_ms=min_ms,
                        include_sync_spans=sync, horizon=horizon,
                    )
                    ref = extract_bubbles_reference(
                        tl, min_duration_ms=min_ms,
                        include_sync_spans=sync, horizon=horizon,
                    )
                    assert fast == ref


def test_sweep_line_merges_identical_adjacent_sets():
    """Two disjoint idle spans of the same device set separated by a
    zero-net-change edge group stay one bubble only when truly
    contiguous — a device handing off to another splits the bubble."""
    tl = Timeline([_iv(0, 10, 0), _iv(10, 20, 1)], 2)
    bubbles = extract_bubbles(tl, min_duration_ms=0.0)
    assert [(b.start, b.end, b.devices) for b in bubbles] == [
        (0.0, 10.0, (1,)),
        (10.0, 20.0, (0,)),
    ]
