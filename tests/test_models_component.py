"""ComponentSpec tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models import ComponentSpec, LayerSpec


def _layers(n, trainable=True, prefix="l"):
    return [
        LayerSpec(
            name=f"{prefix}{i}", flops_per_sample=1e9, param_bytes=1e6,
            output_bytes_per_sample=100, trainable=trainable,
        )
        for i in range(n)
    ]


def test_basic_aggregates():
    c = ComponentSpec("c", _layers(4), trainable=True)
    assert c.num_layers == 4
    assert len(c) == 4
    assert c.param_bytes == 4e6
    assert c.grad_bytes == 4e6
    assert c.forward_flops(2) == 8e9
    assert c.backward_flops(2) == 16e9
    assert c.output_bytes(3) == 300
    assert [l.name for l in c] == ["l0", "l1", "l2", "l3"]
    assert c[1].name == "l1"


def test_frozen_component_has_no_grads():
    c = ComponentSpec("c", _layers(3, trainable=False), trainable=False)
    assert c.grad_bytes == 0.0
    assert c.backward_flops(4) == 0.0


def test_trainable_flag_consistency():
    with pytest.raises(ConfigurationError):
        ComponentSpec("c", _layers(3, trainable=False), trainable=True)
    with pytest.raises(ConfigurationError):
        ComponentSpec("c", _layers(3, trainable=True), trainable=False)


def test_duplicate_layer_names_rejected():
    layers = _layers(2) + _layers(1)
    with pytest.raises(ConfigurationError):
        ComponentSpec("c", layers, trainable=True)


def test_empty_and_selfdep_rejected():
    with pytest.raises(ConfigurationError):
        ComponentSpec("c", [], trainable=True)
    with pytest.raises(ConfigurationError):
        ComponentSpec("c", _layers(1), trainable=True, depends_on=("c",))


def test_slice():
    c = ComponentSpec("c", _layers(5), trainable=True)
    s = c.slice(1, 4)
    assert s.num_layers == 3
    assert s.layers[0].name == "l1"
    assert s.trainable
    with pytest.raises(ConfigurationError):
        c.slice(3, 3)
    with pytest.raises(ConfigurationError):
        c.slice(0, 6)


def test_frozen_copy_of_component():
    c = ComponentSpec("c", _layers(3), trainable=True)
    f = c.frozen("c_locked")
    assert f.name == "c_locked"
    assert not f.trainable
    assert all(not l.trainable for l in f.layers)
    assert f.param_bytes == c.param_bytes
