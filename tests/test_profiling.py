"""Profiler and ProfileDB tests."""

import pytest

from repro.errors import ConfigurationError, ProfileError
from repro.profiling import DEFAULT_BATCH_GRID, LayerProfile, ProfileDB, Profiler

from .conftest import make_synthetic_db


def test_profile_grid_covers_partial_batch_menu():
    for b in (4, 8, 12, 16, 24, 32, 48, 64, 96):
        assert b in DEFAULT_BATCH_GRID


def test_profiler_produces_complete_db(cluster8, uniform):
    db = Profiler(cluster8).profile(uniform)
    assert set(db.components()) == {"backbone", "encoder"}
    assert db.num_layers("backbone") == 8
    assert db.num_layers("encoder") == 6
    # Frozen layers have no backward time or gradients.
    assert db.bwd_ms("encoder", 0, 16) == 0.0
    assert db.layer("encoder", 0).grad_bytes == 0.0
    assert db.bwd_ms("backbone", 0, 16) > 0.0


def test_profiler_anchor_times(cluster8, uniform):
    """timed_component targets 10 ms per backbone layer at batch 64."""
    db = Profiler(cluster8).profile(uniform)
    assert db.fwd_ms("backbone", 0, 64) == pytest.approx(10.0, rel=1e-6)
    assert db.fwd_ms("encoder", 0, 64) == pytest.approx(4.0, rel=1e-6)


def test_profiler_noise_reproducible(cluster8, uniform):
    a = Profiler(cluster8, noise_std=0.05, seed=7).profile(uniform)
    b = Profiler(cluster8, noise_std=0.05, seed=7).profile(uniform)
    c = Profiler(cluster8, noise_std=0.05, seed=8).profile(uniform)
    assert a.fwd_ms("backbone", 0, 64) == b.fwd_ms("backbone", 0, 64)
    assert a.fwd_ms("backbone", 0, 64) != c.fwd_ms("backbone", 0, 64)


def test_profiler_validation(cluster8):
    with pytest.raises(ConfigurationError):
        Profiler(cluster8, batch_sizes=())
    with pytest.raises(ConfigurationError):
        Profiler(cluster8, batch_sizes=(0, 4))
    with pytest.raises(ConfigurationError):
        Profiler(cluster8, noise_std=-1)


def test_profiling_report(cluster8, uniform):
    rep = Profiler(cluster8).report(uniform)
    assert rep.num_layers == 14
    assert rep.measurements == 14 * len(DEFAULT_BATCH_GRID) * 3
    assert rep.wall_time_ms > 0
    with pytest.raises(ConfigurationError):
        Profiler(cluster8).report(uniform, repetitions=0)


def test_interpolation_exact_at_grid():
    db = make_synthetic_db(batches=(1.0, 64.0))
    assert db.fwd_ms("backbone", 0, 64) == 10.0
    assert db.fwd_ms("backbone", 0, 1) == pytest.approx(10.0 / 64)


def test_interpolation_between_points():
    db = make_synthetic_db(batches=(1.0, 64.0))
    # Linear between (1, 10/64) and (64, 10).
    t32 = db.fwd_ms("backbone", 0, 32)
    expected = 10.0 / 64 + (10.0 - 10.0 / 64) * (32 - 1) / 63
    assert t32 == pytest.approx(expected)


def test_extrapolation_beyond_grid():
    db = make_synthetic_db(batches=(1.0, 64.0))
    t128 = db.fwd_ms("backbone", 0, 128)
    assert t128 == pytest.approx(20.0, rel=0.02)
    # Never negative on the low side.
    assert db.fwd_ms("backbone", 0, 0.5) >= 0.0


def test_stage_aggregates():
    db = make_synthetic_db()
    assert db.stage_fwd_ms("backbone", 0, 4, 64) == pytest.approx(40.0)
    assert db.stage_bwd_ms("backbone", 0, 4, 64) == pytest.approx(80.0)
    assert db.stage_train_ms("backbone", 0, 8, 64) == pytest.approx(240.0)
    assert db.component_fwd_ms("encoder", 64) == pytest.approx(24.0)
    assert db.stage_grad_bytes("backbone", 0, 3) == 3e6
    assert db.stage_grad_bytes("encoder", 0, 3) == 0.0


def test_db_error_paths():
    db = make_synthetic_db()
    with pytest.raises(ProfileError):
        db.fwd_ms("ghost", 0, 8)
    with pytest.raises(ProfileError):
        db.layer("backbone", 99)
    with pytest.raises(ProfileError):
        db.stage_fwd_ms("backbone", 5, 3, 8)
    with pytest.raises(ProfileError):
        db.fwd_ms("backbone", 0, 0)


def test_layer_profile_validation():
    with pytest.raises(ProfileError):
        LayerProfile(
            component="c", layer_index=0, layer_name="l",
            batches=(), fwd_ms=(), bwd_ms=(),
            param_bytes=0, grad_bytes=0, output_bytes_per_sample=0,
            activation_bytes_per_sample=0, trainable=True,
        )
    with pytest.raises(ProfileError):
        LayerProfile(
            component="c", layer_index=0, layer_name="l",
            batches=(2.0, 1.0), fwd_ms=(1.0, 1.0), bwd_ms=(0.0, 0.0),
            param_bytes=0, grad_bytes=0, output_bytes_per_sample=0,
            activation_bytes_per_sample=0, trainable=True,
        )


def test_db_missing_layer_detection():
    good = LayerProfile(
        component="c", layer_index=1, layer_name="l1",
        batches=(1.0,), fwd_ms=(1.0,), bwd_ms=(0.0,),
        param_bytes=0, grad_bytes=0, output_bytes_per_sample=0,
        activation_bytes_per_sample=0, trainable=False,
    )
    with pytest.raises(ProfileError):
        ProfileDB([good])  # layer 0 missing
