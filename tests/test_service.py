"""The concurrent planning service: coalescing, error handling, and
the JSON-lines TCP protocol.

Everything here runs the thread-pool service on tiny configurations
(2 GPUs) so the whole file stays inside the fast suite.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.service import PlanRequest, PlanResponse, PlanService
from repro.service.server import serve

SMALL = PlanRequest(model="sd", gpus=2, batch=32)


def test_plan_and_result_store():
    with PlanService() as svc:
        first = svc.plan(SMALL)
        assert first.ok and first.throughput > 0 and first.config_label
        again = svc.plan(SMALL)
        assert again == first
        metrics = svc.metrics()
        assert metrics["requests"] == 2
        # the repeat was answered from the result store, not re-planned
        assert metrics["result_store"]["hits"] == 1
        assert metrics["latency_s"]["count"] == 1


def test_identical_inflight_requests_coalesce():
    with PlanService() as svc:
        futures = [svc.submit(SMALL) for _ in range(4)]
        responses = [f.result() for f in futures]
        assert all(r == responses[0] for r in responses)
        metrics = svc.metrics()
        shared = (
            metrics["coalesced_inflight"] + metrics["result_store"]["hits"]
        )
        assert shared == 3, metrics
        assert metrics["latency_s"]["count"] == 1


def test_distinct_requests_are_not_coalesced():
    with PlanService() as svc:
        a = svc.plan(SMALL)
        b = svc.plan(PlanRequest(model="sd", gpus=2, batch=64))
        assert a.ok and b.ok and a != b
        metrics = svc.metrics()
        assert metrics["coalesced_inflight"] == 0
        assert metrics["latency_s"]["count"] == 2


def test_infeasible_plan_is_an_ok_false_response():
    with PlanService() as svc:
        resp = svc.plan(PlanRequest(model="unknown-model", gpus=2, batch=32))
        assert isinstance(resp, PlanResponse)
        assert not resp.ok and "unknown model" in resp.error


def test_request_validation():
    with pytest.raises(ServiceError, match="unknown request fields"):
        PlanRequest.from_dict({"model": "sd", "bogus": 1})
    assert PlanRequest.from_dict({"model": "sd", "gpus": 2}) == PlanRequest(
        model="sd", gpus=2
    )


class _Server:
    """One serve() loop on an ephemeral port, shut down on exit."""

    def __enter__(self):
        self.service = PlanService()
        ready = threading.Event()
        self.port = 0

        def on_ready(port):
            self.port = port
            ready.set()

        self.thread = threading.Thread(
            target=serve,
            args=(self.service, "127.0.0.1", 0),
            kwargs={"ready_cb": on_ready},
        )
        self.thread.start()
        assert ready.wait(30)
        return self

    def __exit__(self, *exc):
        try:
            self.ask({"op": "shutdown"})
        except OSError:
            pass
        self.thread.join(30)
        assert not self.thread.is_alive()

    def ask(self, msg: dict) -> dict:
        with socket.create_connection(("127.0.0.1", self.port), 30) as sock:
            sock.settimeout(60)
            sock.sendall(json.dumps(msg).encode() + b"\n")
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buf += chunk
        return json.loads(buf)


def test_server_protocol(tmp_path):
    with _Server() as srv:
        out = srv.ask({"op": "plan", "model": "sd", "gpus": 2, "batch": 32})
        assert out["ok"] and out["throughput"] > 0

        sweep = srv.ask(
            {"op": "sweep", "model": "sd", "gpus": 2, "batches": [32, 64]}
        )
        assert [r["request"]["batch"] for r in sweep["results"]] == [32, 64]
        assert all(r["ok"] for r in sweep["results"])
        # batch 32 was answered from the result store of the first plan
        assert sweep["results"][0]["throughput"] == out["throughput"]

        stats = srv.ask({"op": "stats"})["metrics"]
        assert stats["requests"] == 3
        assert stats["result_store"]["hits"] >= 1

        snap = srv.ask({"op": "snapshot", "path": str(tmp_path / "c.snap")})
        assert snap["written"]["chains"] > 0
        assert (tmp_path / "c.snap").exists()

        err = srv.ask({"op": "definitely-not-an-op"})
        assert err["op"] == "error" and "unknown op" in err["error"]
        err = srv.ask({"op": "plan", "bogus": True})
        assert err["op"] == "error" and "unknown request fields" in err["error"]
        err = srv.ask({"op": "sweep", "batches": []})
        assert err["op"] == "error" and "batches" in err["error"]
