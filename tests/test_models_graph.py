"""ModelSpec (component DAG) tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models import ComponentSpec, LayerSpec, ModelSpec


def _comp(name, trainable=False, deps=()):
    layers = [
        LayerSpec(
            name=f"{name}_l0", flops_per_sample=1e9, param_bytes=1e6,
            trainable=trainable,
        )
    ]
    return ComponentSpec(name, layers, trainable=trainable, depends_on=deps)


def test_basic_model():
    m = ModelSpec(
        "m",
        [_comp("enc"), _comp("bb", trainable=True, deps=("enc",))],
        backbone_names=("bb",),
    )
    assert m.backbone.name == "bb"
    assert [c.name for c in m.non_trainable] == ["enc"]
    assert m.trainable_param_bytes == 1e6
    assert m.frozen_param_bytes == 1e6


def test_backbone_validation():
    with pytest.raises(ConfigurationError):
        ModelSpec("m", [_comp("enc")], backbone_names=())
    with pytest.raises(ConfigurationError):
        ModelSpec("m", [_comp("enc")], backbone_names=("missing",))
    with pytest.raises(ConfigurationError):
        # Backbone must be trainable.
        ModelSpec("m", [_comp("enc")], backbone_names=("enc",))


def test_multi_backbone_access():
    m = ModelSpec(
        "m",
        [_comp("a", trainable=True), _comp("b", trainable=True)],
        backbone_names=("a", "b"),
    )
    assert len(m.backbones) == 2
    with pytest.raises(ConfigurationError):
        _ = m.backbone  # ambiguous


def test_cycle_detection():
    a = _comp("a", deps=("b",))
    b = _comp("b", deps=("a",))
    bb = _comp("bb", trainable=True)
    with pytest.raises(ConfigurationError):
        ModelSpec("m", [a, b, bb], backbone_names=("bb",))


def test_unknown_dependency():
    with pytest.raises(ConfigurationError):
        ModelSpec(
            "m",
            [_comp("enc", deps=("ghost",)), _comp("bb", trainable=True)],
            backbone_names=("bb",),
        )


def test_topological_order_respects_deps():
    m = ModelSpec(
        "m",
        [
            _comp("c", deps=("b",)),
            _comp("b", deps=("a",)),
            _comp("a"),
            _comp("bb", trainable=True),
        ],
        backbone_names=("bb",),
    )
    order = m.topological_order()
    assert order.index("a") < order.index("b") < order.index("c")
    assert [c.name for c in m.non_trainable] == ["a", "b", "c"]


def test_ready_after():
    m = ModelSpec(
        "m",
        [
            _comp("a"),
            _comp("b", deps=("a",)),
            _comp("bb", trainable=True, deps=("a", "b")),
        ],
        backbone_names=("bb",),
    )
    assert [c.name for c in m.ready_after(set())] == ["a"]
    assert [c.name for c in m.ready_after({"a"})] == ["b"]
    assert m.ready_after({"a", "b"}) == []


def test_self_conditioning_prob_validation():
    with pytest.raises(ConfigurationError):
        ModelSpec(
            "m",
            [_comp("bb", trainable=True)],
            backbone_names=("bb",),
            self_conditioning=True,
            self_conditioning_prob=1.5,
        )


def test_duplicate_components_rejected():
    with pytest.raises(ConfigurationError):
        ModelSpec(
            "m",
            [_comp("bb", trainable=True), _comp("bb", trainable=True)],
            backbone_names=("bb",),
        )
