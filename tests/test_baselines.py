"""Baseline-system tests (DDP, ZeRO-3, GPipe, SPP, CDM strategies)."""

import pytest

from repro.baselines import (
    CDMStrategyConfig,
    DataParallelBaseline,
    GPipeBaseline,
    GPipeConfig,
    ParallelCDMBaseline,
    SequentialCDMBaseline,
    SPPBaseline,
    Zero3Baseline,
    equal_layer_partition,
    single_backbone_view,
)
from repro.cluster import p4de_cluster
from repro.errors import ConfigurationError
from repro.profiling import Profiler


@pytest.fixture
def setup(cluster8, uniform, uniform_profile):
    return uniform, cluster8, uniform_profile


def test_ddp_iteration_structure(setup):
    model, cluster, prof = setup
    ddp = DataParallelBaseline(model, cluster, prof)
    res = ddp.run(64)
    assert res.local_batch == 8
    assert res.iteration_ms == pytest.approx(res.compute_ms + res.sync_ms)
    assert res.throughput == pytest.approx(64 / res.iteration_ms * 1e3)
    assert not res.oom
    # Compute includes frozen encoders + backbone fwd+bwd.
    expected = prof.component_fwd_ms("encoder", 8) + prof.component_train_ms(
        "backbone", 8
    )
    assert res.compute_ms == pytest.approx(expected)


def test_ddp_validation(setup):
    model, cluster, prof = setup
    ddp = DataParallelBaseline(model, cluster, prof)
    with pytest.raises(ConfigurationError):
        ddp.run(63)  # not divisible by world
    with pytest.raises(ConfigurationError):
        ddp.compute_ms(0)


def test_ddp_sync_grows_with_machines(uniform):
    res = {}
    for machines in (1, 2):
        cluster = p4de_cluster(machines)
        prof = Profiler(cluster).profile(uniform)
        ddp = DataParallelBaseline(uniform, cluster, prof)
        res[machines] = ddp.run(8 * cluster.world_size)
    assert res[2].sync_ms > res[1].sync_ms
    assert res[2].sync_share > res[1].sync_share


def test_zero3_slower_but_smaller(setup):
    model, cluster, prof = setup
    ddp = DataParallelBaseline(model, cluster, prof).run(64)
    z3 = Zero3Baseline(model, cluster, prof).run(64)
    assert z3.sync_ms > ddp.sync_ms           # extra gather traffic
    assert z3.memory.peak_bytes < ddp.memory.peak_bytes


def test_equal_layer_partition():
    stages = equal_layer_partition(10, 3, "bb")
    assert [(s.lo, s.hi) for s in stages] == [(0, 4), (4, 7), (7, 10)]
    with pytest.raises(ConfigurationError):
        equal_layer_partition(2, 3, "bb")


def test_gpipe_runs_and_underperforms_spp(setup):
    model, cluster, prof = setup
    gp = GPipeBaseline(model, cluster, prof).run(64)
    assert not gp.oom
    spp = SPPBaseline(model, cluster, prof).run(64)
    # SPP searches partitions/hyper-params; GPipe is fixed 2/4 equal.
    assert spp.throughput >= gp.throughput * 0.999
    assert gp.iteration_ms > 0


def test_gpipe_bubble_ratio_positive(setup):
    model, cluster, prof = setup
    ratio = GPipeBaseline(model, cluster, prof).bubble_ratio(64)
    assert 0.0 < ratio < 1.0


def test_gpipe_rejects_multi_backbone(cluster8, cascaded, cascaded_profile):
    with pytest.raises(ConfigurationError):
        GPipeBaseline(cascaded, cluster8, cascaded_profile)
    with pytest.raises(ConfigurationError):
        SPPBaseline(cascaded, cluster8, cascaded_profile)


def test_gpipe_batch_validation(setup):
    model, cluster, prof = setup
    gp = GPipeBaseline(model, cluster, prof, GPipeConfig(2, 4))
    with pytest.raises(ConfigurationError):
        gp.run(61)


def test_spp_never_fills(setup):
    model, cluster, prof = setup
    spp = SPPBaseline(model, cluster, prof)
    ev = spp.evaluate(64)
    assert ev.plan.fill is None
    assert ev.plan.bubble_ratio_filled == ev.plan.bubble_ratio_unfilled
    assert spp.bubble_ratio(64) > 0


def test_spp_preserves_heterogeneous_flag(setup):
    """SPP reuses DiffusionPipe's planner options (minus filling), so a
    heterogeneous sweep keeps SPP on the same partition search space —
    and the shared PlannerCaches means shared heterogeneous DP work."""
    from dataclasses import replace

    from repro.core import PlannerCaches, PlannerOptions

    model, cluster, prof = setup
    opts = PlannerOptions(heterogeneous_replication=True, check_memory=False)
    caches = PlannerCaches()
    spp = SPPBaseline(model, cluster, prof, options=opts, caches=caches)
    assert spp.options.heterogeneous_replication
    assert not spp.options.enable_bubble_filling
    assert replace(opts, enable_bubble_filling=False) == spp.options
    assert spp.planner.caches is caches


def test_single_backbone_view(cascaded):
    view = single_backbone_view(cascaded, "backbone_a")
    assert view.backbone_names == ("backbone_a",)
    assert "backbone_b" not in view.components
    assert "embed" in view.components
    with pytest.raises(ConfigurationError):
        single_backbone_view(cascaded, "nope")


def test_cdm_sequential_vs_parallel(cluster8, cascaded, cascaded_profile):
    seq = SequentialCDMBaseline(cascaded, cluster8, cascaded_profile)
    par = ParallelCDMBaseline(cascaded, cluster8, cascaded_profile)
    rs = seq.run(64)
    rp = par.run(64)
    assert rs.name == "DeepSpeed-S"
    assert rp.name == "DeepSpeed-P"
    assert not rs.oom and not rp.oom
    # Sequential sums iteration times; parallel takes the slowest.
    assert rs.iteration_ms > rp.iteration_ms
    # Both process 2 backbones' worth of samples.
    assert rs.throughput == pytest.approx(2 * 64 / rs.iteration_ms * 1e3)


def test_cdm_zero3_variant_names(cluster8, cascaded, cascaded_profile):
    seq = SequentialCDMBaseline(
        cascaded, cluster8, cascaded_profile, CDMStrategyConfig(zero3=True)
    )
    assert seq.name == "DeepSpeed-ZeRO-3-S"
    res = seq.run(64)
    assert res.throughput > 0


def test_cdm_strategies_reject_single_backbone(setup):
    model, cluster, prof = setup
    with pytest.raises(ConfigurationError):
        SequentialCDMBaseline(model, cluster, prof)
    with pytest.raises(ConfigurationError):
        ParallelCDMBaseline(model, cluster, prof)
