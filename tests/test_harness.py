"""Harness (tables / report / figure generators) tests."""

import pytest

from repro.harness import (
    ExperimentReport,
    format_bars,
    format_table,
    oom_or,
    pct,
)
from repro.harness.throughput import SweepCell, cells_to_rows, sweep_headers


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len(lines) == 5


def test_format_bars():
    out = format_bars(["x", "yy"], [10.0, 5.0], width=10, unit="ms")
    lines = out.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert "10.0ms" in lines[0]
    oom = format_bars(["z"], [float("inf")])
    assert "(oom)" in oom
    with pytest.raises(ValueError):
        format_bars(["a"], [1.0, 2.0])


def test_pct_and_oom_or():
    assert pct(0.1234) == "12.3%"
    assert oom_or(float("inf")) == "OOM"
    assert oom_or(0.0) == "OOM"
    assert oom_or(123.4) == "123"


def test_experiment_report_deviation():
    rep = ExperimentReport("X")
    rep.add("s", "m", paper=2.0, measured=2.2)
    rep.add("s2", "m", paper=None, measured=5.0)
    assert rep.comparisons[0].deviation == pytest.approx(0.1)
    assert rep.comparisons[1].deviation is None
    assert rep.max_abs_deviation() == pytest.approx(0.1)
    table = rep.to_table()
    assert "+10.0%" in table
    assert "X" in table


def test_cdm_sweep_heterogeneous_flag():
    """``CDMThroughputSweep(heterogeneous=True)`` threads per-stage
    replication into the planner options (it used to be a documented
    no-op for cascaded models) and still produces DiffusionPipe cells."""
    from repro.harness.throughput import CDMThroughputSweep
    from repro.models.zoo import cdm_lsun

    sweep = CDMThroughputSweep(
        cdm_lsun,
        machine_counts=(1,),
        batches={8: (128,)},
        heterogeneous=True,
    )
    assert sweep.planner_options.heterogeneous_replication
    cells = sweep.run()
    dp = [c for c in cells if c.system == "DiffusionPipe"]
    assert dp and all(c.throughput > 0 for c in dp)


def test_cells_pivot():
    cells = [
        SweepCell("A", 8, 64, 100.0, False),
        SweepCell("B", 8, 64, 0.0, True),
        SweepCell("A", 8, 128, 120.0, False),
        SweepCell("B", 8, 128, 110.0, False),
    ]
    headers = sweep_headers(cells)
    assert headers == ["GPUs", "Batch", "A", "B"]
    rows = cells_to_rows(cells)
    assert rows[0] == ["8", "64", "100", "OOM"]
    assert rows[1] == ["8", "128", "120", "110"]
