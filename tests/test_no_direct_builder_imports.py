"""Gate: schedule builders are reached through the registry only.

The ScheduleFamily refactor routed every consumer (planner, baselines,
harness) through :func:`repro.schedule.get_family`; the builder modules
(``repro.schedule.onef1b`` etc.) and their ``build_*`` functions are an
implementation detail of the ``schedule`` package.  This test walks the
ASTs of every module in ``repro`` outside ``repro/schedule/`` and fails
on any import of a builder module or builder function, so a future
change cannot quietly bypass the registry (and with it the planner's
``--schedule`` plumbing, cache identity and memory-window dispatch).
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

SRC_DIR = Path(repro.__file__).parent
SCHEDULE_DIR = SRC_DIR / "schedule"

#: builder submodules of repro.schedule — private to the package
BUILDER_MODULES = {
    "onef1b", "gpipe", "bidirectional", "interleaved", "zerobubble",
}
#: the builder entry points those modules define
BUILDER_NAMES = {
    "build_1f1b",
    "build_gpipe",
    "build_bidirectional",
    "build_interleaved",
    "build_zerobubble",
}


def _is_builder_module(module: str | None) -> bool:
    """True for ``repro.schedule.<builder>`` in any spelling (absolute
    or relative: ``..schedule.gpipe`` parses as module ``schedule.gpipe``).
    Requires the ``schedule`` parent so e.g. ``baselines.gpipe`` — a
    different module that happens to share a builder's name — passes."""
    if not module:
        return False
    parts = module.split(".")
    return (
        len(parts) >= 2
        and parts[-2] == "schedule"
        and parts[-1] in BUILDER_MODULES
    )


def _offences(path: Path) -> list[str]:
    out = []
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            # ``from ..schedule.onef1b import ...`` / absolute spelling
            if _is_builder_module(node.module):
                out.append(
                    f"{path.name}:{node.lineno}: imports builder module "
                    f"{node.module!r}"
                )
            # ``from ..schedule import build_1f1b``
            for alias in node.names:
                if alias.name in BUILDER_NAMES:
                    out.append(
                        f"{path.name}:{node.lineno}: imports builder "
                        f"{alias.name!r}"
                    )
        elif isinstance(node, ast.Import):
            # ``import repro.schedule.onef1b``
            for alias in node.names:
                if _is_builder_module(alias.name):
                    out.append(
                        f"{path.name}:{node.lineno}: imports builder module "
                        f"{alias.name!r}"
                    )
    return out


def test_no_builder_imports_outside_schedule_package():
    offenders = []
    for path in sorted(SRC_DIR.rglob("*.py")):
        if SCHEDULE_DIR in path.parents:
            continue
        offenders.extend(_offences(path))
    assert not offenders, (
        "schedule builders must be reached via the registry "
        "(repro.schedule.get_family); direct imports found:\n  "
        + "\n  ".join(offenders)
    )


def test_gate_matches_the_registry():
    """The hardcoded builder lists cover every registered family, so a
    new family cannot be added without extending the gate."""
    from repro.schedule import SCHEDULE_FAMILIES

    assert set(SCHEDULE_FAMILIES) == BUILDER_MODULES
