"""Gate: schedule builders are reached through the registry only.

The ScheduleFamily refactor routed every consumer (planner, baselines,
harness) through :func:`repro.schedule.get_family`; the builder modules
(``repro.schedule.onef1b`` etc.) and their ``build_*`` functions are an
implementation detail of the ``schedule`` package.  The AST walk that
used to live here is now the ``registry-bypass`` rule of the shared
:mod:`repro.analysis` engine; this test is a thin wrapper so the gate
and ``repro analyze`` can never drift apart.
"""

from __future__ import annotations

from repro.analysis import analyze
from repro.analysis.rules.registry_bypass import BUILDER_MODULES


def test_no_builder_imports_outside_schedule_package():
    findings = analyze(rule_names_=["registry-bypass"])
    assert not findings, (
        "schedule builders must be reached via the registry "
        "(repro.schedule.get_family); direct imports found:\n  "
        + "\n  ".join(f.format() for f in findings)
    )


def test_gate_runs_through_the_shared_engine():
    """No duplicated AST walker: this module delegates to
    :mod:`repro.analysis` instead of importing :mod:`ast` itself."""
    assert "ast" not in globals()


def test_gate_matches_the_registry():
    """The rule's hardcoded builder list covers every registered family,
    so a new family cannot be added without extending the gate."""
    from repro.schedule import SCHEDULE_FAMILIES

    assert set(SCHEDULE_FAMILIES) == set(BUILDER_MODULES)
