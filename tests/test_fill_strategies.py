"""Fill-strategy registry and lookahead-policy tests (§5 ablation surface)."""

import pytest

from repro.core import (
    Bubble,
    BubbleFiller,
    PlannerOptions,
    fill_strategy_names,
    get_fill_strategy,
    register_fill_strategy,
)
from repro.core.fill_strategies import FILL_STRATEGIES, LookaheadFill
from repro.core.filling import (
    BubbleFill,
    ComponentState,
    _candidate_items,
    apply_fill,
    full_batch_candidates,
    valid_partial_samples,
)
from repro.core.plan import FillItem
from repro.errors import ConfigurationError, FillingError
from repro.models import ModelSpec
from repro.models.zoo import timed_component, uniform_model
from repro.profiling import ProfileDB


def _bubble(duration, weight=1, start=0.0):
    return Bubble(start=start, end=start + duration,
                  devices=tuple(range(weight)), weight=weight)


def _nt_model(name, comps):
    """A model with one trainable backbone and the given NT components
    (``comps``: name -> layer count)."""
    backbone = timed_component("bb", [1.0], trainable=True)
    specs = [timed_component(n, [1.0] * k) for n, k in comps.items()]
    return ModelSpec(name, [backbone] + specs, backbone_names=("bb",))


def _db(times_by_comp, scale=True):
    return ProfileDB.from_layer_times(
        {**times_by_comp, "bb": [(1.0, 1.0)]},
        batches=(1.0, 64.0),
        trainable={**{k: False for k in times_by_comp}, "bb": True},
        scale_with_batch=scale,
    )


# -- registry --------------------------------------------------------------------


def test_registry_names_and_lookup():
    assert set(fill_strategy_names()) >= {"greedy", "lookahead", "none"}
    for name in fill_strategy_names():
        assert get_fill_strategy(name).name == name
    with pytest.raises(FillingError):
        get_fill_strategy("nope")


def test_registry_extension_point():
    @register_fill_strategy("_test_only")
    class _TestFill:
        name = "_test_only"

        def fill(self, filler, bubbles, leftover_devices):
            return filler.build_report(bubbles, (), 0.0, leftover_devices)

    try:
        assert get_fill_strategy("_test_only").name == "_test_only"
        # A custom strategy drives BubbleFiller.fill like the built-ins.
        model = uniform_model()
        from repro.cluster import single_node
        from repro.profiling import Profiler

        profile = Profiler(single_node(8)).profile(model)
        report = BubbleFiller(
            profile, model, batch=64, strategy="_test_only"
        ).fill([_bubble(100.0)], leftover_devices=2)
        assert report.strategy == "_test_only"
        assert report.items == ()
    finally:
        del FILL_STRATEGIES["_test_only"]


def test_planner_options_validate_strategy():
    with pytest.raises(ConfigurationError):
        PlannerOptions(fill_strategy="nope")
    assert PlannerOptions(fill_strategy="lookahead").fill_strategy == "lookahead"


# -- none ------------------------------------------------------------------------


def test_none_strategy_fills_nothing(uniform, uniform_profile):
    filler = BubbleFiller(uniform_profile, uniform, batch=64, strategy="none")
    report = filler.fill([_bubble(1e4)], leftover_devices=2)
    assert report.items == ()
    assert report.strategy == "none"
    assert report.filled_device_time_ms == 0.0
    assert report.leftover_ms == pytest.approx(
        BubbleFiller(uniform_profile, uniform, batch=64).leftover_ms(2)
    )
    assert len(report.per_bubble) == 1
    assert report.per_bubble[0].filled_ms == 0.0
    assert report.per_bubble[0].utilization == 0.0


# -- greedy (strategy form == seed behaviour) -----------------------------------


def test_greedy_strategy_reports_per_bubble_utilization(uniform, uniform_profile):
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    bubbles = [_bubble(9.0), _bubble(1e4, start=100.0)]
    report = filler.fill(bubbles, leftover_devices=2)
    assert report.strategy == "greedy"
    assert report.complete
    assert len(report.per_bubble) == 2
    by_index = {u.bubble_index: u for u in report.per_bubble}
    # The first bubble is nearly full, the huge one barely used.
    assert by_index[0].utilization > 0.8
    assert by_index[1].utilization < 0.1
    # Utilization accounting matches the items placed per bubble.
    for u in report.per_bubble:
        placed = sum(i.time_ms for i in report.items
                     if i.bubble_index == u.bubble_index)
        assert placed == pytest.approx(u.filled_ms)


def test_dropped_candidates_surface_in_report():
    comps = {f"c{i}": 12 for i in range(4)}
    db = _db({f"c{i}": [(0.5, 0.0)] * 12 for i in range(4)}, scale=False)
    model = _nt_model("many", comps)
    filler = BubbleFiller(db, model, batch=64, max_candidates=64)
    report = filler.fill([_bubble(50.0)], leftover_devices=2)
    assert report.candidates_dropped > 0


def test_candidate_cap_tie_break_deterministic():
    """At the cap, equal-time candidates are cut by lexicographic counts
    — independent of enumeration order."""
    db = _db({"a": [(2.0, 0.0)] * 4, "b": [(2.0, 0.0)] * 4}, scale=False)
    states = [
        ComponentState(name=n, num_layers=4, batch=64.0) for n in ("a", "b")
    ]
    cands, dropped = full_batch_candidates(db, states, bubble_ms=8.0,
                                           idle_devices=1, max_candidates=5)
    assert dropped > 0
    # Kept: sorted by (-time, counts); the time-maximal candidates first.
    times = [c.time_ms for c in cands]
    assert times == sorted(times, reverse=True)
    for a, b in zip(cands, cands[1:]):
        if a.time_ms == b.time_ms:
            assert a.counts < b.counts


# -- lookahead -------------------------------------------------------------------


def _exhaustive_leftover(profile, comp_names, batch, bubbles, d_left):
    """Brute force over the per-bubble action space (all FFC candidates
    x all partial sample counts), returning the minimal leftover."""
    names = list(comp_names)

    def leftover(states, d):
        total = 0.0
        for n in names:
            s = states[n]
            off = 0
            while s.next_layer + off < s.num_layers:
                total += profile.fwd_ms(
                    n, s.next_layer + off, s.layer_batch(off) / d
                )
                off += 1
        return total

    order = sorted(range(len(bubbles)), key=lambda i: bubbles[i].start)
    best = [float("inf")]

    def rec(pos, states):
        if pos == len(order):
            best[0] = min(best[0], leftover(states, d_left))
            return
        b = bubbles[order[pos]]
        ready = [states[n] for n in names if not states[n].done]
        if not ready:
            rec(pos + 1, states)
            return
        cands, _ = full_batch_candidates(profile, ready, b.duration, b.weight)
        for cand in cands:
            options = [None]
            budget = b.duration - cand.time_ms
            for h, comp in enumerate(ready):
                layer = comp.next_layer + cand.counts[h]
                if layer >= comp.num_layers:
                    continue
                rem = comp.layer_batch(cand.counts[h])
                for samples in valid_partial_samples(comp.batch, b.weight, rem):
                    t = profile.fwd_ms(comp.name, layer, samples / b.weight)
                    if t <= budget + 1e-9:
                        options.append((h, layer, samples, t))
            for partial in options:
                ns = {
                    n: ComponentState(
                        n, states[n].num_layers, batch,
                        states[n].next_layer, states[n].remaining,
                    )
                    for n in names
                }
                items = _candidate_items(profile, ready, cand, b.weight, 0)
                if partial is not None:
                    h, layer, samples, t = partial
                    items.append(
                        FillItem(ready[h].name, layer, samples, t, 0, True)
                    )
                apply_fill(ns, BubbleFill(0, tuple(items), 0.0))
                rec(pos + 1, ns)
        rec(pos + 1, states)

    init = {n: ComponentState(n, profile.num_layers(n), batch) for n in names}
    rec(0, init)
    return best[0]


def test_lookahead_beats_greedy_on_known_trap():
    """A two-component instance where the myopic per-bubble maximum
    strands work: lookahead must find the strictly better plan."""
    times = {
        "c0": [(22.498392185833623, 0.0)] * 2,
        "c1": [(66.48879872708376, 0.0)] * 3,
    }
    db = _db(times)
    model = _nt_model("trap", {"c0": 2, "c1": 3})
    bubbles = [
        _bubble(29.902923613609424, weight=1, start=0.0),
        _bubble(42.21234063360121, weight=2, start=40.0),
        _bubble(28.559271671039284, weight=2, start=90.0),
    ]
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    look = BubbleFiller(db, model, batch=64, strategy="lookahead").fill(
        bubbles, leftover_devices=2
    )
    assert look.strategy == "lookahead"
    assert look.leftover_ms < greedy.leftover_ms - 1e-6
    exhaustive = _exhaustive_leftover(db, ["c0", "c1"], 64.0, bubbles, 2)
    assert look.leftover_ms == pytest.approx(exhaustive, abs=1e-9)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_lookahead_matches_exhaustive_on_tiny_instances(seed):
    import random

    rng = random.Random(seed)
    comps = {}
    for c in range(rng.randint(1, 2)):
        comps[f"c{c}"] = [
            (rng.choice([4, 8, 12, 16, 24, 32, 64]) * rng.uniform(0.2, 1.2), 0.0)
        ] * rng.randint(1, 3)
    db = _db(comps)
    model = _nt_model(f"tiny{seed}", {n: len(v) for n, v in comps.items()})
    t = 0.0
    bubbles = []
    for _ in range(rng.randint(1, 3)):
        dur = rng.uniform(5, 60)
        w = rng.randint(1, 4)
        bubbles.append(_bubble(dur, weight=w, start=t))
        t += dur + 5
    look = BubbleFiller(db, model, batch=64, strategy="lookahead").fill(
        bubbles, leftover_devices=2
    )
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    exhaustive = _exhaustive_leftover(db, list(comps), 64.0, bubbles, 2)
    assert look.leftover_ms <= greedy.leftover_ms + 1e-12
    assert look.leftover_ms == pytest.approx(exhaustive, abs=1e-6)


def test_lookahead_respects_dependencies(two_encoder, two_encoder_profile):
    """encoder_b never runs before encoder_a completes, as in greedy."""
    filler = BubbleFiller(
        two_encoder_profile, two_encoder, batch=64, strategy="lookahead"
    )
    report = filler.fill(
        [_bubble(1e4, start=0.0), _bubble(1e4, start=2e4)], leftover_devices=2
    )
    assert report.complete
    a_done = max(
        k for k, it in enumerate(report.items) if it.component == "encoder_a"
    )
    b_first = min(
        k for k, it in enumerate(report.items) if it.component == "encoder_b"
    )
    assert a_done < b_first


def test_lookahead_beam_cut_still_not_worse_than_greedy():
    """With a beam of 1 the search degenerates, but the greedy-baseline
    comparison keeps the guarantee."""
    times = {"c0": [(22.5, 0.0)] * 2, "c1": [(66.5, 0.0)] * 3}
    db = _db(times)
    model = _nt_model("beam1", {"c0": 2, "c1": 3})
    bubbles = [_bubble(30.0), _bubble(42.0, weight=2, start=40.0),
               _bubble(28.5, weight=2, start=90.0)]
    strategy = LookaheadFill()
    strategy.beam_width = 1
    filler = BubbleFiller(db, model, batch=64, strategy="lookahead")
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    report = strategy.fill(filler, bubbles, leftover_devices=2)
    assert report.leftover_ms <= greedy.leftover_ms
    assert report.strategy == "lookahead"
    # Whichever path produced the plan (beam or greedy fallback), the
    # filler's states must be consistent with the returned report.
    assert filler.leftover_ms(2) == report.leftover_ms


def test_planner_options_validate_lookahead_beam(uniform, uniform_profile):
    with pytest.raises(ConfigurationError):
        PlannerOptions(lookahead_beam=0)
    assert PlannerOptions(lookahead_beam=8).lookahead_beam == 8
    with pytest.raises(FillingError):
        BubbleFiller(uniform_profile, uniform, batch=64, lookahead_beam=0)


def test_lookahead_beam_threads_from_filler():
    """``BubbleFiller.lookahead_beam`` overrides the strategy default
    for both lookahead strategies (a beam of 1 degenerates the search,
    but the greedy floor keeps the guarantee)."""
    times = {"c0": [(22.5, 0.0)] * 2, "c1": [(66.5, 0.0)] * 3}
    db = _db(times)
    model = _nt_model("beamk", {"c0": 2, "c1": 3})
    bubbles = [_bubble(30.0), _bubble(42.0, weight=2, start=40.0),
               _bubble(28.5, weight=2, start=90.0)]
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    for strategy in ("lookahead", "lookahead_reference"):
        report = BubbleFiller(
            db, model, batch=64, strategy=strategy, lookahead_beam=1
        ).fill(bubbles, leftover_devices=2)
        assert report.leftover_ms <= greedy.leftover_ms


def test_lookahead_telemetry_populated():
    times = {"c0": [(22.5, 0.0)] * 2, "c1": [(66.5, 0.0)] * 3}
    db = _db(times)
    model = _nt_model("telem", {"c0": 2, "c1": 3})
    bubbles = [_bubble(30.0), _bubble(42.0, weight=2, start=40.0),
               _bubble(28.5, weight=2, start=90.0)]
    look = BubbleFiller(db, model, batch=64, strategy="lookahead").fill(
        bubbles, leftover_devices=2
    )
    assert look.beam_peak >= 1
    greedy = BubbleFiller(db, model, batch=64, strategy="greedy").fill(
        bubbles, leftover_devices=2
    )
    assert greedy.states_pruned == 0 and greedy.beam_peak == 0


# -- dominance relation ----------------------------------------------------------


def test_state_dominance_compares_fresh_head_remaining():
    from repro.core.fill_strategies import _state_dominates

    # Strictly later head layer dominates regardless of remaining.
    assert _state_dominates(((2, 64.0),), ((1, 4.0),))
    # Same head layer: fewer fresh-head samples remaining dominates.
    assert _state_dominates(((1, 16.0),), ((1, 64.0),))
    assert not _state_dominates(((1, 64.0),), ((1, 16.0),))
    # Behind on any component kills dominance.
    assert not _state_dominates(((2, 64.0), (0, 64.0)), ((1, 64.0), (1, 64.0)))
    # The naive layer-only relation would call these equal both ways;
    # the safe relation orders them by remaining.
    a, b = ((1, 8.0), (0, 64.0)), ((1, 32.0), (0, 64.0))
    assert _state_dominates(a, b) and not _state_dominates(b, a)


def _trap_instance(seed):
    """The seeded generator the naive-dominance traps were mined from
    (see test_lookahead_equivalence for the entropy-time rationale)."""
    import random

    PHI = (5 ** 0.5 - 1) / 2
    rng = random.Random(seed)
    comps = {}
    for c in range(2):
        n = rng.randint(1, 2)
        comps[f"c{c}"] = [
            (1.0 + ((rng.randrange(1, 10 ** 6)) * PHI) % 29.0, 0.0)
            for _ in range(n)
        ]
    db = _db(comps)
    model = _nt_model(f"trap{seed}", {n: len(v) for n, v in comps.items()})
    nb = rng.randint(2, 3)
    bubbles, t0 = [], 0.0
    for _ in range(nb):
        w = rng.randint(1, 3)
        dur = 2.0 + ((rng.randrange(1, 10 ** 6)) * PHI) % 40.0
        bubbles.append(_bubble(dur, weight=w, start=t0))
        t0 += dur + 1.0
    return db, model, bubbles


@pytest.mark.parametrize("seed", [812, 2610, 3122, 3950, 3971, 4156])
def test_naive_dominance_would_prune_the_optimum(seed, monkeypatch):
    """Brute-force traps for the dominance relation: on these seeded
    instances a *naive* dominance — comparing per-component progress
    only, ignoring the fresh-head remaining (and the earn-bound filled
    compensation) — prunes the state the optimal plan runs through, so
    the naive search lands strictly above the exhaustive optimum.  The
    safe relation keeps that state and stays bit-identical to the
    unpruned reference."""
    import repro.core.fill_strategies as fs

    db, model, bubbles = _trap_instance(seed)
    ref = BubbleFiller(
        db, model, batch=64, strategy="lookahead_reference",
        lookahead_beam=4096,
    ).fill(bubbles, leftover_devices=2)
    safe = BubbleFiller(
        db, model, batch=64, strategy="lookahead", lookahead_beam=4096
    ).fill(bubbles, leftover_devices=2)
    assert safe.leftover_ms == ref.leftover_ms

    monkeypatch.setattr(
        fs, "_state_dominates",
        lambda a, b: all(la >= lb for (la, _), (lb, _) in zip(a, b)),
    )
    monkeypatch.setattr(fs._SearchCtx, "earn_bound", lambda self, key: 0.0)
    naive = BubbleFiller(
        db, model, batch=64, strategy="lookahead", lookahead_beam=4096
    ).fill(bubbles, leftover_devices=2)
    assert naive.leftover_ms > ref.leftover_ms + 1e-9


def test_lookahead_empty_and_no_ready_cases(uniform, uniform_profile):
    filler = BubbleFiller(
        uniform_profile, uniform, batch=64, strategy="lookahead"
    )
    report = filler.fill([], leftover_devices=2)
    assert report.items == ()
    assert not report.complete

    backbone = timed_component("bb", [10.0] * 4, trainable=True)
    bare = ModelSpec("bare", [backbone], backbone_names=("bb",))
    from repro.cluster import single_node
    from repro.profiling import Profiler

    profile = Profiler(single_node(8)).profile(bare)
    report = BubbleFiller(profile, bare, batch=64, strategy="lookahead").fill(
        [_bubble(100.0)], leftover_devices=2
    )
    assert report.items == ()
    assert report.complete
