"""Property-based invariants of every registered schedule family.

For arbitrary stage chains and micro-batch counts, each family's task
graph must

* pass :func:`validate_task_graph` (unique ids, resolvable deps),
* conserve per-device compute: the FORWARD durations on a device sum
  to ``M *`` the hosted stages' ``fwd_ms`` and the BACKWARD (+ the
  split families' BACKWARD_W) durations to ``M * bwd_ms`` — no family
  may invent, drop or migrate compute, whatever its bubble structure,
* simulate identically on the event-driven engine and the full-rescan
  reference oracle (same intervals, same makespan).

The device->stages map is family-specific: one stage per device for
the linear families, co-located down/up pairs for ``bidirectional``
and the round-robin chunk placement for ``interleaved``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import (
    SCHEDULE_FAMILIES,
    StageExec,
    TaskKind,
    get_family,
    simulate,
    simulate_reference,
    validate_task_graph,
)

COMPUTE_FWD = (TaskKind.FORWARD,)
COMPUTE_BWD = (TaskKind.BACKWARD, TaskKind.BACKWARD_W)

positive_ms = st.floats(0.5, 25.0, allow_nan=False, allow_infinity=False)
small_ms = st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False)


@st.composite
def family_case(draw):
    """(family name, down chain, up chain | None, M, num_devices, sc)."""
    name = draw(st.sampled_from(sorted(SCHEDULE_FAMILIES)))
    family = get_family(name)
    positions = draw(st.integers(2, 4))
    chunks_per_device = draw(st.integers(2, 3)) if family.chunked else 1
    S = positions * chunks_per_device

    def chain():
        stages = []
        for i in range(S):
            bwd = draw(positive_ms)
            kwargs = {}
            if family.splits_backward:
                # Arbitrary B/W split; StageExec derives B = bwd - W.
                kwargs["bwd_w_ms"] = draw(st.floats(0.0, 1.0)) * bwd
            stages.append(
                StageExec(
                    index=i,
                    fwd_ms=draw(positive_ms),
                    bwd_ms=bwd,
                    send_fwd_ms=draw(small_ms),
                    send_bwd_ms=draw(small_ms),
                    sync_ms=draw(small_ms),
                    **kwargs,
                )
            )
        return stages

    down = chain()
    up = chain() if family.cascaded else None
    M = draw(st.integers(1, 6))
    sc = draw(st.booleans())
    return name, down, up, M, positions, sc


def _build(name, down, up, M, positions, sc):
    family = get_family(name)
    feedback = 1.5 if sc else 0.0
    if family.cascaded:
        return family.build(down, M, up=up)
    return family.build(
        down,
        M,
        num_devices=positions if family.chunked else None,
        self_conditioning=sc,
        feedback_ms=feedback,
    )


def _hosted_stages(name, down, up, positions):
    """device -> list of StageExec hosted there, per family placement."""
    family = get_family(name)
    if family.cascaded:
        S = len(down)
        return {d: [down[d], up[S - 1 - d]] for d in range(S)}
    if family.chunked:
        return {
            d: [down[c] for c in range(d, len(down), positions)]
            for d in range(positions)
        }
    return {d: [down[d]] for d in range(len(down))}


def _device_compute(tasks, kinds):
    out: dict[int, float] = {}
    for t in tasks:
        if t.kind in kinds and t.device is not None:
            out[t.device] = out.get(t.device, 0.0) + t.duration
    return out


@given(family_case())
@settings(max_examples=60, deadline=None)
def test_family_graph_valid_and_conserves_compute(case):
    name, down, up, M, positions, sc = case
    tasks = _build(name, down, up, M, positions, sc)

    # Referential integrity of the task graph.
    validate_task_graph(list(tasks))

    hosted = _hosted_stages(name, down, up, positions)
    fwd = _device_compute(tasks, COMPUTE_FWD)
    bwd = _device_compute(tasks, COMPUTE_BWD)
    for dev, stages in hosted.items():
        want_fwd = M * sum(s.fwd_ms for s in stages)
        want_bwd = M * sum(s.bwd_ms for s in stages)
        assert fwd.get(dev, 0.0) == pytest.approx(want_fwd, rel=1e-9)
        assert bwd.get(dev, 0.0) == pytest.approx(want_bwd, rel=1e-9)


@given(family_case())
@settings(max_examples=60, deadline=None)
def test_family_simulates_identically_on_both_engines(case):
    name, down, up, M, positions, sc = case
    family = get_family(name)
    tasks = _build(name, down, up, M, positions, sc)
    ndev = positions if family.chunked else len(down)
    fast = simulate(tasks, ndev)
    ref = simulate_reference(tasks, ndev)
    keys = lambda tl: [  # noqa: E731
        (iv.start, iv.end, iv.task.task_id, iv.task.resource)
        for iv in tl.intervals
    ]
    assert keys(fast) == keys(ref)
    assert fast.makespan == ref.makespan


def test_zerobubble_split_reconstructs_backward_exactly():
    """The W/B split is duration-exact, not just approximate: every
    stage's B + W task durations equal M * bwd_ms as floats when the
    default even split is used (x/2 + x/2 == x in IEEE arithmetic)."""
    stages = [StageExec(index=i, fwd_ms=3.0 + i, bwd_ms=7.0 + i) for i in range(3)]
    M = 4
    tasks = get_family("zerobubble").build(stages, M)
    per_dev = _device_compute(tasks, COMPUTE_BWD)
    for i, s in enumerate(stages):
        assert per_dev[i] == M * s.bwd_ms
    w_total = sum(t.duration for t in tasks if t.kind == TaskKind.BACKWARD_W)
    assert w_total > 0.0
