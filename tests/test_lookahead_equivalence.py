"""Differential fuzz suite: pruned+cached ``lookahead`` vs its oracle.

The production ``lookahead`` strategy adds three cost levers on top of
the retained ``lookahead_reference`` (exhaustive expansion, no pruning,
no caching): dominance pruning with an earn-bound filled compensation,
shape-keyed reuse of expansion tables / beam prefixes / final plans,
and an adaptive beam schedule.  None of them may change results:

* on *any* instance where neither search hits a beam cut and the FFC
  enumeration stays within the production strategy's tighter candidate
  cap (32; these tiny instances generate at most ~16 candidates per
  state), the pruned search reports a bit-identical ``leftover_ms``
  (dominance pruning preserves the optimal leftover under
  batch-monotone layer times);
* on instances whose optimal plan is *unique* (the tie-free generator:
  distinct bubble weights, high-entropy layer times, no partial-batch
  rule — partial splits of equal totals tie structurally), the entire
  plan is bit-identical too;
* a warm shape-cache hit — full-shape or beam-prefix — replays the cold
  search's report bit for bit, including telemetry and the filler's
  terminal component states.

The searches are run with a beam cap large enough that the adaptive
narrow width exceeds any reachable state set of these tiny instances,
so no rank cut ever fires and the equivalence claims are exact.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Bubble, BubbleFiller, FillShapeCache
from repro.models import ModelSpec
from repro.models.zoo import timed_component
from repro.profiling import ProfileDB

#: big enough that the adaptive narrow width (beam / 32) exceeds any
#: reachable state set of the fuzzed instances — no rank cut fires in
#: either strategy, making the searches exactly comparable
BEAM = 1 << 18

#: golden-ratio fraction: distinct integer draws map to layer times and
#: durations whose subset sums never collide in 53-bit floats, so the
#: tie-free instances have unique optima
PHI = (5 ** 0.5 - 1) / 2


def _entropy(k: int, span: float, base: float = 1.0) -> float:
    return base + (k * PHI) % span


def _build(comps_times, name, bubble_specs, *, scale):
    db = ProfileDB.from_layer_times(
        {**comps_times, "bb": [(1.0, 1.0)]},
        batches=(1.0, 64.0),
        trainable={**{k: False for k in comps_times}, "bb": True},
        scale_with_batch=scale,
    )
    backbone = timed_component("bb", [1.0], trainable=True)
    specs = [timed_component(n, [1.0] * len(v)) for n, v in comps_times.items()]
    model = ModelSpec(name, [backbone] + specs, backbone_names=("bb",))
    bubbles, t0 = [], 0.0
    for dur, w in bubble_specs:
        bubbles.append(
            Bubble(start=t0, end=t0 + dur, devices=tuple(range(w)), weight=w)
        )
        t0 += dur + 1.0
    return db, model, bubbles


@st.composite
def general_instances(draw):
    """Any-weights, any-profile-shape instances (ties allowed)."""
    num_comps = draw(st.integers(1, 2))
    layer_counts = [draw(st.integers(1, 3)) for _ in range(num_comps)]
    total_layers = sum(layer_counts)
    ks = draw(
        st.lists(st.integers(1, 10 ** 6), min_size=total_layers,
                 max_size=total_layers, unique=True)
    )
    comps, at = {}, 0
    for c, n in enumerate(layer_counts):
        comps[f"c{c}"] = [(_entropy(ks[at + j], 29.0), 0.0) for j in range(n)]
        at += n
    scale = draw(st.booleans())
    partials = draw(st.booleans())
    nb = draw(st.integers(1, 4))
    dks = draw(st.lists(st.integers(1, 10 ** 6), min_size=nb, max_size=nb,
                        unique=True))
    specs = [
        (_entropy(dk, 55.0, base=2.0), draw(st.integers(1, 4)))
        for dk in dks
    ]
    tag = f"gen{draw(st.integers(0, 10 ** 9))}"
    return comps, tag, specs, scale, partials


@st.composite
def tie_free_instances(draw):
    """Unique-optimum instances: batch-independent entropy times,
    *distinct* bubble weights, partial-batch rule off — every competing
    plan differs in some ``time * weight`` sum, so equal-value plan
    ties (the only thing dominance pruning may re-resolve) cannot
    occur."""
    num_comps = draw(st.integers(1, 2))
    layer_counts = [draw(st.integers(1, 3)) for _ in range(num_comps)]
    total_layers = sum(layer_counts)
    ks = draw(
        st.lists(st.integers(1, 10 ** 6), min_size=total_layers,
                 max_size=total_layers, unique=True)
    )
    comps, at = {}, 0
    for c, n in enumerate(layer_counts):
        comps[f"c{c}"] = [(_entropy(ks[at + j], 29.0), 0.0) for j in range(n)]
        at += n
    nb = draw(st.integers(1, 4))
    weights = draw(st.permutations([1, 2, 3, 4]))[:nb]
    dks = draw(st.lists(st.integers(1, 10 ** 6), min_size=nb, max_size=nb,
                        unique=True))
    specs = [(_entropy(dk, 55.0, base=2.0), w) for dk, w in zip(dks, weights)]
    tag = f"tf{draw(st.integers(0, 10 ** 9))}"
    return comps, tag, specs


def _fill(db, model, bubbles, strategy, *, partials=True, cache=None,
          quantum=0.0):
    filler = BubbleFiller(
        db, model, batch=64, strategy=strategy,
        enable_partial_batch=partials, lookahead_beam=BEAM, fill_cache=cache,
        shape_quantum=quantum,
    )
    report = filler.fill(bubbles, leftover_devices=2)
    return report, filler


def _normalize(report):
    """Drop the fields the oracle comparison must ignore: the strategy
    name and the search telemetry (the reference does not prune)."""
    return replace(report, strategy="", states_pruned=0, beam_peak=0)


@given(general_instances())
@settings(max_examples=60, deadline=None)
def test_pruned_lookahead_leftover_bit_identical(instance):
    comps, tag, specs, scale, partials = instance
    db, model, bubbles = _build(comps, tag, specs, scale=scale)
    ref, _ = _fill(db, model, bubbles, "lookahead_reference", partials=partials)
    look, _ = _fill(db, model, bubbles, "lookahead", partials=partials)
    greedy, _ = _fill(db, model, bubbles, "greedy", partials=partials)
    assert look.leftover_ms == ref.leftover_ms  # bit-identical, no approx
    assert look.leftover_ms <= greedy.leftover_ms


@given(tie_free_instances())
@settings(max_examples=60, deadline=None)
def test_pruned_lookahead_plan_bit_identical_on_unique_optima(instance):
    comps, tag, specs = instance
    db, model, bubbles = _build(comps, tag, specs, scale=False)
    ref, ref_filler = _fill(
        db, model, bubbles, "lookahead_reference", partials=False
    )
    look, look_filler = _fill(db, model, bubbles, "lookahead", partials=False)
    assert _normalize(look) == _normalize(ref)
    for name in look_filler.states:
        a, b = look_filler.states[name], ref_filler.states[name]
        assert (a.next_layer, a.remaining) == (b.next_layer, b.remaining)


@given(general_instances())
@settings(max_examples=40, deadline=None)
def test_warm_shape_cache_hits_never_change_reports(instance):
    comps, tag, specs, scale, partials = instance
    db, model, bubbles = _build(comps, tag, specs, scale=scale)
    plain, _ = _fill(db, model, bubbles, "lookahead", partials=partials)
    cache = FillShapeCache()
    cold, cold_filler = _fill(
        db, model, bubbles, "lookahead", partials=partials, cache=cache
    )
    assert cold == plain  # caching never changes a cold search
    assert cache.final_misses == 1 and cache.final_hits == 0
    warm, warm_filler = _fill(
        db, model, bubbles, "lookahead", partials=partials, cache=cache
    )
    assert cache.final_hits == 1
    assert warm == cold  # full FillReport equality, telemetry included
    for name in warm_filler.states:
        a, b = warm_filler.states[name], cold_filler.states[name]
        assert (a.next_layer, a.remaining) == (b.next_layer, b.remaining)


def test_shape_cache_hits_across_shifted_timelines():
    """The cache keys on the (duration, weight) shape: the same bubbles
    at different absolute offsets (a different (S, M, D) timeline with
    the same idle structure) replay the cached plan bit for bit, with
    item/bubble indices rebound to the caller's list."""
    comps = {"c0": [(_entropy(k, 29.0), 0.0) for k in (11213, 7919, 104729)]}
    db, model, bubbles = _build(
        comps, "shift", [(17.0, 2), (23.0, 1), (9.0, 3)], scale=True
    )
    cache = FillShapeCache()
    cold, _ = _fill(db, model, bubbles, "lookahead", cache=cache)
    shifted = [
        Bubble(start=b.start + 1000.0, end=b.end + 1000.0,
               devices=b.devices, weight=b.weight)
        for b in bubbles
    ]
    warm, _ = _fill(db, model, shifted, "lookahead", cache=cache)
    assert cache.final_hits == 1
    assert warm == cold


def test_beam_prefix_resume_matches_cold_search():
    """Two shapes sharing a bubble prefix: the second fill resumes from
    the stored beam snapshot and must match a cache-less cold search
    exactly.  (Prefix snapshots are keyed by the timeline's distinct
    weight set too — the dominance earn bound depends on it — so the
    tail here keeps the weight set unchanged.)"""
    rng = random.Random(20260730)
    comps = {
        "c0": [(_entropy(rng.randrange(1, 10 ** 6), 29.0), 0.0)
               for _ in range(3)],
        "c1": [(_entropy(rng.randrange(1, 10 ** 6), 29.0), 0.0)
               for _ in range(2)],
    }
    prefix = [(19.0, 2), (31.0, 1), (11.0, 2)]
    for tail in [(7.5, 1), (27.0, 2), (44.0, 1)]:
        cache = FillShapeCache()
        db, model, bubbles_a = _build(comps, f"pre{tail}", prefix + [(13.0, 2)],
                                      scale=True)
        _fill(db, model, bubbles_a, "lookahead", cache=cache)
        _, _, bubbles_b = _build(comps, f"pre{tail}", prefix + [tail],
                                 scale=True)
        warm, warm_filler = _fill(db, model, bubbles_b, "lookahead",
                                  cache=cache)
        cold, cold_filler = _fill(db, model, bubbles_b, "lookahead")
        assert warm == cold
        for name in warm_filler.states:
            a, b = warm_filler.states[name], cold_filler.states[name]
            assert (a.next_layer, a.remaining) == (b.next_layer, b.remaining)


def test_shape_cache_contexts_never_alias():
    """Different batches / partial-batch settings / beam caps must not
    share cached plans even on identical bubble shapes."""
    comps = {"c0": [(_entropy(k, 29.0), 0.0) for k in (337, 7919)]}
    db, model, bubbles = _build(comps, "alias", [(21.0, 2), (13.0, 1)],
                                scale=True)
    cache = FillShapeCache()
    a, _ = _fill(db, model, bubbles, "lookahead", cache=cache)
    filler = BubbleFiller(
        db, model, batch=32, strategy="lookahead",
        enable_partial_batch=True, lookahead_beam=BEAM, fill_cache=cache,
    )
    b = filler.fill(bubbles, leftover_devices=2)
    assert cache.final_hits == 0 and cache.final_misses == 2
    _fill(db, model, bubbles, "lookahead", partials=False, cache=cache)
    assert cache.final_hits == 0 and cache.final_misses == 3


def test_shape_quantum_zero_is_bit_identical_and_exact():
    """``shape_quantum=0.0`` (the default) must change nothing: reports
    match a quantum-less fill bit for bit, near-identical durations
    still key separately (no false hits), and entries written under a
    coarse quantum are invisible at quantum 0 (the quantum is part of
    the context identity)."""
    comps = {"c0": [(_entropy(k, 29.0), 0.0) for k in (337, 7919)]}
    db, model, bubbles = _build(comps, "q0", [(17.0, 2), (23.0, 1)],
                                scale=True)
    plain, _ = _fill(db, model, bubbles, "lookahead")
    cache = FillShapeCache()
    exact, _ = _fill(db, model, bubbles, "lookahead", cache=cache,
                     quantum=0.0)
    assert exact == plain
    # a microsecond-scale perturbation is a distinct exact key
    nudged = [
        Bubble(start=b.start, end=b.end + 1e-6,
               devices=b.devices, weight=b.weight)
        for b in bubbles
    ]
    _fill(db, model, nudged, "lookahead", cache=cache, quantum=0.0)
    assert cache.final_hits == 0 and cache.final_misses == 2
    # a coarse-quantum fill of the same bubbles must not read (or be
    # read by) the exact entries
    _fill(db, model, bubbles, "lookahead", cache=cache, quantum=1.0)
    assert cache.final_hits == 0 and cache.final_misses == 3


def test_shape_quantum_coarse_warm_hits_across_nudged_durations():
    """At a coarse quantum, timelines whose bubble durations differ by
    far less than the grid share one cache entry: the second fill is a
    warm hit, and the replay re-binds to the *actual* bubbles, so its
    report matches a cold search of those bubbles bit for bit."""
    comps = {"c0": [(_entropy(k, 29.0), 0.0) for k in (11213, 7919)]}
    db, model, bubbles = _build(comps, "qc", [(17.0, 2), (23.0, 1)],
                                scale=True)
    cache = FillShapeCache()
    _fill(db, model, bubbles, "lookahead", cache=cache, quantum=1.0)
    assert cache.final_misses == 1
    nudged = [
        Bubble(start=b.start, end=b.end + 1e-4,
               devices=b.devices, weight=b.weight)
        for b in bubbles
    ]
    warm, _ = _fill(db, model, nudged, "lookahead", cache=cache,
                    quantum=1.0)
    assert cache.final_hits == 1 and cache.final_misses == 1
    cold, _ = _fill(db, model, nudged, "lookahead")
    assert warm == cold


def test_shape_cache_clear_resets_stores():
    comps = {"c0": [(_entropy(9973, 29.0), 0.0)]}
    db, model, bubbles = _build(comps, "clr", [(21.0, 2)], scale=True)
    cache = FillShapeCache()
    _fill(db, model, bubbles, "lookahead", cache=cache)
    assert cache.finals and cache.final_misses == 1
    cache.clear()
    assert not cache.finals and not cache.prefixes and not cache.expansions
    assert cache.final_hits == 0 and cache.final_misses == 0
    report, _ = _fill(db, model, bubbles, "lookahead", cache=cache)
    assert cache.final_misses == 1
    plain, _ = _fill(db, model, bubbles, "lookahead")
    assert report == plain


def test_shape_cache_stores_stay_bounded():
    """The three stores are LRU-capped: a long sweep of distinct shapes
    cannot grow them past their limits."""
    comps = {"c0": [(_entropy(k, 29.0), 0.0) for k in (337, 7919)]}
    cache = FillShapeCache(max_expansions=32, max_prefixes=8, max_finals=4)
    for i in range(12):
        db, model, bubbles = _build(
            comps, "bound", [(15.0 + i, 2), (9.0 + i, 1)], scale=True
        )
        _fill(db, model, bubbles, "lookahead", cache=cache)
    assert len(cache.finals) <= 4
    assert len(cache.prefixes) <= 8
    assert len(cache.expansions) <= 32


@pytest.mark.parametrize("seed", range(12))
def test_seeded_differential_matrix(seed):
    """A deterministic (non-hypothesis) slice of the differential
    property, run every time at higher instance sizes than hypothesis
    would typically settle on."""
    rng = random.Random(seed * 7919 + 13)
    comps = {}
    for c in range(rng.randint(1, 3)):
        comps[f"c{c}"] = [
            (_entropy(rng.randrange(1, 10 ** 6), 29.0), 0.0)
            for _ in range(rng.randint(1, 3))
        ]
    specs = []
    for _ in range(rng.randint(1, 5)):
        specs.append(
            (_entropy(rng.randrange(1, 10 ** 6), 55.0, base=2.0),
             rng.randint(1, 4))
        )
    partials = bool(seed % 2)
    scale = bool((seed // 2) % 2)
    db, model, bubbles = _build(comps, f"mat{seed}", specs, scale=scale)
    ref, _ = _fill(db, model, bubbles, "lookahead_reference", partials=partials)
    look, _ = _fill(db, model, bubbles, "lookahead", partials=partials)
    greedy, _ = _fill(db, model, bubbles, "greedy", partials=partials)
    assert look.leftover_ms == ref.leftover_ms
    assert look.leftover_ms <= greedy.leftover_ms
