"""Bubble-filling edge cases and failure injection."""

from repro.core import Bubble, BubbleFiller
from repro.core.filling import full_batch_candidates, ComponentState
from repro.models import ModelSpec
from repro.models.zoo import timed_component
from repro.profiling import ProfileDB, Profiler


def _bubble(duration, weight=1, start=0.0):
    return Bubble(start=start, end=start + duration,
                  devices=tuple(range(weight)), weight=weight)


def test_filler_with_no_nt_components(cluster8):
    """A model whose frozen part is empty fills nothing, leftover 0."""
    backbone = timed_component("bb", [10.0] * 4, trainable=True)
    model = ModelSpec("bare", [backbone], backbone_names=("bb",))
    profile = Profiler(cluster8).profile(model)
    filler = BubbleFiller(profile, model, batch=64)
    report = filler.fill([_bubble(100.0)], leftover_devices=2)
    assert report.items == ()
    assert report.leftover_ms == 0.0
    assert report.complete


def test_filler_zero_bubbles(uniform, uniform_profile):
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    report = filler.fill([], leftover_devices=2)
    assert report.items == ()
    assert not report.complete
    assert report.leftover_ms > 0


def test_filler_out_of_order_bubbles(uniform, uniform_profile):
    """Bubbles given out of order are processed chronologically."""
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    late = _bubble(1e4, start=1e5)
    early = _bubble(1e4, start=0.0)
    report = filler.fill([late, early], leftover_devices=2)
    if report.items:
        # The first (chronological) placement belongs to the early bubble,
        # whose index in the input list is 1.
        assert report.items[0].bubble_index == 1


def test_candidate_cap_guards_blowup():
    """Many tiny layers across components: enumeration stays bounded."""
    comps = {f"c{i}": [(0.5, 0.0)] * 12 for i in range(4)}
    db = ProfileDB.from_layer_times(
        comps, batches=(1.0, 64.0),
        trainable={k: False for k in comps}, scale_with_batch=False,
    )
    states = [
        ComponentState(name=f"c{i}", num_layers=12, batch=64.0)
        for i in range(4)
    ]
    cands, dropped = full_batch_candidates(db, states, bubble_ms=50.0,
                                           idle_devices=1, max_candidates=64)
    assert 0 < len(cands) <= 64
    # The cap is not silent: every discarded partial is accounted for.
    assert dropped > 0
    # The cap keeps the best (time-maximal) candidates.
    best = max(c.time_ms for c in cands)
    assert best >= 0.5 * 12  # at least one full component scheduled


def test_frozen_component_depending_on_backbone(cluster8):
    """Under cross-iteration pipelining, a frozen component that depends
    on a backbone is ready immediately (the backbone output it consumes
    belongs to the previous iteration)."""
    backbone = timed_component("bb", [10.0] * 4, trainable=True)
    post = timed_component("post", [2.0, 2.0], depends_on=("bb",))
    model = ModelSpec("m", [backbone, post], backbone_names=("bb",))
    profile = Profiler(cluster8).profile(model)
    filler = BubbleFiller(profile, model, batch=64)
    ready = filler.ready_components()
    assert [s.name for s in ready] == ["post"]


def test_bubble_weight_affects_local_batch(uniform, uniform_profile):
    """More idle devices -> smaller local batch -> shorter layer time ->
    more layers fit in the same wall-clock bubble."""
    f1 = BubbleFiller(uniform_profile, uniform, batch=64)
    r1 = f1.fill([_bubble(8.0, weight=1)], leftover_devices=2)
    f2 = BubbleFiller(uniform_profile, uniform, batch=64)
    r2 = f2.fill([_bubble(8.0, weight=4)], leftover_devices=2)
    layers1 = sum(1 for i in r1.items if not i.partial)
    layers2 = sum(1 for i in r2.items if not i.partial)
    assert layers2 >= layers1


def test_leftover_uses_partial_head_state(uniform, uniform_profile):
    """Leftover accounting respects a partially-processed head layer."""
    filler = BubbleFiller(uniform_profile, uniform, batch=64)
    full = filler.leftover_ms(2)
    # Manually process half the head layer's samples.
    filler.states["encoder"].consume_partial(0, 32.0)
    partial = filler.leftover_ms(2)
    assert partial < full
    assert partial > full - uniform_profile.fwd_ms("encoder", 0, 32)
