"""Chimera baseline tests."""

import pytest

from repro.baselines import ChimeraBaseline, ChimeraConfig, GPipeBaseline
from repro.errors import ConfigurationError


def test_chimera_runs(cluster8, uniform, uniform_profile):
    ch = ChimeraBaseline(uniform, cluster8, uniform_profile)
    res = ch.run(64)
    assert not res.oom
    assert res.throughput > 0
    assert res.name == "Chimera"
    assert "S=2" in res.notes[0]


def test_chimera_bubble_ratio_below_unidirectional(
    cluster8, uniform, uniform_profile
):
    """Bidirectional pipelining reduces bubbles vs GPipe's schedule."""
    ch = ChimeraBaseline(
        uniform, cluster8, uniform_profile, ChimeraConfig(2, 2)
    )
    gp = GPipeBaseline(uniform, cluster8, uniform_profile)
    assert ch.bubble_ratio(64) < gp.bubble_ratio(64)


def test_chimera_memory_doubles_stage_states(cluster8, uniform, uniform_profile):
    """Each device hosts stages of both directions."""
    ch = ChimeraBaseline(uniform, cluster8, uniform_profile)
    res = ch.run(64)
    gp = GPipeBaseline(uniform, cluster8, uniform_profile).run(64)
    assert res.memory.peak_bytes > gp.memory.peak_bytes


def test_chimera_rejects_cdm(cluster8, cascaded, cascaded_profile):
    with pytest.raises(ConfigurationError):
        ChimeraBaseline(cascaded, cluster8, cascaded_profile)


def test_chimera_batch_validation(cluster8, uniform, uniform_profile):
    ch = ChimeraBaseline(uniform, cluster8, uniform_profile)
    with pytest.raises(ConfigurationError):
        ch.run(63)
