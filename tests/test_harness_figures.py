"""Figure-data generator tests (on fast synthetic models)."""

import pytest

from repro.harness import (
    ablation_throughputs,
    bubble_ratio_comparison,
    bubble_ratio_grid,
    longest_bubble_by_stages,
    nt_layer_times,
    top_layer_series,
)


def test_bubble_ratio_grid_monotone(cluster8, uniform, uniform_profile):
    cells = bubble_ratio_grid(
        uniform, cluster8, uniform_profile, batch=64,
        stage_counts=(2, 4), micro_counts=(1, 2, 4),
    )
    by = {(c.num_stages, c.num_micro): c for c in cells}
    assert len(cells) == 6
    for S in (2, 4):
        series = [by[(S, M)].ratio_of_iteration for M in (1, 2, 4)]
        assert series == sorted(series, reverse=True)
    for M in (1, 2, 4):
        assert by[(4, M)].ratio_of_iteration > by[(2, M)].ratio_of_iteration
    assert all(0 < c.ratio_of_iteration < 1 for c in cells)
    assert all(c.ratio_of_nt_time > 0 for c in cells)


def test_nt_layer_times_enumeration(uniform, uniform_profile):
    times = nt_layer_times(uniform, uniform_profile, batch=64)
    assert len(times) == 6
    assert [i for _, i, _ in times] == list(range(6))
    assert all(t == pytest.approx(4.0, rel=1e-6) for _, _, t in times)


def test_top_layer_series_ranks_correctly(long_layer, long_layer_profile):
    series = top_layer_series(long_layer, long_layer_profile, top_k=2,
                              batches=(8, 16, 32, 64))
    # The 400 ms layer (index 5) ranks first.
    assert series[0].layer == 5
    assert series[0].times_ms[-1] > series[1].times_ms[-1]
    # Times rise with batch size.
    assert list(series[0].times_ms) == sorted(series[0].times_ms)


def test_longest_bubble_by_stages_monotone(cluster8, uniform, uniform_profile):
    bubbles = longest_bubble_by_stages(
        uniform, cluster8, uniform_profile, batch=64, num_micro=2,
        stage_counts=(2, 4),
    )
    assert bubbles[4] >= bubbles[2] > 0


def test_bubble_ratio_comparison_shape(cluster8, uniform, uniform_profile):
    out = bubble_ratio_comparison(
        uniform, cluster8, uniform_profile, batches=(64,),
    )
    assert set(out) == {"DiffusionPipe", "GPipe", "SPP"}
    assert out["DiffusionPipe"][64] <= out["SPP"][64]
    assert out["GPipe"][64] > 0


def test_ablation_throughputs_ordering(cluster8, long_layer, long_layer_profile):
    out = ablation_throughputs(
        long_layer, cluster8, long_layer_profile, batches=(64,),
    )
    full = out["DiffusionPipe"][64]
    nop = out["Partial-batch disabled"][64]
    nof = out["Bubble filling disabled"][64]
    assert full >= nop >= nof > 0
    # The default fill-strategy ablation column rides along and never
    # loses to the greedy-filled baseline.
    assert out["Fill strategy: lookahead"][64] >= full * 0.999999


def test_ablation_throughputs_without_strategy_columns(
    cluster8, uniform, uniform_profile
):
    """``fill_strategies=()`` reproduces the paper's three columns."""
    out = ablation_throughputs(
        uniform, cluster8, uniform_profile, batches=(64,), fill_strategies=(),
    )
    assert set(out) == {
        "DiffusionPipe", "Partial-batch disabled", "Bubble filling disabled",
    }
