"""Bidirectional CDM partitioner tests (§4.2)."""

import pytest

from repro.cluster import CommCosts
from repro.core import (
    CDMPartitionContext,
    PartitionContext,
    group_backbones,
    partition_cdm,
)
from repro.errors import ConfigurationError, PartitionError
from repro.profiling import ProfileDB

FAST_P2P = CommCosts(bandwidth=6e8, latency=0.005)
FAST_AR = CommCosts(bandwidth=1e9, latency=0.1)


def _db(down_times, up_times):
    return ProfileDB.from_layer_times(
        {"down": list(down_times), "up": list(up_times)},
        batches=(1.0, 64.0),
        trainable={"down": True, "up": True},
    )


def _cdm_ctx(db, M=2, batch=64.0):
    mk = lambda comp: PartitionContext(
        profile=db, component=comp, batch_per_group=batch,
        num_micro_batches=M, p2p=FAST_P2P, allreduce=FAST_AR,
    )
    return CDMPartitionContext(down=mk("down"), up=mk("up"))


def test_uniform_cdm_splits_evenly():
    db = _db([(10, 20)] * 6, [(10, 20)] * 6)
    plan = partition_cdm(_cdm_ctx(db), 2, 2)
    assert plan.is_bidirectional
    assert [st.num_layers for st in plan.down] == [3, 3]
    assert [st.num_layers for st in plan.up] == [3, 3]
    # Both chains contiguous and complete.
    for chain in (plan.down, plan.up):
        assert chain[0].lo == 0 and chain[-1].hi == 6
        for a, b in zip(chain, chain[1:]):
            assert a.hi == b.lo


def test_unbalanced_backbones_share_devices():
    """A heavy down backbone and light up backbone: the pairing should
    put less of the heavy chain where the light chain is thick."""
    db = _db([(30, 60)] * 6, [(5, 10)] * 6)
    plan = partition_cdm(_cdm_ctx(db), 2, 2)
    # W bound should be close to balanced-down: T(down)/2.
    down_total = 6 * 90.0 * (32 / 64)  # fwd+bwd at micro-batch 32
    assert plan.w_ms <= down_total / 2 * 1.35


def test_objective_formula():
    db = _db([(10, 20)] * 4, [(10, 20)] * 4)
    ctx = _cdm_ctx(db, M=3)
    plan = partition_cdm(ctx, 2, 2)
    coeff = ctx.m_cdm + 2 * 2 - 2
    assert plan.t_max_ms == pytest.approx(coeff * plan.w_ms + plan.y_ms)
    assert ctx.m_cdm == 6  # M_down + M_up


def test_cut_step_restricts_boundaries():
    db = _db([(10, 20)] * 8, [(10, 20)] * 8)
    plan = partition_cdm(_cdm_ctx(db), 2, 2, cut_step=2)
    for chain in (plan.down, plan.up):
        for st in chain[:-1]:
            assert st.hi % 2 == 0
    # Exact and coarse agree on a uniform chain.
    exact = partition_cdm(_cdm_ctx(db), 2, 2, cut_step=1)
    assert plan.t_max_ms == pytest.approx(exact.t_max_ms)


def test_infeasible_cdm():
    db = _db([(10, 20)] * 3, [(10, 20)] * 3)
    with pytest.raises(PartitionError):
        partition_cdm(_cdm_ctx(db), 4, 4)   # more stages than layers
    with pytest.raises(PartitionError, match="heterogeneous=True"):
        partition_cdm(_cdm_ctx(db), 3, 4)   # 3 !| 4
    with pytest.raises(PartitionError):
        partition_cdm(_cdm_ctx(db), 3, 2)   # more stages than devices
    with pytest.raises(ConfigurationError):
        partition_cdm(_cdm_ctx(db), 2, 2, cut_step=0)


def test_micro_batch_floor_uniform():
    """Uniform r = D/S needs at least r samples per micro-batch in both
    directions (the same floor the heterogeneous DP enforces via its
    r_cap), keeping het-CDM <= uniform-CDM exact."""
    db = _db([(10, 20)] * 6, [(10, 20)] * 6)
    # batch 4, M=2 -> micro-batch 2 < r = 3.
    with pytest.raises(PartitionError, match="samples per"):
        partition_cdm(_cdm_ctx(db, M=2, batch=4.0), 2, 6)
    # The heterogeneous DP plans the same combo with smaller replica
    # counts per position.
    plan = partition_cdm(_cdm_ctx(db, M=2, batch=4.0), 2, 6, heterogeneous=True)
    assert all(st.replicas <= 2 for st in plan.down)


def test_micro_batch_count_mismatch_rejected():
    db = _db([(10, 20)] * 4, [(10, 20)] * 4)
    mk = lambda comp, M: PartitionContext(
        profile=db, component=comp, batch_per_group=64.0,
        num_micro_batches=M, p2p=FAST_P2P, allreduce=FAST_AR,
    )
    with pytest.raises(ConfigurationError, match="micro-batch"):
        CDMPartitionContext(down=mk("down", 2), up=mk("up", 3))


def _check_cdm_chains(plan, ld, lu, D):
    """Contiguity, coverage, device conservation and co-located replica
    agreement of a bidirectional plan."""
    S = plan.num_stages
    for chain, L in ((plan.down, ld), (plan.up, lu)):
        assert chain[0].lo == 0 and chain[-1].hi == L
        for x, y in zip(chain, chain[1:]):
            assert x.hi == y.lo
        assert all(st.replicas >= 1 for st in chain)
    assert sum(st.replicas for st in plan.down) <= D
    for i in range(S):
        assert plan.down[i].replicas == plan.up[S - 1 - i].replicas


def test_het_cdm_non_divisible():
    """4 stages on 6 devices: uniform replication is impossible, the
    heterogeneous DP returns a valid plan with per-position replicas."""
    db = _db([(10, 20)] * 8, [(10, 20)] * 8)
    ctx = _cdm_ctx(db)
    plan = partition_cdm(ctx, 4, 6, heterogeneous=True)
    assert plan.is_bidirectional
    _check_cdm_chains(plan, 8, 8, 6)
    # The objective must match Eqn. 12 with the chosen (W, Y).
    coeff = ctx.m_cdm + 2 * 4 - 2
    assert plan.t_max_ms == pytest.approx(coeff * plan.w_ms + plan.y_ms)


def test_het_cdm_not_worse_than_uniform_on_divisible():
    db = _db([(30, 60), (10, 20), (10, 20), (30, 60), (10, 20), (10, 20)],
             [(5, 10)] * 6)
    ctx = _cdm_ctx(db)
    for S, D in ((2, 2), (2, 4), (3, 3)):
        uni = partition_cdm(ctx, S, D)
        het = partition_cdm(ctx, S, D, heterogeneous=True)
        assert het.t_max_ms <= uni.t_max_ms + 1e-9 * max(1.0, uni.t_max_ms)


def test_het_cdm_memo_hit_is_bit_identical():
    db = _db([(12, 25)] * 6, [(8, 18)] * 6)
    ctx = _cdm_ctx(db)
    first = partition_cdm(ctx, 3, 4, heterogeneous=True)
    second = partition_cdm(ctx, 3, 4, heterogeneous=True)
    assert first == second
    # A different micro-batch count reuses the same DP table (the count
    # only scales the final selection) but may pick another entry; the
    # chains it returns must still be valid.
    other = partition_cdm(_cdm_ctx(db, M=4), 3, 4, heterogeneous=True)
    _check_cdm_chains(other, 6, 6, 4)


def test_het_cdm_respects_cut_step():
    db = _db([(10, 20)] * 8, [(10, 20)] * 8)
    plan = partition_cdm(_cdm_ctx(db), 3, 4, cut_step=2, heterogeneous=True)
    for chain in (plan.down, plan.up):
        for st in chain[:-1]:
            assert st.hi % 2 == 0 or st.hi == 8


def test_group_backbones_balances_load():
    db = ProfileDB.from_layer_times(
        {
            "a": [(10, 20)] * 4,   # 120 ms
            "b": [(20, 40)] * 4,   # 240 ms
            "c": [(12, 24)] * 4,   # 144 ms
        },
        batches=(1.0, 64.0),
        trainable={"a": True, "b": True, "c": True},
    )
    down, up = group_backbones(db, ["a", "b", "c"], 64.0)
    assert set(down + up) == {"a", "b", "c"}
    # The heaviest backbone sits alone in its group.
    assert ["b"] in (down, up)
    with pytest.raises(ConfigurationError):
        group_backbones(db, ["a"], 64.0)
