"""Exception-hierarchy tests."""

import pytest

from repro import errors


def test_hierarchy():
    for exc in (
        errors.ConfigurationError,
        errors.ProfileError,
        errors.PartitionError,
        errors.ScheduleError,
        errors.SimulationError,
        errors.FillingError,
        errors.MemoryError_,
        errors.EngineError,
    ):
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.OutOfMemory, errors.MemoryError_)
    # The library's MemoryError_ does not shadow the builtin.
    assert not issubclass(errors.MemoryError_, MemoryError)


def test_out_of_memory_message():
    exc = errors.OutOfMemory(90e9, 80e9, detail="stage 0")
    msg = str(exc)
    assert "83.82 GiB" in msg  # 90e9 bytes rendered in GiB
    assert "74.51 GiB" in msg
    assert "stage 0" in msg
    assert exc.required_bytes == 90e9
    assert exc.capacity_bytes == 80e9


def test_catchable_as_repro_error():
    with pytest.raises(errors.ReproError):
        raise errors.PartitionError("nope")
