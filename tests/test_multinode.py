"""Multi-node planner behaviour tests."""

import pytest

from repro.baselines import DataParallelBaseline
from repro.cluster import p4de_cluster
from repro.core import DiffusionPipePlanner, PlannerOptions
from repro.models.zoo import stable_diffusion_v2_1
from repro.profiling import Profiler


@pytest.fixture(scope="module")
def sd():
    return stable_diffusion_v2_1(self_conditioning=False)


@pytest.fixture(scope="module")
def profile(sd):
    # Layer profiles depend only on the device model.
    return Profiler(p4de_cluster(1)).profile(sd)


OPTS = PlannerOptions(group_sizes=(2, 4, 8), micro_batch_counts=(1, 2, 4, 8))


def test_sync_costs_grow_with_machines(sd, profile):
    """A stage's all-reduce spans machines once dp does."""
    plans = {}
    for machines in (1, 4):
        cluster = p4de_cluster(machines)
        planner = DiffusionPipePlanner(sd, cluster, profile, options=OPTS)
        ev = planner.evaluate(32 * cluster.world_size, 2, 2, 2)
        assert ev is not None
        plans[machines] = ev.plan
    # Same per-device load; the multi-machine iteration pays more sync.
    assert plans[4].iteration_ms > plans[1].iteration_ms


def test_diffusionpipe_beats_ddp_at_scale(sd, profile):
    cluster = p4de_cluster(4)  # 32 GPUs
    batch = 1024
    planner = DiffusionPipePlanner(sd, cluster, profile, options=OPTS)
    dpipe = planner.plan(batch).plan
    ddp = DataParallelBaseline(sd, cluster, profile).run(batch)
    assert dpipe.throughput > ddp.throughput


def test_throughput_scales_with_cluster(sd, profile):
    """Weak scaling: 8x the devices and batch -> much more than 4x the
    throughput (not perfectly linear because of multi-node sync)."""
    results = {}
    for machines in (1, 8):
        cluster = p4de_cluster(machines)
        planner = DiffusionPipePlanner(sd, cluster, profile, options=OPTS)
        results[machines] = planner.plan(32 * cluster.world_size).plan.throughput
    assert results[8] > 4.0 * results[1]
    assert results[8] < 8.5 * results[1]


def test_pipeline_groups_stay_within_machines(sd, profile):
    """With group sizes up to 8, p2p transfers ride NVSwitch."""
    cluster = p4de_cluster(2)
    planner = DiffusionPipePlanner(sd, cluster, profile, options=OPTS)
    best = planner.plan(512).plan
    assert best.partition.group_size <= 8
    # And the data-parallel degree covers the rest of the world.
    assert best.partition.group_size * best.data_parallel_degree == 16
