"""Discrete-event simulator for pipeline task graphs.

The simulator executes a DAG of :class:`~repro.schedule.tasks.Task`
objects under two rules:

1. a task may start only after all its dependencies complete;
2. each resource runs one task at a time; when it becomes free it picks,
   among the tasks ready at that moment, the one with the smallest
   ``priority`` tuple (FIFO dispatch with explicit tie-breaking — the
   heuristic of §2.2).

The implementation is list scheduling over a global frontier: at every
step we commit the (resource, task) pair with the earliest feasible
start, breaking ties by priority then insertion order.  A task's start
is ``max(resource_free, ready_time)``, and the chosen candidate
minimises ``(start, priority, seq)`` *per resource* — so a task that is
ready earlier runs first even if a higher-priority task becomes ready
later (work-conserving dispatch), while priorities break genuine ties.

The greedy frontier is sound because dependency unlocks are processed at
commit time and every uncommitted task starts no earlier than the
current frontier, so a committed start time can never be invalidated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..errors import ScheduleError, SimulationError
from .tasks import Task, validate_task_graph
from .timeline import Interval, Timeline


def simulate(
    tasks: Sequence[Task],
    num_devices: int,
    device_weights: dict[int, int] | None = None,
) -> Timeline:
    """Execute a task graph and return its :class:`Timeline`.

    Raises :class:`ScheduleError` on malformed graphs (cycles, unknown
    dependencies) and :class:`SimulationError` on internal
    inconsistencies.
    """
    by_id = validate_task_graph(list(tasks))
    n = len(by_id)
    if n == 0:
        return Timeline([], num_devices, device_weights)

    seq = {tid: i for i, tid in enumerate(by_id)}
    remaining_deps = {tid: len(set(t.deps)) for tid, t in by_id.items()}
    dependents: dict[str, list[str]] = defaultdict(list)
    for t in by_id.values():
        for d in set(t.deps):
            dependents[d].append(t.task_id)

    #: ready tasks per resource (unsorted; scanned for the best candidate)
    ready: dict[str, list[str]] = defaultdict(list)
    ready_time: dict[str, float] = {}
    resource_free: dict[str, float] = defaultdict(float)
    end_time: dict[str, float] = {}
    intervals: list[Interval] = []

    def push_ready(tid: str, at: float) -> None:
        ready_time[tid] = at
        ready[by_id[tid].resource].append(tid)

    for tid, t in by_id.items():
        if remaining_deps[tid] == 0:
            push_ready(tid, 0.0)

    scheduled = 0
    while scheduled < n:
        best: tuple[float, tuple, int, str] | None = None
        for res, bucket in ready.items():
            if not bucket:
                continue
            free = resource_free[res]
            # The resource's next dispatch happens at
            # t* = max(free, min ready_time); among tasks ready by t*,
            # the smallest priority wins.
            t_star = max(free, min(ready_time[tid] for tid in bucket))
            res_best: tuple[tuple, int, str] | None = None
            for tid in bucket:
                if ready_time[tid] <= t_star:
                    cand = (tuple(by_id[tid].priority), seq[tid], tid)
                    if res_best is None or cand < res_best:
                        res_best = cand
            assert res_best is not None
            cand_global = (t_star, res_best[0], res_best[1], res_best[2])
            if best is None or cand_global < best:
                best = cand_global
        if best is None:
            unrun = sorted(tid for tid in by_id if tid not in end_time)
            raise ScheduleError(
                f"dependency cycle: {len(unrun)} tasks cannot run "
                f"(first few: {unrun[:5]})"
            )
        start, _, _, tid = best
        t = by_id[tid]
        ready[t.resource].remove(tid)
        end = start + t.duration
        resource_free[t.resource] = end
        end_time[tid] = end
        intervals.append(Interval(start, end, t))
        scheduled += 1
        for dep_tid in dependents[tid]:
            remaining_deps[dep_tid] -= 1
            if remaining_deps[dep_tid] == 0:
                at = max(
                    (end_time[d] for d in set(by_id[dep_tid].deps)), default=0.0
                )
                push_ready(dep_tid, at)

    if len(end_time) != n:  # pragma: no cover - defensive
        raise SimulationError(f"simulated {len(end_time)} of {n} tasks")
    return Timeline(intervals, num_devices, device_weights)
