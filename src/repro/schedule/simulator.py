"""Discrete-event simulator for pipeline task graphs.

The simulator executes a DAG of :class:`~repro.schedule.tasks.Task`
objects under two rules:

1. a task may start only after all its dependencies complete;
2. each resource runs one task at a time; when it becomes free it picks,
   among the tasks ready at that moment, the one with the smallest
   ``priority`` tuple (FIFO dispatch with explicit tie-breaking — the
   heuristic of §2.2).

Both engines realise the same list-scheduling policy: at every step the
(resource, task) pair with the earliest feasible start commits, breaking
ties by priority then insertion order.  A task's start is
``max(resource_free, ready_time)``, and the chosen candidate minimises
``(start, priority, seq)`` *per resource* — so a task that is ready
earlier runs first even if a higher-priority task becomes ready later
(work-conserving dispatch), while priorities break genuine ties.

The greedy frontier is sound because dependency unlocks are processed at
commit time and every uncommitted task starts no earlier than the
current frontier, so a committed start time can never be invalidated.

:func:`simulate` is a true event-driven engine: each resource keeps a
heap of waiting tasks keyed by ready time plus a heap of *settled* tasks
(known ready at or before the resource's last dispatch) keyed by
priority, and a global event heap orders per-resource dispatch
candidates by ``(feasible_start, priority, seq)``.  Candidates are
recomputed only for resources whose state changed, giving
``O(n log n)``-ish behaviour instead of the reference engine's
per-commit bucket scans — an order of magnitude faster on planner
sweeps, with timelines guaranteed identical to
:func:`simulate_reference` (see ``tests/test_simulator_equivalence.py``).
"""

from __future__ import annotations

from collections import defaultdict
from heapq import heappop, heappush
from typing import Sequence

from ..errors import ScheduleError, SimulationError
from .tasks import Task, validate_task_graph
from .timeline import Interval, Timeline


def simulate(
    tasks: Sequence[Task],
    num_devices: int,
    device_weights: dict[int, int] | None = None,
) -> Timeline:
    """Execute a task graph and return its :class:`Timeline`.

    Event-driven engine; produces timelines identical to
    :func:`simulate_reference`.  Raises :class:`ScheduleError` on
    malformed graphs (cycles, unknown dependencies) and
    :class:`SimulationError` on internal inconsistencies.

    ``device_weights`` maps each logical device to the number of
    physical devices it stands for (stage replication).  A logical
    device may host stages of several pipelines — bidirectional chain
    position ``i`` runs the down pipeline's stage ``i`` and the up
    pipeline's stage ``S-1-i`` — so callers must derive the weight from
    *all* stages hosted there, not just one chain's.
    """
    by_id = validate_task_graph(list(tasks))
    n = len(by_id)
    if n == 0:
        return Timeline([], num_devices, device_weights)

    seq = {tid: i for i, tid in enumerate(by_id)}
    remaining_deps = {tid: len(set(t.deps)) for tid, t in by_id.items()}
    dependents: dict[str, list[str]] = defaultdict(list)
    for t in by_id.values():
        # dict.fromkeys, not set(): dependents lists feed dispatch order,
        # and set iteration would vary with the per-process hash seed.
        for d in dict.fromkeys(t.deps):
            dependents[d].append(t.task_id)
    #: incrementally-maintained max end time of each task's completed
    #: dependencies; 0.0 for zero-dep tasks (the reference's
    #: ``default=0.0`` path).
    dep_ready = {tid: 0.0 for tid in by_id}

    #: not-yet-eligible tasks per resource, heap-keyed by (ready, seq)
    waiting: dict[str, list[tuple[float, int, str]]] = defaultdict(list)
    #: tasks ready at or before the resource's last dispatch — eligible
    #: for every future dispatch — heap-keyed by (priority, seq)
    settled: dict[str, list[tuple[tuple, int, str]]] = defaultdict(list)
    #: tasks found eligible for the resource's *current* candidate but
    #: not yet settled (the candidate has not committed, so a later
    #: recompute may lower t* below their ready times)
    extra: dict[str, list[tuple[tuple, int, str, float]]] = defaultdict(list)

    resource_free: dict[str, float] = defaultdict(float)
    end_time: dict[str, float] = {}
    intervals: list[Interval] = []

    #: lazy-invalidated global event heap of per-resource dispatch
    #: candidates: (t_star, priority, seq, res, version)
    event_heap: list[tuple[float, tuple, int, str, int]] = []
    version: dict[str, int] = defaultdict(int)

    def recompute(res: str) -> None:
        """Refresh the resource's dispatch candidate in the event heap."""
        w, x, s = waiting[res], extra[res], settled[res]
        # Un-stage previously eligible tasks: the new t* may be earlier
        # than their ready times, so eligibility must be re-derived.
        for prio, sq, tid, ready in x:
            heappush(w, (ready, sq, tid))
        x.clear()
        version[res] += 1
        free = resource_free[res]
        if s:
            # Settled tasks were ready by the last dispatch time, which
            # is <= free, so min-ready over the bucket cannot exceed
            # free: the next dispatch happens exactly when free.
            t_star = free
        elif w:
            t_star = max(free, w[0][0])
        else:
            return  # empty bucket: stale heap entries die by version
        while w and w[0][0] <= t_star:
            ready, sq, tid = heappop(w)
            x.append((tuple(by_id[tid].priority), sq, tid, ready))
        best: tuple[tuple, int, str] | None = s[0] if s else None
        for prio, sq, tid, _ in x:
            cand = (prio, sq, tid)
            if best is None or cand < best:
                best = cand
        assert best is not None
        heappush(event_heap, (t_star, best[0], best[1], res, version[res]))

    for tid, t in by_id.items():
        if remaining_deps[tid] == 0:
            heappush(waiting[t.resource], (0.0, seq[tid], tid))
    for res in waiting:
        recompute(res)

    scheduled = 0
    while scheduled < n:
        while event_heap:
            t_star, _, _, res, ver = heappop(event_heap)
            if ver == version[res]:
                break
        else:
            unrun = sorted(tid for tid in by_id if tid not in end_time)
            raise ScheduleError(
                f"dependency cycle: {len(unrun)} tasks cannot run "
                f"(first few: {unrun[:5]})"
            )
        # Commit: eligible-now tasks become permanently eligible (every
        # future dispatch of this resource happens at >= t_star).
        s = settled[res]
        for prio, sq, tid, _ in extra[res]:
            heappush(s, (prio, sq, tid))
        extra[res].clear()
        _, _, tid = heappop(s)
        t = by_id[tid]
        end = t_star + t.duration
        resource_free[res] = end
        end_time[tid] = end
        intervals.append(Interval(t_star, end, t))
        scheduled += 1
        dirty = {res}
        for dep_tid in dependents[tid]:
            if end > dep_ready[dep_tid]:
                dep_ready[dep_tid] = end
            remaining_deps[dep_tid] -= 1
            if remaining_deps[dep_tid] == 0:
                res2 = by_id[dep_tid].resource
                heappush(
                    waiting[res2], (dep_ready[dep_tid], seq[dep_tid], dep_tid)
                )
                dirty.add(res2)
        for r in dirty:
            recompute(r)

    if len(end_time) != n:  # pragma: no cover - defensive
        raise SimulationError(f"simulated {len(end_time)} of {n} tasks")
    return Timeline(intervals, num_devices, device_weights)


def simulate_reference(
    tasks: Sequence[Task],
    num_devices: int,
    device_weights: dict[int, int] | None = None,
) -> Timeline:
    """The original list-scheduling engine, kept as the semantic oracle.

    Keeps an incremental ready-set: each resource's dispatch candidate
    ``(t*, priority, seq, task)`` is cached and recomputed only when the
    resource's state changed (a task committed on it, or a dependent
    became ready there) — a candidate depends only on the resource's own
    bucket, ready times and free time, all untouched on other resources.
    Each commit is O(R + dirty buckets) instead of a full O(n) frontier
    rescan, so the equivalence suite can fuzz ~10x larger graphs, while
    the per-resource scan itself stays verbatim the original rule.  The
    event-driven :func:`simulate` must produce identical timelines.
    """
    by_id = validate_task_graph(list(tasks))
    n = len(by_id)
    if n == 0:
        return Timeline([], num_devices, device_weights)

    seq = {tid: i for i, tid in enumerate(by_id)}
    remaining_deps = {tid: len(set(t.deps)) for tid, t in by_id.items()}
    dependents: dict[str, list[str]] = defaultdict(list)
    for t in by_id.values():
        # dict.fromkeys, not set(): dependents lists feed dispatch order,
        # and set iteration would vary with the per-process hash seed.
        for d in dict.fromkeys(t.deps):
            dependents[d].append(t.task_id)
    # Max end time of completed dependencies, maintained incrementally
    # (0.0 for zero-dep tasks) instead of recomputed per unlock.
    dep_ready = {tid: 0.0 for tid in by_id}

    #: ready tasks per resource (unsorted; scanned for the best candidate)
    ready: dict[str, list[str]] = defaultdict(list)
    ready_time: dict[str, float] = {}
    resource_free: dict[str, float] = defaultdict(float)
    end_time: dict[str, float] = {}
    intervals: list[Interval] = []

    #: cached per-resource dispatch candidate (t*, priority, seq, task);
    #: recomputed only for resources whose bucket or free time changed
    candidates: dict[str, tuple[float, tuple, int, str]] = {}

    def push_ready(tid: str, at: float) -> None:
        ready_time[tid] = at
        ready[by_id[tid].resource].append(tid)

    def recompute(res: str) -> None:
        bucket = ready[res]
        if not bucket:
            candidates.pop(res, None)
            return
        free = resource_free[res]
        # The resource's next dispatch happens at
        # t* = max(free, min ready_time); among tasks ready by t*,
        # the smallest priority wins.
        t_star = max(free, min(ready_time[tid] for tid in bucket))
        res_best: tuple[tuple, int, str] | None = None
        for tid in bucket:
            if ready_time[tid] <= t_star:
                cand = (tuple(by_id[tid].priority), seq[tid], tid)
                if res_best is None or cand < res_best:
                    res_best = cand
        assert res_best is not None
        candidates[res] = (t_star, res_best[0], res_best[1], res_best[2])

    for tid, t in by_id.items():
        if remaining_deps[tid] == 0:
            push_ready(tid, 0.0)
    for res in ready:
        recompute(res)

    scheduled = 0
    while scheduled < n:
        best: tuple[float, tuple, int, str] | None = None
        for cand_global in candidates.values():
            if best is None or cand_global < best:
                best = cand_global
        if best is None:
            unrun = sorted(tid for tid in by_id if tid not in end_time)
            raise ScheduleError(
                f"dependency cycle: {len(unrun)} tasks cannot run "
                f"(first few: {unrun[:5]})"
            )
        start, _, _, tid = best
        t = by_id[tid]
        ready[t.resource].remove(tid)
        end = start + t.duration
        resource_free[t.resource] = end
        end_time[tid] = end
        intervals.append(Interval(start, end, t))
        scheduled += 1
        dirty = {t.resource}
        for dep_tid in dependents[tid]:
            if end > dep_ready[dep_tid]:
                dep_ready[dep_tid] = end
            remaining_deps[dep_tid] -= 1
            if remaining_deps[dep_tid] == 0:
                push_ready(dep_tid, dep_ready[dep_tid])
                dirty.add(by_id[dep_tid].resource)
        for res in dirty:
            recompute(res)

    if len(end_time) != n:  # pragma: no cover - defensive
        raise SimulationError(f"simulated {len(end_time)} of {n} tasks")
    return Timeline(intervals, num_devices, device_weights)
