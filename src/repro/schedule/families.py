"""Schedule families: a registry of pipeline schedule builders.

Mirrors the :mod:`repro.core.fill_strategies` registry — the planner
(and the CLI's ``--schedule``) selects a family by name instead of
importing builders directly, so new schedule shapes plug in without
touching planner code.  Registered families:

``onef1b``
    The paper's FIFO-1F1B (:func:`~repro.schedule.onef1b.build_1f1b`).
``gpipe``
    All-forwards-then-all-backwards
    (:func:`~repro.schedule.gpipe.build_gpipe`); the §6 baseline rides
    the same code path as the planner families.
``bidirectional``
    The §4.2 two-backbone Chimera-style composition for cascaded
    models; the only family with ``cascaded=True``.
``interleaved``
    Megatron-style virtual stages: each device hosts ``v``
    non-contiguous chunks, 1F1B over the chunk chain
    (:func:`~repro.schedule.interleaved.build_interleaved`);
    ``chunked=True`` tells the planner to subdivide stage layer ranges.
``zerobubble``
    Split-backward ZB-H1 style: B (grad-input) stays on the gradient
    chain, W (grad-weight) slides into bubbles
    (:func:`~repro.schedule.zerobubble.build_zerobubble`);
    ``splits_backward=True`` selects B/W pricing in the partition DPs.

Every family builds from the same inputs (stage chains + micro-batch
counts) and returns a plain task list for the discrete-event simulator;
``simulate`` needs no per-family logic.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..errors import ConfigurationError
from .bidirectional import BIDIRECTIONAL_COMM_SCALE, build_bidirectional
from .gpipe import build_gpipe
from .interleaved import build_interleaved
from .onef1b import build_1f1b
from .stages import StageExec
from .tasks import Task
from .zerobubble import build_zerobubble


class ScheduleFamily(Protocol):
    """A pipeline schedule shape the planner can search over."""

    #: registry name (also the CLI / PlannerOptions spelling)
    name: str
    #: True if the family composes two backbones over one device chain
    cascaded: bool
    #: True if ``stages`` is a chunk chain needing ``num_devices``
    chunked: bool
    #: True if the family prices/schedules B and W separately
    splits_backward: bool

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        ...  # pragma: no cover - protocol


SCHEDULE_FAMILIES: dict[str, Callable[[], ScheduleFamily]] = {}


def register_schedule_family(name: str):
    """Class decorator adding a family factory under ``name``."""

    def deco(cls):
        SCHEDULE_FAMILIES[name] = cls
        return cls

    return deco


def get_family(name: str) -> ScheduleFamily:
    """Instantiate the family registered under ``name``."""
    factory = SCHEDULE_FAMILIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown schedule family {name!r}; "
            f"registered: {schedule_family_names()}"
        )
    return factory()


def schedule_family_names() -> tuple[str, ...]:
    """Registered family names, sorted (CLI choices, docs)."""
    return tuple(sorted(SCHEDULE_FAMILIES))


def _reject_cascaded(name: str, up) -> None:
    if up is not None:
        raise ConfigurationError(
            f"schedule family {name!r} builds a single backbone; "
            "cascaded models need the 'bidirectional' family"
        )


@register_schedule_family("onef1b")
class OneF1BFamily:
    name = "onef1b"
    cascaded = False
    chunked = False
    splits_backward = False

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        _reject_cascaded(self.name, up)
        return build_1f1b(
            stages,
            num_micro_batches,
            self_conditioning=self_conditioning,
            feedback_ms=feedback_ms,
            sync_on_device=sync_on_device,
        )


@register_schedule_family("gpipe")
class GPipeFamily:
    name = "gpipe"
    cascaded = False
    chunked = False
    splits_backward = False

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        _reject_cascaded(self.name, up)
        return build_gpipe(
            stages,
            num_micro_batches,
            self_conditioning=self_conditioning,
            feedback_ms=feedback_ms,
            sync_on_device=sync_on_device,
        )


@register_schedule_family("bidirectional")
class BidirectionalFamily:
    name = "bidirectional"
    cascaded = True
    chunked = False
    splits_backward = False

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        if up is None:
            raise ConfigurationError(
                "the 'bidirectional' family needs an up-pipeline stage "
                "chain (cascaded models only)"
            )
        return build_bidirectional(
            stages,
            up,
            num_micro_batches,
            num_micro_batches
            if num_micro_batches_up is None
            else num_micro_batches_up,
            self_conditioning=self_conditioning,
            feedback_ms=feedback_ms,
            comm_scale=BIDIRECTIONAL_COMM_SCALE,
            sync_on_device=sync_on_device,
        )


@register_schedule_family("interleaved")
class InterleavedFamily:
    name = "interleaved"
    cascaded = False
    chunked = True
    splits_backward = False

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        _reject_cascaded(self.name, up)
        if num_devices is None:
            raise ConfigurationError(
                "the 'interleaved' family needs num_devices (stages is "
                "a chunk chain placed round-robin)"
            )
        return build_interleaved(
            stages,
            num_micro_batches,
            num_devices,
            self_conditioning=self_conditioning,
            feedback_ms=feedback_ms,
            sync_on_device=sync_on_device,
        )


@register_schedule_family("zerobubble")
class ZeroBubbleFamily:
    name = "zerobubble"
    cascaded = False
    chunked = False
    splits_backward = True

    def build(
        self,
        stages: Sequence[StageExec],
        num_micro_batches: int,
        *,
        up: Sequence[StageExec] | None = None,
        num_micro_batches_up: int | None = None,
        num_devices: int | None = None,
        self_conditioning: bool = False,
        feedback_ms: float = 0.0,
        sync_on_device: bool = False,
    ) -> list[Task]:
        _reject_cascaded(self.name, up)
        return build_zerobubble(
            stages,
            num_micro_batches,
            self_conditioning=self_conditioning,
            feedback_ms=feedback_ms,
            sync_on_device=sync_on_device,
        )
