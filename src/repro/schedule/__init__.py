"""Pipeline schedules: task graphs, builders and the event simulator."""

from .bidirectional import BIDIRECTIONAL_COMM_SCALE, build_bidirectional
from .gpipe import build_gpipe
from .onef1b import build_1f1b
from .simulator import simulate, simulate_reference
from .stages import StageExec, validate_stages
from .tasks import (
    COMPUTE_KINDS,
    Task,
    TaskKind,
    device_resource,
    link_resource,
    sync_resource,
    validate_task_graph,
)
from .timeline import IdleSpan, Interval, Timeline

__all__ = [
    "BIDIRECTIONAL_COMM_SCALE",
    "build_bidirectional",
    "build_gpipe",
    "build_1f1b",
    "simulate",
    "simulate_reference",
    "StageExec",
    "validate_stages",
    "COMPUTE_KINDS",
    "Task",
    "TaskKind",
    "device_resource",
    "link_resource",
    "sync_resource",
    "validate_task_graph",
    "IdleSpan",
    "Interval",
    "Timeline",
]
