"""Pipeline schedules: task graphs, builders and the event simulator.

Schedule construction goes through the :mod:`~repro.schedule.families`
registry — ``get_family(name).build(...)`` — so the planner, baselines
and harness share one code path per family.  The direct builder names
(``build_1f1b``, ``build_gpipe``, ``build_bidirectional``,
``build_interleaved``, ``build_zerobubble``) and
``BIDIRECTIONAL_COMM_SCALE`` remain importable for existing callers and
the builders' own unit tests, but are **deprecated** as a public
surface and no longer listed in ``__all__``; an AST gate
(``tests/test_no_direct_builder_imports.py``) keeps production code off
them outside this package.
"""

from .bidirectional import BIDIRECTIONAL_COMM_SCALE, build_bidirectional
from .families import (
    SCHEDULE_FAMILIES,
    ScheduleFamily,
    get_family,
    register_schedule_family,
    schedule_family_names,
)
from .gpipe import build_gpipe
from .interleaved import build_interleaved
from .onef1b import build_1f1b
from .simulator import simulate, simulate_reference
from .stages import StageExec, validate_stages
from .tasks import (
    COMPUTE_KINDS,
    Task,
    TaskKind,
    device_resource,
    link_resource,
    sync_resource,
    validate_task_graph,
)
from .timeline import IdleSpan, Interval, Timeline
from .zerobubble import build_zerobubble

__all__ = [
    # the registry is the public construction surface
    "SCHEDULE_FAMILIES",
    "ScheduleFamily",
    "get_family",
    "register_schedule_family",
    "schedule_family_names",
    # simulation + data types
    "simulate",
    "simulate_reference",
    "StageExec",
    "validate_stages",
    "COMPUTE_KINDS",
    "Task",
    "TaskKind",
    "device_resource",
    "link_resource",
    "sync_resource",
    "validate_task_graph",
    "IdleSpan",
    "Interval",
    "Timeline",
    # deprecated direct names (use get_family(...).build instead):
    # BIDIRECTIONAL_COMM_SCALE, build_bidirectional, build_gpipe,
    # build_1f1b, build_interleaved, build_zerobubble
]
