"""Task graph primitives consumed by the discrete-event simulator.

A pipeline schedule is a DAG of :class:`Task` objects.  Each task runs on
exactly one *resource* (a device's compute engine, a directed link, a
device's collective engine) for a fixed duration, after all of its
dependencies complete.  The simulator dispatches ready tasks per resource
in priority order, which — together with statically-encoded in-flight
window dependencies — realises FIFO-1F1B, GPipe and bidirectional
schedules without bespoke event logic per schedule type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ScheduleError


class TaskKind(enum.Enum):
    """What a task models; used for timeline rendering and accounting."""

    FORWARD = "forward"
    BACKWARD = "backward"          # grad-input (B), or the whole backward
    BACKWARD_W = "backward_w"      # grad-weight (W) of a split backward
    SC_FORWARD = "sc_forward"      # self-conditioning extra forward
    NT_FORWARD = "nt_forward"      # non-trainable (frozen) layer execution
    COMM = "comm"                  # inter-stage activation/gradient transfer
    SYNC = "sync"                  # gradient all-reduce (pipeline flush)
    OTHER = "other"


#: Task kinds that occupy a device's *compute* engine.  SYNC runs on the
#: collective engine and may be overlapped by NT compute (paper Fig. 9).
#: BACKWARD_W is compute: a zero-bubble schedule's W work counts as busy
#: time, which is exactly how it shrinks the bubble metric.
COMPUTE_KINDS = frozenset(
    {
        TaskKind.FORWARD,
        TaskKind.BACKWARD,
        TaskKind.BACKWARD_W,
        TaskKind.SC_FORWARD,
        TaskKind.NT_FORWARD,
    }
)


def device_resource(device: int) -> str:
    """Resource key of a device's compute engine."""
    return f"dev:{device}"


def link_resource(src: int, dst: int) -> str:
    """Resource key of the directed link from one device to another."""
    return f"link:{src}->{dst}"


def sync_resource(device: int) -> str:
    """Resource key of a device's collective (NCCL) engine."""
    return f"sync:{device}"


@dataclass(frozen=True)
class Task:
    """One schedulable unit.

    Parameters
    ----------
    task_id:
        Unique id within the schedule.
    resource:
        The resource the task occupies while running.
    duration:
        Execution time in ms (may be 0 for pure ordering tasks).
    deps:
        Ids of tasks that must complete before this one starts.
    kind:
        The :class:`TaskKind`.
    priority:
        Dispatch priority among ready tasks on the same resource
        (lower runs first); ties broken by insertion order.
    device:
        The device this task is *attributed to* for timeline accounting
        (comm tasks attribute to their source device; None hides the
        task from per-device accounting).
    meta:
        Free-form annotations (stage index, micro-batch index, ...).
    """

    task_id: str
    resource: str
    duration: float
    deps: tuple[str, ...] = ()
    kind: TaskKind = TaskKind.OTHER
    priority: tuple = ()
    device: int | None = None
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ScheduleError("task_id must be non-empty")
        if self.duration < 0:
            raise ScheduleError(f"task {self.task_id}: negative duration")
        if self.task_id in self.deps:
            raise ScheduleError(f"task {self.task_id} depends on itself")


def validate_task_graph(tasks: list[Task]) -> dict[str, Task]:
    """Check uniqueness and referential integrity; return an id->task map."""
    by_id: dict[str, Task] = {}
    for t in tasks:
        if t.task_id in by_id:
            raise ScheduleError(f"duplicate task id {t.task_id}")
        by_id[t.task_id] = t
    for t in tasks:
        for d in t.deps:
            if d not in by_id:
                raise ScheduleError(f"task {t.task_id} depends on unknown {d}")
    return by_id
