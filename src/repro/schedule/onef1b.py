"""FIFO-1F1B schedule builder (paper Fig. 2 / Fig. 10).

The schedule is encoded as a task graph:

* ``fwd(s, m)`` depends on the activation transfer from stage ``s-1``;
* ``bwd(s, m)`` depends on the gradient transfer from stage ``s+1`` and
  on ``fwd(s, m)``;
* the 1F1B in-flight window is encoded statically —
  ``fwd(s, m)`` additionally depends on ``bwd(s, m - (S - s))`` so stage
  ``s`` keeps at most ``S - s`` activations alive;
* with self-conditioning, each micro-batch runs an extra no-grad forward
  wave whose last-stage output feeds back to stage 0 (Fig. 10's ``Cf``);
* each stage's gradient all-reduce runs on the device's collective
  engine after its last backward.

Priorities implement FIFO-1F1B dispatch: among ready tasks a device
prefers lower micro-batch index and, within one, SC-forward < forward <
backward.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .stages import StageExec, validate_stages
from .tasks import Task, TaskKind, device_resource, link_resource, sync_resource

#: phase codes used in dispatch priorities
_PHASE_SC, _PHASE_FWD, _PHASE_BWD = 0, 1, 2


def build_1f1b(
    stages: Sequence[StageExec],
    num_micro_batches: int,
    *,
    self_conditioning: bool = False,
    feedback_ms: float = 0.0,
    id_prefix: str = "",
    device_offset: int = 0,
    device_order: Sequence[int] | None = None,
    comm_scale: float = 1.0,
    sync_on_device: bool = False,
) -> list[Task]:
    """Build the FIFO-1F1B task graph for one backbone pipeline.

    Parameters
    ----------
    stages:
        The stage chain (length ``S``).
    num_micro_batches:
        ``M`` micro-batches per iteration.
    self_conditioning:
        Add the extra forward wave + feedback transfer of §4.3.
    feedback_ms:
        Duration of the last-stage -> first-stage feedback transfer.
    id_prefix:
        Prefix for task ids (used when composing multiple pipelines).
    device_offset / device_order:
        Mapping from stage position to logical device: stage ``s`` runs
        on ``device_order[s]`` if given, else ``device_offset + s``.
        Bidirectional composition passes a reversed order for the up
        pipeline.
    comm_scale:
        Multiplier on all communication durations (bidirectional
        pipelines double communication cost, §4.2).
    sync_on_device:
        Run gradient sync on the compute engine instead of the
        collective engine (models a blocking all-reduce).
    """
    stages = validate_stages(stages)
    S = len(stages)
    M = num_micro_batches
    if M <= 0:
        raise ConfigurationError("number of micro-batches must be positive")
    if comm_scale <= 0:
        raise ConfigurationError("comm_scale must be positive")
    if device_order is None:
        device_order = [device_offset + s for s in range(S)]
    else:
        device_order = list(device_order)
        if len(device_order) != S:
            raise ConfigurationError("device_order length must equal stage count")

    p = id_prefix
    tasks: list[Task] = []

    def dev(s: int) -> int:
        return device_order[s]

    def fwd_id(s: int, m: int) -> str:
        return f"{p}fwd[{s},{m}]"

    def bwd_id(s: int, m: int) -> str:
        return f"{p}bwd[{s},{m}]"

    def sc_id(s: int, m: int) -> str:
        return f"{p}sc[{s},{m}]"

    waves = ([(_PHASE_SC, sc_id)] if self_conditioning else []) + [(_PHASE_FWD, fwd_id)]

    for m in range(M):
        # Forward waves (self-conditioning wave first, then the main wave).
        for wave_idx, (phase, mk_id) in enumerate(waves):
            for s in range(S):
                deps: list[str] = []
                if s > 0:
                    deps.append(f"{p}c{phase}[{s - 1},{m}]")
                if phase == _PHASE_FWD and self_conditioning:
                    # The main forward of stage 0 consumes the fed-back
                    # output of the SC wave (Fig. 10's Cf).
                    if s == 0:
                        deps.append(f"{p}cf[{m}]")
                if phase == _PHASE_FWD:
                    # 1F1B in-flight window: stage s keeps at most S - s
                    # activations alive.
                    window = S - s
                    if m - window >= 0:
                        deps.append(bwd_id(s, m - window))
                duration = (
                    stages[s].sc_fwd_ms if phase == _PHASE_SC else stages[s].fwd_ms
                )
                assert duration is not None
                tasks.append(
                    Task(
                        task_id=mk_id(s, m),
                        resource=device_resource(dev(s)),
                        duration=duration,
                        deps=tuple(deps),
                        kind=TaskKind.SC_FORWARD
                        if phase == _PHASE_SC
                        else TaskKind.FORWARD,
                        priority=(m, phase, wave_idx),
                        device=dev(s),
                        meta={"stage": s, "micro_batch": m},
                    )
                )
                # Activation transfer to the next stage.
                if s < S - 1:
                    tasks.append(
                        Task(
                            task_id=f"{p}c{phase}[{s},{m}]",
                            resource=link_resource(dev(s), dev(s + 1)),
                            duration=stages[s].send_fwd_ms * comm_scale,
                            deps=(mk_id(s, m),),
                            kind=TaskKind.COMM,
                            priority=(m, phase),
                            device=None,
                            meta={"stage": s, "micro_batch": m, "dir": "fwd"},
                        )
                    )
            if phase == _PHASE_SC:
                # Feedback transfer: last stage output -> stage 0 input.
                tasks.append(
                    Task(
                        task_id=f"{p}cf[{m}]",
                        resource=link_resource(dev(S - 1), dev(0)),
                        duration=feedback_ms * comm_scale,
                        deps=(sc_id(S - 1, m),),
                        kind=TaskKind.COMM,
                        priority=(m, phase),
                        device=None,
                        meta={"micro_batch": m, "dir": "feedback"},
                    )
                )

        # Backward wave, last stage to first.
        for s in range(S - 1, -1, -1):
            deps = [fwd_id(s, m)]
            if s < S - 1:
                deps.append(f"{p}g[{s + 1},{m}]")
            tasks.append(
                Task(
                    task_id=bwd_id(s, m),
                    resource=device_resource(dev(s)),
                    duration=stages[s].bwd_ms,
                    deps=tuple(deps),
                    kind=TaskKind.BACKWARD,
                    priority=(m, _PHASE_BWD),
                    device=dev(s),
                    meta={"stage": s, "micro_batch": m},
                )
            )
            if s > 0:
                tasks.append(
                    Task(
                        task_id=f"{p}g[{s},{m}]",
                        resource=link_resource(dev(s), dev(s - 1)),
                        duration=stages[s - 1].send_bwd_ms * comm_scale,
                        deps=(bwd_id(s, m),),
                        kind=TaskKind.COMM,
                        priority=(m, _PHASE_BWD),
                        device=None,
                        meta={"stage": s, "micro_batch": m, "dir": "bwd"},
                    )
                )

    # Gradient synchronisation per stage after its last backward.
    for s in range(S):
        resource = (
            device_resource(dev(s)) if sync_on_device else sync_resource(dev(s))
        )
        tasks.append(
            Task(
                task_id=f"{p}sync[{s}]",
                resource=resource,
                duration=stages[s].sync_ms,
                deps=(bwd_id(s, M - 1),),
                kind=TaskKind.SYNC,
                priority=(M, _PHASE_BWD + 1),
                device=dev(s),
                meta={"stage": s},
            )
        )
    return tasks
