"""Interleaved-1F1B schedule builder (Megatron-style virtual stages).

Each device hosts ``v`` non-contiguous *chunks* of the layer chain:
chunk ``c`` of ``v * D`` total runs on device ``c mod D``, so device 0
hosts chunks ``0, D, 2D, ...``.  The pipeline then runs plain FIFO-1F1B
over the chunk chain — every warm-up and cool-down ramp is paid in
per-chunk stage time (``~1/v`` of the contiguous stage time), which is
what shrinks the fill/drain bubbles, at the cost of ``v``-fold more
inter-stage traffic.

Because :func:`build_1f1b` already separates chain position from device
placement (``device_order``), the interleaved family is exactly 1F1B
over the chunk chain with a round-robin placement; dispatch priorities
(micro-batch first, forward before backward) give each device the
interleaved ordering over its chunks' slots.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .onef1b import build_1f1b
from .stages import StageExec, validate_stages
from .tasks import Task


def build_interleaved(
    chunks: Sequence[StageExec],
    num_micro_batches: int,
    num_devices: int,
    *,
    self_conditioning: bool = False,
    feedback_ms: float = 0.0,
    id_prefix: str = "",
    comm_scale: float = 1.0,
    sync_on_device: bool = False,
) -> list[Task]:
    """Build the interleaved-1F1B task graph.

    ``chunks`` is the *chunk* chain (length ``v * num_devices``, in
    pipeline order); chunk ``c`` is placed on device ``c mod
    num_devices``.  Chunk costs must already be per-chunk (the planner
    subdivides each contiguous stage's layer range).
    """
    chunks = validate_stages(chunks)
    if num_devices <= 0:
        raise ConfigurationError("num_devices must be positive")
    if len(chunks) % num_devices != 0:
        raise ConfigurationError(
            f"interleaved schedule needs a whole number of chunks per "
            f"device (got {len(chunks)} chunks on {num_devices} devices)"
        )
    device_order = [c % num_devices for c in range(len(chunks))]
    return build_1f1b(
        chunks,
        num_micro_batches,
        self_conditioning=self_conditioning,
        feedback_ms=feedback_ms,
        id_prefix=id_prefix,
        device_order=device_order,
        comm_scale=comm_scale,
        sync_on_device=sync_on_device,
    )
