"""Stage execution descriptions: the interface between partitioning and
schedule building.

A :class:`StageExec` captures everything the schedule builders need to
know about one pipeline stage: its per-micro-batch forward/backward
times (at the stage's *local* batch size, i.e. micro-batch divided by
the stage's replication factor), inter-stage communication times, its
gradient-synchronisation time and its replication factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class StageExec:
    """Execution profile of one pipeline stage.

    Parameters
    ----------
    index:
        Stage position in the pipeline (0-based, in pipeline direction).
    fwd_ms / bwd_ms:
        Per-micro-batch forward/backward compute time.
    sc_fwd_ms:
        Self-conditioning forward time (defaults to ``fwd_ms``).
    send_fwd_ms:
        Time to ship this stage's activations to the next stage.
    send_bwd_ms:
        Time to ship this stage's input-gradients to the previous stage.
    sync_ms:
        Gradient all-reduce time of this stage at pipeline flush.
    replicas:
        Number of physical devices this (logical) stage replicates on.
    layer_range:
        The (component, lo, hi) layer slice this stage runs, if known.
    bwd_b_ms / bwd_w_ms:
        Split-backward components (grad-input / grad-weight) used by the
        ``zerobubble`` family.  Default to an even split of ``bwd_ms``
        (exact in floating point); when one is given the other is
        derived so B + W always reconstructs ``bwd_ms``.
    """

    index: int
    fwd_ms: float
    bwd_ms: float
    sc_fwd_ms: float | None = None
    send_fwd_ms: float = 0.0
    send_bwd_ms: float = 0.0
    sync_ms: float = 0.0
    replicas: int = 1
    layer_range: tuple[str, int, int] | None = None
    bwd_b_ms: float | None = None
    bwd_w_ms: float | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("stage index must be non-negative")
        for name in ("fwd_ms", "bwd_ms", "send_fwd_ms", "send_bwd_ms", "sync_ms"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"stage {self.index}: negative {name}")
        if self.replicas <= 0:
            raise ConfigurationError(f"stage {self.index}: replicas must be >= 1")
        if self.sc_fwd_ms is None:
            object.__setattr__(self, "sc_fwd_ms", self.fwd_ms)
        elif self.sc_fwd_ms < 0:
            raise ConfigurationError(f"stage {self.index}: negative sc_fwd_ms")
        b, w = self.bwd_b_ms, self.bwd_w_ms
        if b is None and w is None:
            # x/2 + x/2 == x exactly in IEEE arithmetic.
            w = 0.5 * self.bwd_ms
            b = self.bwd_ms - w
        elif b is None:
            b = self.bwd_ms - w
        elif w is None:
            w = self.bwd_ms - b
        if b < 0 or w < 0:
            raise ConfigurationError(
                f"stage {self.index}: backward split components must be "
                f"non-negative (bwd={self.bwd_ms}, B={b}, W={w})"
            )
        if abs((b + w) - self.bwd_ms) > 1e-9 * max(1.0, self.bwd_ms):
            raise ConfigurationError(
                f"stage {self.index}: B + W must reconstruct bwd_ms "
                f"(bwd={self.bwd_ms}, B={b}, W={w})"
            )
        object.__setattr__(self, "bwd_b_ms", b)
        object.__setattr__(self, "bwd_w_ms", w)


def validate_stages(stages: Sequence[StageExec]) -> list[StageExec]:
    """Check a stage chain is contiguous and well-formed."""
    stages = list(stages)
    if not stages:
        raise ConfigurationError("empty stage list")
    for i, s in enumerate(stages):
        if s.index != i:
            raise ConfigurationError(
                f"stage at position {i} has index {s.index}; stages must be "
                "listed in pipeline order with contiguous indices"
            )
    return stages
