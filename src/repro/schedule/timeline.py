"""Execution timelines: the simulator's output.

A :class:`Timeline` is a set of executed intervals (resource, start, end,
task).  It answers the questions the rest of the system asks:

* iteration makespan;
* per-device busy / idle / sync intervals;
* pipeline-bubble device-time and bubble ratio (the Fig. 4 / Fig. 14
  metric: ``sum_b T_b * d_b / (iteration_time * total_devices)``);
* an ASCII Gantt rendering for examples and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import SimulationError
from .tasks import COMPUTE_KINDS, Task, TaskKind


@dataclass(frozen=True)
class Interval:
    """One executed task occurrence."""

    start: float
    end: float
    task: Task

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"interval for {self.task.task_id} ends before it starts"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class IdleSpan:
    """An idle gap on one device."""

    device: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Executed intervals plus device metadata.

    Parameters
    ----------
    intervals:
        All executed intervals.
    num_devices:
        Number of logical devices (pipeline stages' hosts).
    device_weights:
        Physical devices represented by each logical device (stage
        replication factor); defaults to 1 each.
    """

    def __init__(
        self,
        intervals: Sequence[Interval],
        num_devices: int,
        device_weights: Mapping[int, int] | None = None,
    ):
        if num_devices <= 0:
            raise SimulationError("num_devices must be positive")
        self.intervals = sorted(intervals, key=lambda iv: (iv.start, iv.end))
        self.num_devices = num_devices
        self.device_weights = dict(device_weights or {})
        for d in range(num_devices):
            self.device_weights.setdefault(d, 1)
        # Lazy caches; the interval list is treated as immutable after
        # construction (planner code shares Timeline objects).
        self._makespan: float | None = None
        self._by_device: dict[int | None, list[Interval]] | None = None

    # -- aggregate times -------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End time of the last interval (iteration time)."""
        if self._makespan is None:
            if not self.intervals:
                self._makespan = 0.0
            else:
                self._makespan = max(iv.end for iv in self.intervals)
        return self._makespan

    @property
    def total_physical_devices(self) -> int:
        """Sum of device weights (physical device count)."""
        return sum(self.device_weights.values())

    # -- per-device views --------------------------------------------------------

    def device_intervals(
        self, device: int, kinds: Iterable[TaskKind] | None = None
    ) -> list[Interval]:
        """Intervals attributed to one device, optionally filtered by kind."""
        if self._by_device is None:
            by_device: dict[int | None, list[Interval]] = {}
            for iv in self.intervals:
                by_device.setdefault(iv.task.device, []).append(iv)
            self._by_device = by_device
        device_ivs = self._by_device.get(device, [])
        kinds_set = set(kinds) if kinds is not None else None
        if kinds_set is None:
            return list(device_ivs)
        return [iv for iv in device_ivs if iv.task.kind in kinds_set]

    def busy_spans(self, device: int, kinds: Iterable[TaskKind]) -> list[tuple[float, float]]:
        """Merged (start, end) spans where the device runs tasks of ``kinds``."""
        ivs = self.device_intervals(device, kinds)
        spans: list[tuple[float, float]] = []
        for iv in sorted(ivs, key=lambda v: v.start):
            if iv.duration == 0:
                continue
            if spans and iv.start <= spans[-1][1]:
                spans[-1] = (spans[-1][0], max(spans[-1][1], iv.end))
            else:
                spans.append((iv.start, iv.end))
        return spans

    def idle_spans(
        self,
        device: int,
        horizon: float | None = None,
        busy_kinds: Iterable[TaskKind] = COMPUTE_KINDS,
        include_sync_as_busy: bool = True,
    ) -> list[IdleSpan]:
        """Idle gaps of one device over ``[0, horizon]``.

        By default sync (all-reduce) intervals count as busy: they are
        not pipeline bubbles in the paper's metric.  Pass
        ``include_sync_as_busy=False`` to get the *fillable* spans used
        by the bubble-filling algorithm, which may overlap NT compute
        with synchronisation (paper Fig. 9).
        """
        horizon = self.makespan if horizon is None else horizon
        kinds = set(busy_kinds)
        if include_sync_as_busy:
            kinds.add(TaskKind.SYNC)
        spans = self.busy_spans(device, kinds)
        idles: list[IdleSpan] = []
        cursor = 0.0
        for s, e in spans:
            if s > cursor:
                idles.append(IdleSpan(device, cursor, min(s, horizon)))
            cursor = max(cursor, e)
            if cursor >= horizon:
                break
        if cursor < horizon:
            idles.append(IdleSpan(device, cursor, horizon))
        return [sp for sp in idles if sp.duration > 0]

    # -- bubble metrics -------------------------------------------------------------

    def bubble_device_time(self, horizon: float | None = None) -> float:
        """Total idle device-time, weighted by stage replication."""
        horizon = self.makespan if horizon is None else horizon
        total = 0.0
        for d in range(self.num_devices):
            idle = sum(sp.duration for sp in self.idle_spans(d, horizon))
            total += idle * self.device_weights[d]
        return total

    def bubble_ratio(self, horizon: float | None = None) -> float:
        """The paper's bubble ratio:
        ``sum_b T_b * d_b / (iteration_time * total_num_devices)``."""
        horizon = self.makespan if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self.bubble_device_time(horizon) / (
            horizon * self.total_physical_devices
        )

    def compute_device_time(self) -> float:
        """Total busy compute device-time, weighted by replication."""
        total = 0.0
        for d in range(self.num_devices):
            busy = sum(e - s for s, e in self.busy_spans(d, COMPUTE_KINDS))
            total += busy * self.device_weights[d]
        return total

    # -- rendering ----------------------------------------------------------------

    _GLYPHS = {
        TaskKind.FORWARD: "F",
        TaskKind.SC_FORWARD: "s",
        TaskKind.BACKWARD: "B",
        TaskKind.BACKWARD_W: "W",
        TaskKind.NT_FORWARD: "n",
        TaskKind.SYNC: "=",
        TaskKind.COMM: "-",
        TaskKind.OTHER: "?",
    }

    def to_ascii(self, width: int = 100) -> str:
        """Render the timeline as an ASCII Gantt chart.

        Each row is a device; each column a time slice; letters identify
        task kinds (F forward, B backward/grad-input, W grad-weight,
        s self-conditioning forward, n non-trainable forward, = sync,
        . idle).
        """
        span = self.makespan
        if span <= 0:
            return "(empty timeline)"
        scale = width / span
        rows = []
        for d in range(self.num_devices):
            row = ["."] * width
            for iv in self.device_intervals(d):
                if iv.duration == 0:
                    continue
                a = int(iv.start * scale)
                b = max(int(iv.end * scale), a + 1)
                glyph = self._GLYPHS.get(iv.task.kind, "?")
                for i in range(a, min(b, width)):
                    row[i] = glyph
            label = f"dev{d}(x{self.device_weights[d]})"
            rows.append(f"{label:>10} |{''.join(row)}|")
        header = f"{'':>10}  0{'':{width - 10}}{span:8.1f} ms"
        return "\n".join(rows + [header])
