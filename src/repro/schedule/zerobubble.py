"""Zero-bubble schedule builder: 1F1B with the backward split into
B (grad-input) and W (grad-weight).

Following sail-sg/zero-bubble's observation, only the grad-input half of
a backward sits on the inter-stage critical path — the gradient sent to
stage ``s-1`` is ready as soon as ``dy @ W^T`` finishes — while the
grad-weight GEMM (``x^T @ dy``) is needed only before the optimizer
step.  Splitting them lets W work slide into what were pipeline bubbles:

* the task graph is FIFO-1F1B built over the *B* durations (so the
  warm-up/cool-down ramps and all gradient transfers shorten to B's
  length);
* each ``bwd[s,m]`` keeps its id and dependencies but runs only the B
  component, so the existing comm, in-flight-window and feedback wiring
  is inherited unchanged;
* a new ``w[s,m]`` task (kind :data:`TaskKind.BACKWARD_W`) depends only
  on its own B and carries a priority ordered *after* every forward and
  B — under the simulator's work-conserving dispatch it runs exactly
  when the device would otherwise idle (the ZB-H1 heuristic);
* the gradient all-reduce waits for all of a stage's W tasks instead of
  its last backward.

The in-flight window still keys on B (a new forward may start once the
grad-input of the window predecessor is done); activations needed by the
deferred W tasks live slightly longer, which is zero-bubble's documented
memory cost — the memory estimator prices the family with the 1F1B
window as a deliberate approximation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from .onef1b import build_1f1b
from .stages import StageExec, validate_stages
from .tasks import Task, TaskKind

#: phase code of W tasks; larger than every phase used by build_1f1b so
#: ``(M + m, _PHASE_W)`` sorts after any forward/B priority ``(m', ...)``.
_PHASE_W = 4


def build_zerobubble(
    stages: Sequence[StageExec],
    num_micro_batches: int,
    *,
    self_conditioning: bool = False,
    feedback_ms: float = 0.0,
    id_prefix: str = "",
    device_offset: int = 0,
    device_order: Sequence[int] | None = None,
    comm_scale: float = 1.0,
    sync_on_device: bool = False,
) -> list[Task]:
    """Build the split-backward (zero-bubble) task graph.

    Accepts the same parameters as :func:`build_1f1b`; stage B/W
    durations come from :attr:`StageExec.bwd_b_ms` /
    :attr:`StageExec.bwd_w_ms` (defaulting to an even split).
    """
    stages = validate_stages(stages)
    M = num_micro_batches
    p = id_prefix
    base = build_1f1b(
        stages,
        M,
        self_conditioning=self_conditioning,
        feedback_ms=feedback_ms,
        id_prefix=id_prefix,
        device_offset=device_offset,
        device_order=device_order,
        comm_scale=comm_scale,
        sync_on_device=sync_on_device,
    )
    tasks: list[Task] = []
    w_ids: dict[int, list[str]] = {s.index: [] for s in stages}
    for t in base:
        if t.kind is TaskKind.BACKWARD:
            s = int(t.meta["stage"])  # type: ignore[arg-type]
            m = int(t.meta["micro_batch"])  # type: ignore[arg-type]
            tasks.append(replace(t, duration=stages[s].bwd_b_ms))
            w_id = f"{p}w[{s},{m}]"
            w_ids[s].append(w_id)
            tasks.append(
                Task(
                    task_id=w_id,
                    resource=t.resource,
                    duration=stages[s].bwd_w_ms,
                    deps=(t.task_id,),
                    kind=TaskKind.BACKWARD_W,
                    priority=(M + m, _PHASE_W),
                    device=t.device,
                    meta={"stage": s, "micro_batch": m},
                )
            )
        elif t.kind is TaskKind.SYNC:
            s = int(t.meta["stage"])  # type: ignore[arg-type]
            tasks.append(replace(t, deps=tuple(w_ids[s])))
        else:
            tasks.append(t)
    return tasks
