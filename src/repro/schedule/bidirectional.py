"""Bidirectional (Chimera-style) schedule builder for cascaded models.

Two backbones pipeline over the *same* device chain in opposite
directions (§4.2, Fig. 3): the "down" backbone's stage ``s`` runs on
device ``s`` while the "up" backbone's stage ``s`` runs on device
``S - 1 - s``.  Each backbone runs its own FIFO-1F1B schedule; the
device's dispatch interleaves them, and each pipeline's micro-batches
slot into the other's bubbles.

Communication durations are doubled relative to the unidirectional case
because the two pipelines compete for link resources (the paper's
factor-2 enlargement, §4.2).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .onef1b import build_1f1b
from .stages import StageExec, validate_stages
from .tasks import Task

#: the paper enlarges communication time by 2x for bidirectional pipelines
BIDIRECTIONAL_COMM_SCALE = 2.0


def build_bidirectional(
    stages_down: Sequence[StageExec],
    stages_up: Sequence[StageExec],
    num_micro_batches_down: int,
    num_micro_batches_up: int,
    *,
    self_conditioning: bool = False,
    feedback_ms: float = 0.0,
    comm_scale: float = BIDIRECTIONAL_COMM_SCALE,
    sync_on_device: bool = False,
) -> list[Task]:
    """Build the combined task graph of a two-backbone bidirectional pipeline.

    Both stage chains must have the same length (they share the device
    chain).  Devices are numbered 0..S-1; the down pipeline maps stage
    ``s`` to device ``s``, the up pipeline maps stage ``s`` to device
    ``S - 1 - s``.
    """
    down = validate_stages(stages_down)
    up = validate_stages(stages_up)
    if len(down) != len(up):
        raise ConfigurationError(
            f"bidirectional pipelines need equal stage counts "
            f"(got {len(down)} and {len(up)})"
        )
    S = len(down)
    for i in range(S):
        # Chain position i hosts down stage i and up stage S-1-i on the
        # same physical devices, so their replica counts must agree —
        # heterogeneous partitions assign one count per position.
        if down[i].replicas != up[S - 1 - i].replicas:
            raise ConfigurationError(
                f"co-located stages disagree on replication at device {i}: "
                f"down stage {i} has {down[i].replicas} replicas, up stage "
                f"{S - 1 - i} has {up[S - 1 - i].replicas}"
            )
    tasks = build_1f1b(
        down,
        num_micro_batches_down,
        self_conditioning=self_conditioning,
        feedback_ms=feedback_ms,
        id_prefix="dn/",
        device_order=list(range(S)),
        comm_scale=comm_scale,
        sync_on_device=sync_on_device,
    )
    tasks += build_1f1b(
        up,
        num_micro_batches_up,
        self_conditioning=self_conditioning,
        feedback_ms=feedback_ms,
        id_prefix="up/",
        device_order=list(range(S - 1, -1, -1)),
        comm_scale=comm_scale,
        sync_on_device=sync_on_device,
    )
    return tasks
