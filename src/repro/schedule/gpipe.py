"""GPipe schedule builder (Huang et al. 2019).

GPipe runs *all* forward micro-batches through the pipeline, then all
backward micro-batches (Fig. 2's schedule without the 1F1B
interleaving).  There is no in-flight window: every micro-batch's
activations stay alive until its backward, which is what gives GPipe its
higher memory footprint.

The paper evaluates GPipe with equal-layer-count partitioning, 2 stages
and 4 micro-batches (§6, Baselines); the equal partitioning itself lives
in :mod:`repro.baselines.gpipe`.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .stages import StageExec, validate_stages
from .tasks import Task, TaskKind, device_resource, link_resource, sync_resource

_PHASE_SC, _PHASE_FWD, _PHASE_BWD = 0, 1, 2


def build_gpipe(
    stages: Sequence[StageExec],
    num_micro_batches: int,
    *,
    self_conditioning: bool = False,
    feedback_ms: float = 0.0,
    id_prefix: str = "",
    device_offset: int = 0,
    sync_on_device: bool = False,
) -> list[Task]:
    """Build the GPipe task graph (all forwards, then all backwards)."""
    stages = validate_stages(stages)
    S = len(stages)
    M = num_micro_batches
    if M <= 0:
        raise ConfigurationError("number of micro-batches must be positive")

    p = id_prefix
    tasks: list[Task] = []

    def dev(s: int) -> int:
        return device_offset + s

    waves = [(_PHASE_SC, "sc")] if self_conditioning else []
    waves += [(_PHASE_FWD, "fwd")]

    for m in range(M):
        for phase, tag in waves:
            for s in range(S):
                deps: list[str] = []
                if s > 0:
                    deps.append(f"{p}c{tag}[{s - 1},{m}]")
                if phase == _PHASE_FWD and self_conditioning and s == 0:
                    deps.append(f"{p}cf[{m}]")
                duration = (
                    stages[s].sc_fwd_ms if phase == _PHASE_SC else stages[s].fwd_ms
                )
                assert duration is not None
                tasks.append(
                    Task(
                        task_id=f"{p}{tag}[{s},{m}]",
                        resource=device_resource(dev(s)),
                        duration=duration,
                        deps=tuple(deps),
                        kind=TaskKind.SC_FORWARD
                        if phase == _PHASE_SC
                        else TaskKind.FORWARD,
                        # GPipe priority: all forwards precede backwards.
                        priority=(0, m, phase),
                        device=dev(s),
                        meta={"stage": s, "micro_batch": m},
                    )
                )
                if s < S - 1:
                    tasks.append(
                        Task(
                            task_id=f"{p}c{tag}[{s},{m}]",
                            resource=link_resource(dev(s), dev(s + 1)),
                            duration=stages[s].send_fwd_ms,
                            deps=(f"{p}{tag}[{s},{m}]",),
                            kind=TaskKind.COMM,
                            priority=(0, m, phase),
                            device=None,
                            meta={"stage": s, "micro_batch": m, "dir": "fwd"},
                        )
                    )
            if phase == _PHASE_SC:
                tasks.append(
                    Task(
                        task_id=f"{p}cf[{m}]",
                        resource=link_resource(dev(S - 1), dev(0)),
                        duration=feedback_ms,
                        deps=(f"{p}sc[{S - 1},{m}]",),
                        kind=TaskKind.COMM,
                        priority=(0, m, phase),
                        device=None,
                        meta={"micro_batch": m, "dir": "feedback"},
                    )
                )

    for m in range(M):
        for s in range(S - 1, -1, -1):
            deps = [f"{p}fwd[{s},{m}]"]
            if s < S - 1:
                deps.append(f"{p}g[{s + 1},{m}]")
            tasks.append(
                Task(
                    task_id=f"{p}bwd[{s},{m}]",
                    resource=device_resource(dev(s)),
                    duration=stages[s].bwd_ms,
                    deps=tuple(deps),
                    kind=TaskKind.BACKWARD,
                    priority=(1, m, _PHASE_BWD),
                    device=dev(s),
                    meta={"stage": s, "micro_batch": m},
                )
            )
            if s > 0:
                tasks.append(
                    Task(
                        task_id=f"{p}g[{s},{m}]",
                        resource=link_resource(dev(s), dev(s - 1)),
                        duration=stages[s - 1].send_bwd_ms,
                        deps=(f"{p}bwd[{s},{m}]",),
                        kind=TaskKind.COMM,
                        priority=(1, m, _PHASE_BWD),
                        device=None,
                        meta={"stage": s, "micro_batch": m, "dir": "bwd"},
                    )
                )

    for s in range(S):
        resource = (
            device_resource(dev(s)) if sync_on_device else sync_resource(dev(s))
        )
        tasks.append(
            Task(
                task_id=f"{p}sync[{s}]",
                resource=resource,
                duration=stages[s].sync_ms,
                deps=(f"{p}bwd[{s},{M - 1}]",),
                kind=TaskKind.SYNC,
                priority=(2, M, _PHASE_BWD + 1),
                device=dev(s),
                meta={"stage": s},
            )
        )
    return tasks
