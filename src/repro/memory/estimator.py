"""Per-device memory estimation and OOM detection.

Memory model (mixed-precision Adam, the setup of the paper's testbed):

* trainable parameters: fp16 copy (2 B/param) + fp32 master (4 B)
* gradients: fp16 (2 B)
* optimiser states: 2 fp32 moments (8 B)
  => 16 bytes per trainable parameter resident on a device
* frozen parameters: fp16 only (2 B/param), with no gradients/states
* activations: per in-flight micro-batch, the sum of the resident
  layers' stored-activation bytes at the local batch size; 1F1B keeps at
  most ``S - s`` micro-batches alive on stage ``s`` while GPipe keeps
  all ``M``.

ZeRO-3 shards parameters, gradients and optimiser states across the
data-parallel group and materialises at most one layer's parameters at
a time.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..models.component import ComponentSpec
from ..models.graph import ModelSpec
from ..models.layers import DTYPE_BYTES
from ..core.plan import MemoryReport, PartitionPlan, StageAssignment

#: bytes per trainable parameter: fp16 param + fp16 grad + fp32 master
#: + two fp32 Adam moments
TRAINABLE_STATE_BYTES_PER_PARAM = 16.0
#: bytes per frozen parameter (fp16 weights only)
FROZEN_STATE_BYTES_PER_PARAM = 2.0


def _param_count(param_bytes: float) -> float:
    return param_bytes / DTYPE_BYTES


def component_state_bytes(comp: ComponentSpec) -> float:
    """Parameter + optimiser state bytes of a whole component."""
    per_param = (
        TRAINABLE_STATE_BYTES_PER_PARAM if comp.trainable else FROZEN_STATE_BYTES_PER_PARAM
    )
    return _param_count(comp.param_bytes) * per_param


def frozen_state_bytes(model: ModelSpec) -> float:
    """Bytes for hosting every frozen component's weights (each device
    runs the non-trainable part data-parallel, so each hosts a copy)."""
    return sum(component_state_bytes(c) for c in model.non_trainable)


def stage_activation_bytes(
    model: ModelSpec, stage: StageAssignment, local_batch: float
) -> float:
    """Stored-activation bytes of one in-flight micro-batch on a stage."""
    comp = model.components[stage.component]
    total = 0.0
    for i in range(stage.lo, stage.hi):
        total += comp.layers[i].activation_bytes(local_batch)
    return total


def stage_state_bytes(model: ModelSpec, stage: StageAssignment) -> float:
    """Parameter/gradient/optimiser bytes of one stage on one device."""
    comp = model.components[stage.component]
    params = sum(
        _param_count(comp.layers[i].param_bytes) for i in range(stage.lo, stage.hi)
    )
    per_param = (
        TRAINABLE_STATE_BYTES_PER_PARAM
        if comp.trainable
        else FROZEN_STATE_BYTES_PER_PARAM
    )
    return params * per_param


#: schedule names whose in-flight window matches plain 1F1B (stage
#: ``s`` of ``S`` keeps ``min(S - s, M)`` micro-batches alive).  The
#: zero-bubble family's deferred W tasks stretch some activations'
#: lifetimes slightly; pricing it with the 1F1B window is the family's
#: documented approximation (see repro.schedule.zerobubble).
_ONEF1B_WINDOW = ("1f1b", "onef1b", "bidirectional", "zerobubble")
#: schedules that keep all M micro-batches alive per stage
_FULL_WINDOW = ("gpipe",)
#: chunked schedules: the partition's ``down`` chain holds chunks and
#: each device hosts ``virtual_stages`` of them (1F1B window over the
#: chunk chain, which is what the simulator's in-flight gate enforces)
_CHUNKED_WINDOW = ("interleaved",)


def pipeline_memory_report(
    model: ModelSpec,
    partition: PartitionPlan,
    *,
    capacity_bytes: float,
    schedule: str = "1f1b",
    virtual_stages: int = 1,
) -> MemoryReport:
    """Peak per-device memory under pipeline training.

    The peak is taken over stages (each stage lives on its own
    device(s)); every device additionally hosts the frozen components
    for bubble filling.  Bidirectional plans co-locate down-stage ``k``
    and up-stage ``S-1-k``.  ``schedule`` accepts the schedule-family
    registry names (plus the legacy ``"1f1b"`` spelling); for the
    ``interleaved`` family ``virtual_stages`` tells the estimator how
    many chunks of ``partition.down`` each device hosts.
    """
    known = _ONEF1B_WINDOW + _FULL_WINDOW + _CHUNKED_WINDOW
    if schedule not in known:
        raise ConfigurationError(
            f"unknown schedule {schedule!r}; expected one of {known}"
        )
    S = partition.num_stages
    M = partition.num_micro_batches
    frozen = frozen_state_bytes(model)

    if schedule in _CHUNKED_WINDOW:
        if virtual_stages < 1 or S % virtual_stages != 0:
            raise ConfigurationError(
                f"interleaved memory needs virtual_stages | num_stages "
                f"(got v={virtual_stages}, {S} chunks)"
            )
        return _chunked_memory_report(
            model, partition, frozen, virtual_stages,
            capacity_bytes=capacity_bytes,
        )

    peak = 0.0
    breakdown: dict[str, float] = {}
    for pos in range(S):
        chains = [partition.down[pos]]
        if partition.is_bidirectional:
            chains.append(partition.up[S - 1 - pos])
        dev_total = frozen
        for chain_idx, stage in enumerate(chains):
            local_batch = partition.micro_batch / stage.replicas
            window = schedule in _ONEF1B_WINDOW
            inflight = min(S - pos, M) if window else M
            if partition.is_bidirectional and chain_idx == 1:
                # The up pipeline's stage index on this device.
                up_pos = S - 1 - pos
                inflight = min(S - up_pos, M) if window else M
            act = stage_activation_bytes(model, stage, local_batch) * inflight
            state = stage_state_bytes(model, stage)
            dev_total += act + state
        if dev_total > peak:
            peak = dev_total
            breakdown = {
                "frozen_components": frozen,
                "stage_states_and_activations": dev_total - frozen,
            }
    return MemoryReport(
        peak_bytes=peak, capacity_bytes=capacity_bytes, breakdown=breakdown
    )


def _chunked_memory_report(
    model: ModelSpec,
    partition: PartitionPlan,
    frozen: float,
    virtual_stages: int,
    *,
    capacity_bytes: float,
) -> MemoryReport:
    """Interleaved-1F1B peak: device ``d`` of ``S/v`` positions hosts
    chunks ``d, d + S/v, d + 2*S/v, ...`` of the chunk chain; each
    chunk ``c`` keeps ``min(S_chunks - c, M)`` micro-batches alive (the
    1F1B window over the chunk chain, which is exactly the in-flight
    gate the schedule builder wires)."""
    S_chunks = partition.num_stages
    M = partition.num_micro_batches
    positions = S_chunks // virtual_stages
    peak = 0.0
    breakdown: dict[str, float] = {}
    for pos in range(positions):
        dev_total = frozen
        for c in range(pos, S_chunks, positions):
            chunk = partition.down[c]
            local_batch = partition.micro_batch / chunk.replicas
            inflight = min(S_chunks - c, M)
            dev_total += (
                stage_activation_bytes(model, chunk, local_batch) * inflight
                + stage_state_bytes(model, chunk)
            )
        if dev_total > peak:
            peak = dev_total
            breakdown = {
                "frozen_components": frozen,
                "stage_states_and_activations": dev_total - frozen,
            }
    return MemoryReport(
        peak_bytes=peak, capacity_bytes=capacity_bytes, breakdown=breakdown
    )


def data_parallel_memory_report(
    model: ModelSpec,
    local_batch: float,
    *,
    capacity_bytes: float,
    zero3: bool = False,
    world_size: int = 1,
) -> MemoryReport:
    """Peak per-device memory under DDP or ZeRO-3 data parallelism."""
    if local_batch <= 0:
        raise ConfigurationError("local batch must be positive")
    if world_size <= 0:
        raise ConfigurationError("world size must be positive")
    trainable_state = sum(
        component_state_bytes(model.components[n]) for n in model.backbone_names
    )
    frozen = frozen_state_bytes(model)
    activations = 0.0
    largest_layer_params = 0.0
    for name in model.backbone_names:
        comp = model.components[name]
        for layer in comp.layers:
            activations += layer.activation_bytes(local_batch)
            largest_layer_params = max(largest_layer_params, layer.param_bytes)
    if zero3:
        sharded = trainable_state / world_size
        # Working set: the currently-gathered layer's fp16 parameters.
        state = sharded + largest_layer_params
    else:
        state = trainable_state
    peak = state + frozen + activations
    return MemoryReport(
        peak_bytes=peak,
        capacity_bytes=capacity_bytes,
        breakdown={
            "trainable_states": state,
            "frozen_components": frozen,
            "activations": activations,
        },
    )
