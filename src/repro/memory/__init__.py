"""Per-device memory models and OOM detection."""

from .estimator import (
    FROZEN_STATE_BYTES_PER_PARAM,
    TRAINABLE_STATE_BYTES_PER_PARAM,
    component_state_bytes,
    data_parallel_memory_report,
    frozen_state_bytes,
    pipeline_memory_report,
    stage_activation_bytes,
    stage_state_bytes,
)

__all__ = [
    "FROZEN_STATE_BYTES_PER_PARAM",
    "TRAINABLE_STATE_BYTES_PER_PARAM",
    "component_state_bytes",
    "data_parallel_memory_report",
    "frozen_state_bytes",
    "pipeline_memory_report",
    "stage_activation_bytes",
    "stage_state_bytes",
]
