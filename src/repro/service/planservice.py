"""Concurrent planning service on top of :class:`PlannerCaches`.

The service answers "plan model X on G GPUs at batch B" requests.  Three
mechanisms keep a request stream cheap:

* **Result store** — completed responses live in a bounded LRU keyed by
  the full :class:`PlanRequest`, so repeats of a finished configuration
  never re-enter the executor.
* **In-flight coalescing** — identical requests that arrive while the
  first is still being evaluated share its future (one evaluation, many
  responses).  The ``coalesced`` counter and the result-store hit
  counters together are the service's coalescing evidence.
* **Warm caches** — with ``workers == 0`` evaluations run on a thread
  pool sharing the service's :class:`PlannerCaches` (safe: every store
  locks mutation, entries are pure functions of their keys).  With
  ``workers > 0`` they fan out to a process pool whose workers each
  build their own caches, seeded from the ``snapshot`` file on first
  use of each profile, and ship their cache telemetry back with every
  response for :meth:`PlanService.metrics` to aggregate.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from ..core import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from ..errors import ReproError, ServiceError
from ..profiling import Profiler

#: request fields accepted from the wire (everything of PlanRequest)
REQUEST_FIELDS = (
    "model",
    "gpus",
    "batch",
    "heterogeneous",
    "fill_strategy",
    "lookahead_beam",
    "self_conditioning",
)


@dataclass(frozen=True)
class PlanRequest:
    """One planning question; also the coalescing key, so it is frozen
    and fully value-typed."""

    model: str = "sd"
    gpus: int = 8
    batch: int = 256
    heterogeneous: bool = False
    fill_strategy: str = "greedy"
    lookahead_beam: int = 64
    self_conditioning: bool | None = None

    @classmethod
    def from_dict(cls, data: dict) -> "PlanRequest":
        unknown = set(data) - set(REQUEST_FIELDS)
        if unknown:
            raise ServiceError(f"unknown request fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class PlanResponse:
    """Outcome of one request.  ``ok=False`` carries the planner error
    (e.g. every configuration OOMs) instead of raising, so a sweep can
    mix feasible and infeasible batches."""

    request: PlanRequest
    ok: bool
    config_label: str = ""
    throughput: float = 0.0
    iteration_ms: float = 0.0
    bubble_ratio_filled: float = 0.0
    error: str = ""

    def as_dict(self) -> dict:
        return {
            "request": self.request.__dict__,
            "ok": self.ok,
            "config_label": self.config_label,
            "throughput": self.throughput,
            "iteration_ms": self.iteration_ms,
            "bubble_ratio_filled": self.bubble_ratio_filled,
            "error": self.error,
        }


class _PlannerPool:
    """Lazily-built planners keyed by the planner-defining request
    fields, all sharing one :class:`PlannerCaches`.

    Holding the planners (and through them the :class:`ProfileDB`
    instances) keeps the weak-keyed per-profile cache tables alive for
    the service's lifetime.  When a ``snapshot`` path is given, each
    newly profiled model merges the snapshot's entries for that profile
    into the shared caches before its first evaluation.
    """

    def __init__(self, caches: PlannerCaches, snapshot: str | None = None):
        self.caches = caches
        self.snapshot = snapshot
        self._lock = threading.Lock()
        self._planners: dict[tuple, DiffusionPipePlanner] = {}

    def planner(self, req: PlanRequest) -> DiffusionPipePlanner:
        key = (
            req.model,
            req.gpus,
            req.heterogeneous,
            req.fill_strategy,
            req.lookahead_beam,
            req.self_conditioning,
        )
        with self._lock:
            planner = self._planners.get(key)
        if planner is not None:
            return planner
        # Built outside the lock: profiling dominates and is pure, so
        # two threads racing on a new key at worst profile twice; the
        # setdefault below keeps exactly one planner (and profile).
        from ..cli import MODELS, _build_cluster, _build_model, _group_sizes

        if req.model not in MODELS:
            raise ServiceError(
                f"unknown model {req.model!r}; options: {sorted(MODELS)}"
            )
        model = _build_model(req.model, req.self_conditioning)
        cluster = _build_cluster(req.gpus)
        profile = Profiler(cluster).profile(model)
        if self.snapshot is not None:
            self.caches.load(self.snapshot, [profile])
        planner = DiffusionPipePlanner(
            model,
            cluster,
            profile,
            options=PlannerOptions(
                group_sizes=_group_sizes(cluster),
                heterogeneous_replication=req.heterogeneous,
                fill_strategy=req.fill_strategy,
                lookahead_beam=req.lookahead_beam,
            ),
            caches=self.caches,
        )
        with self._lock:
            return self._planners.setdefault(key, planner)

    def profiles(self) -> list:
        with self._lock:
            planners = list(self._planners.values())
        seen: dict[int, object] = {}
        for p in planners:
            seen.setdefault(id(p.profile), p.profile)
        return list(seen.values())


class PlanService:
    """Concurrent front-end over the planner.

    Parameters
    ----------
    workers:
        ``0`` (default) evaluates on an in-process thread pool sharing
        ``caches``; ``> 0`` fans out to that many worker *processes*,
        each seeded from ``snapshot``.
    snapshot:
        Path of a :meth:`PlannerCaches.snapshot` file used to warm the
        shared caches (thread mode) or every worker (process mode).
    caches:
        Explicit cache instance; defaults to a fresh private one, so a
        service never leaks entries into :func:`default_caches`.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        snapshot: str | None = None,
        caches: PlannerCaches | None = None,
        max_threads: int = 4,
        result_max: int = 1024,
    ):
        from ..core.lru import LruStore

        self.caches = caches if caches is not None else PlannerCaches()
        self.workers = workers
        self._pool = _PlannerPool(self.caches, snapshot)
        self._lock = threading.Lock()
        self._inflight: dict[PlanRequest, Future] = {}
        self._results = LruStore(result_max, name="service.results")
        self._latencies: list[float] = []
        self._worker_stats: dict[int, dict] = {}
        self.requests = 0
        self.coalesced = 0
        if workers > 0:
            self._executor: ThreadPoolExecutor | ProcessPoolExecutor = (
                ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(snapshot,),
                )
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=max_threads, thread_name_prefix="planservice"
            )

    # -- request path --------------------------------------------------------

    def submit(self, req: PlanRequest) -> "Future[PlanResponse]":
        """Enqueue one request; identical in-flight or completed
        requests are answered without a new evaluation."""
        with self._lock:
            self.requests += 1
            done = self._results.get(req)
            if done is not None:
                fut: Future = Future()
                fut.set_result(done)
                return fut
            fut = self._inflight.get(req)
            if fut is not None:
                self.coalesced += 1
                return fut
            fut = Future()
            self._inflight[req] = fut
        t0 = time.perf_counter()
        if self.workers > 0:
            inner = self._executor.submit(_worker_plan, req)
        else:
            inner = self._executor.submit(_evaluate, self._pool, req)
        inner.add_done_callback(
            lambda f, req=req, fut=fut, t0=t0: self._finish(req, fut, t0, f)
        )
        return fut

    def _finish(self, req, fut, t0, inner: Future) -> None:
        latency = time.perf_counter() - t0
        try:
            result = inner.result()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(req, None)
                self._latencies.append(latency)
            fut.set_exception(exc)
            return
        if self.workers > 0:
            resp, pid, stats = result
        else:
            resp, pid, stats = result, None, None
        with self._lock:
            self._inflight.pop(req, None)
            self._latencies.append(latency)
            self._results.put(req, resp)
            if pid is not None:
                self._worker_stats[pid] = stats
        fut.set_result(resp)

    def plan(self, req: PlanRequest) -> PlanResponse:
        """Synchronous :meth:`submit`."""
        return self.submit(req).result()

    def sweep(self, reqs: list[PlanRequest]) -> list[PlanResponse]:
        """Submit a batch of requests and gather all responses."""
        return [f.result() for f in [self.submit(r) for r in reqs]]

    # -- maintenance / introspection -----------------------------------------

    def snapshot(self, path) -> dict:
        """Persist the service's warm caches (thread mode; in process
        mode only the coordinator's caches are visible here)."""
        return self.caches.snapshot(path)

    def metrics(self) -> dict:
        """Per-request latency plus cache and coalescing statistics."""
        with self._lock:
            lat = sorted(self._latencies)
            results = self._results.stats().as_dict()
            worker_stats = dict(self._worker_stats)
            requests, coalesced = self.requests, self.coalesced
        n = len(lat)

        def q(p: float) -> float:
            return lat[min(n - 1, int(p * n))] if n else 0.0

        return {
            "requests": requests,
            "coalesced_inflight": coalesced,
            "result_store": results,
            "latency_s": {
                "count": n,
                "mean": sum(lat) / n if n else 0.0,
                "p50": q(0.50),
                "p95": q(0.95),
                "max": lat[-1] if n else 0.0,
            },
            "cache": self.caches.stats().as_dict(),
            "workers": {
                "processes": self.workers,
                "stats": worker_stats,
            },
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _evaluate(pool: _PlannerPool, req: PlanRequest) -> PlanResponse:
    """One planner evaluation; planner errors become ``ok=False``."""
    try:
        planner = pool.planner(req)
        plan = planner.plan(req.batch).plan
    except ReproError as exc:
        return PlanResponse(request=req, ok=False, error=str(exc))
    return PlanResponse(
        request=req,
        ok=True,
        config_label=plan.config_label,
        throughput=plan.throughput,
        iteration_ms=plan.iteration_ms,
        bubble_ratio_filled=plan.bubble_ratio_filled,
    )


# -- process-pool workers ----------------------------------------------------
#
# Each worker process owns a private PlannerCaches (never the default
# instance) plus a planner pool; the snapshot seeds every profile the
# worker ends up building.  Workers return their *cumulative* cache
# stats keyed by pid, so the coordinator's merge (latest report per
# pid, summed across pids) is double-count-free.

_WORKER_POOL: _PlannerPool | None = None


def _worker_init(snapshot: str | None) -> None:
    global _WORKER_POOL
    _WORKER_POOL = _PlannerPool(PlannerCaches(), snapshot)


def _worker_plan(req: PlanRequest):
    assert _WORKER_POOL is not None, "worker used before _worker_init"
    resp = _evaluate(_WORKER_POOL, req)
    return resp, os.getpid(), _WORKER_POOL.caches.stats().as_dict()
