"""JSON-lines TCP front-end for :class:`PlanService` (``repro serve``).

Protocol: one JSON object per line, answered with one JSON object per
line.  Operations (``"op"`` field, default ``"plan"``):

``plan``
    Remaining fields are :class:`PlanRequest` fields
    (``{"op": "plan", "model": "sd", "gpus": 8, "batch": 256}``).
``sweep``
    Like ``plan`` but ``"batches"`` is a list; the batches are
    submitted concurrently and one response carries all results.
``stats``
    Returns :meth:`PlanService.metrics`.
``snapshot``
    ``{"op": "snapshot", "path": ...}`` persists the warm caches.
``shutdown``
    Acknowledges, then stops the server loop cleanly.

Every connection is served concurrently (asyncio); the blocking
planner work runs on the service's executor, so identical requests
from different connections coalesce inside :class:`PlanService`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from ..errors import ReproError, ServiceError
from .planservice import PlanRequest, PlanService


async def _answer(service: PlanService, msg: dict) -> dict:
    op = msg.pop("op", "plan")
    if op == "plan":
        req = PlanRequest.from_dict(msg)
        resp = await asyncio.wrap_future(service.submit(req))
        return {"op": "plan", **resp.as_dict()}
    if op == "sweep":
        batches = msg.pop("batches", None)
        if not isinstance(batches, list) or not batches:
            raise ServiceError('"sweep" needs a non-empty "batches" list')
        reqs = [PlanRequest.from_dict({**msg, "batch": b}) for b in batches]
        futures = [asyncio.wrap_future(service.submit(r)) for r in reqs]
        responses = await asyncio.gather(*futures)
        return {"op": "sweep", "results": [r.as_dict() for r in responses]}
    if op == "stats":
        return {"op": "stats", "metrics": service.metrics()}
    if op == "snapshot":
        path = msg.get("path")
        if not path:
            raise ServiceError('"snapshot" needs a "path"')
        return {"op": "snapshot", "written": service.snapshot(path)}
    if op == "shutdown":
        return {"op": "shutdown", "ok": True}
    raise ServiceError(f"unknown op {op!r}")


async def serve_async(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready_cb: Callable[[int], None] | None = None,
) -> None:
    """Run the server until a client sends ``{"op": "shutdown"}``.

    ``ready_cb`` receives the bound port once listening — with
    ``port=0`` this is how callers learn the ephemeral port.
    """
    stop = asyncio.Event()

    async def handle(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                shutdown = False
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ServiceError("request must be a JSON object")
                    shutdown = msg.get("op") == "shutdown"
                    out = await _answer(service, msg)
                except (ReproError, json.JSONDecodeError, TypeError) as exc:
                    out = {"op": "error", "error": str(exc)}
                writer.write(json.dumps(out).encode() + b"\n")
                await writer.drain()
                if shutdown:
                    stop.set()
                    break
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    if ready_cb is not None:
        ready_cb(bound)
    async with server:
        await stop.wait()
    service.shutdown()


def serve(
    service: PlanService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready_cb: Callable[[int], None] | None = None,
) -> None:
    """Blocking entry point (used by ``repro serve`` and the tests)."""
    asyncio.run(serve_async(service, host, port, ready_cb=ready_cb))
