"""Planner-as-a-service front-end.

:class:`PlanService` wraps the DiffusionPipe planner behind a
concurrent request API: identical in-flight configurations are
coalesced onto one evaluation, completed plans are served from a
bounded result store, and evaluations fan out to either a thread pool
sharing one :class:`~repro.core.PlannerCaches` or a process pool whose
workers are seeded from a warm cache snapshot and report their cache
telemetry back.

:mod:`repro.service.server` exposes the service over a JSON-lines TCP
socket (``repro serve``); :mod:`repro.service.bench` drives a request
stream against cold and snapshot-warmed services (``repro
bench-serve``); :mod:`repro.service.smoke` is the self-contained CI
smoke test.
"""

from .planservice import PlanRequest, PlanResponse, PlanService

__all__ = ["PlanRequest", "PlanResponse", "PlanService"]
