"""Warm-vs-cold service latency harness (``repro bench-serve``).

Drives the same request stream twice:

1. against a **cold** service (fresh :class:`PlannerCaches`), then
   snapshots the warmed caches;
2. against a **warm** service whose caches are seeded from that
   snapshot in a fresh :class:`PlannerCaches` — the same path a
   process-pool worker takes at startup.

Both passes re-profile the model, so the reported speedup isolates
what the snapshot actually carries: the DP tables, prefix arrays,
fill shapes and timelines.  The two response streams must be
identical; the report includes per-pass wall time, per-request
latency quantiles and the cache hit counters.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Sequence

from .planservice import PlanRequest, PlanService


def _drive(service: PlanService, reqs: Sequence[PlanRequest]):
    t0 = time.perf_counter()
    responses = service.sweep(list(reqs))
    wall = time.perf_counter() - t0
    return responses, wall


def run_bench(
    *,
    model: str = "sd",
    gpus: int = 8,
    batches: Sequence[int] = (64, 128, 256),
    repeats: int = 2,
    snapshot_path: str | None = None,
    workers: int = 0,
) -> dict:
    """Run the cold and warm passes; returns the report dict.

    ``repeats > 1`` repeats the batch list, so the cold pass itself
    exercises the in-process coalescing/result store while the warm
    pass measures the snapshot.
    """
    reqs = [
        PlanRequest(model=model, gpus=gpus, batch=b)
        for _ in range(repeats)
        for b in batches
    ]
    cleanup = snapshot_path is None
    if snapshot_path is None:
        fd, snapshot_path = tempfile.mkstemp(suffix=".repro-caches")
        os.close(fd)
    try:
        with PlanService(workers=workers) as cold:
            cold_resp, cold_s = _drive(cold, reqs)
            written = cold.snapshot(snapshot_path)
            cold_metrics = cold.metrics()
        with PlanService(workers=workers, snapshot=snapshot_path) as warm:
            warm_resp, warm_s = _drive(warm, reqs)
            warm_metrics = warm.metrics()
    finally:
        if cleanup:
            os.unlink(snapshot_path)
    identical = [r.as_dict() for r in cold_resp] == [
        r.as_dict() for r in warm_resp
    ]
    return {
        "model": model,
        "gpus": gpus,
        "requests": len(reqs),
        "identical_responses": identical,
        "snapshot_entries": written,
        "cold": {"wall_s": cold_s, "latency_s": cold_metrics["latency_s"]},
        "warm": {"wall_s": warm_s, "latency_s": warm_metrics["latency_s"]},
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "warm_cache": {
            name: store
            for name, store in warm_metrics["cache"]["stores"].items()
            if store["hits"]
        },
    }


def format_report(report: dict) -> str:
    lines = [
        f"{report['model']} on {report['gpus']} GPUs, "
        f"{report['requests']} requests",
        f"cold: {report['cold']['wall_s']:.2f}s  "
        f"warm: {report['warm']['wall_s']:.2f}s  "
        f"speedup: {report['speedup']:.1f}x",
        f"responses identical: {report['identical_responses']}",
        "warm stores with hits: "
        + (", ".join(sorted(report["warm_cache"])) or "(none)"),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro bench-serve")
    parser.add_argument("--model", default="sd")
    parser.add_argument("--gpus", type=int, default=8)
    parser.add_argument("--batches", type=int, nargs="+",
                        default=[64, 128, 256])
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--snapshot", help="keep the snapshot file here")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)
    report = run_bench(
        model=args.model,
        gpus=args.gpus,
        batches=tuple(args.batches),
        repeats=args.repeats,
        snapshot_path=args.snapshot,
        workers=args.workers,
    )
    print(json.dumps(report, indent=2) if args.json else format_report(report))
    return 0 if report["identical_responses"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
