"""CI smoke test: ``python -m repro.service.smoke``.

Starts ``repro serve`` on an ephemeral port, opens three concurrent
connections — two sending the *same* plan request, one a distinct
batch — and asserts that

* all three get valid answers (the identical pair byte-identical),
* the service coalesced the duplicate (in-flight share or result-store
  hit, whichever the race produced),
* ``{"op": "shutdown"}`` stops the server cleanly.

Exit status 0 on success; any assertion or timeout exits non-zero.
"""

from __future__ import annotations

import json
import socket
import sys
import threading

from .planservice import PlanService
from .server import serve

HOST = "127.0.0.1"
#: small on purpose: 2 GPUs keeps profiling + planning to ~a second
REQ = {"op": "plan", "model": "sd", "gpus": 2, "batch": 32}
DISTINCT = {**REQ, "batch": 64}
TIMEOUT_S = 120.0


def _ask(port: int, msg: dict) -> dict:
    with socket.create_connection((HOST, port), timeout=TIMEOUT_S) as sock:
        sock.settimeout(TIMEOUT_S)
        sock.sendall(json.dumps(msg).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


def main() -> int:
    service = PlanService()
    ready = threading.Event()
    port_box: dict[str, int] = {}

    def _on_ready(port: int) -> None:
        port_box["port"] = port
        ready.set()

    server = threading.Thread(
        target=serve,
        args=(service, HOST, 0),
        kwargs={"ready_cb": _on_ready},
    )
    server.start()
    try:
        assert ready.wait(30), "server did not start"
        port = port_box["port"]

        answers: list = [None, None, None]

        def _client(i: int, msg: dict) -> None:
            answers[i] = _ask(port, msg)

        threads = [
            threading.Thread(target=_client, args=(0, REQ)),
            threading.Thread(target=_client, args=(1, REQ)),
            threading.Thread(target=_client, args=(2, DISTINCT)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(TIMEOUT_S)
            assert not t.is_alive(), "client timed out"

        for ans in answers:
            assert ans is not None and ans["ok"], f"plan failed: {ans}"
            assert ans["throughput"] > 0
        assert answers[0] == answers[1], "identical requests must agree"
        assert answers[2]["request"]["batch"] == 64

        stats = _ask(port, {"op": "stats"})["metrics"]
        assert stats["requests"] == 3, stats
        shared = (
            stats["coalesced_inflight"] + stats["result_store"]["hits"]
        )
        assert shared >= 1, f"duplicate request was not coalesced: {stats}"
        assert stats["latency_s"]["count"] == 2, (
            "exactly two evaluations expected (one per distinct config): "
            f"{stats}"
        )
    except BaseException:
        # best-effort shutdown so the thread does not hang the process
        try:
            _ask(port_box.get("port", 0), {"op": "shutdown"})
        except OSError:
            pass
        server.join(10)
        raise
    ans = _ask(port, {"op": "shutdown"})
    assert ans.get("ok"), f"shutdown not acknowledged: {ans}"
    server.join(30)
    assert not server.is_alive(), "server did not stop"
    print("service smoke: ok (coalesced duplicate, clean shutdown)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
