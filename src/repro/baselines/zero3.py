"""ZeRO-3 (ZeRO Infinity stage 3) baseline.

ZeRO-3 shards parameters, gradients and optimiser states across the
data-parallel world.  The price is communication: every layer's fp16
parameters are all-gathered before its forward and again before its
backward, and gradients leave via reduce-scatter instead of all-reduce.

Cost model per iteration:

    compute(local)                      (same as DDP)
  + allgather(world, P16)  * 2          (forward + backward re-gather)
  + reduce_scatter(world, P16)          (gradient shard exchange)

where ``P16`` is the total fp16 trainable-parameter bytes.  Memory drops
to ``states / world + largest layer working set + activations``.
"""

from __future__ import annotations

from ..memory.estimator import data_parallel_memory_report
from ..core.plan import MemoryReport
from .data_parallel import DataParallelBaseline


class Zero3Baseline(DataParallelBaseline):
    """DeepSpeed ZeRO-3."""

    name = "DeepSpeed-ZeRO-3"

    def param_bytes_fp16(self) -> float:
        """Total fp16 trainable-parameter bytes."""
        return sum(
            self.model.components[n].param_bytes for n in self.model.backbone_names
        )

    def sync_ms(self) -> float:
        """All communication exposed by parameter/gradient sharding."""
        ranks = list(range(self.cluster.world_size))
        p16 = self.param_bytes_fp16()
        gather = self.collectives.allgather(ranks, p16)
        scatter = self.collectives.reduce_scatter(ranks, self.grad_bytes())
        return 2.0 * gather + scatter

    def memory(self, local_batch: float) -> MemoryReport:
        return data_parallel_memory_report(
            self.model,
            local_batch,
            capacity_bytes=self.cluster.device_spec.memory_bytes,
            zero3=True,
            world_size=self.cluster.world_size,
        )
