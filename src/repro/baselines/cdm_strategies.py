"""Data-parallel strategies for cascaded diffusion models (§6 Baselines).

The paper trains CDMs with data parallelism in two ways:

* **Sequential** (DeepSpeed-S / DeepSpeed-ZeRO-3-S): backbones train one
  after the other using *all* devices.  Throughput =
  (total batch of all backbones) / (sum of their iteration times).
* **Parallel** (DeepSpeed-P / DeepSpeed-ZeRO-3-P): devices split evenly,
  each partition training one backbone.  Throughput =
  (sum of batch sizes) / (slowest backbone's iteration time).

Both reuse the single-backbone DDP/ZeRO-3 cost models on per-backbone
sub-models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from .data_parallel import BaselineResult, DataParallelBaseline, _oom_result
from .zero3 import Zero3Baseline


def single_backbone_view(model: ModelSpec, backbone: str) -> ModelSpec:
    """A sub-model containing one backbone plus every frozen component.

    Frozen components are shared by all backbones of a CDM, so each view
    keeps them (their cost is small for CDMs).
    """
    if backbone not in model.backbone_names:
        raise ConfigurationError(f"{backbone!r} is not a backbone of {model.name}")
    keep = [c for c in model.components.values() if not c.trainable]
    keep.append(model.components[backbone])
    pruned = []
    names = {c.name for c in keep}
    for comp in keep:
        deps = tuple(d for d in comp.depends_on if d in names)
        if deps != comp.depends_on:
            from ..models.component import ComponentSpec

            comp = ComponentSpec(
                name=comp.name,
                layers=comp.layers,
                trainable=comp.trainable,
                depends_on=deps,
            )
        pruned.append(comp)
    return ModelSpec(
        name=f"{model.name}/{backbone}",
        components=pruned,
        backbone_names=(backbone,),
        self_conditioning=model.self_conditioning,
        self_conditioning_prob=model.self_conditioning_prob,
    )


def _sub_cluster(cluster: ClusterSpec, num_devices: int) -> ClusterSpec:
    """A cluster slice with ``num_devices`` devices, preserving topology."""
    per = cluster.devices_per_machine
    if num_devices <= per:
        return ClusterSpec(
            num_machines=1,
            devices_per_machine=num_devices,
            device_spec=cluster.device_spec,
            intra_link=cluster.intra_link,
            inter_link=cluster.inter_link,
        )
    if num_devices % per != 0:
        raise ConfigurationError(
            f"cannot slice {num_devices} devices from machines of {per}"
        )
    return ClusterSpec(
        num_machines=num_devices // per,
        devices_per_machine=per,
        device_spec=cluster.device_spec,
        intra_link=cluster.intra_link,
        inter_link=cluster.inter_link,
    )


@dataclass(frozen=True)
class CDMStrategyConfig:
    """Which DP engine backs the strategy."""

    zero3: bool = False

    @property
    def engine(self):
        return Zero3Baseline if self.zero3 else DataParallelBaseline

    @property
    def suffix(self) -> str:
        return "DeepSpeed-ZeRO-3" if self.zero3 else "DeepSpeed"


class SequentialCDMBaseline:
    """DeepSpeed(-ZeRO-3)-S: backbones train in sequence on all devices."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        config: CDMStrategyConfig | None = None,
    ):
        if len(model.backbone_names) < 2:
            raise ConfigurationError("CDM strategies need >= 2 backbones")
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.config = config or CDMStrategyConfig()

    @property
    def name(self) -> str:
        return f"{self.config.suffix}-S"

    def run(self, batch_per_backbone: float) -> BaselineResult:
        """``batch_per_backbone`` is each backbone's global batch (the
        paper trains all backbones of a CDM at the same batch size)."""
        total_iter = 0.0
        worst_memory = None
        for backbone in self.model.backbone_names:
            view = single_backbone_view(self.model, backbone)
            engine = self.config.engine(view, self.cluster, self.profile)
            res = engine.run(batch_per_backbone)
            if res.oom:
                return _oom_result(
                    self.name, batch_per_backbone, res.local_batch, res.memory
                )
            total_iter += res.iteration_ms
            if worst_memory is None or (
                res.memory and res.memory.peak_bytes > worst_memory.peak_bytes
            ):
                worst_memory = res.memory
        n = len(self.model.backbone_names)
        total_batch = batch_per_backbone * n
        return BaselineResult(
            name=self.name,
            global_batch=batch_per_backbone,
            local_batch=batch_per_backbone / self.cluster.world_size,
            compute_ms=total_iter,
            sync_ms=0.0,
            iteration_ms=total_iter,
            throughput=total_batch / total_iter * 1e3,
            memory=worst_memory,
            oom=False,
        )


class ParallelCDMBaseline:
    """DeepSpeed(-ZeRO-3)-P: devices split evenly across backbones."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        config: CDMStrategyConfig | None = None,
    ):
        if len(model.backbone_names) < 2:
            raise ConfigurationError("CDM strategies need >= 2 backbones")
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.config = config or CDMStrategyConfig()

    @property
    def name(self) -> str:
        return f"{self.config.suffix}-P"

    def run(self, batch_per_backbone: float) -> BaselineResult:
        n = len(self.model.backbone_names)
        world = self.cluster.world_size
        if world % n != 0:
            raise ConfigurationError(
                f"cannot split {world} devices across {n} backbones"
            )
        share = world // n
        sub = _sub_cluster(self.cluster, share)
        slowest = 0.0
        worst_memory = None
        for backbone in self.model.backbone_names:
            view = single_backbone_view(self.model, backbone)
            engine = self.config.engine(view, sub, self.profile)
            res = engine.run(batch_per_backbone)
            if res.oom:
                return _oom_result(
                    self.name, batch_per_backbone, res.local_batch, res.memory
                )
            slowest = max(slowest, res.iteration_ms)
            if worst_memory is None or (
                res.memory and res.memory.peak_bytes > worst_memory.peak_bytes
            ):
                worst_memory = res.memory
        total_batch = batch_per_backbone * n
        return BaselineResult(
            name=self.name,
            global_batch=batch_per_backbone,
            local_batch=batch_per_backbone / share,
            compute_ms=slowest,
            sync_ms=0.0,
            iteration_ms=slowest,
            throughput=total_batch / slowest * 1e3,
            memory=worst_memory,
            oom=False,
        )
