"""SPP baseline (Luo et al. 2022).

SPP solves a dynamic program to optimise model partitioning and searches
the same pipeline hyper-parameters as DiffusionPipe — so we reuse
DiffusionPipe's own planner — but it pipelines *only the backbone*: no
bubble filling, with the non-trainable part executing serially before
the pipeline (§6 Baselines, Fig. 9 top).
"""

from __future__ import annotations

from dataclasses import replace

from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from ..core.planner import (
    DiffusionPipePlanner,
    EvaluatedConfig,
    PlannerCaches,
    PlannerOptions,
)
from .data_parallel import BaselineResult, _oom_result


class SPPBaseline:
    """Optimal pipeline planning without bubble filling.

    ``caches`` may be the :class:`PlannerCaches` of a DiffusionPipe
    planner evaluating the same model/profile — SPP's partitions are
    identical, so sharing skips the whole DP search.
    """

    name = "SPP"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        options: PlannerOptions | None = None,
        caches: PlannerCaches | None = None,
    ):
        if len(model.backbone_names) != 1:
            raise ConfigurationError(
                "SPP does not support pipelining multiple models (§6)"
            )
        base = options or PlannerOptions()
        self.options = replace(base, enable_bubble_filling=False)
        self.planner = DiffusionPipePlanner(
            model, cluster, profile, options=self.options, caches=caches
        )
        self.model = model
        self.cluster = cluster

    def evaluate(self, global_batch: float) -> EvaluatedConfig:
        """The best SPP configuration for a global batch."""
        return self.planner.plan(global_batch)

    def run(self, global_batch: float) -> BaselineResult:
        try:
            ev = self.evaluate(global_batch)
        except ConfigurationError:
            # Every configuration OOMed or was infeasible.
            from ..core.plan import MemoryReport

            cap = self.cluster.device_spec.memory_bytes
            return _oom_result(
                self.name,
                global_batch,
                0.0,
                MemoryReport(peak_bytes=float("inf"), capacity_bytes=cap),
            )
        plan = ev.plan
        return BaselineResult(
            name=self.name,
            global_batch=global_batch,
            local_batch=plan.partition.micro_batch,
            compute_ms=plan.pipeline_ms,
            sync_ms=0.0,
            iteration_ms=plan.iteration_ms,
            throughput=plan.throughput,
            memory=plan.memory,
            oom=False,
            notes=(plan.config_label,),
        )

    def bubble_ratio(self, global_batch: float) -> float:
        """Fig. 14's metric for SPP."""
        ev = self.evaluate(global_batch)
        return ev.plan.bubble_ratio_unfilled
