"""Chimera baseline (Li & Hoefler 2021).

Chimera reduces pipeline bubbles for a *single* model by running two
model replicas over the same devices in opposite directions and
splitting the micro-batches between them (Fig. 3 of the paper).  Each
device hosts two stages (one per direction), so memory doubles relative
to a unidirectional pipeline of the same depth, and weight-update
synchronisation covers both replicas.

DiffusionPipe uses the same bidirectional machinery for *cascaded*
models (§4.2); this baseline applies it to single-backbone models for
comparison, with the backbone split by the same DP partitioner and no
bubble filling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.collectives import CollectiveModel
from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from ..schedule import get_family
from ..schedule.simulator import simulate
from ..schedule.stages import StageExec
from ..core.partition import PartitionContext, partition_backbone
from ..core.plan import PartitionPlan, StageAssignment
from ..memory.estimator import pipeline_memory_report
from .data_parallel import BaselineResult, _oom_result


@dataclass(frozen=True)
class ChimeraConfig:
    """Chimera evaluation setting: stage count and micro-batches per
    direction (total micro-batches = 2 x ``micro_per_direction``)."""

    num_stages: int = 2
    micro_per_direction: int = 2


class ChimeraBaseline:
    """Bidirectional pipelining of a single backbone, no bubble filling."""

    name = "Chimera"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        config: ChimeraConfig | None = None,
        *,
        collectives: CollectiveModel | None = None,
    ):
        if len(model.backbone_names) != 1:
            raise ConfigurationError("Chimera baseline takes a single backbone")
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.config = config or ChimeraConfig()
        self.collectives = collectives or CollectiveModel(cluster)

    # -- internals -------------------------------------------------------------

    def _partition(self, batch_per_group: float) -> PartitionPlan:
        S = self.config.num_stages
        link = self.cluster.group_link(list(range(S)))
        from ..cluster.collectives import CommCosts

        dp = self.cluster.world_size // S
        ranks = [g * S for g in range(dp)] or [0]
        ctx = PartitionContext(
            profile=self.profile,
            component=self.model.backbone_names[0],
            batch_per_group=batch_per_group,
            num_micro_batches=self.config.micro_per_direction,
            p2p=CommCosts(bandwidth=link.bandwidth, latency=link.latency),
            allreduce=self.collectives.allreduce_costs(ranks),
        )
        return partition_backbone(ctx, S, S)

    def _stage_execs(
        self, chain: tuple[StageAssignment, ...], micro_batch: float
    ) -> list[StageExec]:
        prof = self.profile
        S = len(chain)
        link = self.cluster.group_link(list(range(S)))
        dp = self.cluster.world_size // S
        execs = []
        for i, st in enumerate(chain):
            local = micro_batch / st.replicas
            fwd = prof.stage_fwd_ms(st.component, st.lo, st.hi, local)
            bwd = prof.stage_bwd_ms(st.component, st.lo, st.hi, local)
            if i < S - 1:
                nbytes = prof.boundary_bytes(st.component, st.hi - 1, local)
                send = nbytes / link.bandwidth + link.latency
            else:
                send = 0.0
            grad = prof.stage_grad_bytes(st.component, st.lo, st.hi)
            # Weight sync covers the replicas of both directions: 2x dp.
            ranks = [g * S for g in range(max(2 * dp, 1))] or [0]
            ranks = [r % self.cluster.world_size for r in ranks]
            sync = self.collectives.allreduce(sorted(set(ranks)), grad) if grad else 0.0
            execs.append(
                StageExec(
                    index=i, fwd_ms=fwd, bwd_ms=bwd,
                    send_fwd_ms=send, send_bwd_ms=send, sync_ms=sync,
                    replicas=st.replicas,
                    layer_range=(st.component, st.lo, st.hi),
                )
            )
        return execs

    def nt_serial_ms(self, batch_per_group: float) -> float:
        """Frozen part executed before pipelining, data parallel."""
        S = self.config.num_stages
        return sum(
            self.profile.component_fwd_ms(c.name, batch_per_group / S)
            for c in self.model.non_trainable
        )

    # -- evaluation --------------------------------------------------------------

    def run(self, global_batch: float) -> BaselineResult:
        S = self.config.num_stages
        M = self.config.micro_per_direction
        world = self.cluster.world_size
        if world % S != 0:
            raise ConfigurationError(f"world {world} not divisible by {S}")
        dp = world // S
        if global_batch % dp != 0 or (global_batch / dp) % (2 * M) != 0:
            raise ConfigurationError(
                f"global batch {global_batch} incompatible with dp={dp}, "
                f"2M={2 * M}"
            )
        batch_per_group = global_batch / dp
        partition = self._partition(batch_per_group)
        micro = batch_per_group / (2 * M)

        # Memory: each device hosts a down-stage and an up-stage replica
        # of the model.  Approximate with the bidirectional report on a
        # plan whose up chain mirrors the down chain.
        up = tuple(
            StageAssignment(st.component, st.lo, st.hi, st.replicas)
            for st in partition.down
        )
        bidir_plan = PartitionPlan(
            down=partition.down, up=up, num_stages=S, num_micro_batches=M,
            group_size=S, batch_per_group=batch_per_group,
        )
        memory = pipeline_memory_report(
            self.model, bidir_plan,
            capacity_bytes=self.cluster.device_spec.memory_bytes,
        )
        if not memory.fits:
            return _oom_result(self.name, global_batch, micro, memory)

        execs_down = self._stage_execs(partition.down, micro)
        execs_up = self._stage_execs(partition.down, micro)
        tasks = get_family("bidirectional").build(execs_down, M, up=execs_up)
        tl = simulate(tasks, S, {i: partition.down[i].replicas for i in range(S)})
        nt = self.nt_serial_ms(batch_per_group)
        iteration = tl.makespan + nt
        return BaselineResult(
            name=self.name,
            global_batch=global_batch,
            local_batch=micro,
            compute_ms=tl.makespan,
            sync_ms=0.0,
            iteration_ms=iteration,
            throughput=global_batch / iteration * 1e3,
            memory=memory,
            oom=False,
            notes=(f"S={S} M=2x{M}",),
        )

    def bubble_ratio(self, global_batch: float) -> float:
        """Bubble ratio of the bidirectional schedule (for Fig. 14-style
        comparisons)."""
        S = self.config.num_stages
        M = self.config.micro_per_direction
        dp = self.cluster.world_size // S
        batch_per_group = global_batch / dp
        partition = self._partition(batch_per_group)
        micro = batch_per_group / (2 * M)
        execs = self._stage_execs(partition.down, micro)
        tasks = get_family("bidirectional").build(execs, M, up=execs)
        tl = simulate(tasks, S, {i: partition.down[i].replicas for i in range(S)})
        nt = self.nt_serial_ms(batch_per_group)
        return tl.bubble_device_time() / (
            (tl.makespan + nt) * tl.total_physical_devices
        )
