"""GPipe baseline (Huang et al. 2019), as evaluated in the paper.

GPipe partitions the backbone into stages with *equal layer counts*
(no cost-aware partitioning), runs all-forwards-then-all-backwards, and
does not fill bubbles: the non-trainable part executes before backbone
pipelining, data-parallel across the pipeline group (the
"backbone-only pipelining" of Fig. 9).  The paper evaluates GPipe with
2 stages and 4 micro-batches; both are parameters here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.collectives import CollectiveModel
from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from ..schedule import get_family
from ..schedule.simulator import simulate
from ..schedule.stages import StageExec
from ..schedule.timeline import Timeline
from ..memory.estimator import pipeline_memory_report
from ..core.plan import PartitionPlan, StageAssignment
from .data_parallel import BaselineResult, _oom_result


def equal_layer_partition(
    num_layers: int, num_stages: int, component: str, replicas: int = 1
) -> list[StageAssignment]:
    """Cut a chain into stages of (near-)equal layer counts."""
    if num_stages <= 0 or num_stages > num_layers:
        raise ConfigurationError(
            f"cannot cut {num_layers} layers into {num_stages} stages"
        )
    base = num_layers // num_stages
    extra = num_layers % num_stages
    out = []
    lo = 0
    for s in range(num_stages):
        hi = lo + base + (1 if s < extra else 0)
        out.append(StageAssignment(component, lo, hi, replicas=replicas))
        lo = hi
    return out


@dataclass(frozen=True)
class GPipeConfig:
    """The paper's GPipe evaluation setting."""

    num_stages: int = 2
    num_micro_batches: int = 4


class GPipeBaseline:
    """Equal-layer GPipe with serial NT execution."""

    name = "GPipe"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        config: GPipeConfig | None = None,
        *,
        collectives: CollectiveModel | None = None,
    ):
        if len(model.backbone_names) != 1:
            raise ConfigurationError(
                "GPipe does not support pipelining multiple models (§6)"
            )
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.config = config or GPipeConfig()
        self.collectives = collectives or CollectiveModel(cluster)

    def _stage_execs(
        self, stages: list[StageAssignment], micro_batch: float, sc: bool
    ) -> list[StageExec]:
        prof = self.profile
        D = self.config.num_stages
        link = self.cluster.group_link(list(range(D)))
        dp = self.cluster.world_size // D
        execs = []
        for i, st in enumerate(stages):
            local = micro_batch / st.replicas
            fwd = prof.stage_fwd_ms(st.component, st.lo, st.hi, local)
            bwd = prof.stage_bwd_ms(st.component, st.lo, st.hi, local)
            if i < len(stages) - 1:
                nbytes = prof.boundary_bytes(st.component, st.hi - 1, local)
                send = nbytes / link.bandwidth + link.latency
            else:
                send = 0.0
            grad = prof.stage_grad_bytes(st.component, st.lo, st.hi)
            ranks = [g * D for g in range(dp)] or [0]
            sync = self.collectives.allreduce(ranks, grad) if grad > 0 else 0.0
            execs.append(
                StageExec(
                    index=i,
                    fwd_ms=fwd,
                    bwd_ms=bwd,
                    sc_fwd_ms=fwd if sc else None,
                    send_fwd_ms=send,
                    send_bwd_ms=send,
                    sync_ms=sync,
                    replicas=st.replicas,
                    layer_range=(st.component, st.lo, st.hi),
                )
            )
        return execs

    def simulate_pipeline(self, batch_per_group: float, sc: bool) -> Timeline:
        """Simulate one GPipe iteration of the backbone."""
        S = self.config.num_stages
        M = self.config.num_micro_batches
        backbone = self.model.backbone_names[0]
        stages = equal_layer_partition(
            self.profile.num_layers(backbone), S, backbone
        )
        micro = batch_per_group / M
        execs = self._stage_execs(stages, micro, sc)
        feedback = 0.0
        if sc:
            last = stages[-1]
            nbytes = self.profile.boundary_bytes(backbone, last.hi - 1, micro)
            link = self.cluster.group_link(list(range(S)))
            feedback = nbytes / link.bandwidth + link.latency
        # The registered ``gpipe`` family is the same builder the planner
        # uses — the baseline and the planner cannot drift apart.
        tasks = get_family("gpipe").build(
            execs, M, self_conditioning=sc, feedback_ms=feedback
        )
        return simulate(tasks, S)

    def nt_serial_ms(self, batch_per_group: float) -> float:
        """Serial NT execution, data-parallel across the group."""
        D = self.config.num_stages
        total = 0.0
        for comp in self.model.non_trainable:
            total += self.profile.component_fwd_ms(comp.name, batch_per_group / D)
        return total

    def run(self, global_batch: float) -> BaselineResult:
        S = self.config.num_stages
        M = self.config.num_micro_batches
        world = self.cluster.world_size
        if world % S != 0:
            raise ConfigurationError(f"world {world} not divisible by {S} stages")
        dp = world // S
        if global_batch % dp != 0 or (global_batch / dp) % M != 0:
            raise ConfigurationError(
                f"global batch {global_batch} incompatible with dp={dp}, M={M}"
            )
        batch_per_group = global_batch / dp

        backbone = self.model.backbone_names[0]
        stages = equal_layer_partition(self.profile.num_layers(backbone), S, backbone)
        partition = PartitionPlan(
            down=tuple(stages),
            num_stages=S,
            num_micro_batches=M,
            group_size=S,
            batch_per_group=batch_per_group,
        )
        memory = pipeline_memory_report(
            self.model,
            partition,
            capacity_bytes=self.cluster.device_spec.memory_bytes,
            schedule="gpipe",
        )
        if not memory.fits:
            return _oom_result(self.name, global_batch, batch_per_group / S, memory)

        nt = self.nt_serial_ms(batch_per_group)
        if self.model.self_conditioning:
            p = self.model.self_conditioning_prob
            span = (1 - p) * self.simulate_pipeline(
                batch_per_group, sc=False
            ).makespan + p * self.simulate_pipeline(batch_per_group, sc=True).makespan
        else:
            span = self.simulate_pipeline(batch_per_group, sc=False).makespan
        iteration = span + nt
        return BaselineResult(
            name=self.name,
            global_batch=global_batch,
            local_batch=batch_per_group / S,
            compute_ms=span,
            sync_ms=0.0,
            iteration_ms=iteration,
            throughput=global_batch / iteration * 1e3,
            memory=memory,
            oom=False,
        )

    def bubble_ratio(self, global_batch: float) -> float:
        """Fig. 14's metric for GPipe (iteration includes the NT phase)."""
        world = self.cluster.world_size
        dp = world // self.config.num_stages
        batch_per_group = global_batch / dp
        if self.model.self_conditioning:
            p = self.model.self_conditioning_prob
            variants = [(self.simulate_pipeline(batch_per_group, sc=False), 1 - p),
                        (self.simulate_pipeline(batch_per_group, sc=True), p)]
        else:
            variants = [(self.simulate_pipeline(batch_per_group, sc=False), 1.0)]
        nt = self.nt_serial_ms(batch_per_group)
        ratio = 0.0
        for tl, weight in variants:
            iteration = tl.makespan + nt
            ratio += weight * tl.bubble_device_time() / (
                iteration * tl.total_physical_devices
            )
        return ratio
