"""DeepSpeed-style distributed data parallelism (DDP) baseline.

Every device hosts the full model and processes ``global_batch / world``
samples per iteration: the frozen encoders forward, the backbone(s)
forward+backward (twice forward under self-conditioning, in
expectation), then a gradient all-reduce over the world.

The sync cost uses the calibrated ring all-reduce of
:class:`repro.cluster.CollectiveModel`, whose two calibration curves
were fitted to the paper's Table 2; the iteration model
``compute + sync`` (no bucketing overlap) is exactly the accounting
Table 2 uses ("ratio of parameter synchronization time to the
end-to-end time of a training iteration").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.collectives import CollectiveModel
from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from ..memory.estimator import data_parallel_memory_report
from ..core.plan import MemoryReport


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one baseline configuration."""

    name: str
    global_batch: float
    local_batch: float
    compute_ms: float
    sync_ms: float
    iteration_ms: float
    throughput: float           # samples / second
    memory: MemoryReport | None
    oom: bool
    notes: tuple[str, ...] = ()

    @property
    def sync_share(self) -> float:
        """Table 2's metric: sync time / iteration time."""
        if self.iteration_ms <= 0:
            return 0.0
        return self.sync_ms / self.iteration_ms


def _oom_result(
    name: str, global_batch: float, local_batch: float, memory: MemoryReport
) -> BaselineResult:
    return BaselineResult(
        name=name,
        global_batch=global_batch,
        local_batch=local_batch,
        compute_ms=float("inf"),
        sync_ms=float("inf"),
        iteration_ms=float("inf"),
        throughput=0.0,
        memory=memory,
        oom=True,
        notes=("out of memory",),
    )


class DataParallelBaseline:
    """Vanilla DDP (DeepSpeed without ZeRO)."""

    name = "DeepSpeed"

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        profile: ProfileDB,
        *,
        collectives: CollectiveModel | None = None,
    ):
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.collectives = collectives or CollectiveModel(cluster)

    # -- cost pieces -----------------------------------------------------------

    def compute_ms(self, local_batch: float) -> float:
        """Per-device compute: frozen encoders + backbone train step."""
        if local_batch <= 0:
            raise ConfigurationError("local batch must be positive")
        total = 0.0
        for comp in self.model.non_trainable:
            total += self.profile.component_fwd_ms(comp.name, local_batch)
        sc_extra = (
            self.model.self_conditioning_prob if self.model.self_conditioning else 0.0
        )
        for name in self.model.backbone_names:
            fwd = self.profile.component_fwd_ms(name, local_batch)
            total += self.profile.component_train_ms(name, local_batch)
            total += sc_extra * fwd
        return total

    def grad_bytes(self) -> float:
        """Total gradient bytes all-reduced per iteration."""
        total = 0.0
        for name in self.model.backbone_names:
            comp = self.model.components[name]
            total += comp.grad_bytes
        return total

    def sync_ms(self) -> float:
        """World-wide gradient all-reduce time."""
        ranks = list(range(self.cluster.world_size))
        return self.collectives.allreduce(ranks, self.grad_bytes())

    def memory(self, local_batch: float) -> MemoryReport:
        return data_parallel_memory_report(
            self.model,
            local_batch,
            capacity_bytes=self.cluster.device_spec.memory_bytes,
            zero3=False,
            world_size=self.cluster.world_size,
        )

    # -- evaluation --------------------------------------------------------------

    def run(self, global_batch: float) -> BaselineResult:
        world = self.cluster.world_size
        if global_batch <= 0 or global_batch % world != 0:
            raise ConfigurationError(
                f"global batch {global_batch} must be a positive multiple "
                f"of world size {world}"
            )
        local = global_batch / world
        memory = self.memory(local)
        if not memory.fits:
            return _oom_result(self.name, global_batch, local, memory)
        compute = self.compute_ms(local)
        sync = self.sync_ms()
        iteration = compute + sync
        return BaselineResult(
            name=self.name,
            global_batch=global_batch,
            local_batch=local,
            compute_ms=compute,
            sync_ms=sync,
            iteration_ms=iteration,
            throughput=global_batch / iteration * 1e3,
            memory=memory,
            oom=False,
        )
