"""Baseline training systems evaluated in §6."""

from .chimera import ChimeraBaseline, ChimeraConfig
from .cdm_strategies import (
    CDMStrategyConfig,
    ParallelCDMBaseline,
    SequentialCDMBaseline,
    single_backbone_view,
)
from .data_parallel import BaselineResult, DataParallelBaseline
from .gpipe import GPipeBaseline, GPipeConfig, equal_layer_partition
from .spp import SPPBaseline
from .zero3 import Zero3Baseline

__all__ = [
    "ChimeraBaseline",
    "ChimeraConfig",
    "CDMStrategyConfig",
    "ParallelCDMBaseline",
    "SequentialCDMBaseline",
    "single_backbone_view",
    "BaselineResult",
    "DataParallelBaseline",
    "GPipeBaseline",
    "GPipeConfig",
    "equal_layer_partition",
    "SPPBaseline",
    "Zero3Baseline",
]
