"""DiffusionPipe (MLSys 2024) reproduction.

Public API tour:

>>> from repro import zoo, Profiler, DiffusionPipePlanner
>>> from repro.cluster import single_node
>>> cluster = single_node(8)
>>> model = zoo.stable_diffusion_v2_1()
>>> planner = DiffusionPipePlanner(model, cluster)
>>> best = planner.plan(global_batch=256)
>>> best.plan.throughput  # doctest: +SKIP
...

Sub-packages:

* :mod:`repro.cluster` -- simulated device/topology/collective models
* :mod:`repro.models` (+ :mod:`repro.models.zoo`) -- model descriptions
* :mod:`repro.profiling` -- the profiler and profile database
* :mod:`repro.schedule` -- schedule builders + discrete-event simulator
* :mod:`repro.core` -- partitioning, bubble filling, planning (the paper)
* :mod:`repro.baselines` -- GPipe, SPP, DeepSpeed DDP/ZeRO-3, CDM -S/-P
* :mod:`repro.memory` -- per-device memory estimation / OOM detection
* :mod:`repro.engine` -- numeric (NumPy) pipeline training back-end
* :mod:`repro.harness` -- experiment drivers for every table and figure
"""

from . import cluster, models, profiling, schedule
from .core import (
    Bubble,
    BubbleFiller,
    DiffusionPipePlanner,
    ExecutionPlan,
    PartitionPlan,
    PlannerOptions,
    extract_bubbles,
    partition_backbone,
    partition_cdm,
)
from .errors import ReproError
from .models import zoo
from .profiling import ProfileDB, Profiler

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "models",
    "profiling",
    "schedule",
    "zoo",
    "Bubble",
    "BubbleFiller",
    "DiffusionPipePlanner",
    "ExecutionPlan",
    "PartitionPlan",
    "PlannerOptions",
    "extract_bubbles",
    "partition_backbone",
    "partition_cdm",
    "ReproError",
    "ProfileDB",
    "Profiler",
    "__version__",
]
