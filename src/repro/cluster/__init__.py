"""Simulated cluster substrate: devices, topology and collective costs."""

from .collectives import (
    DEFAULT_INTER_NODE_EFFICIENCY,
    DEFAULT_RING_FIXED_OVERHEAD_MS,
    CollectiveModel,
    CommCosts,
)
from .device import Device, DeviceSpec, a100_40gb, a100_80gb, v100_32gb
from .topology import (
    EFA_400G,
    NVSWITCH,
    ClusterSpec,
    LinkSpec,
    p4de_cluster,
    single_node,
)

__all__ = [
    "DEFAULT_INTER_NODE_EFFICIENCY",
    "DEFAULT_RING_FIXED_OVERHEAD_MS",
    "CollectiveModel",
    "CommCosts",
    "Device",
    "DeviceSpec",
    "a100_40gb",
    "a100_80gb",
    "v100_32gb",
    "ClusterSpec",
    "LinkSpec",
    "NVSWITCH",
    "EFA_400G",
    "p4de_cluster",
    "single_node",
]
