"""Device (accelerator) model.

The partitioning and scheduling algorithms in DiffusionPipe only ever
consume *profiled layer execution times*; they never touch a real kernel.
We therefore model a device analytically: a peak FLOP rate, a
batch-dependent utilisation curve (small batches under-utilise the
device), and a fixed per-kernel launch overhead.  The defaults are
calibrated against the paper's A100-80GB testbed so that the published
profile shapes (Table 1, Fig. 5, Fig. 6) are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import units
from ..errors import ConfigurationError


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a single accelerator.

    Parameters
    ----------
    name:
        Human-readable device name.
    peak_flops_per_ms:
        Peak sustained throughput in FLOP per millisecond (dense fp16
        tensor-core math for an A100 is ~312 TFLOP/s; sustained real
        workloads reach a fraction of it which the utilisation curve
        captures).
    memory_bytes:
        HBM capacity in bytes.
    kernel_overhead_ms:
        Fixed cost per layer invocation (kernel launches, Python glue).
    max_utilisation:
        Asymptotic fraction of peak reached at large batch sizes.
    half_batch:
        Batch size at which utilisation reaches half of
        ``max_utilisation`` (saturating Michaelis-Menten curve).
    """

    name: str = "A100-80GB"
    peak_flops_per_ms: float = units.tflops_to_flops_per_ms(312.0)
    # Vendor gigabytes (80e9 bytes), as HBM capacity is marketed.
    memory_bytes: float = 80e9
    kernel_overhead_ms: float = 0.02
    max_utilisation: float = 0.55
    half_batch: float = 2.0

    def __post_init__(self) -> None:
        if self.peak_flops_per_ms <= 0:
            raise ConfigurationError("peak_flops_per_ms must be positive")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if not (0 < self.max_utilisation <= 1.0):
            raise ConfigurationError("max_utilisation must be in (0, 1]")

    def utilisation(self, batch_size: float) -> float:
        """Fraction of peak FLOPs achieved at a given batch size.

        A saturating curve: ``u(B) = u_max * B / (B + half_batch)``.
        ``u(0) = 0`` by construction; callers should never ask for the
        execution time of a zero-sample batch.
        """
        if batch_size < 0:
            raise ConfigurationError(f"negative batch size {batch_size}")
        if batch_size == 0:
            return 0.0
        return self.max_utilisation * batch_size / (batch_size + self.half_batch)

    def effective_flops_per_ms(self, batch_size: float) -> float:
        """Sustained FLOP/ms at a given batch size."""
        return self.peak_flops_per_ms * self.utilisation(batch_size)

    def compute_time_ms(self, flops: float, batch_size: float) -> float:
        """Time to execute ``flops`` total FLOPs at ``batch_size``.

        Includes the fixed kernel overhead once (one "layer call").
        """
        if flops < 0:
            raise ConfigurationError(f"negative flops {flops}")
        if flops == 0:
            return self.kernel_overhead_ms
        eff = self.effective_flops_per_ms(batch_size)
        if eff <= 0:
            raise ConfigurationError(
                f"cannot compute {flops} FLOPs at batch size {batch_size}"
            )
        return self.kernel_overhead_ms + flops / eff


def a100_80gb() -> DeviceSpec:
    """The paper's testbed accelerator."""
    return DeviceSpec()


def a100_40gb() -> DeviceSpec:
    """A smaller-memory A100 variant, useful for OOM experiments."""
    return DeviceSpec(name="A100-40GB", memory_bytes=40e9)


def v100_32gb() -> DeviceSpec:
    """An older device for sensitivity experiments."""
    return DeviceSpec(
        name="V100-32GB",
        peak_flops_per_ms=units.tflops_to_flops_per_ms(125.0),
        memory_bytes=32e9,
        kernel_overhead_ms=0.03,
        max_utilisation=0.5,
    )


@dataclass(frozen=True)
class Device:
    """A concrete device instance placed in a cluster.

    Attributes
    ----------
    rank:
        Global rank, unique across the cluster, contiguous from zero.
    machine:
        Index of the host machine.
    local_rank:
        Rank within the host machine.
    spec:
        The :class:`DeviceSpec` describing the hardware.
    """

    rank: int
    machine: int
    local_rank: int
    spec: DeviceSpec = field(default_factory=a100_80gb)
    #: Relative compute speed against the cluster's reference device:
    #: 1.0 is nominal, 0.5 runs every profiled layer twice as slow.  The
    #: planner divides per-stage compute (never communication) by the
    #: minimum factor across the devices hosting the stage.
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.rank < 0 or self.machine < 0 or self.local_rank < 0:
            raise ConfigurationError("device indices must be non-negative")
        if not self.speed_factor > 0:
            raise ConfigurationError(
                f"device speed_factor must be positive, got {self.speed_factor}"
            )

    def scaled_time_ms(self, nominal_ms: float) -> float:
        """A nominal (reference-device) execution time on this device."""
        # Exact-identity gate, not a tolerance check: a factor of exactly
        # 1.0 must leave the nominal time bit-identical (x / 1.0 would be
        # exact too, but skipping the op keeps homogeneous paths untouched).
        if self.speed_factor == 1.0:  # repro: allow[float-equality] identity gate
            return nominal_ms
        return nominal_ms / self.speed_factor
