"""Cluster topology: machines, devices and the links between them.

The paper's testbed is 8 Amazon EC2 p4de.24xlarge machines, each with
8 NVIDIA A100-80GB GPUs.  Intra-node traffic travels over NVSwitch
(600 GB/s); inter-node traffic over EFA (400 Gb/s).  The topology object
answers one question for the rest of the system: *what bandwidth and
latency connect two device ranks?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .. import units
from ..errors import ConfigurationError
from .device import Device, DeviceSpec, a100_80gb


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link abstraction.

    ``bandwidth`` is in bytes/ms, ``latency`` in ms.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError("link latency must be non-negative")

    def transfer_time_ms(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        return self.latency + nbytes / self.bandwidth


#: NVSwitch, 600 GB/s, ~5 microseconds latency.
NVSWITCH = LinkSpec(bandwidth=units.gBps_to_bytes_per_ms(600.0), latency=0.005)

#: EFA, 400 Gb/s, ~15 microseconds latency.
EFA_400G = LinkSpec(bandwidth=units.gbps_to_bytes_per_ms(400.0), latency=0.015)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of ``num_machines`` x ``devices_per_machine`` devices.

    Devices are ranked machine-major: rank = machine * devices_per_machine
    + local_rank, matching the paper's device chain ordering (Fig. 8).

    The cluster is homogeneous by default — every device is
    ``device_spec`` at nominal speed, every intra-/inter-node link is
    ``intra_link``/``inter_link``.  Three sparse override maps make it
    heterogeneous:

    * ``speed_factors``: rank -> relative compute speed (1.0 nominal);
    * ``device_specs``: rank -> :class:`DeviceSpec` replacing the base;
    * ``link_overrides``: (machine, machine) -> :class:`LinkSpec` for a
      specific machine pair (a ``(m, m)`` pair overrides that machine's
      intra-node link).

    The maps are canonicalised in ``__post_init__`` — sorted into tuples
    with identity entries (factor 1.0, the base spec, the default link)
    dropped — so dataclass equality/hash, and therefore every planner
    cache key this spec joins, compare by *semantic* cluster identity: a
    no-op override neither splits a warm cache nor aliases a real one.
    """

    num_machines: int = 1
    devices_per_machine: int = 8
    device_spec: DeviceSpec = field(default_factory=a100_80gb)
    intra_link: LinkSpec = NVSWITCH
    inter_link: LinkSpec = EFA_400G
    #: canonicalised ((rank, factor), ...); accepts a mapping at init
    speed_factors: tuple = ()
    #: canonicalised ((rank, DeviceSpec), ...); accepts a mapping at init
    device_specs: tuple = ()
    #: canonicalised (((m0, m1), LinkSpec), ...); accepts a mapping at init
    link_overrides: tuple = ()

    def __post_init__(self) -> None:
        if self.num_machines <= 0 or self.devices_per_machine <= 0:
            raise ConfigurationError("cluster dimensions must be positive")
        object.__setattr__(
            self, "speed_factors", self._canon_speed(self.speed_factors)
        )
        object.__setattr__(
            self, "device_specs", self._canon_specs(self.device_specs)
        )
        object.__setattr__(
            self, "link_overrides", self._canon_links(self.link_overrides)
        )

    # -- override canonicalisation -------------------------------------------

    @staticmethod
    def _pairs(overrides) -> Iterable[tuple]:
        if isinstance(overrides, Mapping):
            return overrides.items()
        return tuple(overrides)

    def _canon_speed(self, overrides) -> tuple:
        out = {}
        for rank, factor in self._pairs(overrides):
            rank = int(rank)
            self._check_rank(rank)
            factor = float(factor)
            if not factor > 0:
                raise ConfigurationError(
                    f"speed factor for rank {rank} must be positive, "
                    f"got {factor}"
                )
            # Exact-identity gate: factor 1.0 IS the homogeneous default,
            # and dropping it keeps cache keys canonical.
            if factor != 1.0:  # repro: allow[float-equality] identity gate
                out[rank] = factor
        return tuple(sorted(out.items()))

    def _canon_specs(self, overrides) -> tuple:
        out = {}
        for rank, spec in self._pairs(overrides):
            rank = int(rank)
            self._check_rank(rank)
            if not isinstance(spec, DeviceSpec):
                raise ConfigurationError(
                    f"device_specs[{rank}] must be a DeviceSpec, "
                    f"got {type(spec).__name__}"
                )
            if spec != self.device_spec:
                out[rank] = spec
        return tuple(sorted(out.items()))

    def _canon_links(self, overrides) -> tuple:
        out = {}
        for pair, link in self._pairs(overrides):
            m0, m1 = (int(m) for m in pair)
            for m in (m0, m1):
                if not (0 <= m < self.num_machines):
                    raise ConfigurationError(
                        f"link override machine {m} out of range for "
                        f"{self.num_machines} machines"
                    )
            if not isinstance(link, LinkSpec):
                raise ConfigurationError(
                    f"link_overrides[{pair}] must be a LinkSpec, "
                    f"got {type(link).__name__}"
                )
            key = (min(m0, m1), max(m0, m1))
            default = self.intra_link if key[0] == key[1] else self.inter_link
            if link != default:
                out[key] = link
        return tuple(sorted(out.items()))

    # -- heterogeneity accessors ---------------------------------------------

    @property
    def homogeneous(self) -> bool:
        """True when no per-device or per-link override is active."""
        return not (
            self.speed_factors or self.device_specs or self.link_overrides
        )

    def speed_factor(self, rank: int) -> float:
        """Relative compute speed of a rank (1.0 unless overridden)."""
        self._check_rank(rank)
        for r, factor in self.speed_factors:
            if r == rank:
                return factor
        return 1.0

    def device_spec_of(self, rank: int) -> DeviceSpec:
        """The :class:`DeviceSpec` of a rank (base unless overridden)."""
        self._check_rank(rank)
        for r, spec in self.device_specs:
            if r == rank:
                return spec
        return self.device_spec

    def group_speed_factor(self, ranks: Iterable[int]) -> float:
        """Bottleneck (minimum) speed factor across a device group."""
        factors = [self.speed_factor(r) for r in ranks]
        if not factors:
            raise ConfigurationError("empty device group")
        return min(factors)

    def min_memory_bytes(self) -> float:
        """Smallest HBM capacity across all devices (OOM bound)."""
        capacity = self.device_spec.memory_bytes
        for _, spec in self.device_specs:
            capacity = min(capacity, spec.memory_bytes)
        return capacity

    def machine_pair_link(self, machine_a: int, machine_b: int) -> LinkSpec:
        """The link between two machines (or within one, if equal)."""
        key = (min(machine_a, machine_b), max(machine_a, machine_b))
        for pair, link in self.link_overrides:
            if pair == key:
                return link
        return self.intra_link if machine_a == machine_b else self.inter_link

    # -- structure ----------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total number of devices."""
        return self.num_machines * self.devices_per_machine

    def device(self, rank: int) -> Device:
        """The :class:`Device` at a global rank."""
        self._check_rank(rank)
        return Device(
            rank=rank,
            machine=rank // self.devices_per_machine,
            local_rank=rank % self.devices_per_machine,
            spec=self.device_spec_of(rank),
            speed_factor=self.speed_factor(rank),
        )

    def devices(self) -> list[Device]:
        """All devices in rank order."""
        return [self.device(r) for r in range(self.world_size)]

    def machine_of(self, rank: int) -> int:
        """Host machine index of a global rank."""
        self._check_rank(rank)
        return rank // self.devices_per_machine

    def same_machine(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a machine (and hence NVSwitch)."""
        return self.machine_of(rank_a) == self.machine_of(rank_b)

    # -- links --------------------------------------------------------------

    def link(self, rank_a: int, rank_b: int) -> LinkSpec:
        """The link connecting two device ranks."""
        if rank_a == rank_b:
            # A self-link is infinitely fast for our purposes; model it as
            # the local intra-node link with zero latency so that
            # degenerate schedules (stage i and i+1 on the same device)
            # cost ~nothing.
            self._check_rank(rank_a)
            machine = self.machine_of(rank_a)
            intra = self.machine_pair_link(machine, machine)
            return LinkSpec(bandwidth=intra.bandwidth, latency=0.0)
        if not self.link_overrides:
            if self.same_machine(rank_a, rank_b):
                return self.intra_link
            return self.inter_link
        return self.machine_pair_link(
            self.machine_of(rank_a), self.machine_of(rank_b)
        )

    def p2p_time_ms(self, rank_a: int, rank_b: int, nbytes: float) -> float:
        """Point-to-point transfer time between two ranks."""
        return self.link(rank_a, rank_b).transfer_time_ms(nbytes)

    def group_link(self, ranks: Sequence[int]) -> LinkSpec:
        """The narrowest link within a group (bottleneck for collectives)."""
        ranks = list(ranks)
        if not ranks:
            raise ConfigurationError("empty device group")
        for r in ranks:
            self._check_rank(r)
        machines = sorted({self.machine_of(r) for r in ranks})
        if not self.link_overrides:
            return self.intra_link if len(machines) <= 1 else self.inter_link
        if len(machines) <= 1:
            return self.machine_pair_link(machines[0], machines[0])
        # A ring collective crosses every machine pair's narrowest path;
        # the bottleneck is the slowest pairwise link (ties broken toward
        # higher latency, the conservative choice).
        candidates = [
            self.machine_pair_link(machines[i], machines[j])
            for i in range(len(machines))
            for j in range(i + 1, len(machines))
        ]
        return min(candidates, key=lambda l: (l.bandwidth, -l.latency))

    def spans_machines(self, ranks: Iterable[int]) -> bool:
        """Whether a group of ranks crosses a machine boundary."""
        return len({self.machine_of(r) for r in ranks}) > 1

    # -- helpers -------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.world_size):
            raise ConfigurationError(
                f"rank {rank} out of range for world size {self.world_size}"
            )


def p4de_cluster(
    num_machines: int = 1,
    speed_factors: Mapping[int, float] | None = None,
) -> ClusterSpec:
    """The paper's testbed: p4de.24xlarge machines (8x A100-80GB each)."""
    return ClusterSpec(
        num_machines=num_machines,
        devices_per_machine=8,
        speed_factors=speed_factors or (),
    )


def single_node(
    num_devices: int = 8,
    device_spec: DeviceSpec | None = None,
    speed_factors: Mapping[int, float] | None = None,
) -> ClusterSpec:
    """A single machine with ``num_devices`` accelerators."""
    return ClusterSpec(
        num_machines=1,
        devices_per_machine=num_devices,
        device_spec=device_spec or a100_80gb(),
        speed_factors=speed_factors or (),
    )
