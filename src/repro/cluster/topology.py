"""Cluster topology: machines, devices and the links between them.

The paper's testbed is 8 Amazon EC2 p4de.24xlarge machines, each with
8 NVIDIA A100-80GB GPUs.  Intra-node traffic travels over NVSwitch
(600 GB/s); inter-node traffic over EFA (400 Gb/s).  The topology object
answers one question for the rest of the system: *what bandwidth and
latency connect two device ranks?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .. import units
from ..errors import ConfigurationError
from .device import Device, DeviceSpec, a100_80gb


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link abstraction.

    ``bandwidth`` is in bytes/ms, ``latency`` in ms.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError("link latency must be non-negative")

    def transfer_time_ms(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        return self.latency + nbytes / self.bandwidth


#: NVSwitch, 600 GB/s, ~5 microseconds latency.
NVSWITCH = LinkSpec(bandwidth=units.gBps_to_bytes_per_ms(600.0), latency=0.005)

#: EFA, 400 Gb/s, ~15 microseconds latency.
EFA_400G = LinkSpec(bandwidth=units.gbps_to_bytes_per_ms(400.0), latency=0.015)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_machines`` x ``devices_per_machine``.

    Devices are ranked machine-major: rank = machine * devices_per_machine
    + local_rank, matching the paper's device chain ordering (Fig. 8).
    """

    num_machines: int = 1
    devices_per_machine: int = 8
    device_spec: DeviceSpec = field(default_factory=a100_80gb)
    intra_link: LinkSpec = NVSWITCH
    inter_link: LinkSpec = EFA_400G

    def __post_init__(self) -> None:
        if self.num_machines <= 0 or self.devices_per_machine <= 0:
            raise ConfigurationError("cluster dimensions must be positive")

    # -- structure ----------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total number of devices."""
        return self.num_machines * self.devices_per_machine

    def device(self, rank: int) -> Device:
        """The :class:`Device` at a global rank."""
        self._check_rank(rank)
        return Device(
            rank=rank,
            machine=rank // self.devices_per_machine,
            local_rank=rank % self.devices_per_machine,
            spec=self.device_spec,
        )

    def devices(self) -> list[Device]:
        """All devices in rank order."""
        return [self.device(r) for r in range(self.world_size)]

    def machine_of(self, rank: int) -> int:
        """Host machine index of a global rank."""
        self._check_rank(rank)
        return rank // self.devices_per_machine

    def same_machine(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a machine (and hence NVSwitch)."""
        return self.machine_of(rank_a) == self.machine_of(rank_b)

    # -- links --------------------------------------------------------------

    def link(self, rank_a: int, rank_b: int) -> LinkSpec:
        """The link connecting two device ranks."""
        if rank_a == rank_b:
            # A self-link is infinitely fast for our purposes; model it as
            # NVSwitch with zero latency so that degenerate schedules
            # (stage i and i+1 on the same device) cost ~nothing.
            return LinkSpec(bandwidth=self.intra_link.bandwidth, latency=0.0)
        if self.same_machine(rank_a, rank_b):
            return self.intra_link
        return self.inter_link

    def p2p_time_ms(self, rank_a: int, rank_b: int, nbytes: float) -> float:
        """Point-to-point transfer time between two ranks."""
        return self.link(rank_a, rank_b).transfer_time_ms(nbytes)

    def group_link(self, ranks: Sequence[int]) -> LinkSpec:
        """The narrowest link within a group (bottleneck for collectives)."""
        ranks = list(ranks)
        if not ranks:
            raise ConfigurationError("empty device group")
        for r in ranks:
            self._check_rank(r)
        machines = {self.machine_of(r) for r in ranks}
        return self.intra_link if len(machines) <= 1 else self.inter_link

    def spans_machines(self, ranks: Iterable[int]) -> bool:
        """Whether a group of ranks crosses a machine boundary."""
        return len({self.machine_of(r) for r in ranks}) > 1

    # -- helpers -------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.world_size):
            raise ConfigurationError(
                f"rank {rank} out of range for world size {self.world_size}"
            )


def p4de_cluster(num_machines: int = 1) -> ClusterSpec:
    """The paper's testbed: p4de.24xlarge machines (8x A100-80GB each)."""
    return ClusterSpec(num_machines=num_machines, devices_per_machine=8)


def single_node(num_devices: int = 8, device_spec: DeviceSpec | None = None) -> ClusterSpec:
    """A single machine with ``num_devices`` accelerators."""
    return ClusterSpec(
        num_machines=1,
        devices_per_machine=num_devices,
        device_spec=device_spec or a100_80gb(),
    )
