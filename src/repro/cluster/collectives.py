"""Communication cost models for the collectives DiffusionPipe uses.

The partitioner's equations (3)-(6) consume bandwidth/latency constants
``R_x`` and ``L_x`` for two communication types: ``p2p`` (inter-stage
activation transfers) and ``ar`` (all-reduce gradient synchronisation).
The baselines additionally need all-gather and reduce-scatter (ZeRO-3).

All models are alpha-beta (latency + size/bandwidth) models:

* ring all-reduce over ``n`` devices moves ``2 (n-1)/n * size`` bytes
  through the bottleneck link and pays ``2 (n-1)`` link latencies;
* all-gather / reduce-scatter move ``(n-1)/n * size`` and pay ``n-1``
  latencies;
* broadcast is modelled as a ring pipeline: ``size`` bytes + ``n-1``
  latencies.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from .topology import ClusterSpec, LinkSpec


@dataclass(frozen=True)
class CommCosts:
    """Flat bandwidth/latency constants for one communication type.

    This is the ``R_x``/``L_x`` pair from Table 4 of the paper.
    ``bandwidth`` bytes/ms, ``latency`` ms.
    """

    bandwidth: float
    latency: float


#: Achieved-fraction of the nominal inter-node bandwidth for ring
#: collectives as a function of the number of participating machines,
#: together with a fixed per-call overhead.  Both curves are calibrated
#: jointly against the paper's Table 2 (sync share of iteration time for
#: Stable Diffusion *and* ControlNet at 8/16/32/64 GPUs): solving the
#: two models' sync times per node count for (fixed, bandwidth) pins all
#: eight cells to within ~0.5 pp.  Efficiency > 1 at two nodes reflects
#: hierarchical all-reduce (intra-node reduction first, so the EFA hop
#: moves less than a naive flat ring would).
DEFAULT_INTER_NODE_EFFICIENCY: Mapping[int, float] = {
    1: 1.0,
    2: 2.0,
    4: 0.494,
    8: 0.404,
}

#: Fixed per-all-reduce overhead (bucketing, rendezvous, kernel
#: launches) in ms, by participating machine count; same calibration.
DEFAULT_RING_FIXED_OVERHEAD_MS: Mapping[int, float] = {
    1: 28.0,
    2: 113.0,
    4: 210.0,
    8: 207.0,
}


def _interp_efficiency(
    curve: Mapping[int, float], machines: int, *, cap: float | None = None
) -> float:
    """Piecewise-linear interpolation of the efficiency curve.

    Calibrated machine counts (exact keys of ``curve``) always return the
    raw calibrated value.  Between keys the segment endpoints are clamped
    to ``cap`` before interpolating: the 2-node efficiency of 2.0 encodes
    hierarchical all-reduce (the EFA hop moves less data), and blending it
    linearly into the 4-node point would credit a 3-machine flat ring with
    "efficiency" ~1.25 — faster than nominal bandwidth, purely as an
    interpolation artifact.  The fixed-overhead curve interpolates with
    ``cap=None`` (its values are milliseconds, legitimately above 1).
    """
    if machines in curve:
        return curve[machines]
    keys = sorted(curve)
    if machines <= keys[0]:
        return curve[keys[0]]
    if machines >= keys[-1]:
        return curve[keys[-1]]
    i = bisect_right(keys, machines)
    k0, k1 = keys[i - 1], keys[i]
    v0, v1 = curve[k0], curve[k1]
    if cap is not None:
        v0 = min(v0, cap)
        v1 = min(v1, cap)
    f = (machines - k0) / (k1 - k0)
    return v0 + f * (v1 - v0)


class CollectiveModel:
    """Answers collective-time queries against a :class:`ClusterSpec`.

    ``inter_node_efficiency`` scales the achieved bandwidth of
    multi-node ring collectives (see
    :data:`DEFAULT_INTER_NODE_EFFICIENCY`); pass an empty mapping or
    ``{1: 1.0}`` to disable the calibration.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        inter_node_efficiency: Mapping[int, float] | None = None,
        ring_fixed_overhead_ms: Mapping[int, float] | None = None,
    ):
        self.cluster = cluster
        self.inter_node_efficiency = dict(
            DEFAULT_INTER_NODE_EFFICIENCY
            if inter_node_efficiency is None
            else inter_node_efficiency
        )
        self.ring_fixed_overhead_ms = dict(
            DEFAULT_RING_FIXED_OVERHEAD_MS
            if ring_fixed_overhead_ms is None
            else ring_fixed_overhead_ms
        )

    def _ring_efficiency(self, ranks: Sequence[int]) -> float:
        machines = len({self.cluster.machine_of(r) for r in ranks})
        if machines <= 1 or not self.inter_node_efficiency:
            return 1.0
        return _interp_efficiency(self.inter_node_efficiency, machines, cap=1.0)

    def _ring_fixed_ms(self, ranks: Sequence[int]) -> float:
        if not self.ring_fixed_overhead_ms:
            return 0.0
        machines = len({self.cluster.machine_of(r) for r in ranks})
        return _interp_efficiency(self.ring_fixed_overhead_ms, machines)

    # -- point to point ------------------------------------------------------

    def p2p(self, src: int, dst: int, nbytes: float) -> float:
        """Point-to-point transfer time between two ranks."""
        return self.cluster.p2p_time_ms(src, dst, nbytes)

    def p2p_costs(self, src: int, dst: int) -> CommCosts:
        """R/L constants of the link between two ranks."""
        link = self.cluster.link(src, dst)
        return CommCosts(bandwidth=link.bandwidth, latency=link.latency)

    # -- ring collectives ----------------------------------------------------

    def _bottleneck(self, ranks: Sequence[int]) -> LinkSpec:
        return self.cluster.group_link(ranks)

    def allreduce(self, ranks: Sequence[int], nbytes: float) -> float:
        """Ring all-reduce time over a device group."""
        n = len(ranks)
        self._check_group(n, nbytes)
        if n == 1:
            return 0.0
        link = self._bottleneck(ranks)
        bw = link.bandwidth * self._ring_efficiency(ranks)
        moved = 2.0 * (n - 1) / n * nbytes
        return (
            self._ring_fixed_ms(ranks)
            + 2.0 * (n - 1) * link.latency
            + moved / bw
        )

    def allgather(self, ranks: Sequence[int], nbytes: float) -> float:
        """Ring all-gather time; ``nbytes`` is the full gathered size."""
        n = len(ranks)
        self._check_group(n, nbytes)
        if n == 1:
            return 0.0
        link = self._bottleneck(ranks)
        bw = link.bandwidth * self._ring_efficiency(ranks)
        moved = (n - 1) / n * nbytes
        return self._ring_fixed_ms(ranks) + (n - 1) * link.latency + moved / bw

    def reduce_scatter(self, ranks: Sequence[int], nbytes: float) -> float:
        """Ring reduce-scatter time; ``nbytes`` is the full input size."""
        # Symmetric to all-gather in the ring model.
        return self.allgather(ranks, nbytes)

    def broadcast(self, ranks: Sequence[int], nbytes: float) -> float:
        """Pipelined ring broadcast time.

        Pays the same ring calibration as the other ring collectives:
        achieved (not nominal) bottleneck bandwidth plus the fixed
        per-call overhead.  Before this, multi-node broadcast was priced
        against raw link bandwidth with no fixed term, making ZeRO-3
        parameter broadcasts look artificially cheap next to the
        calibrated all-gather they compete with.
        """
        n = len(ranks)
        self._check_group(n, nbytes)
        if n == 1:
            return 0.0
        link = self._bottleneck(ranks)
        bw = link.bandwidth * self._ring_efficiency(ranks)
        return self._ring_fixed_ms(ranks) + (n - 1) * link.latency + nbytes / bw

    def allreduce_costs(self, ranks: Sequence[int]) -> CommCosts:
        """Effective R_ar / L_ar constants for a group, for the DP equations.

        We fold the ring factors into the constants so the partitioner can
        use the simple ``size / R + L`` form from the paper:
        ``allreduce(size) = size / R_ar + L_ar`` exactly.
        """
        n = len(ranks)
        if n <= 0:
            raise ConfigurationError("empty device group")
        if n == 1:
            return CommCosts(bandwidth=float("inf"), latency=0.0)
        link = self._bottleneck(ranks)
        bw = link.bandwidth * self._ring_efficiency(ranks)
        effective_bw = bw * n / (2.0 * (n - 1))
        effective_lat = self._ring_fixed_ms(ranks) + 2.0 * (n - 1) * link.latency
        return CommCosts(bandwidth=effective_bw, latency=effective_lat)

    # -- validation ----------------------------------------------------------

    @staticmethod
    def _check_group(n: int, nbytes: float) -> None:
        if n <= 0:
            raise ConfigurationError("empty device group")
        if nbytes < 0:
            raise ConfigurationError(f"negative collective size {nbytes}")
