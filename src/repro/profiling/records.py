"""Profile records and the profile database.

The front-end's algorithms (partitioning, bubble filling) are driven
entirely by a :class:`ProfileDB`: per-layer forward/backward times on a
grid of batch sizes plus static sizes (parameters, gradients, outputs).
Between grid points, times are piecewise-linear in the batch size —
layer execution time is near-affine in batch size on real accelerators
(paper Fig. 6), so linear interpolation is both accurate and monotone.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import ProfileError


@dataclass(frozen=True)
class LayerProfile:
    """Measured profile of one layer.

    ``batches``, ``fwd_ms`` and ``bwd_ms`` are parallel arrays sorted by
    batch size.  Sizes are per-sample for activations/outputs and total
    for parameters/gradients.

    ``bwd_w_ms`` is the measured weight-gradient (W) component of the
    backward time, another parallel array; split-backward schedule
    families (``zerobubble``) price B = grad-input and W = grad-weight
    separately.  Profiles that predate the split leave it ``None`` and
    fall back to an even B/W split of the measured backward — the two
    halves of the backward are one GEMM each (``dy @ W^T`` and
    ``x^T @ dy``) of equal FLOPs, so half is the principled default when
    no per-kernel measurement exists.
    """

    component: str
    layer_index: int
    layer_name: str
    batches: tuple[float, ...]
    fwd_ms: tuple[float, ...]
    bwd_ms: tuple[float, ...]
    param_bytes: float
    grad_bytes: float
    output_bytes_per_sample: float
    activation_bytes_per_sample: float
    trainable: bool
    bwd_w_ms: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        # Per-batch interpolation caches.  The planner's sweeps evaluate
        # the same (layer, batch) points thousands of times; caching the
        # exact interpolated value keeps results bit-identical while
        # removing the repeated bisect + arithmetic.  The dataclass is
        # frozen, hence object.__setattr__; the caches are not fields so
        # equality/hash semantics are unchanged.
        object.__setattr__(self, "_fwd_cache", {})
        object.__setattr__(self, "_bwd_cache", {})
        object.__setattr__(self, "_bww_cache", {})
        if not self.batches:
            raise ProfileError(
                f"{self.component}[{self.layer_index}]: empty batch grid"
            )
        if not (len(self.batches) == len(self.fwd_ms) == len(self.bwd_ms)):
            raise ProfileError(
                f"{self.component}[{self.layer_index}]: ragged profile arrays"
            )
        if list(self.batches) != sorted(set(self.batches)):
            raise ProfileError(
                f"{self.component}[{self.layer_index}]: batch grid must be "
                "strictly increasing"
            )
        if any(t < 0 for t in self.fwd_ms) or any(t < 0 for t in self.bwd_ms):
            raise ProfileError(
                f"{self.component}[{self.layer_index}]: negative times"
            )
        if self.bwd_w_ms is not None:
            if len(self.bwd_w_ms) != len(self.batches):
                raise ProfileError(
                    f"{self.component}[{self.layer_index}]: ragged bwd_w_ms"
                )
            if any(
                not (0.0 <= w <= b) for w, b in zip(self.bwd_w_ms, self.bwd_ms)
            ):
                raise ProfileError(
                    f"{self.component}[{self.layer_index}]: bwd_w_ms must "
                    "satisfy 0 <= W <= backward at every grid point"
                )

    def _interp(self, values: Sequence[float], batch: float) -> float:
        """Piecewise-linear interpolation with linear extrapolation."""
        if batch <= 0:
            raise ProfileError(
                f"{self.component}[{self.layer_index}]: batch must be positive, "
                f"got {batch}"
            )
        xs = self.batches
        if len(xs) == 1:
            # Single point: scale proportionally through the origin.
            return values[0] * batch / xs[0]
        i = bisect.bisect_left(xs, batch)
        if i < len(xs) and xs[i] == batch:
            return values[i]
        # Pick the segment; clamp to the outermost segments for
        # extrapolation on either side.
        j = min(max(i, 1), len(xs) - 1)
        x0, x1 = xs[j - 1], xs[j]
        y0, y1 = values[j - 1], values[j]
        t = y0 + (y1 - y0) * (batch - x0) / (x1 - x0)
        return max(t, 0.0)

    def forward_ms(self, batch: float) -> float:
        """Forward time at a batch size (interpolated, cached)."""
        cache: dict = self._fwd_cache  # type: ignore[attr-defined]
        t = cache.get(batch)
        if t is None:
            t = self._interp(self.fwd_ms, batch)
            cache[batch] = t
        return t

    def backward_ms(self, batch: float) -> float:
        """Backward time at a batch size (0 for frozen layers)."""
        if not self.trainable:
            return 0.0
        cache: dict = self._bwd_cache  # type: ignore[attr-defined]
        t = cache.get(batch)
        if t is None:
            t = self._interp(self.bwd_ms, batch)
            cache[batch] = t
        return t

    def train_ms(self, batch: float) -> float:
        """Forward + backward time at a batch size."""
        return self.forward_ms(batch) + self.backward_ms(batch)

    def backward_weight_ms(self, batch: float) -> float:
        """Weight-gradient (W) component of the backward time.

        Interpolated from ``bwd_w_ms`` when the profiler measured the
        split; otherwise half of the measured backward (documented
        fallback — the two backward GEMMs have equal FLOPs).  Clamped to
        ``[0, backward_ms]`` so B + W always reconstructs the backward
        exactly and B is never negative.
        """
        if not self.trainable:
            return 0.0
        total = self.backward_ms(batch)
        if self.bwd_w_ms is None:
            return 0.5 * total
        cache: dict = self._bww_cache  # type: ignore[attr-defined]
        t = cache.get(batch)
        if t is None:
            t = min(self._interp(self.bwd_w_ms, batch), total)
            cache[batch] = t
        return t

    def backward_input_ms(self, batch: float) -> float:
        """Grad-input (B) component: ``backward - W``, exactly."""
        return self.backward_ms(batch) - self.backward_weight_ms(batch)

    def reset_caches(self) -> None:
        """Drop the per-batch interpolation memos (generation reset).

        The memos are plain dicts keyed by float batch values — a
        long-lived service sweeping unbounded distinct batches would
        grow them forever, and per-hit LRU bookkeeping on this hottest
        of paths costs real time.  A cheap wholesale clear (called from
        :meth:`ProfileDB.reset_caches` /
        ``PlannerCaches.clear``) bounds them instead."""
        self._fwd_cache.clear()  # type: ignore[attr-defined]
        self._bwd_cache.clear()  # type: ignore[attr-defined]
        self._bww_cache.clear()  # type: ignore[attr-defined]

    def output_bytes(self, batch: float) -> float:
        """Output activation size at a batch size."""
        return self.output_bytes_per_sample * batch


class ProfileDB:
    """All layer profiles of a model, with aggregate queries.

    The canonical producer is :class:`repro.profiling.Profiler`; tests
    construct one directly via :meth:`from_layer_times`.
    """

    def __init__(self, profiles: Iterable[LayerProfile]):
        self._by_key: dict[tuple[str, int], LayerProfile] = {}
        self._component_sizes: dict[str, int] = {}
        # Memo of stage-aggregate queries, keyed by
        # (query kind, component, lo, hi, batch).  The DB is immutable
        # after construction, so cached sums stay valid; sums are
        # computed exactly as before (same accumulation order), keeping
        # results bit-identical with the uncached path.
        self._stage_cache: dict[tuple, float] = {}
        for p in profiles:
            key = (p.component, p.layer_index)
            if key in self._by_key:
                raise ProfileError(f"duplicate profile for {key}")
            self._by_key[key] = p
            cur = self._component_sizes.get(p.component, 0)
            self._component_sizes[p.component] = max(cur, p.layer_index + 1)
        for comp, n in self._component_sizes.items():
            for i in range(n):
                if (comp, i) not in self._by_key:
                    raise ProfileError(
                        f"component {comp}: missing profile for layer {i}"
                    )

    # -- cache management -----------------------------------------------------

    def reset_caches(self) -> None:
        """Generation/epoch reset of every float-keyed interpolation
        memo: the stage-aggregate cache and each layer's per-batch
        forward/backward caches.  Values are recomputed identically on
        the next query (the memos are pure), so the only cost is the
        warm-up; call this between epochs of a long-lived sweep to
        bound memory without per-hit LRU bookkeeping."""
        self._stage_cache.clear()
        for profile in self._by_key.values():
            profile.reset_caches()

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of every measured field (structural model
        signature + profile values).

        Two DBs produced from identical measurements — e.g. the
        deterministic :class:`~repro.profiling.Profiler` run twice, or
        in two different processes — share a fingerprint, while any
        change to a layer's timings, sizes, flags or position changes
        it.  Cache snapshots (:meth:`repro.core.PlannerCaches.snapshot`)
        re-key their weak profile references by this value, so a
        snapshot survives re-profiling as long as the measurements
        agree.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        h = hashlib.sha256()
        for key in sorted(self._by_key):
            p = self._by_key[key]
            h.update(
                repr(
                    (
                        p.component,
                        p.layer_index,
                        p.layer_name,
                        p.batches,
                        p.fwd_ms,
                        p.bwd_ms,
                        p.param_bytes,
                        p.grad_bytes,
                        p.output_bytes_per_sample,
                        p.activation_bytes_per_sample,
                        p.trainable,
                        p.bwd_w_ms,
                    )
                ).encode()
            )
        digest = h.hexdigest()
        self._fingerprint = digest
        return digest

    # -- lookups -------------------------------------------------------------

    def components(self) -> list[str]:
        """Profiled component names."""
        return sorted(self._component_sizes)

    def num_layers(self, component: str) -> int:
        """Number of profiled layers of a component."""
        self._check_component(component)
        return self._component_sizes[component]

    def layer(self, component: str, index: int) -> LayerProfile:
        """The profile of one layer."""
        key = (component, index)
        if key not in self._by_key:
            self._check_component(component)
            raise ProfileError(
                f"component {component}: no layer {index} "
                f"(has {self._component_sizes[component]})"
            )
        return self._by_key[key]

    def layers(self, component: str) -> list[LayerProfile]:
        """All layer profiles of a component, in order."""
        return [
            self.layer(component, i) for i in range(self.num_layers(component))
        ]

    # -- per-layer convenience -------------------------------------------------

    def fwd_ms(self, component: str, index: int, batch: float) -> float:
        """Forward time of layer ``index`` at a batch size."""
        return self.layer(component, index).forward_ms(batch)

    def bwd_ms(self, component: str, index: int, batch: float) -> float:
        """Backward time of layer ``index`` at a batch size."""
        return self.layer(component, index).backward_ms(batch)

    def bwd_w_ms(self, component: str, index: int, batch: float) -> float:
        """Weight-gradient (W) time of layer ``index`` at a batch size."""
        return self.layer(component, index).backward_weight_ms(batch)

    # -- stage aggregates (contiguous layer ranges) ------------------------------

    def stage_fwd_ms(self, component: str, lo: int, hi: int, batch: float) -> float:
        """Sum of forward times of layers ``[lo, hi)``."""
        key = ("f", component, lo, hi, batch)
        t = self._stage_cache.get(key)
        if t is None:
            self._check_range(component, lo, hi)
            t = sum(self.fwd_ms(component, i, batch) for i in range(lo, hi))
            self._stage_cache[key] = t
        return t

    def stage_bwd_ms(self, component: str, lo: int, hi: int, batch: float) -> float:
        """Sum of backward times of layers ``[lo, hi)``."""
        key = ("b", component, lo, hi, batch)
        t = self._stage_cache.get(key)
        if t is None:
            self._check_range(component, lo, hi)
            t = sum(self.bwd_ms(component, i, batch) for i in range(lo, hi))
            self._stage_cache[key] = t
        return t

    def stage_bwd_w_ms(self, component: str, lo: int, hi: int, batch: float) -> float:
        """Sum of weight-gradient (W) times of layers ``[lo, hi)``."""
        key = ("w", component, lo, hi, batch)
        t = self._stage_cache.get(key)
        if t is None:
            self._check_range(component, lo, hi)
            t = sum(self.bwd_w_ms(component, i, batch) for i in range(lo, hi))
            self._stage_cache[key] = t
        return t

    def stage_bwd_b_ms(self, component: str, lo: int, hi: int, batch: float) -> float:
        """Grad-input (B) time of layers ``[lo, hi)``.

        Defined as ``stage_bwd_ms - stage_bwd_w_ms`` (not a separate
        sum) so B + W reconstructs the stage backward exactly in
        floating point; clamped at zero against ulp-level summation
        order effects.
        """
        return max(
            0.0,
            self.stage_bwd_ms(component, lo, hi, batch)
            - self.stage_bwd_w_ms(component, lo, hi, batch),
        )

    def stage_train_ms(self, component: str, lo: int, hi: int, batch: float) -> float:
        """Sum of forward+backward times of layers ``[lo, hi)``."""
        return self.stage_fwd_ms(component, lo, hi, batch) + self.stage_bwd_ms(
            component, lo, hi, batch
        )

    def stage_param_bytes(self, component: str, lo: int, hi: int) -> float:
        """Parameter bytes of layers ``[lo, hi)``."""
        self._check_range(component, lo, hi)
        return sum(self.layer(component, i).param_bytes for i in range(lo, hi))

    def stage_grad_bytes(self, component: str, lo: int, hi: int) -> float:
        """Gradient bytes of layers ``[lo, hi)`` (the ``G`` of Eqn. 4)."""
        key = ("g", component, lo, hi)
        t = self._stage_cache.get(key)
        if t is None:
            self._check_range(component, lo, hi)
            t = sum(self.layer(component, i).grad_bytes for i in range(lo, hi))
            self._stage_cache[key] = t
        return t

    def boundary_bytes(self, component: str, index: int, batch: float) -> float:
        """Activation bytes crossing the cut after layer ``index``
        (the ``C_{l,l+1}`` of Eqn. 3)."""
        return self.layer(component, index).output_bytes(batch)

    def component_fwd_ms(self, component: str, batch: float) -> float:
        """Total forward time of a component."""
        return self.stage_fwd_ms(component, 0, self.num_layers(component), batch)

    def component_train_ms(self, component: str, batch: float) -> float:
        """Total forward+backward time of a component."""
        n = self.num_layers(component)
        return self.stage_train_ms(component, 0, n, batch)

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_layer_times(
        cls,
        times: Mapping[str, Sequence[tuple[float, float]]],
        *,
        batches: Sequence[float] = (1.0,),
        param_bytes: float = 1e6,
        output_bytes_per_sample: float = 1e4,
        trainable: Mapping[str, bool] | None = None,
        scale_with_batch: bool = True,
    ) -> "ProfileDB":
        """Build a synthetic DB from explicit per-layer (fwd, bwd) times.

        ``times[name]`` is a list of (fwd_ms, bwd_ms) pairs, one per
        layer, interpreted as the times at batch size ``batches[-1]``.
        When ``scale_with_batch`` is true, other grid points scale
        linearly with batch size; otherwise times are batch-independent.
        """
        trainable = trainable or {}
        profiles = []
        ref = batches[-1]
        for comp, layer_times in times.items():
            comp_trainable = trainable.get(
                comp, any(b > 0 for _, b in layer_times)
            )
            for idx, (f, b) in enumerate(layer_times):
                if scale_with_batch:
                    fwd = tuple(f * bb / ref for bb in batches)
                    bwd = tuple(b * bb / ref for bb in batches)
                else:
                    fwd = tuple(f for _ in batches)
                    bwd = tuple(b for _ in batches)
                profiles.append(
                    LayerProfile(
                        component=comp,
                        layer_index=idx,
                        layer_name=f"{comp}_l{idx}",
                        batches=tuple(batches),
                        fwd_ms=fwd,
                        bwd_ms=bwd,
                        param_bytes=param_bytes,
                        grad_bytes=param_bytes if comp_trainable else 0.0,
                        output_bytes_per_sample=output_bytes_per_sample,
                        activation_bytes_per_sample=output_bytes_per_sample,
                        trainable=comp_trainable,
                    )
                )
        return cls(profiles)

    # -- validation ---------------------------------------------------------------

    def _check_component(self, component: str) -> None:
        if component not in self._component_sizes:
            raise ProfileError(
                f"unknown component {component!r}; "
                f"profiled: {self.components()}"
            )

    def _check_range(self, component: str, lo: int, hi: int) -> None:
        n = self.num_layers(component)
        if not (0 <= lo <= hi <= n):
            raise ProfileError(
                f"component {component}: invalid layer range [{lo}, {hi}) "
                f"of {n} layers"
            )
