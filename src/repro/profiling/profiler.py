"""The profiler (Fig. 7, step 1).

DiffusionPipe first profiles every model layer at a grid of batch sizes,
in parallel across the whole cluster, and feeds the resulting records to
the partitioning and bubble-filling algorithms.  Here "measurement"
evaluates the analytic device cost model of
:mod:`repro.models.zoo.calibration`, optionally perturbed by
multiplicative log-normal noise to model real measurement error (the
paper attributes residual unfilled bubbles to exactly this mismatch,
§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..models.zoo.calibration import (
    layer_backward_time_ms,
    layer_backward_weight_time_ms,
    layer_forward_time_ms,
)
from .records import LayerProfile, ProfileDB

#: Default batch-size grid.  Covers the paper's micro-batch range and the
#: partial-batch candidates {4, 8, 12, 16, 24, 32, 48, 64, 96} exactly, so
#: most queries are exact rather than interpolated.
DEFAULT_BATCH_GRID: tuple[float, ...] = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128)

#: Measurement repetitions per (layer, batch) point, used for the
#: §6.4 profiling wall-time estimate.
DEFAULT_REPETITIONS = 3


@dataclass(frozen=True)
class ProfilingReport:
    """Summary of one profiling run, for the §6.4 overhead experiment."""

    num_layers: int
    num_batch_sizes: int
    repetitions: int
    measurements: int
    wall_time_ms: float


class Profiler:
    """Profiles a :class:`ModelSpec` on a cluster.

    Parameters
    ----------
    cluster:
        The cluster whose device model defines layer times.
    batch_sizes:
        The measurement grid.
    noise_std:
        Standard deviation of multiplicative log-normal noise applied to
        each measurement (0 disables noise; ~0.02 models realistic
        run-to-run jitter).
    seed:
        RNG seed for the noise.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        batch_sizes: tuple[float, ...] = DEFAULT_BATCH_GRID,
        noise_std: float = 0.0,
        seed: int = 0,
    ):
        if not batch_sizes:
            raise ConfigurationError("batch_sizes must be non-empty")
        if any(b <= 0 for b in batch_sizes):
            raise ConfigurationError("batch sizes must be positive")
        if noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        self.cluster = cluster
        self.batch_sizes = tuple(sorted(set(float(b) for b in batch_sizes)))
        self.noise_std = float(noise_std)
        self._rng = np.random.default_rng(seed)

    # -- measurement -----------------------------------------------------------

    def _noise(self) -> float:
        # repro: allow[float-equality] 0.0 means "noise off", set not computed
        if self.noise_std == 0.0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise_std)))

    def profile(self, model: ModelSpec) -> ProfileDB:
        """Measure every layer of every component at every grid point."""
        device = self.cluster.device_spec
        profiles: list[LayerProfile] = []
        for comp in model.components.values():
            for idx, layer in enumerate(comp.layers):
                fwd = []
                bwd = []
                bwd_w = []
                for b in self.batch_sizes:
                    fwd.append(layer_forward_time_ms(layer, b, device) * self._noise())
                    if layer.trainable:
                        total = layer_backward_time_ms(layer, b, device)
                        sample = total * self._noise()
                        bwd.append(sample)
                        # The B/W split is a *ratio* read off the kernel
                        # timeline of the same measured run, so the one
                        # noise draw scales both components together (no
                        # extra draw: the RNG stream, and hence every
                        # legacy field, is unchanged).
                        w = layer_backward_weight_time_ms(layer, b, device)
                        bwd_w.append(sample * (w / total) if total > 0 else 0.0)
                    else:
                        bwd.append(0.0)
                        bwd_w.append(0.0)
                assert layer.activation_bytes_per_sample is not None
                profiles.append(
                    LayerProfile(
                        component=comp.name,
                        layer_index=idx,
                        layer_name=layer.name,
                        batches=self.batch_sizes,
                        fwd_ms=tuple(fwd),
                        bwd_ms=tuple(bwd),
                        param_bytes=layer.param_bytes,
                        grad_bytes=layer.grad_bytes,
                        output_bytes_per_sample=layer.output_bytes_per_sample,
                        activation_bytes_per_sample=layer.activation_bytes_per_sample,
                        trainable=layer.trainable,
                        bwd_w_ms=tuple(bwd_w),
                    )
                )
        return ProfileDB(profiles)

    # -- overhead accounting (§6.4) ----------------------------------------------

    def report(self, model: ModelSpec, repetitions: int = DEFAULT_REPETITIONS) -> ProfilingReport:
        """Estimate the wall-clock cost of a profiling run.

        Profiling runs in parallel on all devices (§6.4): each
        (layer, batch, repetition) measurement costs its own execution
        time, and measurements are distributed across the world.  The
        paper reports ~55 s for Stable Diffusion v2.1 on 16 GPUs at
        batch size 512.
        """
        if repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        device = self.cluster.device_spec
        total_ms = 0.0
        num_layers = 0
        for comp in model.components.values():
            for layer in comp.layers:
                num_layers += 1
                for b in self.batch_sizes:
                    t = layer_forward_time_ms(layer, b, device)
                    if layer.trainable:
                        t += layer_backward_time_ms(layer, b, device)
                    total_ms += t * repetitions
        measurements = num_layers * len(self.batch_sizes) * repetitions
        # Parallel over all devices, plus a fixed per-measurement harness
        # cost (CUDA sync, timer) of ~1 ms.
        wall = (total_ms + measurements * 1.0) / self.cluster.world_size
        return ProfilingReport(
            num_layers=num_layers,
            num_batch_sizes=len(self.batch_sizes),
            repetitions=repetitions,
            measurements=measurements,
            wall_time_ms=wall,
        )
