"""Parallel profiling (Fig. 7 step 1) and the profile database."""

from .profiler import DEFAULT_BATCH_GRID, Profiler, ProfilingReport
from .records import LayerProfile, ProfileDB

__all__ = [
    "DEFAULT_BATCH_GRID",
    "Profiler",
    "ProfilingReport",
    "LayerProfile",
    "ProfileDB",
]
