"""Headline performance numbers: ``repro bench``.

Measures the numbers the fast benchmark suite gates on — cold and warm
DP table builds under both engines (``array`` vs ``reference``) and one
planner sweep's wall-clock — and reports them as a table or as JSON
with a stable schema (``repro-bench/1``), so CI can archive the
artifact per commit and regressions show up as a diffable time series.

Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "best_of": 3,
      "builds": [
        {"dp": "het1f1b", "shape": "cdm-lsun down S=4 D=16",
         "engine": "array", "cold_s": 0.04, "warm_s": 0.0001},
        ...
      ],
      "sweep": {"model": "sd", "gpus": 8, "batch": 256.0,
                "wall_s": 1.9, "throughput": 123.4},
      "elastic": {"model": "sd", "machines": 2, "devices_per_machine": 3,
                  "cold_s": 0.8, "warm_s": 0.01}
    }

The ``elastic`` section times a replan after a machine leave/rejoin
round-trip: ``cold_s`` plans the final membership with fresh caches,
``warm_s`` replans it inside an :class:`~repro.core.ElasticSession`
whose caches survived the churn (the memo-hit path the >= 5x gate in
``benchmarks/test_elastic_replan.py`` enforces).

Fields are only ever added, never renamed, so downstream tooling can
pin on ``schema``.  Every timing is a best-of-N floor (single runs on
shared CI boxes sit well above their dispersion floor); ``warm_s``
times a second call against the same caches, i.e. the memo hit path.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from .cluster import single_node
from .cluster.collectives import CommCosts
from .core.caches import PlannerCaches
from .core.partition import PartitionContext, _chain_frontiers, _het_frontiers
from .core.partition_cdm import CDMPartitionContext, _cdm_frontiers
from .profiling import Profiler

__all__ = ["BENCH_SCHEMA", "run_bench", "format_bench", "write_json"]

BENCH_SCHEMA = "repro-bench/1"

#: the DP build engines compared by every ``builds`` row pair
ENGINES = ("array", "reference")


def _best_of(fn: Callable[[], Any], n: int) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cold_warm(build: Callable[[PlannerCaches], Any], n: int):
    """(cold, warm) floors: cold against fresh caches, warm against the
    caches the cold run filled (the table-memo hit path)."""
    cold = float("inf")
    warm = float("inf")
    for _ in range(n):
        caches = PlannerCaches()
        t0 = time.perf_counter()
        build(caches)
        cold = min(cold, time.perf_counter() - t0)
        t0 = time.perf_counter()
        build(caches)
        warm = min(warm, time.perf_counter() - t0)
    return cold, warm


def run_bench(*, best_of: int = 3, sweep: bool = True) -> dict:
    """Collect the headline numbers; see the module docstring's schema."""
    from .models import zoo

    cluster = single_node(8)
    lsun = zoo.cdm_lsun()
    profile = Profiler(cluster).profile(lsun)
    down, up = lsun.backbone_names
    L = profile.num_layers(down)
    ld, lu = L, profile.num_layers(up)

    def ctx(component, M=16):
        return PartitionContext(
            profile=profile,
            component=component,
            batch_per_group=256.0,
            num_micro_batches=M,
            p2p=CommCosts(bandwidth=1e9, latency=0.01),
            allreduce=CommCosts(bandwidth=5e8, latency=0.05),
        )

    bctx = ctx(down)
    cctx = CDMPartitionContext(down=ctx(down, M=8), up=ctx(up, M=8))

    cases = [
        (
            "chain",
            "cdm-lsun down S=4 r=2",
            lambda kern: lambda caches: _chain_frontiers(
                bctx, 2, L, 4, caches, dp_kernel=kern
            ),
        ),
        (
            "het1f1b",
            "cdm-lsun down S=4 D=16",
            lambda kern: lambda caches: _het_frontiers(
                bctx, L, 4, 16, caches, dp_kernel=kern
            ),
        ),
        (
            "cdm",
            "cdm-lsun S=4 r=2 cut=2 mf=8",
            lambda kern: lambda caches: _cdm_frontiers(
                cctx, 4, 2, caches, cut_step=2, max_frontier=8,
                ld=ld, lu=lu, dp_kernel=kern,
            ),
        ),
    ]

    builds = []
    for dp, shape, make in cases:
        for engine in ENGINES:
            cold, warm = _cold_warm(make(engine), best_of)
            builds.append(
                {
                    "dp": dp,
                    "shape": shape,
                    "engine": engine,
                    "cold_s": cold,
                    "warm_s": warm,
                }
            )

    report: dict = {
        "schema": BENCH_SCHEMA,
        "best_of": best_of,
        "builds": builds,
    }
    report["elastic"] = _bench_elastic(best_of)

    if sweep:
        sd = zoo.stable_diffusion_v2_1(self_conditioning=False)
        sd_profile = Profiler(cluster).profile(sd)
        from .core import DiffusionPipePlanner

        wall = float("inf")
        ev = None
        for _ in range(best_of):
            planner = DiffusionPipePlanner(
                sd, cluster, sd_profile, caches=PlannerCaches()
            )
            t0 = time.perf_counter()
            ev = planner.plan(256.0)
            wall = min(wall, time.perf_counter() - t0)
        report["sweep"] = {
            "model": "sd",
            "gpus": cluster.world_size,
            "batch": 256.0,
            "wall_s": wall,
            "throughput": ev.plan.throughput,
        }
    return report


def _bench_elastic(best_of: int) -> dict:
    """Cold vs warm replan latency across a leave/rejoin round-trip.

    Mirrors the elastic benchmark's scenario on the same toy cluster
    (two 3-device machines) so the CI artifact tracks the number the
    >= 5x gate enforces.
    """
    from .cluster.topology import ClusterSpec
    from .core import (
        DiffusionPipePlanner,
        ElasticEvent,
        ElasticSession,
        PlannerOptions,
    )
    from .models import zoo

    cluster = ClusterSpec(num_machines=2, devices_per_machine=3)
    model = zoo.stable_diffusion_v2_1()
    profile = Profiler(cluster).profile(model)
    options = PlannerOptions(
        max_stages=4,
        micro_batch_counts=(1, 2, 3, 4, 6, 8),
        group_sizes=(3,),
        heterogeneous_replication=True,
        enable_bubble_filling=False,
    )
    batch_per_device = 16.0

    cold = _best_of(
        lambda: DiffusionPipePlanner(
            model, cluster, profile, options=options, caches=PlannerCaches()
        ).plan(batch_per_device * cluster.world_size),
        best_of,
    )

    session = ElasticSession(
        model,
        cluster,
        batch_per_device=batch_per_device,
        profile=profile,
        options=options,
        caches=PlannerCaches(),
    )
    session.replan()
    session.apply(ElasticEvent("leave"))
    session.replan()
    session.apply(ElasticEvent("join"))
    warm = _best_of(session.replan, best_of)

    return {
        "model": "sd",
        "machines": cluster.num_machines,
        "devices_per_machine": cluster.devices_per_machine,
        "cold_s": cold,
        "warm_s": warm,
    }


def format_bench(report: dict) -> str:
    """Human-readable rendering of a :func:`run_bench` report."""
    from .harness import format_table

    rows = []
    for b in report["builds"]:
        rows.append(
            [
                b["dp"],
                b["shape"],
                b["engine"],
                f"{b['cold_s'] * 1e3:.1f}",
                f"{b['warm_s'] * 1e3:.3f}",
            ]
        )
    out = format_table(
        ["dp", "shape", "engine", "cold ms", "warm ms"],
        rows,
        title=f"table builds (best of {report['best_of']})",
    )
    elastic = report.get("elastic")
    if elastic:
        out += (
            f"\nelastic replan: {elastic['model']} on "
            f"{elastic['machines']}x{elastic['devices_per_machine']} GPUs "
            f"after leave/rejoin — {elastic['cold_s'] * 1e3:.0f} ms cold, "
            f"{elastic['warm_s'] * 1e3:.1f} ms warm"
        )
    sweep = report.get("sweep")
    if sweep:
        out += (
            f"\nsweep: {sweep['model']} @ batch {sweep['batch']:g} on "
            f"{sweep['gpus']} GPUs — {sweep['wall_s'] * 1e3:.0f} ms cold, "
            f"{sweep['throughput']:.1f} samples/s"
        )
    return out


def write_json(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
