"""Self-conditioning training in the numeric engine (§4.3, Chen et al.).

Self-conditioning runs an extra, gradient-free forward pass of the
backbone; its output is fed back as an additional conditioning input to
the main forward pass.  Numerically:

    c        = f_theta([x, 0])          # no-grad estimate
    pred     = f_theta([x, stop_grad(c)])
    loss     = MSE(pred, target)

Only the second pass contributes gradients — exactly how the paper's
pipeline schedules treat it (the SC wave stores no activations,
Fig. 10).  The trainer verifies that the pipelined variant (SC wave
through the stages, feedback to stage 0, then the main 1F1B pass)
matches single-device self-conditioned training bit for bit.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from .executor import clone_chain, split_micro_batches, _scale_micro_grads
from .optimizer import SGD
from .tensor_nn import Array, Chain, add_grads, mse_loss


def _concat_condition(x: Array, cond: Array) -> Array:
    if x.shape[0] != cond.shape[0]:
        raise EngineError("conditioning batch mismatch")
    return np.concatenate([x, cond], axis=1)


class SelfConditionedTrainer:
    """Single-device self-conditioned training (the reference)."""

    def __init__(self, chain: Chain, d_out: int, optimizer=None):
        self.chain = chain
        self.d_out = d_out
        self.optimizer = optimizer or SGD(lr=0.05)

    def _forward_sc(self, x: Array) -> Array:
        zero = np.zeros((x.shape[0], self.d_out))
        est, _ = self.chain.forward(_concat_condition(x, zero))
        return est

    def compute_grads(self, x: Array, y: Array, active: bool = True):
        cond = self._forward_sc(x) if active else np.zeros((x.shape[0], self.d_out))
        out, caches = self.chain.forward(_concat_condition(x, cond))
        loss, dy = mse_loss(out, y)
        _, grads = self.chain.backward(dy, caches)
        return loss, grads

    def step(self, x: Array, y: Array, active: bool = True) -> float:
        loss, grads = self.compute_grads(x, y, active)
        self.optimizer.step(self.chain, grads)
        return loss


class SelfConditionedPipelineTrainer:
    """Pipeline-parallel self-conditioned training.

    Per micro-batch: the SC wave traverses all stages without storing
    caches, the last stage's output travels back to stage 0 (the
    feedback ``Cf`` of Fig. 10), then the main forward+backward wave
    runs normally with gradient accumulation.
    """

    def __init__(
        self,
        chain: Chain,
        boundaries,
        d_out: int,
        *,
        num_micro: int = 2,
        optimizer_factory=None,
    ):
        cuts = [0, *boundaries, len(chain.layers)]
        if sorted(set(cuts)) != cuts:
            raise EngineError(f"invalid stage boundaries {boundaries}")
        self.stages = [chain.slice(cuts[i], cuts[i + 1]) for i in range(len(cuts) - 1)]
        self.d_out = d_out
        self.num_micro = num_micro
        factory = optimizer_factory or (lambda: SGD(lr=0.05))
        self.optimizers = [factory() for _ in self.stages]

    def _wave(self, x: Array, store: bool):
        """Run one forward wave; return (output, caches or None)."""
        caches = [] if store else None
        act = x
        for stage in self.stages:
            act, c = stage.forward(act)
            if caches is not None:
                caches.append(c)
        return act, caches

    def step(self, x: Array, y: Array, active: bool = True) -> float:
        micro = split_micro_batches(x, y, self.num_micro)
        grads = [dict() for _ in self.stages]
        losses = []
        for mx, my in micro:
            if active:
                zero = np.zeros((mx.shape[0], self.d_out))
                cond, _ = self._wave(_concat_condition(mx, zero), store=False)
            else:
                cond = np.zeros((mx.shape[0], self.d_out))
            out, caches = self._wave(_concat_condition(mx, cond), store=True)
            loss, dy = mse_loss(out, my)
            losses.append(loss)
            assert caches is not None
            for s in range(len(self.stages) - 1, -1, -1):
                dy, g = self.stages[s].backward(dy, caches[s])
                add_grads(grads[s], g)
        for stage, opt, g in zip(self.stages, self.optimizers, grads):
            opt.step(stage, _scale_micro_grads(g, self.num_micro))
        return float(np.mean(losses))

    def param_vector(self) -> Array:
        vecs = [s.param_vector() for s in self.stages]
        return np.concatenate([v for v in vecs if v.size])


def self_conditioning_equivalence(
    d_in: int = 4,
    d_out: int = 3,
    steps: int = 4,
    batch: int = 8,
    num_micro: int = 2,
    seed: int = 0,
) -> float:
    """Max parameter deviation between single-device and pipelined
    self-conditioned training (0 up to float rounding)."""
    from .tensor_nn import mlp_chain

    rng = np.random.default_rng(seed)
    # The backbone consumes [x, condition]: input dim = d_in + d_out.
    chain = mlp_chain("sc", [d_in + d_out, 12, d_out], rng)
    x = rng.normal(size=(batch, d_in))
    y = rng.normal(size=(batch, d_out))
    single = SelfConditionedTrainer(clone_chain(chain), d_out, optimizer=SGD(lr=0.05))
    pipe = SelfConditionedPipelineTrainer(
        clone_chain(chain), [2], d_out, num_micro=num_micro,
        optimizer_factory=lambda: SGD(lr=0.05),
    )
    for k in range(steps):
        active = k % 2 == 0  # SC activates with probability p; alternate
        single.step(x, y, active=active)
        pipe.step(x, y, active=active)
    a = single.chain.param_vector()
    b = pipe.param_vector()
    if a.shape != b.shape:
        raise EngineError("parameter shape mismatch")
    return float(np.max(np.abs(a - b))) if a.size else 0.0
