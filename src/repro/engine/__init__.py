"""Numeric back-end: NumPy layers, pipeline executors, equivalence checks."""

from .comm_sim import ChannelSet, allreduce_sum
from .equivalence import (
    CrossIterationHarness,
    compare_dp_pipeline_to_dp,
    compare_pipeline_to_single,
    cross_iteration_equivalence,
    max_param_diff,
    params_allclose,
)
from .executor import (
    DataParallelPipelineTrainer,
    InstructionEngine,
    PipelineTrainer,
    SingleDeviceTrainer,
    clone_chain,
    split_micro_batches,
)
from .optimizer import SGD, Adam
from .self_conditioning import (
    SelfConditionedPipelineTrainer,
    SelfConditionedTrainer,
    self_conditioning_equivalence,
)
from .tensor_nn import (
    Chain,
    Dense,
    Layer,
    ReLU,
    Tanh,
    add_grads,
    frozen_encoder,
    mlp_chain,
    mse_loss,
)

__all__ = [
    "ChannelSet",
    "allreduce_sum",
    "CrossIterationHarness",
    "compare_dp_pipeline_to_dp",
    "compare_pipeline_to_single",
    "cross_iteration_equivalence",
    "max_param_diff",
    "params_allclose",
    "DataParallelPipelineTrainer",
    "InstructionEngine",
    "PipelineTrainer",
    "SingleDeviceTrainer",
    "clone_chain",
    "split_micro_batches",
    "SGD",
    "Adam",
    "SelfConditionedPipelineTrainer",
    "SelfConditionedTrainer",
    "self_conditioning_equivalence",
    "Chain",
    "Dense",
    "Layer",
    "ReLU",
    "Tanh",
    "add_grads",
    "frozen_encoder",
    "mlp_chain",
    "mse_loss",
]
