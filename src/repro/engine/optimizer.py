"""Optimisers for the numeric execution engine."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import EngineError
from .tensor_nn import Array, Chain


class SGD:
    """Plain SGD with optional momentum, applied to a :class:`Chain`."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.0):
        if lr <= 0:
            raise EngineError("learning rate must be positive")
        if not (0.0 <= momentum < 1.0):
            raise EngineError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple[str, str], Array] = {}

    def step(self, chain: Chain, grads: Mapping[str, Mapping[str, Array]]) -> None:
        params = chain.named_params()
        for lname, g in grads.items():
            if lname not in params:
                raise EngineError(f"gradient for unknown layer {lname}")
            for k, dv in g.items():
                key = (lname, k)
                if self.momentum > 0.0:
                    v = self._velocity.get(key)
                    v = dv if v is None else self.momentum * v + dv
                    self._velocity[key] = v
                    update = v
                else:
                    update = dv
                params[lname][k] -= self.lr * update


class Adam:
    """Adam (Kingma & Ba) on a :class:`Chain`."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise EngineError("learning rate must be positive")
        self.lr, self.beta1, self.beta2, self.eps = lr, beta1, beta2, eps
        self._m: dict[tuple[str, str], Array] = {}
        self._v: dict[tuple[str, str], Array] = {}
        self._t = 0

    def step(self, chain: Chain, grads: Mapping[str, Mapping[str, Array]]) -> None:
        self._t += 1
        params = chain.named_params()
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for lname, g in grads.items():
            if lname not in params:
                raise EngineError(f"gradient for unknown layer {lname}")
            for k, dv in g.items():
                key = (lname, k)
                m = self._m.get(key, np.zeros_like(dv))
                v = self._v.get(key, np.zeros_like(dv))
                m = self.beta1 * m + (1 - self.beta1) * dv
                v = self.beta2 * v + (1 - self.beta2) * dv**2
                self._m[key], self._v[key] = m, v
                mh = m / b1t
                vh = v / b2t
                params[lname][k] -= self.lr * mh / (np.sqrt(vh) + self.eps)
