"""A minimal NumPy neural-network library with explicit backward passes.

This is the numeric substrate of the back-end execution engine: real
tensors, real gradients, no framework.  Layers are *functional* — the
forward pass returns ``(output, cache)`` and the backward pass consumes
the cache — so a pipeline stage can keep several micro-batches in
flight, exactly like activation stashing in a real pipeline engine.

Float64 is used throughout so that pipeline-vs-data-parallel gradient
comparisons are exact up to benign summation reordering.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import EngineError

Array = np.ndarray


class Layer:
    """Base layer: parameters + functional forward/backward."""

    def __init__(self, name: str):
        self.name = name
        self.params: dict[str, Array] = {}
        self.trainable = True

    def forward(self, x: Array) -> tuple[Array, object]:
        raise NotImplementedError

    def backward(self, dy: Array, cache: object) -> tuple[Array, dict[str, Array]]:
        """Return (input gradient, parameter gradients)."""
        raise NotImplementedError

    def param_vector(self) -> Array:
        """Flat view of all parameters (for equivalence checks)."""
        if not self.params:
            return np.zeros(0)
        return np.concatenate([self.params[k].ravel() for k in sorted(self.params)])


class Dense(Layer):
    """Affine layer ``y = x W + b``."""

    def __init__(self, name: str, d_in: int, d_out: int, rng: np.random.Generator):
        super().__init__(name)
        scale = 1.0 / np.sqrt(d_in)
        self.params = {
            "W": rng.normal(0.0, scale, size=(d_in, d_out)),
            "b": np.zeros(d_out),
        }

    def forward(self, x: Array) -> tuple[Array, object]:
        if x.ndim != 2 or x.shape[1] != self.params["W"].shape[0]:
            raise EngineError(
                f"{self.name}: bad input shape {x.shape} for W "
                f"{self.params['W'].shape}"
            )
        return x @ self.params["W"] + self.params["b"], x

    def backward(self, dy: Array, cache: object) -> tuple[Array, dict[str, Array]]:
        x = cache
        grads = {"W": x.T @ dy, "b": dy.sum(axis=0)}
        return dy @ self.params["W"].T, grads


class ReLU(Layer):
    """Elementwise rectifier (parameter-free)."""

    def __init__(self, name: str):
        super().__init__(name)

    def forward(self, x: Array) -> tuple[Array, object]:
        mask = x > 0
        return x * mask, mask

    def backward(self, dy: Array, cache: object) -> tuple[Array, dict[str, Array]]:
        return dy * cache, {}


class Tanh(Layer):
    """Elementwise tanh (parameter-free)."""

    def __init__(self, name: str):
        super().__init__(name)

    def forward(self, x: Array) -> tuple[Array, object]:
        y = np.tanh(x)
        return y, y

    def backward(self, dy: Array, cache: object) -> tuple[Array, dict[str, Array]]:
        return dy * (1.0 - cache**2), {}


class Chain:
    """A sequential stack of layers with functional fwd/bwd."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise EngineError("empty chain")
        self.layers = list(layers)

    def forward(self, x: Array) -> tuple[Array, list[object]]:
        caches = []
        for layer in self.layers:
            x, c = layer.forward(x)
            caches.append(c)
        return x, caches

    def backward(
        self, dy: Array, caches: Sequence[object]
    ) -> tuple[Array, dict[str, dict[str, Array]]]:
        if len(caches) != len(self.layers):
            raise EngineError("cache/layer count mismatch")
        grads: dict[str, dict[str, Array]] = {}
        for layer, cache in zip(reversed(self.layers), reversed(list(caches))):
            dy, g = layer.backward(dy, cache)
            if g:
                grads[layer.name] = g
        return dy, grads

    # -- slicing for pipeline stages ---------------------------------------------

    def slice(self, lo: int, hi: int) -> "Chain":
        """The sub-chain of layers ``[lo, hi)`` (shared parameters)."""
        if not (0 <= lo < hi <= len(self.layers)):
            raise EngineError(f"invalid chain slice [{lo}, {hi})")
        return Chain(self.layers[lo:hi])

    def param_vector(self) -> Array:
        vecs = [l.param_vector() for l in self.layers]
        vecs = [v for v in vecs if v.size]
        return np.concatenate(vecs) if vecs else np.zeros(0)

    def named_params(self) -> dict[str, dict[str, Array]]:
        return {l.name: l.params for l in self.layers if l.params}


def mse_loss(pred: Array, target: Array) -> tuple[float, Array]:
    """Mean-squared-error loss and its gradient w.r.t. ``pred``.

    Normalised by the *total* element count, so micro-batch gradients
    accumulated with sample-count weights reproduce the full-batch
    gradient exactly.
    """
    if pred.shape != target.shape:
        raise EngineError(f"loss shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    return loss, 2.0 * diff / diff.size


def mlp_chain(
    name: str,
    dims: Sequence[int],
    rng: np.random.Generator,
    activation: str = "tanh",
) -> Chain:
    """A small MLP: Dense/activation pairs along ``dims``."""
    if len(dims) < 2:
        raise EngineError("mlp needs at least input and output dims")
    act_cls = {"tanh": Tanh, "relu": ReLU}.get(activation)
    if act_cls is None:
        raise EngineError(f"unknown activation {activation!r}")
    layers: list[Layer] = []
    for i in range(len(dims) - 1):
        layers.append(Dense(f"{name}_fc{i}", dims[i], dims[i + 1], rng))
        if i < len(dims) - 2:
            layers.append(act_cls(f"{name}_act{i}"))
    return Chain(layers)


def frozen_encoder(
    name: str, d_in: int, d_out: int, rng: np.random.Generator
) -> Chain:
    """A frozen (non-trainable) random projection encoder.

    Stands in for the diffusion model's text/image encoders: it
    transforms raw inputs into conditioning features, and its output for
    iteration *k+1* can be computed during iteration *k* (cross-iteration
    pipelining) because its parameters never change.
    """
    enc = Dense(f"{name}_proj", d_in, d_out, rng)
    enc.trainable = False
    act = Tanh(f"{name}_tanh")
    act.trainable = False
    chain = Chain([enc, act])
    return chain


def add_grads(
    into: dict[str, dict[str, Array]], grads: Mapping[str, Mapping[str, Array]]
) -> None:
    """Accumulate parameter gradients (micro-batch accumulation)."""
    for lname, g in grads.items():
        slot = into.setdefault(lname, {})
        for k, v in g.items():
            if k in slot:
                slot[k] = slot[k] + v
            else:
                slot[k] = v.copy()
