"""Numerical equivalence checks (the §3.2 claim).

"The cross-iteration pipeline is mathematically equivalent to data
parallel and synchronous pipeline training."  These helpers verify the
claim on real tensors: pipeline gradients equal single-device gradients,
data-parallel pipeline updates equal pure data-parallel updates, and
computing the frozen encoder's outputs one iteration early (the
cross-iteration trick) changes nothing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import EngineError
from .executor import (
    DataParallelPipelineTrainer,
    PipelineTrainer,
    SingleDeviceTrainer,
    clone_chain,
)
from .optimizer import SGD
from .tensor_nn import Array, Chain, mlp_chain, frozen_encoder


def params_allclose(a: Array, b: Array, atol: float = 1e-9) -> bool:
    """Whether two flat parameter vectors coincide."""
    if a.shape != b.shape:
        return False
    return bool(np.allclose(a, b, atol=atol, rtol=0.0))


def max_param_diff(a: Array, b: Array) -> float:
    """Largest absolute deviation between two parameter vectors."""
    if a.shape != b.shape:
        raise EngineError("parameter vectors have different sizes")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def compare_pipeline_to_single(
    chain: Chain,
    boundaries: Sequence[int],
    x: Array,
    y: Array,
    *,
    num_micro: int = 2,
    steps: int = 3,
    lr: float = 0.05,
) -> float:
    """Train a pipeline and a single device side by side; return the max
    parameter deviation after ``steps`` updates (0 up to float error)."""
    single = SingleDeviceTrainer(clone_chain(chain), optimizer=SGD(lr=lr))
    pipe = PipelineTrainer(
        clone_chain(chain),
        boundaries,
        num_micro=num_micro,
        optimizer_factory=lambda: SGD(lr=lr),
    )
    for _ in range(steps):
        single.step(x, y)
        pipe.step(x, y)
    return max_param_diff(single.chain.param_vector(), pipe.param_vector())


def compare_dp_pipeline_to_dp(
    chain: Chain,
    boundaries: Sequence[int],
    x: Array,
    y: Array,
    *,
    num_micro: int = 2,
    replicas: int = 2,
    steps: int = 2,
    lr: float = 0.05,
) -> float:
    """Mixed pipeline+data parallelism vs pure single-device training on
    the same global batch; returns max parameter deviation."""
    single = SingleDeviceTrainer(clone_chain(chain), optimizer=SGD(lr=lr))
    mixed = DataParallelPipelineTrainer(
        clone_chain(chain),
        boundaries,
        num_micro=num_micro,
        replicas=replicas,
        optimizer_factory=lambda: SGD(lr=lr),
    )
    for _ in range(steps):
        single.step(x, y)
        mixed.step(x, y)
    return max_param_diff(single.chain.param_vector(), mixed.param_vector())


class CrossIterationHarness:
    """Trains a backbone whose inputs come from a frozen encoder, with
    the encoder's outputs for iteration k+1 computed during iteration k
    (the §3.2 overlap).  Because the encoder is frozen, precomputation
    is exact — which this harness demonstrates against an eager
    baseline."""

    def __init__(
        self,
        encoder: Chain,
        backbone: Chain,
        *,
        lr: float = 0.05,
    ):
        self.encoder = encoder
        self.trainer = SingleDeviceTrainer(backbone, optimizer=SGD(lr=lr))
        self._prefetched: Array | None = None
        self._prefetched_target: Array | None = None

    def encode(self, x: Array) -> Array:
        out, _ = self.encoder.forward(x)
        return out

    def prefetch(self, x_next: Array, y_next: Array) -> None:
        """Run the NT part of the *next* iteration (bubble filling slot)."""
        self._prefetched = self.encode(x_next)
        self._prefetched_target = y_next

    def train_on_prefetched(self) -> float:
        if self._prefetched is None or self._prefetched_target is None:
            raise EngineError("no prefetched features; call prefetch() first")
        feats, target = self._prefetched, self._prefetched_target
        self._prefetched = None
        self._prefetched_target = None
        return self.trainer.step(feats, target)


def cross_iteration_equivalence(
    d_in: int = 6,
    d_feat: int = 5,
    d_out: int = 3,
    iterations: int = 4,
    batch: int = 8,
    seed: int = 0,
) -> float:
    """Train with cross-iteration prefetching vs eagerly; return the max
    parameter deviation (exactly 0: the schedules compute identical
    math in a different order)."""
    rng = np.random.default_rng(seed)
    enc = frozen_encoder("enc", d_in, d_feat, rng)
    backbone = mlp_chain("bb", [d_feat, 8, d_out], rng)

    data = [
        (rng.normal(size=(batch, d_in)), rng.normal(size=(batch, d_out)))
        for _ in range(iterations)
    ]

    # Eager: encoder runs at the start of its own iteration.
    eager = SingleDeviceTrainer(clone_chain(backbone), optimizer=SGD(lr=0.05))
    enc_eager = clone_chain(enc)
    for x, y in data:
        feats, _ = enc_eager.forward(x)
        eager.step(feats, y)

    # Cross-iteration: iteration k prefetches iteration k+1's features.
    harness = CrossIterationHarness(clone_chain(enc), clone_chain(backbone))
    harness.prefetch(*data[0])          # warm-up (only the first iteration
    for k in range(iterations):          # runs the NT part eagerly, §3.2)
        if k + 1 < iterations:
            # In the real system this computation hides in iteration k's
            # bubbles; numerically only its position in the sequence of
            # updates matters — and the encoder is frozen, so none.
            next_x, next_y = data[k + 1]
            feats_next = harness.encode(next_x)
        harness.train_on_prefetched()
        if k + 1 < iterations:
            harness._prefetched = feats_next
            harness._prefetched_target = data[k + 1][1]

    return max_param_diff(
        eager.chain.param_vector(), harness.trainer.chain.param_vector()
    )
