"""In-process communication channels standing in for NCCL.

The executor runs all "devices" in one process; sends and receives go
through per-directed-pair FIFO queues.  A receive from an empty channel
is an error — the instruction schedules we execute are deterministic, so
data must always be present when a RECV runs (if it is not, the schedule
is wrong, which is exactly what the error surfaces).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

import numpy as np

from ..errors import EngineError


class ChannelSet:
    """FIFO message channels keyed by (src, dst, tag)."""

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int, Hashable], deque] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, src: int, dst: int, payload: np.ndarray, tag: Hashable = None) -> None:
        """Enqueue a tensor from ``src`` to ``dst``."""
        if src == dst:
            raise EngineError("send to self is a no-op bug")
        q = self._queues.setdefault((src, dst, tag), deque())
        q.append(payload)
        self.messages_sent += 1
        self.bytes_sent += payload.nbytes

    def recv(self, src: int, dst: int, tag: Hashable = None) -> np.ndarray:
        """Dequeue the next tensor sent from ``src`` to ``dst``."""
        q = self._queues.get((src, dst, tag))
        if not q:
            raise EngineError(
                f"recv on empty channel {src}->{dst} tag={tag!r}: "
                "the instruction schedule violates a data dependency"
            )
        return q.popleft()

    def pending(self) -> int:
        """Number of undelivered messages (0 after a clean iteration)."""
        return sum(len(q) for q in self._queues.values())


def allreduce_sum(tensors: list[np.ndarray]) -> list[np.ndarray]:
    """Sum-all-reduce across replicas (deterministic, in-process)."""
    if not tensors:
        raise EngineError("allreduce over empty group")
    total = tensors[0].copy()
    for t in tensors[1:]:
        if t.shape != total.shape:
            raise EngineError("allreduce shape mismatch")
        total += t
    return [total.copy() for _ in tensors]
