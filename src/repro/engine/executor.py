"""The back-end execution engine, numerically.

Three executors, all operating on real NumPy tensors:

* :class:`SingleDeviceTrainer` — the reference: full model, full batch.
* :class:`PipelineTrainer` — 1F1B/GPipe pipeline training of a chain cut
  into stages, with micro-batch gradient accumulation and optional data
  parallelism; verifies the §3.2 claim that pipeline training is
  mathematically equivalent to data-parallel training.
* :class:`InstructionEngine` — executes the per-device instruction
  streams emitted by :func:`repro.core.instructions.lower_timeline`,
  with blocking receives over simulated channels; a deadlock here means
  the generated schedule violates a data dependency.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import EngineError
from ..core.instructions import Instruction, Op
from .comm_sim import ChannelSet, allreduce_sum
from .optimizer import SGD
from .tensor_nn import Array, Chain, add_grads, mse_loss


def clone_chain(chain: Chain) -> Chain:
    """A deep copy with independent parameters."""
    return copy.deepcopy(chain)


def split_micro_batches(x: Array, y: Array, num_micro: int) -> list[tuple[Array, Array]]:
    """Split a batch into equal micro-batches."""
    if x.shape[0] != y.shape[0]:
        raise EngineError("inputs/targets batch mismatch")
    if x.shape[0] % num_micro != 0:
        raise EngineError(
            f"batch {x.shape[0]} not divisible into {num_micro} micro-batches"
        )
    xs = np.split(x, num_micro)
    ys = np.split(y, num_micro)
    return list(zip(xs, ys))


def _scale_micro_grads(
    grads: dict[str, dict[str, Array]], num_micro: int
) -> dict[str, dict[str, Array]]:
    """MSE normalises per micro-batch; accumulating M micro-batches of
    equal size then dividing by M reproduces the full-batch gradient."""
    return {
        ln: {k: v / num_micro for k, v in g.items()} for ln, g in grads.items()
    }


class SingleDeviceTrainer:
    """Reference trainer: whole chain, whole batch, one device."""

    def __init__(self, chain: Chain, optimizer=None, loss=mse_loss):
        self.chain = chain
        self.optimizer = optimizer or SGD(lr=0.05)
        self.loss = loss

    def compute_grads(self, x: Array, y: Array) -> tuple[float, dict]:
        out, caches = self.chain.forward(x)
        loss, dy = self.loss(out, y)
        _, grads = self.chain.backward(dy, caches)
        return loss, grads

    def step(self, x: Array, y: Array) -> float:
        loss, grads = self.compute_grads(x, y)
        self.optimizer.step(self.chain, grads)
        return loss


@dataclass
class _StageState:
    chain: Chain
    caches: dict[int, object] = field(default_factory=dict)   # mb -> caches
    outputs: dict[int, Array] = field(default_factory=dict)   # mb -> output
    grads: dict[str, dict[str, Array]] = field(default_factory=dict)


class PipelineTrainer:
    """1F1B / GPipe pipeline training of a chain cut at ``boundaries``.

    The numeric result is schedule-independent (it only reorders
    commutative gradient accumulation), so a simple wavefront loop
    suffices; the *scheduling* realism lives in the simulator and the
    :class:`InstructionEngine`.
    """

    def __init__(
        self,
        chain: Chain,
        boundaries: Sequence[int],
        *,
        num_micro: int = 2,
        optimizer_factory: Callable[[], object] | None = None,
        loss=mse_loss,
    ):
        cuts = [0, *boundaries, len(chain.layers)]
        if sorted(set(cuts)) != cuts:
            raise EngineError(f"invalid stage boundaries {boundaries}")
        self.stages = [
            _StageState(chain=chain.slice(cuts[i], cuts[i + 1]))
            for i in range(len(cuts) - 1)
        ]
        self.num_micro = num_micro
        factory = optimizer_factory or (lambda: SGD(lr=0.05))
        self.optimizers = [factory() for _ in self.stages]
        self.loss = loss
        self.channels = ChannelSet()
        self.last_losses: list[float] = []

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    # -- one training iteration ---------------------------------------------------

    def compute_grads(self, x: Array, y: Array) -> tuple[float, list[dict]]:
        """Forward/backward all micro-batches; return (mean loss,
        per-stage accumulated gradients), without applying updates."""
        micro = split_micro_batches(x, y, self.num_micro)
        S = self.num_stages
        for st in self.stages:
            st.caches.clear()
            st.outputs.clear()
            st.grads = {}

        losses = []
        # Forward wavefront with explicit channel transfers.
        for m, (mx, _) in enumerate(micro):
            act = mx
            for s, st in enumerate(self.stages):
                if s > 0:
                    act = self.channels.recv(s - 1, s, tag=("act", m))
                out, caches = st.chain.forward(act)
                st.caches[m] = caches
                st.outputs[m] = out
                if s < S - 1:
                    self.channels.send(s, s + 1, out, tag=("act", m))
        # Backward wavefront.
        for m, (_, my) in enumerate(micro):
            loss, dy = self.loss(self.stages[-1].outputs[m], my)
            losses.append(loss)
            for s in range(S - 1, -1, -1):
                st = self.stages[s]
                if s < S - 1:
                    dy = self.channels.recv(s + 1, s, tag=("grad", m))
                dy, grads = st.chain.backward(dy, st.caches.pop(m))
                add_grads(st.grads, grads)
                if s > 0:
                    self.channels.send(s, s - 1, dy, tag=("grad", m))
        if self.channels.pending():
            raise EngineError("undelivered messages after iteration")
        per_stage = [
            _scale_micro_grads(st.grads, self.num_micro) for st in self.stages
        ]
        self.last_losses = losses
        return float(np.mean(losses)), per_stage

    def step(self, x: Array, y: Array) -> float:
        loss, per_stage = self.compute_grads(x, y)
        for st, opt, grads in zip(self.stages, self.optimizers, per_stage):
            opt.step(st.chain, grads)
        return loss

    def param_vector(self) -> Array:
        vecs = [st.chain.param_vector() for st in self.stages]
        return np.concatenate([v for v in vecs if v.size])


class DataParallelPipelineTrainer:
    """Several pipeline replicas with gradient all-reduce between them.

    Replica ``i`` processes the ``i``-th shard of the batch; gradients
    average across replicas before each stage's optimiser step — the
    mixed pipeline+data parallelism of Fig. 8.
    """

    def __init__(
        self,
        chain: Chain,
        boundaries: Sequence[int],
        *,
        num_micro: int = 2,
        replicas: int = 2,
        optimizer_factory: Callable[[], object] | None = None,
    ):
        if replicas <= 0:
            raise EngineError("replicas must be positive")
        self.replicas = [
            PipelineTrainer(
                clone_chain(chain),
                boundaries,
                num_micro=num_micro,
                optimizer_factory=optimizer_factory,
            )
            for _ in range(replicas)
        ]
        # All replicas start from identical parameters.
        ref = self.replicas[0]
        for rep in self.replicas[1:]:
            for st_ref, st in zip(ref.stages, rep.stages):
                for l_ref, l in zip(st_ref.chain.layers, st.chain.layers):
                    for k in l.params:
                        l.params[k] = l_ref.params[k].copy()

    def step(self, x: Array, y: Array) -> float:
        n = len(self.replicas)
        if x.shape[0] % n != 0:
            raise EngineError(f"batch {x.shape[0]} not divisible by {n} replicas")
        xs = np.split(x, n)
        ys = np.split(y, n)
        losses = []
        all_grads = []
        for rep, rx, ry in zip(self.replicas, xs, ys):
            loss, grads = rep.compute_grads(rx, ry)
            losses.append(loss)
            all_grads.append(grads)
        # All-reduce (average) per stage/layer/param across replicas.
        for s in range(self.replicas[0].num_stages):
            layer_names = all_grads[0][s].keys()
            for ln in layer_names:
                for k in all_grads[0][s][ln]:
                    reduced = allreduce_sum(
                        [g[s][ln][k] for g in all_grads]
                    )
                    for g, r in zip(all_grads, reduced):
                        g[s][ln][k] = r / n
        for rep, grads in zip(self.replicas, all_grads):
            for st, opt, g in zip(rep.stages, rep.optimizers, grads):
                opt.step(st.chain, g)
        return float(np.mean(losses))

    def param_vector(self) -> Array:
        return self.replicas[0].param_vector()


class InstructionEngine:
    """Executes lowered instruction streams with blocking receives.

    The engine round-robins over devices, executing each device's next
    instruction when its operands are available; a full sweep with no
    progress is a deadlock (an invalid schedule).  This validates that
    the planner's emitted programs (Fig. 7 step 6) are executable.
    """

    def __init__(
        self,
        stage_chains: Sequence[Chain],
        streams: Mapping[int, Sequence[Instruction]],
        *,
        loss=mse_loss,
        optimizer_factory: Callable[[], object] | None = None,
    ):
        self.stages = [_StageState(chain=c) for c in stage_chains]
        self.streams = {d: list(instrs) for d, instrs in streams.items()}
        self.loss = loss
        factory = optimizer_factory or (lambda: SGD(lr=0.05))
        self.optimizers = [factory() for _ in self.stages]
        self.channels = ChannelSet()
        self.losses: list[float] = []

    def run(
        self,
        micro_inputs: Mapping[int, Array],
        micro_targets: Mapping[int, Array],
    ) -> float:
        """Execute all streams on a micro-batch set; return mean loss."""
        cursors = {d: 0 for d in self.streams}
        pending_recv: dict[tuple[int, int, str], Array] = {}
        num_micro = len(micro_inputs)

        def try_execute(dev: int) -> bool:
            i = cursors[dev]
            stream = self.streams[dev]
            if i >= len(stream):
                return False
            instr = stream[i]
            ok = self._execute(
                instr, micro_inputs, micro_targets, pending_recv, num_micro
            )
            if ok:
                cursors[dev] += 1
            return ok

        total = sum(len(s) for s in self.streams.values())
        done = 0
        while done < total:
            progressed = False
            for dev in sorted(self.streams):
                while try_execute(dev):
                    done += 1
                    progressed = True
            if not progressed:
                stuck = {
                    d: self.streams[d][cursors[d]].describe()
                    for d in self.streams
                    if cursors[d] < len(self.streams[d])
                }
                raise EngineError(f"instruction deadlock at {stuck}")
        if self.channels.pending():
            raise EngineError("undelivered messages after program")
        return float(np.mean(self.losses)) if self.losses else 0.0

    # -- single instruction ------------------------------------------------------

    def _execute(
        self,
        instr: Instruction,
        micro_inputs: Mapping[int, Array],
        micro_targets: Mapping[int, Array],
        pending_recv: dict,
        num_micro: int,
    ) -> bool:
        op = instr.op
        args = instr.args
        dev = instr.device
        if op in (Op.LOAD_MICRO_BATCH, Op.NT_FORWARD, Op.SC_FORWARD):
            return True  # modelled as free in the numeric engine
        if op == Op.SEND:
            m = int(args["micro_batch"])
            direction = str(args.get("dir", "fwd"))
            peer = int(args["peer"])
            st = self.stages[dev]
            if direction == "fwd":
                payload = st.outputs.get(m)
                if payload is None:
                    return False
                self.channels.send(dev, peer, payload, tag=("act", m))
            else:
                key = (dev, m, "grad_out")
                if key not in pending_recv:
                    return False
                self.channels.send(dev, peer, pending_recv.pop(key), tag=("grad", m))
            return True
        if op == Op.RECV:
            m = int(args["micro_batch"])
            direction = str(args.get("dir", "fwd"))
            peer = int(args["peer"])
            tag = ("act", m) if direction == "fwd" else ("grad", m)
            try:
                payload = self.channels.recv(peer, dev, tag=tag)
            except EngineError:
                return False
            pending_recv[(dev, m, direction)] = payload
            return True
        if op == Op.FORWARD:
            m = int(args["micro_batch"])
            st = self.stages[dev]
            if dev == 0:
                x = micro_inputs[m]
            else:
                key = (dev, m, "fwd")
                if key not in pending_recv:
                    return False
                x = pending_recv.pop(key)
            out, caches = st.chain.forward(x)
            st.caches[m] = caches
            st.outputs[m] = out
            return True
        if op == Op.BACKWARD:
            m = int(args["micro_batch"])
            st = self.stages[dev]
            if m not in st.caches:
                return False
            if dev == len(self.stages) - 1:
                loss, dy = self.loss(st.outputs[m], micro_targets[m])
                self.losses.append(loss)
            else:
                key = (dev, m, "bwd")
                if key not in pending_recv:
                    return False
                dy = pending_recv.pop(key)
            dx, grads = st.chain.backward(dy, st.caches.pop(m))
            add_grads(st.grads, grads)
            pending_recv[(dev, m, "grad_out")] = dx
            return True
        if op == Op.ALLREDUCE_GRADS:
            return True  # single pipeline: nothing to reduce
        if op == Op.OPTIMIZER_STEP:
            st = self.stages[dev]
            grads = _scale_micro_grads(st.grads, num_micro)
            self.optimizers[dev].step(st.chain, grads)
            st.grads = {}
            return True
        raise EngineError(f"unknown opcode {op}")
