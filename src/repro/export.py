"""Export utilities: Chrome traces and plan serialisation.

* :func:`timeline_to_chrome_trace` converts a simulated
  :class:`~repro.schedule.Timeline` (plus optional bubble-filling items)
  into the Chrome tracing JSON format, viewable at ``chrome://tracing``
  or https://ui.perfetto.dev.
* :func:`plan_to_dict` / :func:`plan_from_dict` round-trip an
  :class:`~repro.core.ExecutionPlan` through plain JSON-compatible
  dictionaries, so plans can be stored next to training runs.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from .core.plan import (
    BubbleUtilization,
    ExecutionPlan,
    FillItem,
    FillReport,
    MemoryReport,
    PartitionPlan,
    StageAssignment,
)
from .errors import ConfigurationError
from .schedule.tasks import TaskKind
from .schedule.timeline import Timeline

#: Chrome trace colour names per task kind.
_TRACE_COLOURS = {
    TaskKind.FORWARD: "good",
    TaskKind.SC_FORWARD: "vsync_highlight_color",
    TaskKind.BACKWARD: "bad",
    TaskKind.BACKWARD_W: "terrible",
    TaskKind.NT_FORWARD: "yellow",
    TaskKind.SYNC: "grey",
    TaskKind.COMM: "white",
}


def timeline_to_chrome_trace(
    timeline: Timeline,
    fill_items: Sequence[FillItem] = (),
    bubbles_by_index: Mapping[int, tuple[float, tuple[int, ...]]] | None = None,
    path: str | None = None,
) -> dict:
    """Convert a timeline to Chrome trace-event JSON.

    Durations are milliseconds in the simulator; Chrome traces use
    microseconds, so everything scales by 1000.  Each device becomes a
    thread; communications appear on per-link threads.
    """
    events = []
    for iv in timeline.intervals:
        if iv.duration <= 0:
            continue
        task = iv.task
        if task.device is not None:
            tid = f"device {task.device}"
        else:
            tid = task.resource
        event = {
            "name": task.task_id,
            "ph": "X",
            "ts": iv.start * 1e3,
            "dur": iv.duration * 1e3,
            "pid": "pipeline",
            "tid": tid,
            "args": dict(task.meta),
        }
        colour = _TRACE_COLOURS.get(task.kind)
        if colour:
            event["cname"] = colour
        events.append(event)

    if fill_items:
        if bubbles_by_index is None:
            raise ConfigurationError("fill items require bubble metadata")
        for item in fill_items:
            if item.bubble_index not in bubbles_by_index:
                raise ConfigurationError(
                    f"fill item references unknown bubble {item.bubble_index}"
                )
            start, devices = bubbles_by_index[item.bubble_index]
            for dev in devices:
                events.append(
                    {
                        "name": f"nt:{item.component}[{item.layer}]",
                        "ph": "X",
                        "ts": start * 1e3,
                        "dur": item.time_ms * 1e3,
                        "pid": "pipeline",
                        "tid": f"device {dev}",
                        "cname": "yellow",
                        "args": {
                            "samples": item.samples,
                            "partial": item.partial,
                        },
                    }
                )

    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w") as f:
            json.dump(trace, f, indent=1)
    return trace


# ---------------------------------------------------------------------------
# Plan (de)serialisation
# ---------------------------------------------------------------------------


def _stage_to_dict(st: StageAssignment) -> dict:
    return {
        "component": st.component, "lo": st.lo, "hi": st.hi,
        "replicas": st.replicas,
    }


def _stage_from_dict(d: Mapping) -> StageAssignment:
    return StageAssignment(
        component=str(d["component"]), lo=int(d["lo"]), hi=int(d["hi"]),
        replicas=int(d["replicas"]),
    )


def partition_to_dict(p: PartitionPlan) -> dict:
    return {
        "down": [_stage_to_dict(s) for s in p.down],
        "up": [_stage_to_dict(s) for s in p.up],
        "num_stages": p.num_stages,
        "num_micro_batches": p.num_micro_batches,
        "group_size": p.group_size,
        "batch_per_group": p.batch_per_group,
        "t_max_ms": p.t_max_ms,
        "w_ms": p.w_ms,
        "y_ms": p.y_ms,
        "self_conditioning": p.self_conditioning,
    }


def partition_from_dict(d: Mapping) -> PartitionPlan:
    return PartitionPlan(
        down=tuple(_stage_from_dict(s) for s in d["down"]),
        up=tuple(_stage_from_dict(s) for s in d["up"]),
        num_stages=int(d["num_stages"]),
        num_micro_batches=int(d["num_micro_batches"]),
        group_size=int(d["group_size"]),
        batch_per_group=float(d["batch_per_group"]),
        t_max_ms=float(d["t_max_ms"]),
        w_ms=float(d["w_ms"]),
        y_ms=float(d["y_ms"]),
        self_conditioning=bool(d["self_conditioning"]),
    )


def plan_to_dict(plan: ExecutionPlan) -> dict:
    """Serialise an execution plan to JSON-compatible primitives."""
    fill = None
    if plan.fill is not None:
        fill = {
            "items": [
                {
                    "component": i.component, "layer": i.layer,
                    "samples": i.samples, "time_ms": i.time_ms,
                    "bubble_index": i.bubble_index, "partial": i.partial,
                }
                for i in plan.fill.items
            ],
            "filled_device_time_ms": plan.fill.filled_device_time_ms,
            "bubble_device_time_ms": plan.fill.bubble_device_time_ms,
            "leftover_ms": plan.fill.leftover_ms,
            "num_bubbles": plan.fill.num_bubbles,
            "complete": plan.fill.complete,
            "strategy": plan.fill.strategy,
            "candidates_dropped": plan.fill.candidates_dropped,
            "states_pruned": plan.fill.states_pruned,
            "beam_peak": plan.fill.beam_peak,
            "per_bubble": [
                {
                    "bubble_index": u.bubble_index,
                    "duration_ms": u.duration_ms,
                    "weight": u.weight,
                    "filled_ms": u.filled_ms,
                }
                for u in plan.fill.per_bubble
            ],
        }
    memory = None
    if plan.memory is not None:
        memory = {
            "peak_bytes": plan.memory.peak_bytes,
            "capacity_bytes": plan.memory.capacity_bytes,
            "breakdown": dict(plan.memory.breakdown),
        }
    return {
        "model_name": plan.model_name,
        "schedule": plan.schedule,
        "partition": partition_to_dict(plan.partition),
        "data_parallel_degree": plan.data_parallel_degree,
        "global_batch": plan.global_batch,
        "pipeline_ms": plan.pipeline_ms,
        "leftover_ms": plan.leftover_ms,
        "iteration_ms": plan.iteration_ms,
        "throughput": plan.throughput,
        "bubble_ratio_unfilled": plan.bubble_ratio_unfilled,
        "bubble_ratio_filled": plan.bubble_ratio_filled,
        "fill": fill,
        "memory": memory,
        "notes": list(plan.notes),
    }


def plan_from_dict(d: Mapping) -> ExecutionPlan:
    """Reconstruct an execution plan from :func:`plan_to_dict` output."""
    fill = None
    if d.get("fill") is not None:
        fd = d["fill"]
        fill = FillReport(
            items=tuple(
                FillItem(
                    component=str(i["component"]), layer=int(i["layer"]),
                    samples=float(i["samples"]), time_ms=float(i["time_ms"]),
                    bubble_index=int(i["bubble_index"]),
                    partial=bool(i["partial"]),
                )
                for i in fd["items"]
            ),
            filled_device_time_ms=float(fd["filled_device_time_ms"]),
            bubble_device_time_ms=float(fd["bubble_device_time_ms"]),
            leftover_ms=float(fd["leftover_ms"]),
            num_bubbles=int(fd["num_bubbles"]),
            complete=bool(fd["complete"]),
            # Defaults keep plans written before the strategy refactor
            # (and before the lookahead search telemetry) loadable.
            strategy=str(fd.get("strategy", "greedy")),
            candidates_dropped=int(fd.get("candidates_dropped", 0)),
            states_pruned=int(fd.get("states_pruned", 0)),
            beam_peak=int(fd.get("beam_peak", 0)),
            per_bubble=tuple(
                BubbleUtilization(
                    bubble_index=int(u["bubble_index"]),
                    duration_ms=float(u["duration_ms"]),
                    weight=int(u["weight"]),
                    filled_ms=float(u["filled_ms"]),
                )
                for u in fd.get("per_bubble", ())
            ),
        )
    memory = None
    if d.get("memory") is not None:
        md = d["memory"]
        memory = MemoryReport(
            peak_bytes=float(md["peak_bytes"]),
            capacity_bytes=float(md["capacity_bytes"]),
            breakdown=dict(md["breakdown"]),
        )
    return ExecutionPlan(
        model_name=str(d["model_name"]),
        # Default keeps plans written before the schedule-family
        # registry loadable: pre-registry plans were 1F1B for single
        # backbones and bidirectional for cascaded ones.
        schedule=str(
            d.get(
                "schedule",
                "bidirectional" if d["partition"].get("up") else "onef1b",
            )
        ),
        partition=partition_from_dict(d["partition"]),
        data_parallel_degree=int(d["data_parallel_degree"]),
        global_batch=float(d["global_batch"]),
        pipeline_ms=float(d["pipeline_ms"]),
        leftover_ms=float(d["leftover_ms"]),
        iteration_ms=float(d["iteration_ms"]),
        throughput=float(d["throughput"]),
        bubble_ratio_unfilled=float(d["bubble_ratio_unfilled"]),
        bubble_ratio_filled=float(d["bubble_ratio_filled"]),
        fill=fill,
        memory=memory,
        notes=tuple(d.get("notes", ())),
    )


def save_plan(plan: ExecutionPlan, path: str) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as f:
        json.dump(plan_to_dict(plan), f, indent=2)


def load_plan(path: str) -> ExecutionPlan:
    """Read a plan from a JSON file."""
    with open(path) as f:
        return plan_from_dict(json.load(f))
