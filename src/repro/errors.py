"""Exception hierarchy for the DiffusionPipe reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An invalid configuration was supplied (bad S/M/D combination, ...)."""


class ProfileError(ReproError):
    """A profile lookup failed (missing layer, unprofiled batch size, ...)."""


class PartitionError(ReproError):
    """No feasible partition exists for the requested stage count."""


class ScheduleError(ReproError):
    """A pipeline schedule is malformed (dependency cycle, bad device id)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class FillingError(ReproError):
    """Bubble filling failed (negative bubble time, unknown component)."""


class MemoryError_(ReproError):
    """A plan exceeds device memory. Named with a trailing underscore to
    avoid shadowing the builtin :class:`MemoryError`."""


class OutOfMemory(MemoryError_):
    """Raised (or recorded) when a configuration does not fit in device HBM."""

    def __init__(self, required_bytes: float, capacity_bytes: float, detail: str = ""):
        self.required_bytes = float(required_bytes)
        self.capacity_bytes = float(capacity_bytes)
        msg = (
            f"requires {required_bytes / 2**30:.2f} GiB "
            f"but device has {capacity_bytes / 2**30:.2f} GiB"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class EngineError(ReproError):
    """The numeric execution engine hit an invalid instruction stream."""


class SnapshotError(ReproError):
    """A planner-cache snapshot could not be written or restored
    (unknown format version, corrupt payload, wrong magic)."""


class ServiceError(ReproError):
    """The planner service rejected or failed a request."""
