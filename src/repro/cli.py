"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``
    List the model zoo.
``plan``
    Run the DiffusionPipe front-end for one model/cluster/batch and
    print the chosen configuration (optionally dumping the plan JSON
    and a Chrome trace of the pipeline timeline).
``sweep``
    Compare DiffusionPipe against all baselines over a batch list.
``table1`` / ``table2``
    Print the profiling tables of §2.
``bench``
    Measure headline performance numbers (cold/warm DP table builds
    under both engines, one sweep's wall-clock) and print them, or
    emit stable-schema JSON with ``--json`` for CI artifacts.
``serve``
    Run the concurrent planning service (JSON lines over TCP).
``bench-serve``
    Drive a request stream against cold and snapshot-warmed services.
``snapshot``
    Warm the planner caches with a sweep and persist them to disk.
``analyze``
    Run the static invariant rules (AST engine) over the package —
    cache ownership, registry-only builders, lock discipline,
    determinism, float equality — and exit non-zero on findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .baselines import (
    DataParallelBaseline,
    GPipeBaseline,
    SPPBaseline,
    Zero3Baseline,
)
from .cluster import p4de_cluster, single_node
from .core import (
    DiffusionPipePlanner,
    PlannerOptions,
    extract_bubbles,
    fill_strategy_names,
)
from .errors import ReproError
from .harness import format_table, pct
from .models import zoo
from .profiling import Profiler
from .schedule import schedule_family_names

MODELS: dict[str, Callable] = {
    "sd": zoo.stable_diffusion_v2_1,
    "controlnet": zoo.controlnet_v1_0,
    "cdm-lsun": zoo.cdm_lsun,
    "cdm-imagenet": zoo.cdm_imagenet,
    "dit": zoo.dit_xl,
}


def _build_model(name: str, self_conditioning: bool | None):
    if name not in MODELS:
        raise SystemExit(f"unknown model {name!r}; options: {sorted(MODELS)}")
    factory = MODELS[name]
    if name in ("cdm-lsun", "cdm-imagenet"):
        return factory()
    if self_conditioning is None:
        return factory()
    return factory(self_conditioning=self_conditioning)


def _parse_speed_factors(items) -> dict[int, float] | None:
    """``RANK=FACTOR`` pairs into the ClusterSpec override mapping."""
    if not items:
        return None
    out: dict[int, float] = {}
    for item in items:
        rank, sep, factor = item.partition("=")
        try:
            if not sep:
                raise ValueError
            out[int(rank)] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--speed-factors entries look like RANK=FACTOR "
                f"(e.g. 0=0.5), got {item!r}"
            )
    return out


def _build_cluster(gpus: int, speed_factors=None):
    """Multiples of 8 GPUs map to p4de machines; smaller or odd counts
    model one NVSwitch node — e.g. ``--gpus 6`` plans the non-divisible
    clusters the heterogeneous DPs exist for."""
    if gpus < 2:
        raise SystemExit("--gpus must be at least 2")
    factors = _parse_speed_factors(speed_factors)
    try:
        if gpus % 8 == 0:
            return p4de_cluster(gpus // 8, speed_factors=factors)
        if gpus > 8:
            raise SystemExit(
                "--gpus beyond one machine must be a multiple of 8 (p4de)"
            )
        return single_node(gpus, speed_factors=factors)
    except ReproError as exc:
        # Out-of-range ranks, non-positive factors.
        raise SystemExit(f"invalid --speed-factors: {exc}")


def _group_sizes(cluster) -> tuple[int, ...]:
    """Pipeline-group menu: sizes within the paper's practical range
    (groups fit one machine) that tile both the world and the machine.

    Groups are contiguous rank blocks, so a size that does not divide
    the per-machine device count would make some groups straddle the
    inter-node link while the planner prices every group off the first
    (intra-node) one — e.g. D=6 on 24 p4de GPUs.  Requiring ``d |
    devices_per_machine`` keeps every group on one machine.
    """
    world = cluster.world_size
    per = cluster.devices_per_machine
    return tuple(
        d
        for d in range(2, min(world, per) + 1)
        if world % d == 0 and per % d == 0
    )


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in MODELS.items():
        model = factory()
        rows.append(
            [
                name,
                model.name,
                ", ".join(model.backbone_names),
                str(sum(c.num_layers for c in model.non_trainable)),
                "yes" if model.self_conditioning else "no",
            ]
        )
    print(
        format_table(
            ["key", "model", "backbones", "frozen layers", "self-cond"], rows
        )
    )
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    model = _build_model(args.model, args.self_conditioning)
    cluster = _build_cluster(args.gpus, args.speed_factors)
    profile = Profiler(cluster).profile(model)
    try:
        # Construction validates option combinations too (e.g. an
        # explicit --schedule that mismatches the model's backbone
        # count, or a chunked schedule with --heterogeneous).
        planner = DiffusionPipePlanner(
            model,
            cluster,
            profile,
            options=PlannerOptions(
                group_sizes=_group_sizes(cluster),
                keep_timeline=True,
                heterogeneous_replication=args.heterogeneous,
                fill_strategy=args.fill_strategy,
                lookahead_beam=args.lookahead_beam,
                schedule=args.schedule,
                dp_kernel=args.dp_kernel,
            ),
        )
        ev = planner.plan(args.batch)
    except ReproError as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    plan = ev.plan
    rows = [
        ["configuration", plan.config_label],
        ["schedule", plan.schedule],
        ["iteration", f"{plan.iteration_ms:.1f} ms"],
        ["throughput", f"{plan.throughput:.1f} samples/s"],
        ["bubble ratio", f"{pct(plan.bubble_ratio_unfilled)} -> "
                         f"{pct(plan.bubble_ratio_filled)}"],
        ["NT leftover", f"{plan.leftover_ms:.1f} ms"],
    ]
    if plan.fill is not None:
        fill = plan.fill
        rows.append(["fill strategy", fill.strategy])
        rows.append(["fill fraction", pct(fill.fill_fraction)])
        filled_bubbles = sum(1 for u in fill.per_bubble if u.filled_ms > 0)
        rows.append(["bubbles filled",
                     f"{filled_bubbles}/{fill.num_bubbles}"])
        if fill.candidates_dropped:
            rows.append(["candidates dropped", str(fill.candidates_dropped)])
        if fill.beam_peak:
            rows.append(["beam peak", str(fill.beam_peak)])
            rows.append(["states pruned", str(fill.states_pruned)])
    if plan.memory:
        rows.append(["peak memory", f"{plan.memory.peak_bytes / 1e9:.1f} GB"])
    print(format_table(["metric", "value"],
                       rows, title=f"{model.name} @ batch {args.batch}"))
    if args.out:
        from .export import save_plan

        save_plan(plan, args.out)
        print(f"plan written to {args.out}")
    if args.trace and ev.timeline is not None:
        from .export import timeline_to_chrome_trace

        bubbles = extract_bubbles(ev.timeline)
        meta = {i: (b.start, b.devices) for i, b in enumerate(bubbles)}
        timeline_to_chrome_trace(
            ev.timeline,
            plan.fill.items if plan.fill else (),
            meta,
            path=args.trace,
        )
        print(f"chrome trace written to {args.trace}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    model = _build_model(args.model, args.self_conditioning)
    cluster = _build_cluster(args.gpus, args.speed_factors)
    profile = Profiler(cluster).profile(model)
    opts = PlannerOptions(
        group_sizes=_group_sizes(cluster),
        heterogeneous_replication=args.heterogeneous,
        fill_strategy=args.fill_strategy,
        lookahead_beam=args.lookahead_beam,
        schedule=args.schedule,
        dp_kernel=args.dp_kernel,
    )
    try:
        planner = DiffusionPipePlanner(model, cluster, profile, options=opts)
    except ReproError as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    engines = []
    if len(model.backbone_names) == 1:
        engines = [
            SPPBaseline(model, cluster, profile, options=opts),
            GPipeBaseline(model, cluster, profile),
            DataParallelBaseline(model, cluster, profile),
            Zero3Baseline(model, cluster, profile),
        ]
    rows = []
    for batch in args.batches:
        row = [str(batch)]
        try:
            row.append(f"{planner.plan(batch).plan.throughput:.0f}")
        except ReproError:
            row.append("OOM")
        for eng in engines:
            try:
                res = eng.run(batch)
                row.append("OOM" if res.oom else f"{res.throughput:.0f}")
            except ReproError:
                row.append("-")
        rows.append(row)
    headers = ["batch", "DiffusionPipe"] + [e.name for e in engines]
    print(format_table(headers, rows,
                       title=f"{model.name} on {args.gpus} GPUs (samples/s)"))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    cluster = p4de_cluster(1)
    rows = []
    for key in ("sd", "controlnet"):
        model = _build_model(key, None)
        profile = Profiler(cluster).profile(model)
        row = [model.name]
        for b in (8, 16, 32, 64):
            nt = sum(
                profile.component_fwd_ms(c.name, b) for c in model.non_trainable
            )
            t = sum(
                profile.component_train_ms(n, b) for n in model.backbone_names
            )
            row.append(pct(nt / t, 0))
        rows.append(row)
    print(format_table(["Model / Batch size", "8", "16", "32", "64"], rows,
                       title="Table 1 - NT/T forward ratio"))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    rows = []
    for key in ("sd", "controlnet"):
        model = _build_model(key, None)
        row = [model.name]
        for machines in (1, 2, 4, 8):
            cluster = p4de_cluster(machines)
            profile = Profiler(cluster).profile(model)
            res = DataParallelBaseline(model, cluster, profile).run(
                8 * cluster.world_size
            )
            row.append(pct(res.sync_share))
        rows.append(row)
    print(format_table(["Model / GPU count", "8", "16", "32", "64"], rows,
                       title="Table 2 - sync share of DDP iteration"))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf import format_bench, run_bench, write_json

    report = run_bench(best_of=args.best_of, sweep=not args.skip_sweep)
    print(format_bench(report))
    if args.json:
        write_json(report, args.json)
        print(f"bench report written to {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import PlanService
    from .service.server import serve

    service = PlanService(workers=args.workers, snapshot=args.snapshot)
    serve(
        service,
        args.host,
        args.port,
        ready_cb=lambda port: print(
            f"repro serve listening on {args.host}:{port} "
            f"({args.workers or 'thread'} workers)",
            flush=True,
        ),
    )
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from .service.bench import format_report, run_bench

    report = run_bench(
        model=args.model,
        gpus=args.gpus,
        batches=tuple(args.batches),
        repeats=args.repeats,
        snapshot_path=args.snapshot,
        workers=args.workers,
    )
    print(format_report(report))
    return 0 if report["identical_responses"] else 1


def cmd_snapshot(args: argparse.Namespace) -> int:
    from .service import PlanRequest, PlanService

    with PlanService() as service:
        for batch in args.batches:
            service.plan(
                PlanRequest(
                    model=args.model,
                    gpus=args.gpus,
                    batch=batch,
                    heterogeneous=args.heterogeneous,
                    fill_strategy=args.fill_strategy,
                )
            )
        counts = service.snapshot(args.out)
    total = sum(n for name, n in counts.items() if name != "skipped")
    print(f"{total} cache entries written to {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis import analyze, get_rule, rule_names

    if args.list_rules:
        rows = []
        for name in rule_names():
            rule = get_rule(name)
            rows.append([name, ", ".join(rule.scope), rule.description])
        print(format_table(["rule", "scope", "description"], rows,
                           title="repro analyze rules"))
        return 0
    try:
        selected = tuple(args.rules) if args.rules else rule_names()
        for name in selected:
            get_rule(name)  # validates; unknown ids raise
        findings = analyze(
            paths=[Path(p) for p in args.paths] if args.paths else None,
            rule_names_=selected,
        )
    except ReproError as exc:
        print(f"analysis failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {
                "rules": list(selected),
                "count": len(findings),
                "findings": [f.as_dict() for f in findings],
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro analyze: {len(findings)} {noun} "
              f"({len(selected)} rules)")
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DiffusionPipe reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(
        func=cmd_models
    )

    p = sub.add_parser("plan", help="plan one training configuration")
    p.add_argument("--model", default="sd", choices=sorted(MODELS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--self-conditioning", action="store_true", default=None)
    p.add_argument("--heterogeneous", action="store_true",
                   help="allow per-stage replica counts (non-divisible S, D) "
                        "for all models; for cdm-* each chain position's "
                        "count is shared by its co-located down/up stages")
    p.add_argument("--speed-factors", nargs="+", metavar="RANK=FACTOR",
                   help="per-device relative compute speeds (1.0 nominal), "
                        "e.g. '0=0.5' runs rank 0 at half speed; the "
                        "partitioner prices each stage window at its "
                        "bottleneck device")
    p.add_argument("--fill-strategy", default="greedy",
                   choices=fill_strategy_names(),
                   help="bubble-filling policy: greedy (the paper's "
                        "Algorithms 1+2), lookahead (plans across bubbles, "
                        "never worse than greedy), lookahead_reference "
                        "(its unpruned oracle), none (leave bubbles idle)")
    p.add_argument("--lookahead-beam", type=int, default=64,
                   help="beam-width cap of the lookahead fill strategies; "
                        "lookahead runs narrower by default and widens up "
                        "to this at decision points")
    p.add_argument("--schedule", default="auto",
                   choices=("auto",) + schedule_family_names(),
                   help="pipeline schedule family; auto picks onef1b for "
                        "single-backbone models and bidirectional for "
                        "cascaded ones")
    p.add_argument("--dp-kernel", default="array",
                   choices=("array", "reference"),
                   help="partition DP table-build engine: array (the "
                        "vectorized numpy kernels, default) or reference "
                        "(the pure-Python differential oracle); both are "
                        "bit-identical")
    p.add_argument("--out", help="write the plan JSON here")
    p.add_argument("--trace", help="write a chrome trace here")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("sweep", help="compare against the baselines")
    p.add_argument("--model", default="sd", choices=sorted(MODELS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--batches", type=int, nargs="+",
                   default=[64, 128, 256, 384])
    p.add_argument("--self-conditioning", action="store_true", default=None)
    p.add_argument("--heterogeneous", action="store_true",
                   help="allow per-stage replica counts (non-divisible S, D) "
                        "for all models; for cdm-* each chain position's "
                        "count is shared by its co-located down/up stages")
    p.add_argument("--speed-factors", nargs="+", metavar="RANK=FACTOR",
                   help="per-device relative compute speeds (1.0 nominal), "
                        "e.g. '0=0.5' runs rank 0 at half speed; the "
                        "partitioner prices each stage window at its "
                        "bottleneck device")
    p.add_argument("--fill-strategy", default="greedy",
                   choices=fill_strategy_names(),
                   help="bubble-filling policy: greedy (the paper's "
                        "Algorithms 1+2), lookahead (plans across bubbles, "
                        "never worse than greedy), lookahead_reference "
                        "(its unpruned oracle), none (leave bubbles idle)")
    p.add_argument("--lookahead-beam", type=int, default=64,
                   help="beam-width cap of the lookahead fill strategies; "
                        "lookahead runs narrower by default and widens up "
                        "to this at decision points")
    p.add_argument("--schedule", default="auto",
                   choices=("auto",) + schedule_family_names(),
                   help="pipeline schedule family; auto picks onef1b for "
                        "single-backbone models and bidirectional for "
                        "cascaded ones")
    p.add_argument("--dp-kernel", default="array",
                   choices=("array", "reference"),
                   help="partition DP table-build engine: array (the "
                        "vectorized numpy kernels, default) or reference "
                        "(the pure-Python differential oracle); both are "
                        "bit-identical")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("bench",
                       help="measure headline performance numbers")
    p.add_argument("--best-of", type=int, default=3,
                   help="runs per timing point; floors are reported")
    p.add_argument("--skip-sweep", action="store_true",
                   help="only time table builds (skip the planner sweep)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the report as stable-schema JSON "
                        "(repro-bench/1) for CI artifacts")
    p.set_defaults(func=cmd_bench)

    sub.add_parser("table1", help="print Table 1").set_defaults(func=cmd_table1)
    sub.add_parser("table2", help="print Table 2").set_defaults(func=cmd_table2)

    p = sub.add_parser("serve", help="run the planning service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7461,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes; 0 evaluates on a thread pool "
                        "sharing one in-process cache")
    p.add_argument("--snapshot",
                   help="warm caches from this snapshot file (see "
                        "'repro snapshot')")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("bench-serve",
                       help="measure cold vs snapshot-warmed service latency")
    p.add_argument("--model", default="sd", choices=sorted(MODELS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--batches", type=int, nargs="+", default=[64, 128, 256])
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--workers", type=int, default=0)
    p.add_argument("--snapshot", help="keep the snapshot file here")
    p.set_defaults(func=cmd_bench_serve)

    p = sub.add_parser("snapshot",
                       help="warm the planner caches and persist them")
    p.add_argument("--model", default="sd", choices=sorted(MODELS))
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--batches", type=int, nargs="+",
                   default=[64, 128, 256, 384])
    p.add_argument("--heterogeneous", action="store_true")
    p.add_argument("--fill-strategy", default="greedy",
                   choices=fill_strategy_names())
    p.add_argument("--out", required=True, help="snapshot file to write")
    p.set_defaults(func=cmd_snapshot)

    p = sub.add_parser(
        "analyze",
        help="run the static invariant rules over the package",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to analyze (default: the "
                        "installed repro package)")
    p.add_argument("--rule", action="append", dest="rules", metavar="ID",
                   help="run only this rule (repeatable); unknown ids "
                        "are rejected with the sorted catalog")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings (stable schema: "
                        "rules, count, findings[path/line/rule/message])")
    p.set_defaults(func=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
