"""AST invariant engine: rule registry, findings, suppressions.

The planner's correctness story leans on invariants that dynamic tests
can only witness after the fact — deterministic replay, lock-disciplined
shared state, registry-only construction, cache ownership.  This module
is the static half: a reusable AST-walking rule engine that checks those
invariants *before* they reach the bit-identity harnesses.

The registry mirrors :mod:`repro.core.fill_strategies` and
:mod:`repro.schedule.families`: rules register under a name with
:func:`register_rule`, are instantiated by :func:`get_rule` (unknown
names raise :class:`~repro.errors.ConfigurationError` with the sorted
catalog), and are listed by :func:`rule_names`.  Each rule declares
*scope globs* — :mod:`fnmatch` patterns over package-relative posix
paths — so e.g. the lock-discipline checker only walks the concurrent
modules it understands.

Findings are structured :class:`Finding` records (file, line, rule id,
message) with a stable JSON shape (:meth:`Finding.as_dict` /
:meth:`Finding.from_dict`) for the ``repro analyze --json`` output.

Suppressions
------------
A violation that is sanctioned (a documented GIL-atomic read path, an
identity memo that never reaches serialized output) is silenced inline::

    self._data.move_to_end(key)  # repro: allow[lock-discipline] GIL-atomic

The comment may sit on the offending line or on the line directly above
it; the text after the bracket is the rationale (required by review
convention, not enforced).  Several ids may share one comment:
``# repro: allow[determinism, float-equality] why``.  A suppression that
silences nothing is itself reported (rule id ``unused-suppression``), so
stale annotations cannot linger after the code they excused is gone.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from ..errors import ConfigurationError

#: inline suppression comment syntax (see the module docstring); kept
#: free of a literal example so the scanner does not match this line
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

#: rule id of the engine's own stale-suppression check (always active;
#: not registered — it cannot be selected or suppressed).
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str  #: package-relative posix path
    line: int  #: 1-based line number
    rule: str  #: registry id of the rule that fired
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            rule=data["rule"],
            message=data["message"],
        )


class ModuleSource:
    """One parsed module: path, text, AST, and suppression map.

    Parsed exactly once; every in-scope rule walks the same tree, so a
    full-package run stays well under the 2 s budget.
    """

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        #: line -> set of rule ids allowed on that line.  Tokenized, not
        #: regexed over raw lines, so the syntax can be *mentioned* in a
        #: docstring without registering a suppression.
        self.suppressions: dict[int, set[str]] = {}
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = SUPPRESS_RE.search(tok.string)
            if match:
                ids = {s.strip() for s in match.group(1).split(",") if s.strip()}
                self.suppressions[tok.start[0]] = ids

    def finding(self, node: ast.AST | int, rule: str, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` (or a raw line number)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(path=self.rel, line=line, rule=rule, message=message)


class Rule(Protocol):
    """A static invariant: walks one module, yields findings."""

    #: registry id (also the suppression / ``--rule`` spelling)
    name: str
    #: one-line catalog description (``repro analyze --list-rules``)
    description: str
    #: fnmatch globs over package-relative posix paths; a module is in
    #: scope when it matches any of these...
    scope: tuple[str, ...]
    #: ...and none of these.
    exclude: tuple[str, ...]

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        ...  # pragma: no cover - protocol


RULES: dict[str, Callable[[], Rule]] = {}


def register_rule(name: str):
    """Class decorator adding a rule factory under ``name``."""

    def deco(cls):
        RULES[name] = cls
        return cls

    return deco


def get_rule(name: str) -> Rule:
    """Instantiate the rule registered under ``name``."""
    factory = RULES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown analysis rule {name!r}; registered: {rule_names()}"
        )
    return factory()


def rule_names() -> tuple[str, ...]:
    """Registered rule ids, sorted (CLI choices, docs)."""
    return tuple(sorted(RULES))


def in_scope(rule: Rule, rel: str) -> bool:
    """True when ``rel`` matches the rule's scope globs.

    Patterns follow :func:`fnmatch.fnmatch` semantics, where ``*``
    crosses ``/`` — so ``core/*.py`` covers the whole ``core`` package.
    """
    if not any(fnmatch(rel, pat) for pat in rule.scope):
        return False
    return not any(fnmatch(rel, pat) for pat in rule.exclude)


def package_root() -> Path:
    """Directory of the installed ``repro`` package (the default tree)."""
    import repro

    return Path(repro.__file__).parent


def _top_package(start: Path) -> Path:
    """Climb to the outermost directory that is still a package, so
    relative paths are package-relative (``core/caches.py``) no matter
    which file or subdirectory was passed.  A plain directory with no
    ``__init__.py`` (e.g. a test fixture tree) is its own root."""
    top = start
    cur = start
    while (cur / "__init__.py").exists():
        top = cur
        cur = cur.parent
    return top


def iter_sources(paths: Sequence[Path]) -> Iterator[ModuleSource]:
    """Yield a parsed :class:`ModuleSource` for every ``.py`` file under
    ``paths`` (files or directories), sorted for deterministic output."""
    for base in paths:
        base = Path(base)
        if base.is_dir():
            root = _top_package(base)
            files = sorted(p for p in base.rglob("*.py")
                           if "__pycache__" not in p.parts)
        else:
            root = _top_package(base.parent)
            files = [base]
        for path in files:
            rel = path.relative_to(root).as_posix()
            yield ModuleSource(path, rel, path.read_text())


def analyze(
    paths: Sequence[Path] | None = None,
    rule_names_: Iterable[str] | None = None,
) -> list[Finding]:
    """Run rules over a tree and return surviving findings, sorted.

    ``paths`` defaults to the installed ``repro`` package;
    ``rule_names_`` defaults to every registered rule.  Findings on a
    line carrying (or directly below) a matching ``# repro:
    allow[rule-id]`` comment are dropped; suppressions that dropped
    nothing — including ids not registered at all — come back as
    ``unused-suppression`` findings, but only for rules that actually
    ran, so ``--rule`` subsets never misreport another rule's
    annotations as stale.
    """
    rules = [get_rule(n) for n in (rule_names_ or rule_names())]
    selected = {r.name for r in rules}
    findings: list[Finding] = []
    for src in iter_sources([package_root()] if paths is None else paths):
        used: set[tuple[int, str]] = set()
        for rule in rules:
            if not in_scope(rule, src.rel):
                continue
            for finding in rule.check(src):
                sup = _suppressed_at(src, finding.line, finding.rule)
                if sup is not None:
                    used.add((sup, finding.rule))
                else:
                    findings.append(finding)
        for line, ids in src.suppressions.items():
            for rule_id in ids:
                if rule_id not in selected:
                    if rule_id not in RULES:
                        findings.append(src.finding(
                            line, UNUSED_SUPPRESSION,
                            f"suppression names unknown rule {rule_id!r}; "
                            f"registered: {rule_names()}",
                        ))
                    continue
                if (line, rule_id) not in used:
                    findings.append(src.finding(
                        line, UNUSED_SUPPRESSION,
                        f"suppression for {rule_id!r} matches no finding; "
                        "remove the stale allow comment",
                    ))
    return sorted(findings)


def _suppressed_at(src: ModuleSource, line: int, rule_id: str) -> int | None:
    """Suppression line covering (``line``, ``rule_id``), or None.

    A comment counts on the offending line itself or — for statements
    too long to annotate inline — on the line directly above."""
    for candidate in (line, line - 1):
        if rule_id in src.suppressions.get(candidate, ()):
            return candidate
    return None
