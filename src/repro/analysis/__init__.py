"""Static analysis for the planner's correctness invariants.

``repro analyze`` (and the thin AST gate tests) run the rule engine in
:mod:`repro.analysis.engine` with the built-in rules of
:mod:`repro.analysis.rules`:

``cache-globals``
    no module-level cache stores in ``core/`` (PlannerCaches owns warm
    state).
``registry-bypass``
    schedule builders are reached through ``get_family`` only.
``lock-discipline``
    in lock-owning service/cache classes, ``self._*`` writes happen
    under ``with self.<lock>:``.
``determinism``
    no wall-clock values, unseeded random, ``id()`` keys or
    set-iteration-ordered output in ``core/``, ``schedule/``,
    ``harness/``.
``float-equality``
    no bare ``==``/``!=`` between float expressions outside the
    equivalence oracle.

See :mod:`repro.analysis.engine` for the suppression syntax
(``# repro: allow[rule-id] rationale``) and the unused-suppression
check.
"""

from .engine import (
    RULES,
    UNUSED_SUPPRESSION,
    Finding,
    ModuleSource,
    Rule,
    analyze,
    get_rule,
    in_scope,
    iter_sources,
    package_root,
    register_rule,
    rule_names,
)
from . import rules  # noqa: F401  (import-for-effect: registry population)

__all__ = [
    "RULES",
    "UNUSED_SUPPRESSION",
    "Finding",
    "ModuleSource",
    "Rule",
    "analyze",
    "get_rule",
    "in_scope",
    "iter_sources",
    "package_root",
    "register_rule",
    "rule_names",
]
