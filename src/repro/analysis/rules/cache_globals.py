"""Rule ``cache-globals``: no module-level cache stores in ``repro.core``.

The cache-ownership refactor moved every planner memo (``_CHAIN_CACHE``,
``_HET_CACHE``, ``_CDM_CACHE``, ``_CDM_HET_CACHE``, ``_PREFIX_CACHE``,
``_TIMELINE_CACHE``) into :class:`~repro.core.caches.PlannerCaches`
fields.  This rule fails on any module-level assignment in ``core/``
that smells like a cache store, so a future change cannot quietly
reintroduce process-global warm state outside the sanctioned
:func:`~repro.core.caches.default_caches` singleton.

Formerly the ad-hoc walker in ``tests/test_no_cache_globals.py``; the
test is now a thin wrapper over this rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Finding, ModuleSource, register_rule

#: module-level names that must not exist: the historical globals were
#: all-caps with a CACHE component (``_TIMELINE_CACHE`` etc.); capacity
#: constants like ``CHAIN_CACHE_MAX_TABLES`` are public and fine.
FORBIDDEN_NAME = re.compile(r"^_[A-Z0-9_]*CACHE[A-Z0-9_]*$")

#: module-level calls that would build a mutable store at import time.
FORBIDDEN_CTORS = frozenset({"WeakKeyDictionary", "OrderedDict", "defaultdict"})

#: the one sanctioned module-level store: the lazily-built default
#: PlannerCaches singleton (starts as None, built under a lock).
ALLOWED = frozenset({("core/caches.py", "_default_caches")})


def _assigned_names(node: ast.stmt) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id


def _ctor_name(node: ast.stmt) -> str | None:
    value = getattr(node, "value", None)
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register_rule("cache-globals")
class CacheGlobalsRule:
    name = "cache-globals"
    description = (
        "module-level cache stores are retired; own warm state in "
        "PlannerCaches fields"
    )
    scope = ("core/*.py",)
    exclude = ()

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for node in src.tree.body:  # module level only, by construction
            names = list(_assigned_names(node))
            for name in names:
                if (src.rel, name) in ALLOWED:
                    continue
                if FORBIDDEN_NAME.match(name):
                    yield src.finding(
                        node, self.name,
                        f"module-level name {name!r} smells like a retired "
                        "cache global; own it in PlannerCaches",
                    )
            ctor = _ctor_name(node)
            if ctor in FORBIDDEN_CTORS and not any(
                (src.rel, n) in ALLOWED for n in names
            ):
                yield src.finding(
                    node, self.name,
                    f"module-level {ctor}() builds a mutable store at "
                    f"import time (assigned to {names or '?'}); own it in "
                    "PlannerCaches",
                )
