"""Rule ``registry-bypass``: schedule builders are registry-only.

The :class:`~repro.schedule.families.ScheduleFamily` refactor routed
every consumer (planner, baselines, harness) through
:func:`repro.schedule.get_family`; the builder modules
(``repro.schedule.onef1b`` etc.) and their ``build_*`` functions are an
implementation detail of the ``schedule`` package.  This rule fails on
any import of a builder module or builder function outside
``repro/schedule/``, so a future change cannot quietly bypass the
registry (and with it the planner's ``--schedule`` plumbing, cache
identity and memory-window dispatch).

Formerly the ad-hoc walker in ``tests/test_no_direct_builder_imports.py``;
the test is now a thin wrapper over this rule (its companion test still
asserts these hardcoded lists cover every registered family).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, register_rule

#: builder submodules of repro.schedule — private to the package
BUILDER_MODULES = frozenset({
    "onef1b", "gpipe", "bidirectional", "interleaved", "zerobubble",
})
#: the builder entry points those modules define
BUILDER_NAMES = frozenset({
    "build_1f1b",
    "build_gpipe",
    "build_bidirectional",
    "build_interleaved",
    "build_zerobubble",
})


def _is_builder_module(module: str | None) -> bool:
    """True for ``repro.schedule.<builder>`` in any spelling (absolute
    or relative: ``..schedule.gpipe`` parses as module ``schedule.gpipe``).
    Requires the ``schedule`` parent so e.g. ``baselines.gpipe`` — a
    different module that happens to share a builder's name — passes."""
    if not module:
        return False
    parts = module.split(".")
    return (
        len(parts) >= 2
        and parts[-2] == "schedule"
        and parts[-1] in BUILDER_MODULES
    )


@register_rule("registry-bypass")
class RegistryBypassRule:
    name = "registry-bypass"
    description = (
        "schedule builders are reached via repro.schedule.get_family "
        "only; no direct builder imports outside schedule/"
    )
    scope = ("*",)
    exclude = ("schedule/*",)

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom):
                # ``from ..schedule.onef1b import ...`` / absolute spelling
                if _is_builder_module(node.module):
                    yield src.finding(
                        node, self.name,
                        f"imports builder module {node.module!r}; go "
                        "through repro.schedule.get_family",
                    )
                # ``from ..schedule import build_1f1b``
                for alias in node.names:
                    if alias.name in BUILDER_NAMES:
                        yield src.finding(
                            node, self.name,
                            f"imports builder {alias.name!r}; go through "
                            "repro.schedule.get_family",
                        )
            elif isinstance(node, ast.Import):
                # ``import repro.schedule.onef1b``
                for alias in node.names:
                    if _is_builder_module(alias.name):
                        yield src.finding(
                            node, self.name,
                            f"imports builder module {alias.name!r}; go "
                            "through repro.schedule.get_family",
                        )
