"""Rule ``lock-discipline``: a race checker for the concurrent modules.

PR 6 made :class:`~repro.service.PlanService` and the
:class:`~repro.core.caches.PlannerCaches` stores thread-concurrent; their
safety argument is a simple discipline: *in a class that creates a
``threading.Lock``, every write to ``self._*`` shared state happens
inside a ``with self.<lock>:`` block*.  This rule enforces that
discipline statically:

* A class is *locked* when any of its methods assigns
  ``self.<attr> = threading.Lock()`` (or ``RLock``/bare ``Lock``).
* In every method of a locked class except ``__init__`` (construction
  happens before the object is shared), the rule flags — unless the
  statement is lexically inside a ``with self.<lock>:`` block —

  - assignments and augmented assignments targeting ``self._x`` or
    ``self._x[...]``,
  - ``del self._x[...]``,
  - calls to known mutating methods (``append``, ``pop``, ``update``,
    ``move_to_end``, ...) on a ``self._x`` receiver.

Reads are deliberately not flagged: the repo's documented concurrency
model allows GIL-atomic lock-free reads of pure-function-of-key entries
(see :mod:`repro.core.lru`).  The one *mutation* on that sanctioned
read path — the LRU recency refresh — carries an inline
``# repro: allow[lock-discipline]`` with its rationale.

Public (non-underscore) counters like ``LruStore.hits`` are outside the
rule: they are monotonic telemetry whose losses under races are benign
and which double as the stores' documented lock-free surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, register_rule

#: mutating methods of the built-in containers (plus OrderedDict's)
MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "sort",
    "reverse",
})

LOCK_CTORS = frozenset({"Lock", "RLock"})


def _is_lock_ctor(value: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` / ``threading.RLock()`` ..."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_CTORS
    return isinstance(func, ast.Name) and func.id in LOCK_CTORS


def _self_attr(node: ast.expr) -> str | None:
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _shared_target(node: ast.expr) -> str | None:
    """The ``self._x`` attribute a store target writes to, seeing
    through subscripts (``self._x[k] = v`` mutates ``self._x``)."""
    if isinstance(node, ast.Subscript):
        return _shared_target(node.value)
    attr = _self_attr(node)
    if attr is not None and attr.startswith("_"):
        return attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes of ``cls`` assigned a lock constructor anywhere."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks.add(attr)
    return locks


class _MethodWalker(ast.NodeVisitor):
    """Walks one method body tracking ``with self.<lock>:`` nesting."""

    def __init__(self, rule: "LockDisciplineRule", src: ModuleSource,
                 cls: str, method: str, locks: set[str]):
        self.rule = rule
        self.src = src
        self.where = f"{cls}.{method}"
        self.locks = locks
        self.depth = 0
        self.findings: list[Finding] = []

    # -- lock tracking -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        held = any(
            _self_attr(item.context_expr) in self.locks
            for item in node.items
        )
        if held:
            self.depth += 1
        self.generic_visit(node)
        if held:
            self.depth -= 1

    # -- mutations -----------------------------------------------------------

    def _flag(self, node: ast.AST, attr: str, what: str) -> None:
        lock = ", ".join(sorted(self.locks))
        self.findings.append(self.src.finding(
            node, self.rule.name,
            f"{self.where}: {what} self.{attr} outside `with self.{lock}:`",
        ))

    def _check_target(self, node: ast.AST, target: ast.expr,
                      what: str) -> None:
        attr = _shared_target(target)
        if attr is not None and attr not in self.locks:
            self._flag(node, attr, what)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.depth == 0:
            for target in node.targets:
                self._check_target(node, target, "writes")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self.depth == 0 and node.value is not None:
            self._check_target(node, node.target, "writes")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.depth == 0:
            self._check_target(node, node.target, "updates")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self.depth == 0:
            for target in node.targets:
                self._check_target(node, target, "deletes from")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.depth == 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATORS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None and attr.startswith("_") \
                    and attr not in self.locks:
                self._flag(node, attr, f"calls .{node.func.attr}() on")
        self.generic_visit(node)


@register_rule("lock-discipline")
class LockDisciplineRule:
    name = "lock-discipline"
    description = (
        "in lock-owning classes, writes to self._* shared state happen "
        "inside `with self.<lock>:` (GIL-atomic read paths annotated)"
    )
    scope = ("service/*.py", "core/caches.py", "core/lru.py")
    exclude = ()

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for cls in ast.walk(src.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name == "__init__":
                    continue  # construction precedes sharing
                walker = _MethodWalker(self, src, cls.name, method.name,
                                       locks)
                for stmt in method.body:
                    walker.visit(stmt)
                yield from walker.findings
