"""Rule ``determinism``: planner outputs are pure functions of inputs.

DiffusionPipe's correctness harnesses — golden ``float.hex`` baselines,
snapshot replay, the differential fill oracles — all assert *bit
identity*: the same model/cluster/batch must produce the same plan, in
the same order, in every process.  Four bug classes silently break that
while passing every functional test, so ``core/``, ``schedule/`` and
``harness/`` ban them statically:

* **wall-clock values** — ``time.time()`` / ``time.monotonic()`` /
  ``time.perf_counter()`` (and their ``_ns`` twins, ``datetime.now``):
  a timestamp that reaches a plan, a memo key or a serialized report
  differs on every run.  (The service layer measures latency with
  ``perf_counter`` — telemetry, not plan content — and is out of scope.)
* **unseeded randomness** — module-level ``random.*`` and
  ``np.random.*`` draws share process-global state; construct a seeded
  ``random.Random(seed)`` or ``np.random.default_rng(seed)`` instead.
  A bare ``np.random.default_rng()`` is equally banned: with no seed it
  pulls OS entropy, so two workers building "the same" plan disagree.
* **``id()``** — CPython addresses differ across processes; an ``id()``
  in a sort key or cache key reorders output between the service's
  workers and the coordinator.
* **set iteration feeding ordered output** — ``for x in set(...)``,
  ``list(set(...))``, ``tuple(...)``/``enumerate(...)``/``.join(...)``
  over a set, or a list comprehension over one: with string keys the
  order depends on the per-process hash seed.  Array construction is
  the same bug with a numpy spelling — ``np.array(...)`` /
  ``np.asarray(...)`` / ``np.fromiter(...)`` over a set bakes hash-seed
  order into element positions, and every vectorised consumer downstream
  inherits it.  ``sorted(set(...))`` is the deterministic spelling and
  is not flagged; for order-preserving dedup use ``dict.fromkeys(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, register_rule

#: clock attributes, per base name (the ``time`` module and the
#: ``datetime`` module/class)
CLOCKS = {
    "time": frozenset({
        "time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
        "perf_counter_ns",
    }),
    "datetime": frozenset({"now", "utcnow", "today"}),
}

#: ordered-output constructors over an unordered set (``sorted`` and
#: ``min``/``max`` are order-insensitive and deliberately absent)
ORDERING_CALLS = frozenset({"list", "tuple", "enumerate"})

#: numpy array constructors whose element order is the iteration order
#: of their first argument
NP_ARRAY_CALLS = frozenset({"array", "asarray", "fromiter"})

#: the conventional and the canonical spelling of the numpy module
NUMPY_NAMES = frozenset({"np", "numpy"})

#: seeded-generator machinery allowed under ``np.random`` — everything
#: else there (``rand``, ``shuffle``, ``seed``, ...) is a draw from, or
#: a mutation of, numpy's process-global legacy state
NP_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence"})


def _is_set_expr(node: ast.expr) -> bool:
    """A value of set type, syntactically: ``set(...)``/``frozenset(...)``
    calls, set literals, set comprehensions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_np_random(node: ast.expr) -> bool:
    """The expression ``np.random`` / ``numpy.random``, syntactically."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in NUMPY_NAMES
    )


@register_rule("determinism")
class DeterminismRule:
    name = "determinism"
    description = (
        "no wall-clock values, unseeded random, id() keys, or "
        "set-iteration-ordered output in core/, schedule/, harness/"
    )
    scope = ("core/*", "schedule/*", "harness/*")
    exclude = ()

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            yield from self._clocks_and_random(src, node)
            yield from self._np_random(src, node)
            yield from self._id_calls(src, node)
            yield from self._set_ordering(src, node)

    # -- wall clocks and process-global randomness ---------------------------

    def _clocks_and_random(self, src, node) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            base = node.value.id
            if node.attr in CLOCKS.get(base, ()):
                yield src.finding(
                    node, self.name,
                    f"{base}.{node.attr} is a wall-clock value; plans and "
                    "memo keys must be pure functions of their inputs",
                )
            elif base == "random" and node.attr != "Random":
                yield src.finding(
                    node, self.name,
                    f"random.{node.attr} draws from process-global state; "
                    "use a seeded random.Random(seed) instance",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            yield src.finding(
                node, self.name,
                "importing from the random module pulls process-global "
                "state; construct a seeded random.Random(seed) instead",
            )

    # -- numpy randomness outside a seeded Generator -------------------------

    def _np_random(self, src, node) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute) and _is_np_random(node.value):
            if node.attr not in NP_RANDOM_ALLOWED:
                yield src.finding(
                    node, self.name,
                    f"np.random.{node.attr} uses numpy's process-global "
                    "legacy state; draw from a seeded "
                    "np.random.default_rng(seed) Generator",
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "default_rng"
            and _is_np_random(node.func.value)
            and not node.args
            and not node.keywords
        ):
            yield src.finding(
                node, self.name,
                "np.random.default_rng() without a seed pulls OS entropy; "
                "pass an explicit seed",
            )
        elif isinstance(node, ast.ImportFrom) and node.module == (
            "numpy.random"
        ):
            bad = sorted(
                a.name for a in node.names
                if a.name not in NP_RANDOM_ALLOWED
            )
            if bad:
                yield src.finding(
                    node, self.name,
                    f"importing {', '.join(bad)} from numpy.random pulls "
                    "process-global state; use a seeded "
                    "np.random.default_rng(seed) Generator",
                )

    # -- id() as a key -------------------------------------------------------

    def _id_calls(self, src, node) -> Iterator[Finding]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            yield src.finding(
                node, self.name,
                "id() is a process-local address; unfit for sort or "
                "cache keys that feed reproducible output",
            )

    # -- set iteration feeding ordered output --------------------------------

    def _set_ordering(self, src, node) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
            node.iter
        ):
            yield src.finding(
                node, self.name,
                "iterating a set in a for loop orders output by the "
                "per-process hash seed; use sorted(...) or "
                "dict.fromkeys(...) for order-preserving dedup",
            )
        elif isinstance(node, ast.ListComp) and _is_set_expr(
            node.generators[0].iter
        ):
            yield src.finding(
                node, self.name,
                "a list comprehension over a set inherits hash-seed "
                "order; use sorted(...) or dict.fromkeys(...)",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            direct = (
                isinstance(func, ast.Name)
                and func.id in ORDERING_CALLS
            )
            join = isinstance(func, ast.Attribute) and func.attr == "join"
            np_ctor = (
                isinstance(func, ast.Attribute)
                and func.attr in NP_ARRAY_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in NUMPY_NAMES
            )
            if (
                (direct or join or np_ctor)
                and node.args
                and _is_set_expr(node.args[0])
            ):
                if direct:
                    what = func.id
                elif np_ctor:
                    what = f"np.{func.attr}"
                else:
                    what = "str.join"
                yield src.finding(
                    node, self.name,
                    f"{what}() over a set orders output by the "
                    "per-process hash seed; sort first",
                )
