"""Built-in invariant rules.

Importing this package registers every rule with the engine registry
(the same import-for-effect pattern the ``FillStrategy`` and
``ScheduleFamily`` registries use).  Adding a rule means adding a
module here with a ``@register_rule("my-rule")`` class and importing it
below — nothing else in the engine or CLI changes.
"""

from . import (  # noqa: F401  (import-for-effect: registry population)
    cache_globals,
    determinism,
    float_equality,
    lock_discipline,
    registry_bypass,
)

__all__ = [
    "cache_globals",
    "determinism",
    "float_equality",
    "lock_discipline",
    "registry_bypass",
]
