"""Rule ``float-equality``: no bare ``==``/``!=`` between float values.

Every cross-implementation check in this repo — simulator vs reference,
lookahead vs oracle, golden sweeps — compares floats either through the
sanctioned equivalence module (:mod:`repro.engine.equivalence`) or
through exact ``float.hex()`` golden serialization, precisely because a
bare ``==`` between independently-derived float expressions is a
rounding-order landmine.  This rule flags equality comparisons where
either side is *syntactically* float-typed:

* a float literal (``x == 0.5``),
* a ``float(...)`` conversion,
* a true division (``a / b == c``),
* a unary sign on any of the above.

The heuristic is deliberately syntactic — no type inference — so it
cannot see every float comparison, but it catches the ways one is
usually written.  Exact *sentinel* comparisons (a ``0.0`` that means
"disabled" or "nothing left", never the result of arithmetic on the
other side) are sanctioned case by case with
``# repro: allow[float-equality] <why exactness holds>``.

:mod:`repro.engine.equivalence` itself is out of scope: it is the one
module whose job is defining float comparison.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, ModuleSource, register_rule


def _is_floaty(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        return isinstance(node.op, ast.Div)
    return False


@register_rule("float-equality")
class FloatEqualityRule:
    name = "float-equality"
    description = (
        "no bare ==/!= between float expressions outside the "
        "equivalence oracle; sentinels need an allow rationale"
    )
    scope = ("*",)
    exclude = ("engine/equivalence.py",)

    def check(self, src: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    yield src.finding(
                        node, self.name,
                        "bare float ==/!= is a rounding-order landmine; "
                        "compare via math.isclose, an exact integer/"
                        "Fraction domain, or the equivalence oracle",
                    )
                    break
