"""Paper-vs-measured recording used by the benchmark suite.

Benchmarks register :class:`Comparison` rows; the collected records can
be rendered as the EXPERIMENTS.md tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .tables import format_table


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    experiment: str        # e.g. "Table 1", "Fig. 13a"
    setting: str           # e.g. "SD v2.1, B=64"
    metric: str            # e.g. "NT/T ratio"
    paper: float | None    # None when the paper gives no number
    measured: float
    unit: str = ""

    @property
    def deviation(self) -> float | None:
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / abs(self.paper)


@dataclass
class ExperimentReport:
    """A set of comparisons for one table/figure."""

    name: str
    comparisons: list[Comparison] = field(default_factory=list)

    def add(
        self,
        setting: str,
        metric: str,
        paper: float | None,
        measured: float,
        unit: str = "",
    ) -> None:
        self.comparisons.append(
            Comparison(self.name, setting, metric, paper, measured, unit)
        )

    def to_table(self) -> str:
        rows = []
        for c in self.comparisons:
            dev = "-" if c.deviation is None else f"{100 * c.deviation:+.1f}%"
            paper = "-" if c.paper is None else f"{c.paper:g}{c.unit}"
            rows.append(
                [c.setting, c.metric, paper, f"{c.measured:g}{c.unit}", dev]
            )
        return format_table(
            ["setting", "metric", "paper", "measured", "deviation"],
            rows,
            title=self.name,
        )

    def max_abs_deviation(self) -> float:
        devs = [abs(c.deviation) for c in self.comparisons if c.deviation is not None]
        return max(devs, default=0.0)
