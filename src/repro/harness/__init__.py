"""Experiment drivers, figure data generators and reporting."""

from .figures import (
    BubbleGridCell,
    FamilyBubbleRow,
    LongLayerSeries,
    ablation_throughputs,
    bubble_ratio_by_family,
    bubble_ratio_comparison,
    bubble_ratio_grid,
    longest_bubble_by_stages,
    nt_layer_times,
    top_layer_series,
)
from .report import Comparison, ExperimentReport
from .tables import format_bars, format_table, oom_or, pct
from .throughput import (
    BENCH_PLANNER_OPTIONS,
    CDM_IMAGENET_BATCHES,
    CDM_LSUN_BATCHES,
    SD_BATCHES,
    CDMThroughputSweep,
    SweepCell,
    ThroughputSweep,
    cells_to_rows,
    sweep_headers,
)

__all__ = [
    "BubbleGridCell",
    "FamilyBubbleRow",
    "LongLayerSeries",
    "ablation_throughputs",
    "bubble_ratio_by_family",
    "bubble_ratio_comparison",
    "bubble_ratio_grid",
    "longest_bubble_by_stages",
    "nt_layer_times",
    "top_layer_series",
    "Comparison",
    "ExperimentReport",
    "format_bars",
    "format_table",
    "oom_or",
    "pct",
    "BENCH_PLANNER_OPTIONS",
    "CDM_IMAGENET_BATCHES",
    "CDM_LSUN_BATCHES",
    "SD_BATCHES",
    "CDMThroughputSweep",
    "SweepCell",
    "ThroughputSweep",
    "cells_to_rows",
    "sweep_headers",
]
