"""Throughput sweep drivers shared by the Fig. 13 benchmarks.

One :class:`ThroughputSweep` evaluates every system of §6 on a grid of
cluster scales and global batch sizes, returning rows ready for table
rendering.  The planner search space is restricted to the paper's
practical range (pipeline groups within a machine, up to 4 stages) to
keep benchmark runtimes reasonable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from ..baselines import (
    CDMStrategyConfig,
    DataParallelBaseline,
    GPipeBaseline,
    ParallelCDMBaseline,
    SequentialCDMBaseline,
    SPPBaseline,
    Zero3Baseline,
)
from ..cluster.topology import ClusterSpec, p4de_cluster
from ..core.planner import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from ..errors import ConfigurationError, ReproError
from ..models.graph import ModelSpec
from ..profiling.profiler import Profiler
from ..profiling.records import ProfileDB

#: planner search space used by all Fig. 13 benchmarks
BENCH_PLANNER_OPTIONS = PlannerOptions(
    max_stages=4,
    micro_batch_counts=(1, 2, 3, 4, 6, 8),
    group_sizes=(2, 4, 8),
)

#: the paper's per-scale batch grids (Fig. 13a/b)
SD_BATCHES: Mapping[int, tuple[int, ...]] = {
    8: (64, 128, 256, 384),
    16: (128, 256, 512, 768),
    32: (256, 512, 1024, 1536),
    64: (512, 1024, 2048, 3072),
}

#: Fig. 13c batch grids (CDM-LSUN)
CDM_LSUN_BATCHES: Mapping[int, tuple[int, ...]] = {
    8: (128, 256, 384, 512),
    16: (256, 512, 768, 1024),
    32: (512, 1024, 1536, 2048),
    64: (1024, 2048, 3072, 4096),
}

#: Fig. 13d batch grids (CDM-ImageNet)
CDM_IMAGENET_BATCHES: Mapping[int, tuple[int, ...]] = {
    8: (64, 128, 256, 384),
    16: (128, 256, 512, 768),
    32: (256, 512, 1024, 1536),
    64: (512, 1024, 2048, 3072),
}


@dataclass(frozen=True)
class SweepCell:
    """One (system, scale, batch) measurement."""

    system: str
    gpus: int
    batch: int
    throughput: float      # samples/s; 0.0 marks OOM / infeasible
    oom: bool
    label: str = ""


def _cell(system: str, gpus: int, batch: int, throughput: float, oom: bool,
          label: str = "") -> SweepCell:
    return SweepCell(system=system, gpus=gpus, batch=batch,
                     throughput=0.0 if oom else throughput, oom=oom, label=label)


class ThroughputSweep:
    """Evaluates all single-backbone systems over a scale x batch grid."""

    def __init__(
        self,
        model_factory: Callable[[], ModelSpec],
        *,
        machine_counts: Sequence[int] = (1, 2, 4, 8),
        batches: Mapping[int, tuple[int, ...]] | None = None,
        planner_options: PlannerOptions = BENCH_PLANNER_OPTIONS,
        heterogeneous: bool = False,
        fill_strategy: str | None = None,
        schedule: str | None = None,
        caches: PlannerCaches | None = None,
    ):
        self.model = model_factory()
        self.machine_counts = tuple(machine_counts)
        self.batches = dict(batches or SD_BATCHES)
        # ``heterogeneous`` lets the planner (and SPP, which shares its
        # options) evaluate non-divisible (S, D) combos with per-stage
        # replica counts instead of skipping them; ``fill_strategy``
        # swaps the bubble-filling policy and ``schedule`` the pipeline
        # schedule family (registry names) for the whole sweep.
        if heterogeneous:
            planner_options = replace(
                planner_options, heterogeneous_replication=True
            )
        if fill_strategy is not None:
            planner_options = replace(
                planner_options, fill_strategy=fill_strategy
            )
        if schedule is not None:
            planner_options = replace(planner_options, schedule=schedule)
        self.planner_options = planner_options
        # Layer profiles depend only on the device model, not the scale.
        self.profile: ProfileDB = Profiler(p4de_cluster(1)).profile(self.model)
        # One memo store for the whole sweep: at each scale the planner
        # and the SPP baseline reuse each other's partitions and comm
        # costs (cache keys include the full ClusterSpec, so entries
        # from different scales never alias).  Callers may pass a shared
        # ``caches`` (e.g. a snapshot-warmed one) to reuse work across
        # sweeps.
        self.caches = caches if caches is not None else PlannerCaches()

    def _cluster(self, machines: int) -> ClusterSpec:
        return p4de_cluster(machines)

    def run(self) -> list[SweepCell]:
        """Evaluate DiffusionPipe, SPP, GPipe, DeepSpeed and ZeRO-3."""
        cells: list[SweepCell] = []
        for machines in self.machine_counts:
            cluster = self._cluster(machines)
            gpus = cluster.world_size
            planner = DiffusionPipePlanner(
                self.model, cluster, self.profile, options=self.planner_options,
                caches=self.caches,
            )
            spp = SPPBaseline(
                self.model, cluster, self.profile, options=self.planner_options,
                caches=self.caches,
            )
            gpipe = GPipeBaseline(self.model, cluster, self.profile)
            ddp = DataParallelBaseline(self.model, cluster, self.profile)
            zero = Zero3Baseline(self.model, cluster, self.profile)
            for batch in self.batches[gpus]:
                try:
                    ev = planner.plan(batch)
                    cells.append(
                        _cell("DiffusionPipe", gpus, batch, ev.plan.throughput,
                              False, ev.plan.config_label)
                    )
                except ConfigurationError:
                    cells.append(_cell("DiffusionPipe", gpus, batch, 0.0, True))
                for system, engine in (
                    ("SPP", spp),
                    ("GPipe", gpipe),
                    ("DeepSpeed", ddp),
                    ("DeepSpeed-ZeRO-3", zero),
                ):
                    try:
                        res = engine.run(batch)
                        cells.append(
                            _cell(system, gpus, batch, res.throughput, res.oom)
                        )
                    except ReproError:
                        cells.append(_cell(system, gpus, batch, 0.0, True))
        return cells


class CDMThroughputSweep:
    """Evaluates DiffusionPipe vs the -S/-P data-parallel CDM strategies."""

    def __init__(
        self,
        model_factory: Callable[[], ModelSpec],
        *,
        machine_counts: Sequence[int] = (1, 2, 4, 8),
        batches: Mapping[int, tuple[int, ...]] | None = None,
        planner_options: PlannerOptions = BENCH_PLANNER_OPTIONS,
        heterogeneous: bool = False,
        fill_strategy: str | None = None,
        schedule: str | None = None,
        caches: PlannerCaches | None = None,
    ):
        self.model = model_factory()
        self.machine_counts = tuple(machine_counts)
        self.batches = dict(batches or CDM_LSUN_BATCHES)
        # ``heterogeneous`` lets the planner evaluate non-divisible
        # (S, D) combos: the bidirectional partitioner assigns each
        # chain position its own replica count, shared by the co-located
        # down/up stages.  ``fill_strategy`` swaps the bubble-filling
        # policy and ``schedule`` the schedule family (registry names)
        # for the whole sweep.
        if heterogeneous:
            planner_options = replace(
                planner_options, heterogeneous_replication=True
            )
        if fill_strategy is not None:
            planner_options = replace(
                planner_options, fill_strategy=fill_strategy
            )
        if schedule is not None:
            planner_options = replace(planner_options, schedule=schedule)
        self.planner_options = planner_options
        self.profile: ProfileDB = Profiler(p4de_cluster(1)).profile(self.model)
        self.caches = caches if caches is not None else PlannerCaches()

    def run(self) -> list[SweepCell]:
        cells: list[SweepCell] = []
        for machines in self.machine_counts:
            cluster = p4de_cluster(machines)
            gpus = cluster.world_size
            planner = DiffusionPipePlanner(
                self.model, cluster, self.profile, options=self.planner_options,
                caches=self.caches,
            )
            engines = [
                SequentialCDMBaseline(self.model, cluster, self.profile,
                                      CDMStrategyConfig(zero3=False)),
                ParallelCDMBaseline(self.model, cluster, self.profile,
                                    CDMStrategyConfig(zero3=False)),
                SequentialCDMBaseline(self.model, cluster, self.profile,
                                      CDMStrategyConfig(zero3=True)),
                ParallelCDMBaseline(self.model, cluster, self.profile,
                                    CDMStrategyConfig(zero3=True)),
            ]
            for batch in self.batches[gpus]:
                try:
                    ev = planner.plan(batch)
                    cells.append(
                        _cell("DiffusionPipe", gpus, batch, ev.plan.throughput,
                              False, ev.plan.config_label)
                    )
                except ConfigurationError:
                    cells.append(_cell("DiffusionPipe", gpus, batch, 0.0, True))
                for engine in engines:
                    try:
                        res = engine.run(batch)
                        cells.append(
                            _cell(engine.name, gpus, batch, res.throughput, res.oom)
                        )
                    except ReproError:
                        cells.append(_cell(engine.name, gpus, batch, 0.0, True))
        return cells


def cells_to_rows(cells: Sequence[SweepCell]) -> list[list[str]]:
    """Pivot sweep cells into (gpus, batch) rows with one system per column."""
    systems = list(dict.fromkeys(c.system for c in cells))
    keys = sorted({(c.gpus, c.batch) for c in cells})
    by_key = {(c.system, c.gpus, c.batch): c for c in cells}
    rows = []
    for gpus, batch in keys:
        row = [str(gpus), str(batch)]
        for system in systems:
            c = by_key.get((system, gpus, batch))
            if c is None:
                row.append("-")
            elif c.oom:
                row.append("OOM")
            else:
                row.append(f"{c.throughput:.0f}")
        rows.append(row)
    return rows


def sweep_headers(cells: Sequence[SweepCell]) -> list[str]:
    systems = list(dict.fromkeys(c.system for c in cells))
    return ["GPUs", "Batch", *systems]
