"""Data generators for the paper's figures (4, 5, 6, 14, 15).

Each function returns plain data structures that the corresponding
benchmark renders and asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..cluster.topology import ClusterSpec
from ..core.planner import DiffusionPipePlanner, PlannerCaches, PlannerOptions
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.records import ProfileDB
from ..schedule import get_family
from ..schedule.simulator import simulate
from ..baselines.gpipe import GPipeBaseline
from ..baselines.spp import SPPBaseline


# -- Fig. 4: bubble-ratio grids ------------------------------------------------------


@dataclass(frozen=True)
class BubbleGridCell:
    """One (stages, micro-batches) point of the Fig. 4 grid."""

    num_stages: int
    num_micro: int
    ratio_of_iteration: float       # upper number of Fig. 4
    ratio_of_nt_time: float         # lower number of Fig. 4


def bubble_ratio_grid(
    model: ModelSpec,
    cluster: ClusterSpec,
    profile: ProfileDB,
    *,
    batch: int = 64,
    stage_counts: Sequence[int] = (2, 3, 4),
    micro_counts: Sequence[int] = (1, 2, 3, 4),
) -> list[BubbleGridCell]:
    """Reproduce Fig. 4's profiling setup: FIFO-1F1B backbone pipelining
    with the NT part executed data-parallel before the pipeline.

    The iteration time is pipeline + NT (upper ratio); the lower ratio
    divides total bubble device-time by the NT part's single-device
    full-batch execution time.
    """
    planner = DiffusionPipePlanner(
        model,
        cluster,
        profile,
        options=PlannerOptions(
            max_stages=max(stage_counts),
            enable_bubble_filling=False,
            check_memory=False,
        ),
    )
    nt_full = sum(
        profile.component_fwd_ms(c.name, batch) for c in model.non_trainable
    )
    cells = []
    for S in stage_counts:
        for M in micro_counts:
            partition = planner._partition(batch, S, S, M)
            stages = planner._stage_execs(
                partition.down, batch / M, sc=False,
                group_size=partition.group_size,
            )
            tasks = get_family("onef1b").build(stages, M)
            tl = simulate(tasks, S)
            nt_dp = sum(
                profile.component_fwd_ms(c.name, batch / S)
                for c in model.non_trainable
            )
            iteration = tl.makespan + nt_dp
            bubble_dev = tl.bubble_device_time()
            cells.append(
                BubbleGridCell(
                    num_stages=S,
                    num_micro=M,
                    ratio_of_iteration=bubble_dev / (iteration * S),
                    ratio_of_nt_time=bubble_dev / nt_full,
                )
            )
    return cells


# -- Fig. 5: non-trainable layer execution times ---------------------------------------


def nt_layer_times(
    model: ModelSpec, profile: ProfileDB, batch: float = 64
) -> list[tuple[str, int, float]]:
    """(component, global index, forward ms) of every frozen layer."""
    out = []
    idx = 0
    for comp in model.non_trainable:
        for i in range(profile.num_layers(comp.name)):
            out.append((comp.name, idx, profile.fwd_ms(comp.name, i, batch)))
            idx += 1
    return out


# -- Fig. 6: extra-long layers vs bubble sizes -----------------------------------------


@dataclass(frozen=True)
class LongLayerSeries:
    """Execution time of one top-k NT layer across batch sizes."""

    component: str
    layer: int
    batches: tuple[float, ...]
    times_ms: tuple[float, ...]


def top_layer_series(
    model: ModelSpec,
    profile: ProfileDB,
    *,
    top_k: int = 3,
    batches: Sequence[float] = (4, 8, 16, 24, 32, 48, 64),
) -> list[LongLayerSeries]:
    """Fig. 6's curves: the top-k longest NT layers over batch sizes."""
    ranked = sorted(
        nt_layer_times(model, profile, batch=max(batches)),
        key=lambda t: -t[2],
    )[:top_k]
    series = []
    layer_index_by_global: dict[int, tuple[str, int]] = {}
    idx = 0
    for comp in model.non_trainable:
        for i in range(profile.num_layers(comp.name)):
            layer_index_by_global[idx] = (comp.name, i)
            idx += 1
    for comp_name, gidx, _ in ranked:
        cname, layer = layer_index_by_global[gidx]
        times = tuple(profile.fwd_ms(cname, layer, b) for b in batches)
        series.append(
            LongLayerSeries(
                component=cname, layer=layer, batches=tuple(batches),
                times_ms=times,
            )
        )
    return series


def longest_bubble_by_stages(
    model: ModelSpec,
    cluster: ClusterSpec,
    profile: ProfileDB,
    *,
    batch: int = 64,
    num_micro: int = 4,
    stage_counts: Sequence[int] = (2, 3, 4),
) -> dict[int, float]:
    """Fig. 6's horizontal lines: the longest pipeline bubble per stage
    count (FIFO-1F1B, 4 micro-batches, batch 64).

    "Bubble" here is a per-device contiguous idle span — the gray blocks
    of Fig. 2 — which is the capacity an individual layer must fit into.
    """
    planner = DiffusionPipePlanner(
        model,
        cluster,
        profile,
        options=PlannerOptions(
            max_stages=max(stage_counts),
            enable_bubble_filling=False,
            check_memory=False,
        ),
    )
    out = {}
    for S in stage_counts:
        partition = planner._partition(batch, S, S, num_micro)
        stages = planner._stage_execs(
            partition.down, batch / num_micro, sc=False,
            group_size=partition.group_size,
        )
        tl = simulate(get_family("onef1b").build(stages, num_micro), S)
        longest = 0.0
        for dev in range(S):
            for span in tl.idle_spans(dev):
                longest = max(longest, span.duration)
        out[S] = longest
    return out


# -- Fig. 14: bubble ratios of DiffusionPipe vs GPipe vs SPP -----------------------------


def bubble_ratio_comparison(
    model: ModelSpec,
    cluster: ClusterSpec,
    profile: ProfileDB,
    *,
    batches: Sequence[int] = (256, 384),
    options: PlannerOptions | None = None,
    heterogeneous: bool = False,
) -> dict[str, dict[int, float]]:
    """Bubble ratio of the three pipeline systems at 8 GPUs."""
    options = options or PlannerOptions(
        max_stages=4, micro_batch_counts=(1, 2, 3, 4, 6, 8), group_sizes=(2, 4, 8)
    )
    if heterogeneous:
        options = replace(options, heterogeneous_replication=True)
    caches = PlannerCaches()
    planner = DiffusionPipePlanner(model, cluster, profile, options=options,
                                   caches=caches)
    spp = SPPBaseline(model, cluster, profile, options=options, caches=caches)
    gpipe = GPipeBaseline(model, cluster, profile)
    out: dict[str, dict[int, float]] = {
        "DiffusionPipe": {}, "GPipe": {}, "SPP": {},
    }
    for b in batches:
        out["DiffusionPipe"][b] = planner.plan(b).plan.bubble_ratio_filled
        out["SPP"][b] = spp.bubble_ratio(b)
        out["GPipe"][b] = gpipe.bubble_ratio(b)
    return out


# -- Fig. 15: ablation ---------------------------------------------------------------


def ablation_throughputs(
    model: ModelSpec,
    cluster: ClusterSpec,
    profile: ProfileDB,
    *,
    batches: Sequence[int] = (256, 384),
    options: PlannerOptions | None = None,
    heterogeneous: bool = False,
    fill_strategies: Sequence[str] = ("lookahead",),
) -> dict[str, dict[int, float]]:
    """DiffusionPipe vs partial-batch-disabled vs filling-disabled, plus
    one column per extra fill strategy (the §5 policy ablation).

    ``fill_strategies`` names registered
    :class:`~repro.core.fill_strategies.FillStrategy` variants to
    evaluate next to the paper's three Fig. 15 columns (the baseline
    ``DiffusionPipe`` column is the ``greedy`` strategy); pass ``()``
    to reproduce the paper's figure exactly.  Works for cascaded models
    too; with ``heterogeneous=True`` the planner admits non-divisible
    (S, D) combos for both the 1F1B and the bidirectional CDM
    partitioners.
    """
    base = options or PlannerOptions(
        max_stages=4, micro_batch_counts=(1, 2, 3, 4, 6, 8), group_sizes=(2, 4, 8)
    )
    if heterogeneous:
        base = replace(base, heterogeneous_replication=True)
    variants = {
        "DiffusionPipe": base,
        "Partial-batch disabled": replace(base, enable_partial_batch=False),
        "Bubble filling disabled": replace(base, enable_bubble_filling=False),
    }
    for strategy in fill_strategies:
        variants[f"Fill strategy: {strategy}"] = replace(
            base, fill_strategy=strategy
        )
    # The variants differ only in filling options, so they share every
    # partition (and, via the shared ``caches.timelines`` memo, every
    # simulated schedule).
    caches = PlannerCaches()
    out: dict[str, dict[int, float]] = {}
    for name, opts in variants.items():
        planner = DiffusionPipePlanner(model, cluster, profile, options=opts,
                                       caches=caches)
        out[name] = {}
        for b in batches:
            try:
                out[name][b] = planner.plan(b).plan.throughput
            except ConfigurationError:
                out[name][b] = 0.0
    return out


# -- Schedule families: bubble ratio per family ----------------------------------------


@dataclass(frozen=True)
class FamilyBubbleRow:
    """One schedule family's metrics at a fixed (D, S, M) point."""

    family: str
    bubble_ratio_unfilled: float
    bubble_ratio_filled: float
    fill_fraction: float
    throughput: float
    config_label: str


def bubble_ratio_by_family(
    model: ModelSpec,
    cluster: ClusterSpec,
    profile: ProfileDB,
    *,
    global_batch: int = 256,
    group_size: int = 8,
    num_stages: int = 4,
    num_micro: int = 8,
    families: Sequence[str] = (
        "gpipe", "onef1b", "interleaved", "zerobubble",
    ),
    options: PlannerOptions | None = None,
    caches: PlannerCaches | None = None,
) -> list[FamilyBubbleRow]:
    """Bubble ratio of each schedule family at one fixed configuration.

    Evaluating every family at the *same* (D, S, M) point isolates the
    schedule shape: best-throughput planning would let each family pick
    a different configuration and muddy the comparison.  Bubble filling
    runs with the caller's options (enabled by default), so the rows
    show both the raw schedule bubbles (``bubble_ratio_unfilled``) and
    what remains once the non-trainable part slides in.

    Expected ordering on the paper's zoo: ``zerobubble`` (W work hides
    the ramps) < ``interleaved`` (per-chunk ramps) < ``onef1b`` <
    ``gpipe`` on the unfilled ratio.
    """
    base = options or PlannerOptions()
    caches = caches if caches is not None else PlannerCaches()
    rows = []
    for fam in families:
        planner = DiffusionPipePlanner(
            model,
            cluster,
            profile,
            options=replace(base, schedule=fam),
            caches=caches,
        )
        ev = planner.evaluate(global_batch, group_size, num_stages, num_micro)
        if ev is None:
            raise ConfigurationError(
                f"schedule family {fam!r} is infeasible at "
                f"(D={group_size}, S={num_stages}, M={num_micro}) for "
                f"{model.name!r} at batch {global_batch}"
            )
        plan = ev.plan
        rows.append(
            FamilyBubbleRow(
                family=fam,
                bubble_ratio_unfilled=plan.bubble_ratio_unfilled,
                bubble_ratio_filled=plan.bubble_ratio_filled,
                fill_fraction=plan.fill.fill_fraction if plan.fill else 0.0,
                throughput=plan.throughput,
                config_label=plan.config_label,
            )
        )
    return rows
