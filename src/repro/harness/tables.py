"""ASCII table / bar rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt_row(row: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt_row(cells[0]))
    out.append(sep)
    out.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(out)


def format_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 50, unit: str = ""
) -> str:
    """Render a horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    finite = [v for v in values if v == v and v not in (float("inf"),)]
    vmax = max(finite, default=1.0) or 1.0
    lw = max((len(l) for l in labels), default=0)
    lines = []
    for label, v in zip(labels, values):
        # repro: allow[float-equality] inf is an exact OOM sentinel
        if v != v or v == float("inf"):
            bar, val = "(oom)", "-"
        else:
            bar = "#" * max(int(v / vmax * width), 0)
            val = f"{v:.1f}{unit}"
        lines.append(f"{label.rjust(lw)} |{bar} {val}")
    return "\n".join(lines)


def pct(x: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * x:.{digits}f}%"


def oom_or(value: float, fmt: str = "{:.0f}") -> str:
    """Format a throughput cell, showing OOM for infeasible points."""
    # repro: allow[float-equality] 0.0/inf are exact OOM sentinels
    if value != value or value in (float("inf"),) or value == 0.0:
        return "OOM"
    return fmt.format(value)
