"""Unit helpers and physical constants.

All internal times are in **milliseconds**, sizes in **bytes**, bandwidths
in **bytes per millisecond**.  These helpers exist so that call sites can
say ``GB(80)`` or ``gbps_to_bytes_per_ms(400)`` instead of sprinkling
magic powers of two around.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------

KB = 2**10
MB = 2**20
GB = 2**30


def kb(n: float) -> float:
    """``n`` kibibytes in bytes."""
    return float(n) * KB


def mb(n: float) -> float:
    """``n`` mebibytes in bytes."""
    return float(n) * MB


def gb(n: float) -> float:
    """``n`` gibibytes in bytes."""
    return float(n) * GB


# ---------------------------------------------------------------------------
# Times
# ---------------------------------------------------------------------------

MS = 1.0
US = 1e-3
SECOND = 1e3


def seconds(ms_value: float) -> float:
    """Convert milliseconds to seconds."""
    return ms_value / SECOND


def ms_from_seconds(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * SECOND


# ---------------------------------------------------------------------------
# Bandwidths
# ---------------------------------------------------------------------------


def gbps_to_bytes_per_ms(gbit_per_s: float) -> float:
    """Convert network bandwidth in Gbit/s to bytes/ms.

    400 Gb/s (EFA on p4de) -> 400e9 bits/s = 50e9 B/s = 50e6 B/ms.
    """
    return gbit_per_s * 1e9 / 8.0 / 1e3


def gBps_to_bytes_per_ms(gbyte_per_s: float) -> float:
    """Convert bandwidth in GB/s (bytes!) to bytes/ms.

    600 GB/s (NVSwitch) -> 600e9 B/s = 600e6 B/ms.
    """
    return gbyte_per_s * 1e9 / 1e3


def tflops_to_flops_per_ms(tflops: float) -> float:
    """Convert TFLOP/s to FLOP/ms."""
    return tflops * 1e12 / 1e3


def fmt_ms(t: float) -> str:
    """Human-readable time."""
    if t >= 1e3:
        return f"{t / 1e3:.2f} s"
    if t >= 1.0:
        return f"{t:.2f} ms"
    return f"{t * 1e3:.1f} us"


def fmt_bytes(n: float) -> str:
    """Human-readable size."""
    if n >= GB:
        return f"{n / GB:.2f} GiB"
    if n >= MB:
        return f"{n / MB:.2f} MiB"
    if n >= KB:
        return f"{n / KB:.2f} KiB"
    return f"{n:.0f} B"
