"""Stable Diffusion v2.1 model description.

Structure (paper Fig. 1): a trainable U-Net backbone conditioned on a
frozen CLIP text encoder and a frozen VAE image encoder, trained at
512x512 inputs (64x64 latents) with self-conditioning enabled (Table 5).

Calibration (see :mod:`repro.models.zoo.calibration`): trainable
forward+backward = 2475 ms and non-trainable forward = 1089 ms at batch
size 64 on one A100, which reproduces Table 1 row 1 (38/41/43/44 %) and,
through the pipeline simulator, the Fig. 4 bubble grid.  The per-layer
split follows Fig. 5a: ~22 sub-10 ms text-encoder layers, moderate
(< 30 ms) VAE layers, and extra-long (> 400 ms) early VAE blocks at high
resolution.
"""

from __future__ import annotations

from ...cluster.device import DeviceSpec, a100_80gb
from ..component import ComponentSpec
from ..graph import ModelSpec
from .calibration import layers_from_time_weights

# -- calibration targets at B = 64 on A100 (ms) -----------------------------

#: trainable U-Net forward+backward total
UNET_TRAIN_MS = 2475.0
#: per-layer forward fixed overhead of backbone blocks (backward pays 2x)
UNET_LAYER_OVERHEAD_MS = 0.79
#: frozen CLIP text encoder forward total
TEXT_ENCODER_MS = 47.0
#: frozen VAE image encoder forward total
VAE_ENCODER_MS = 1042.0

#: parameter bytes (fp16): U-Net ~865 M params, CLIP-H text ~340 M, VAE ~34 M
UNET_PARAM_BYTES = 865e6 * 2
TEXT_PARAM_BYTES = 340e6 * 2
VAE_PARAM_BYTES = 34e6 * 2

#: activation handoff sizes per sample (latent-resolution feature maps)
UNET_OUTPUT_BYTES = 320 * 64 * 64 * 2.0
TEXT_OUTPUT_BYTES = 77 * 1024 * 2.0
VAE_OUTPUT_BYTES = 4 * 64 * 64 * 2.0

#: stored-activation bytes per sample per backbone block, calibrated so
#: that DDP training at 512x512 matches the published memory footprint
#: (~24.3 GB at local batch 8, Rombach et al.; OOM near local batch 48
#: on 80 GB devices as in Fig. 13a).  Each block retains many
#: intermediate feature/attention maps, hence >> its output size.
UNET_ACTIVATION_BYTES = 42e6

#: U-Net block weights: conv_in, 4 down blocks per resolution tier
#: (64/32/16/8), 2 mid, mirrored up path with skip-concat overhead, conv_out.
_UNET_WEIGHTS = (
    [0.5]
    + [1.6] * 4   # down, latent res 64
    + [1.3] * 4   # down, res 32
    + [1.0] * 4   # down, res 16
    + [0.8] * 2   # down, res 8
    + [0.9] * 2   # mid
    + [0.9] * 3   # up, res 8
    + [1.1] * 4   # up, res 16
    + [1.4] * 4   # up, res 32
    + [1.7] * 4   # up, res 64
    + [0.5]
)

#: CLIP text-encoder weights: embedding, 21 transformer blocks of slightly
#: varying cost, final layer-norm + projection (23 layers, Fig. 5a idx 0-22).
_TEXT_WEIGHTS = [0.3] + [2.0 + 0.07 * (i % 5) for i in range(21)] + [0.6]

#: VAE encoder weights, proportional to per-layer times (ms) at B=64.
#: The 420/260/150 entries are the paper's extra-long layers (Fig. 5a,
#: Fig. 6): early residual blocks at 512x512 resolution.
_VAE_WEIGHTS = [
    12.0,   # conv_in @512
    420.0,  # down0 res-block 0 (extra-long, top-1 in Fig. 6)
    260.0,  # down0 res-block 1 (top-2)
    25.0,   # down0 downsample
    150.0,  # down1 res-block 0 (top-3)
    80.0,   # down1 res-block 1
    12.0,   # down1 downsample
    28.0,   # down2 res-block 0
    26.0,   # down2 res-block 1
    6.0,    # down2 downsample
    14.0,   # down3 res-block 0
    13.0,   # down3 res-block 1
    8.0,    # mid res-block 0
    9.0,    # mid attention
    8.0,    # mid res-block 1
    3.0,    # norm_out
    4.0,    # conv_out
    2.0,    # quant_conv
    1.0,    # latent sampling
]


def _unet_forward_target_ms(
    total_train_ms: float, n_layers: int, overhead_ms: float, device: DeviceSpec
) -> float:
    """Forward-time total that yields ``total_train_ms`` forward+backward.

    With backward compute = 2x forward compute and backward fixed
    overhead = 2x forward fixed overhead:
    ``train = n (2 ko + 3 fo) + 3 C`` and ``fwd = n (ko + fo) + C``.
    """
    ko = device.kernel_overhead_ms
    compute = (total_train_ms - n_layers * (2 * ko + 3 * overhead_ms)) / 3.0
    return n_layers * (ko + overhead_ms) + compute


def unet_backbone(device: DeviceSpec | None = None) -> ComponentSpec:
    """The trainable U-Net backbone."""
    device = device or a100_80gb()
    fwd_total = _unet_forward_target_ms(
        UNET_TRAIN_MS, len(_UNET_WEIGHTS), UNET_LAYER_OVERHEAD_MS, device
    )
    layers = layers_from_time_weights(
        "unet_block",
        _UNET_WEIGHTS,
        fwd_total,
        trainable=True,
        param_bytes_total=UNET_PARAM_BYTES,
        output_bytes_per_sample=UNET_OUTPUT_BYTES,
        activation_bytes_per_sample=UNET_ACTIVATION_BYTES,
        device=device,
        fixed_overhead_ms=UNET_LAYER_OVERHEAD_MS,
    )
    return ComponentSpec(
        name="unet",
        layers=layers,
        trainable=True,
        depends_on=("text_encoder", "vae_encoder"),
    )


def text_encoder(device: DeviceSpec | None = None) -> ComponentSpec:
    """The frozen CLIP text encoder."""
    layers = layers_from_time_weights(
        "clip_text",
        _TEXT_WEIGHTS,
        TEXT_ENCODER_MS,
        trainable=False,
        param_bytes_total=TEXT_PARAM_BYTES,
        output_bytes_per_sample=TEXT_OUTPUT_BYTES,
        device=device or a100_80gb(),
        fixed_overhead_ms=0.03,
    )
    return ComponentSpec(name="text_encoder", layers=layers, trainable=False)


def vae_encoder(device: DeviceSpec | None = None) -> ComponentSpec:
    """The frozen VAE image encoder (contains the extra-long layers)."""
    layers = layers_from_time_weights(
        "vae_enc",
        _VAE_WEIGHTS,
        VAE_ENCODER_MS,
        trainable=False,
        param_bytes_total=VAE_PARAM_BYTES,
        output_bytes_per_sample=VAE_OUTPUT_BYTES,
        device=device or a100_80gb(),
        fixed_overhead_ms=0.05,
    )
    return ComponentSpec(name="vae_encoder", layers=layers, trainable=False)


def stable_diffusion_v2_1(
    device: DeviceSpec | None = None, self_conditioning: bool = True
) -> ModelSpec:
    """Stable Diffusion v2.1 as trained in the paper (Table 5).

    ``self_conditioning=False`` gives the "vanilla case" of Fig. 13a.
    """
    device = device or a100_80gb()
    return ModelSpec(
        name="stable-diffusion-v2.1",
        components=[
            text_encoder(device),
            vae_encoder(device),
            unet_backbone(device),
        ],
        backbone_names=("unet",),
        self_conditioning=self_conditioning,
        self_conditioning_prob=0.5,
    )
