"""Parametric synthetic models for tests, examples and ablations.

These builders create small, fully-controlled :class:`ModelSpec` objects
whose layer times are easy to reason about, so unit and property tests
can assert exact scheduling behaviour without zoo-calibration noise.
"""

from __future__ import annotations

from typing import Sequence

from ...cluster.device import DeviceSpec, a100_80gb
from ..component import ComponentSpec
from ..graph import ModelSpec
from ..layers import LayerSpec
from .calibration import flops_for_forward_time


def timed_layer(
    name: str,
    forward_ms: float,
    *,
    batch_size: float = 64,
    device: DeviceSpec | None = None,
    trainable: bool = True,
    param_bytes: float = 1e6,
    output_bytes_per_sample: float = 1e4,
) -> LayerSpec:
    """A layer whose forward time is ``forward_ms`` at ``batch_size``.

    The inversion is exact at the anchor batch size; at other batch
    sizes the time follows the device's utilisation curve.
    """
    device = device or a100_80gb()
    flops = flops_for_forward_time(forward_ms, batch_size, device)
    return LayerSpec(
        name=name,
        flops_per_sample=flops,
        param_bytes=param_bytes,
        output_bytes_per_sample=output_bytes_per_sample,
        trainable=trainable,
    )


def timed_component(
    name: str,
    forward_times_ms: Sequence[float],
    *,
    trainable: bool = False,
    depends_on: Sequence[str] = (),
    batch_size: float = 64,
    device: DeviceSpec | None = None,
    param_bytes_per_layer: float = 1e6,
    output_bytes_per_sample: float = 1e4,
) -> ComponentSpec:
    """A component whose layer-forward times are given explicitly."""
    layers = [
        timed_layer(
            f"{name}_l{i}",
            t,
            batch_size=batch_size,
            device=device,
            trainable=trainable,
            param_bytes=param_bytes_per_layer,
            output_bytes_per_sample=output_bytes_per_sample,
        )
        for i, t in enumerate(forward_times_ms)
    ]
    return ComponentSpec(
        name=name, layers=layers, trainable=trainable, depends_on=depends_on
    )


def uniform_model(
    *,
    backbone_layers: int = 8,
    backbone_layer_ms: float = 10.0,
    encoder_layers: int = 6,
    encoder_layer_ms: float = 4.0,
    device: DeviceSpec | None = None,
    self_conditioning: bool = False,
) -> ModelSpec:
    """One backbone of uniform layers + one frozen encoder.

    The workhorse of the unit tests: partitioning a uniform backbone has
    a known optimal answer (equal splits).
    """
    device = device or a100_80gb()
    backbone = timed_component(
        "backbone",
        [backbone_layer_ms] * backbone_layers,
        trainable=True,
        depends_on=("encoder",),
        device=device,
    )
    encoder = timed_component(
        "encoder", [encoder_layer_ms] * encoder_layers, device=device
    )
    return ModelSpec(
        name="uniform-synthetic",
        components=[encoder, backbone],
        backbone_names=("backbone",),
        self_conditioning=self_conditioning,
    )


def two_encoder_model(
    *,
    backbone_layers: int = 8,
    backbone_layer_ms: float = 12.0,
    device: DeviceSpec | None = None,
) -> ModelSpec:
    """A backbone + two frozen encoders with a dependency between them.

    ``encoder_b`` depends on ``encoder_a``, exercising the ready-set
    logic of the bubble filler.
    """
    device = device or a100_80gb()
    enc_a = timed_component("encoder_a", [3.0, 5.0, 2.0], device=device)
    enc_b = timed_component(
        "encoder_b", [4.0, 6.0], depends_on=("encoder_a",), device=device
    )
    backbone = timed_component(
        "backbone",
        [backbone_layer_ms] * backbone_layers,
        trainable=True,
        depends_on=("encoder_a", "encoder_b"),
        device=device,
    )
    return ModelSpec(
        name="two-encoder-synthetic",
        components=[enc_a, enc_b, backbone],
        backbone_names=("backbone",),
    )


def cascaded_model(
    *,
    layers_a: int = 6,
    layers_b: int = 6,
    layer_ms_a: float = 10.0,
    layer_ms_b: float = 12.0,
    device: DeviceSpec | None = None,
) -> ModelSpec:
    """A two-backbone cascaded model for bidirectional-pipeline tests."""
    device = device or a100_80gb()
    embed = timed_component("embed", [1.0], device=device)
    bb_a = timed_component(
        "backbone_a",
        [layer_ms_a] * layers_a,
        trainable=True,
        depends_on=("embed",),
        device=device,
    )
    bb_b = timed_component(
        "backbone_b",
        [layer_ms_b] * layers_b,
        trainable=True,
        depends_on=("embed",),
        device=device,
    )
    return ModelSpec(
        name="cascaded-synthetic",
        components=[embed, bb_a, bb_b],
        backbone_names=("backbone_a", "backbone_b"),
    )


def long_layer_model(
    *,
    long_layer_ms: float = 400.0,
    short_layer_ms: float = 5.0,
    short_layers: int = 10,
    backbone_layers: int = 8,
    backbone_layer_ms: float = 40.0,
    device: DeviceSpec | None = None,
) -> ModelSpec:
    """A model with one extra-long frozen layer that cannot fit in any
    bubble at full batch — the partial-batch test case (§5, Fig. 12)."""
    device = device or a100_80gb()
    encoder = timed_component(
        "encoder",
        [short_layer_ms] * (short_layers // 2)
        + [long_layer_ms]
        + [short_layer_ms] * (short_layers - short_layers // 2),
        device=device,
    )
    backbone = timed_component(
        "backbone",
        [backbone_layer_ms] * backbone_layers,
        trainable=True,
        depends_on=("encoder",),
        device=device,
    )
    return ModelSpec(
        name="long-layer-synthetic",
        components=[encoder, backbone],
        backbone_names=("backbone",),
    )
