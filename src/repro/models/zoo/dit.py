"""Diffusion-transformer (DiT) model — the paper's §7 extension target.

The conclusion of the paper names "training or fine-tuning diffusion
models with transformer backbones (PixArt-alpha, SiT, ...)" as a direct
extension of the bubble-filling design.  This module provides a
PixArt-alpha-style model: a DiT-XL/2 trainable backbone (28 uniform
transformer blocks — ideal for pipelining) conditioned on a *frozen
T5-XXL text encoder*, whose forward pass is far heavier than CLIP's,
plus the usual frozen VAE.

There are no paper tables to calibrate against; the layer times follow
the same device cost model as the rest of the zoo with architecture-
derived relative weights.  Uniform transformer blocks make the DP
partitioner's job easy and the frozen part large — the configuration
where bubble filling shines (see
``benchmarks/test_ext_dit_throughput.py``).
"""

from __future__ import annotations

from ...cluster.device import DeviceSpec, a100_80gb
from ..component import ComponentSpec
from ..graph import ModelSpec
from .calibration import layers_from_time_weights
from .stable_diffusion import _unet_forward_target_ms, vae_encoder

#: calibration targets at B = 64 on one A100 (ms)
DIT_TRAIN_MS = 2000.0
DIT_LAYER_OVERHEAD_MS = 0.4
T5_ENCODER_MS = 420.0

#: DiT-XL ~675 M params; T5-XXL encoder ~4.6 B params (fp16)
DIT_PARAM_BYTES = 675e6 * 2
T5_PARAM_BYTES = 4.6e9 * 2

#: 32x32 latent patches x 1152 hidden; T5 at 120 tokens x 4096
DIT_OUTPUT_BYTES = 1024 * 1152 * 2.0
T5_OUTPUT_BYTES = 120 * 4096 * 2.0

#: stored activations per block per sample (attention maps dominate)
DIT_ACTIVATION_BYTES = 30e6

#: 28 uniform DiT blocks + embedding + final layer
_DIT_WEIGHTS = [0.4] + [1.0] * 28 + [0.4]

#: T5-XXL encoder: embedding + 24 heavy blocks + final norm
_T5_WEIGHTS = [0.3] + [1.0] * 24 + [0.2]


def dit_backbone(device: DeviceSpec | None = None) -> ComponentSpec:
    """The trainable DiT-XL/2 backbone."""
    device = device or a100_80gb()
    fwd_total = _unet_forward_target_ms(
        DIT_TRAIN_MS, len(_DIT_WEIGHTS), DIT_LAYER_OVERHEAD_MS, device
    )
    layers = layers_from_time_weights(
        "dit_block",
        _DIT_WEIGHTS,
        fwd_total,
        trainable=True,
        param_bytes_total=DIT_PARAM_BYTES,
        output_bytes_per_sample=DIT_OUTPUT_BYTES,
        activation_bytes_per_sample=DIT_ACTIVATION_BYTES,
        device=device,
        fixed_overhead_ms=DIT_LAYER_OVERHEAD_MS,
    )
    return ComponentSpec(
        name="dit",
        layers=layers,
        trainable=True,
        depends_on=("t5_encoder", "vae_encoder"),
    )


def t5_encoder(device: DeviceSpec | None = None) -> ComponentSpec:
    """The frozen T5-XXL text encoder (heavy, uniform blocks)."""
    layers = layers_from_time_weights(
        "t5_block",
        _T5_WEIGHTS,
        T5_ENCODER_MS,
        trainable=False,
        param_bytes_total=T5_PARAM_BYTES,
        output_bytes_per_sample=T5_OUTPUT_BYTES,
        device=device or a100_80gb(),
        fixed_overhead_ms=0.05,
    )
    return ComponentSpec(name="t5_encoder", layers=layers, trainable=False)


def dit_xl(device: DeviceSpec | None = None, self_conditioning: bool = False) -> ModelSpec:
    """PixArt-alpha-style DiT model: DiT-XL/2 + frozen T5-XXL + VAE."""
    device = device or a100_80gb()
    return ModelSpec(
        name="dit-xl-pixart",
        components=[
            t5_encoder(device),
            vae_encoder(device),
            dit_backbone(device),
        ],
        backbone_names=("dit",),
        self_conditioning=self_conditioning,
        self_conditioning_prob=0.5,
    )
