"""ControlNet v1.0 model description.

ControlNet adds a trainable control branch (a copy of the U-Net encoder
half with zero-convolutions) on top of a locked Stable Diffusion model.
The frozen part is large relative to the trainable branch: Table 1 row 2
reports the non-trainable forward at 76-89 % of the trainable
forward+backward time, and Fig. 5b shows ~65 frozen layers.

Modelling choice (documented in DESIGN.md): the gradient path through
the locked U-Net decoder is folded into the trainable branch's
calibrated cost, because the paper's published ratios (Table 1) and
layer counts (Fig. 5b) identify the *scheduled* non-trainable part as
text encoder + VAE + condition (hint) encoder only.

Calibration at B = 64 on one A100: trainable forward+backward = 1336 ms,
non-trainable forward = 1189 ms (ratio 89 %); the fit reproduces the
full Table 1 row (76/81/86/89 %).
"""

from __future__ import annotations

from ...cluster.device import DeviceSpec, a100_80gb
from ..component import ComponentSpec
from ..graph import ModelSpec
from .calibration import layers_from_time_weights
from .stable_diffusion import (
    _unet_forward_target_ms,
    text_encoder,
    vae_encoder,
)

# -- calibration targets at B = 64 on A100 (ms) -----------------------------

#: trainable control branch forward+backward total
CONTROL_TRAIN_MS = 1336.0
#: per-layer forward fixed overhead of control-branch blocks
CONTROL_LAYER_OVERHEAD_MS = 0.79
#: frozen condition (hint) encoder forward total
HINT_ENCODER_MS = 100.0

#: control branch ~361 M params (encoder-half copy + zero convs),
#: hint encoder is tiny (~3 M params of small convolutions)
CONTROL_PARAM_BYTES = 361e6 * 2
HINT_PARAM_BYTES = 3e6 * 2

CONTROL_OUTPUT_BYTES = 320 * 64 * 64 * 2.0
HINT_OUTPUT_BYTES = 320 * 64 * 64 * 2.0

#: stored-activation bytes per sample per control-branch block (same
#: calibration rationale as the SD U-Net blocks).
CONTROL_ACTIVATION_BYTES = 42e6

#: control branch: conv_in, encoder tiers mirroring the U-Net down path,
#: mid block, and the zero-convolution taps (cheap).
_CONTROL_WEIGHTS = (
    [0.5]
    + [1.6] * 4   # down tier, latent res 64
    + [1.3] * 4   # down tier, res 32
    + [1.0] * 4   # down tier, res 16
    + [0.8] * 2   # down tier, res 8
    + [0.9] * 1   # mid
    + [0.2] * 1   # zero-conv taps (aggregated)
)

#: hint encoder: a small stack of strided convolutions taking the
#: 512x512 condition image down to latent resolution (Fig. 5b's extra
#: band of short/moderate layers), 23 layers.
_HINT_WEIGHTS = [3.0, 2.6, 2.2, 1.9] + [1.0 + 0.05 * (i % 4) for i in range(19)]


def control_branch(device: DeviceSpec | None = None) -> ComponentSpec:
    """The trainable ControlNet branch."""
    device = device or a100_80gb()
    fwd_total = _unet_forward_target_ms(
        CONTROL_TRAIN_MS, len(_CONTROL_WEIGHTS), CONTROL_LAYER_OVERHEAD_MS, device
    )
    layers = layers_from_time_weights(
        "control_block",
        _CONTROL_WEIGHTS,
        fwd_total,
        trainable=True,
        param_bytes_total=CONTROL_PARAM_BYTES,
        output_bytes_per_sample=CONTROL_OUTPUT_BYTES,
        activation_bytes_per_sample=CONTROL_ACTIVATION_BYTES,
        device=device,
        fixed_overhead_ms=CONTROL_LAYER_OVERHEAD_MS,
    )
    return ComponentSpec(
        name="control_branch",
        layers=layers,
        trainable=True,
        depends_on=("text_encoder", "vae_encoder", "hint_encoder"),
    )


def hint_encoder(device: DeviceSpec | None = None) -> ComponentSpec:
    """The frozen condition encoder (canny edge / pose hints).

    Declared dependent on the VAE encoder to exercise the
    component-dependency handling of the bubble-filling scheduler
    (paper: "Non-trainable components in a diffusion model may have
    inter-dependencies (e.g., ControlNet)").
    """
    layers = layers_from_time_weights(
        "hint_enc",
        _HINT_WEIGHTS,
        HINT_ENCODER_MS,
        trainable=False,
        param_bytes_total=HINT_PARAM_BYTES,
        output_bytes_per_sample=HINT_OUTPUT_BYTES,
        device=device or a100_80gb(),
        fixed_overhead_ms=0.03,
    )
    return ComponentSpec(
        name="hint_encoder",
        layers=layers,
        trainable=False,
        depends_on=("vae_encoder",),
    )


def controlnet_v1_0(
    device: DeviceSpec | None = None, self_conditioning: bool = True
) -> ModelSpec:
    """ControlNet v1.0 as trained in the paper (Table 5)."""
    device = device or a100_80gb()
    return ModelSpec(
        name="controlnet-v1.0",
        components=[
            text_encoder(device),
            vae_encoder(device),
            hint_encoder(device),
            control_branch(device),
        ],
        backbone_names=("control_branch",),
        self_conditioning=self_conditioning,
        self_conditioning_prob=0.5,
    )
