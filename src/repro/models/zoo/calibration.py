"""Calibration helpers for the model zoo.

The zoo describes each paper model as a list of layers whose *relative*
costs follow the architecture, then rescales absolute FLOPs so that the
total execution time at a reference batch size on the reference device
hits a calibration target taken from the paper.

Calibration anchors (all at batch size 64 on one A100-80GB):

* Stable Diffusion v2.1 — Table 1 row 1: non-trainable forward time is
  38/41/43/44 % of the trainable forward+backward time at B=8/16/32/64.
  Fitting the two endpoints with the saturating utilisation curve of
  :class:`repro.cluster.DeviceSpec` gives a trainable compute budget of
  ~2400 ms (+ ~75 ms fixed overhead) and a non-trainable budget of
  ~1089 ms at B=64.  The same fit then reproduces the paper's Fig. 4
  bubble-ratio grid to within ~1 %.
* ControlNet v1.0 — Table 1 row 2 (76/81/86/89 %) gives a trainable
  branch of ~1291 ms compute (+ ~45 ms overhead) and a non-trainable
  part of ~1189 ms at B=64.
* Fig. 5 fixes the per-layer *distribution*: ~22 short text-encoder
  layers (0.1-10 ms), moderate VAE layers (< 30 ms) and a few extra-long
  layers (> 400 ms) at B=64.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ...cluster.device import DeviceSpec, a100_80gb
from ...errors import ConfigurationError
from ..layers import LayerSpec

#: Reference batch size at which all zoo calibration targets are stated.
REFERENCE_BATCH = 64


def layer_forward_time_ms(
    layer: LayerSpec, batch_size: float, device: DeviceSpec
) -> float:
    """Forward time of a layer on a device (the profiling cost model).

    ``t = kernel_overhead + fixed_overhead + flops / effective_flops``.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch size must be positive, got {batch_size}")
    compute = layer.forward_flops(batch_size) / device.effective_flops_per_ms(batch_size)
    return device.kernel_overhead_ms + layer.fixed_overhead_ms + compute


def layer_backward_time_ms(
    layer: LayerSpec, batch_size: float, device: DeviceSpec
) -> float:
    """Backward time of a layer on a device.

    Backward kernels launch roughly twice as many kernels as forward, so
    the fixed overhead doubles; compute follows the layer's backward
    FLOPs multiplier.  Frozen layers return 0.
    """
    if not layer.trainable:
        return 0.0
    if batch_size <= 0:
        raise ConfigurationError(f"batch size must be positive, got {batch_size}")
    compute = layer.backward_flops(batch_size) / device.effective_flops_per_ms(batch_size)
    return device.kernel_overhead_ms + 2.0 * layer.fixed_overhead_ms + compute


def layer_backward_weight_time_ms(
    layer: LayerSpec, batch_size: float, device: DeviceSpec
) -> float:
    """Weight-gradient (W) component of a layer's backward time.

    The backward pass runs two kernel families: grad-input (``dy @ W^T``,
    on the inter-stage critical path) and grad-weight (``x^T @ dy``, only
    needed before the optimizer step).  Of the layer's
    ``backward_flops_multiplier`` x forward FLOPs, one forward-equivalent
    computes the parameter gradients, so W's compute share is
    ``1 / multiplier``; W also carries one of backward's two fixed
    per-layer overheads (its own kernel set) while the launch tail
    (``kernel_overhead_ms``) stays with grad-input.  Frozen and
    parameter-less layers do no W work.

    Always ``<= layer_backward_time_ms`` so B = backward - W is
    non-negative.
    """
    if not layer.trainable or layer.param_bytes <= 0:
        return 0.0
    if batch_size <= 0:
        raise ConfigurationError(f"batch size must be positive, got {batch_size}")
    mult = layer.backward_flops_multiplier
    w_share = min(1.0, 1.0 / mult) if mult > 0 else 0.0
    compute = layer.backward_flops(batch_size) / device.effective_flops_per_ms(batch_size)
    w = layer.fixed_overhead_ms + w_share * compute
    return min(w, layer_backward_time_ms(layer, batch_size, device))


def flops_for_forward_time(
    target_ms: float,
    batch_size: float,
    device: DeviceSpec,
    fixed_overhead_ms: float = 0.0,
) -> float:
    """Invert the cost model: per-sample FLOPs giving ``target_ms`` forward.

    Raises if the target is not achievable (smaller than the overheads).
    """
    compute_ms = target_ms - device.kernel_overhead_ms - fixed_overhead_ms
    if compute_ms <= 0:
        raise ConfigurationError(
            f"target {target_ms} ms not achievable: overheads alone are "
            f"{device.kernel_overhead_ms + fixed_overhead_ms} ms"
        )
    total_flops = compute_ms * device.effective_flops_per_ms(batch_size)
    return total_flops / batch_size


def layers_from_time_weights(
    prefix: str,
    weights: Sequence[float],
    total_forward_ms: float,
    *,
    trainable: bool,
    param_bytes_total: float,
    output_bytes_per_sample: float,
    activation_bytes_per_sample: float | None = None,
    device: DeviceSpec | None = None,
    fixed_overhead_ms: float = 0.0,
    names: Sequence[str] | None = None,
    batch_size: float = REFERENCE_BATCH,
) -> list[LayerSpec]:
    """Build a layer chain whose forward times at the reference batch are
    ``total_forward_ms`` distributed proportionally to ``weights``.

    Parameters beyond the calibration targets (``param_bytes_total``,
    ``output_bytes_per_sample``) are distributed proportionally to the
    weights / uniformly, respectively, which is all the downstream
    algorithms need.
    """
    device = device or a100_80gb()
    weights = list(weights)
    if not weights or any(w <= 0 for w in weights):
        raise ConfigurationError("weights must be positive and non-empty")
    if names is not None and len(names) != len(weights):
        raise ConfigurationError("names/weights length mismatch")
    wsum = float(sum(weights))
    layers: list[LayerSpec] = []
    for i, w in enumerate(weights):
        share = w / wsum
        target = total_forward_ms * share
        flops = flops_for_forward_time(
            target, batch_size, device, fixed_overhead_ms=fixed_overhead_ms
        )
        name = names[i] if names is not None else f"{prefix}{i}"
        layers.append(
            LayerSpec(
                name=name,
                flops_per_sample=flops,
                param_bytes=param_bytes_total * share,
                output_bytes_per_sample=output_bytes_per_sample,
                activation_bytes_per_sample=activation_bytes_per_sample,
                trainable=trainable,
                fixed_overhead_ms=fixed_overhead_ms,
            )
        )
    return layers


def total_forward_ms(
    layers: Sequence[LayerSpec], batch_size: float, device: DeviceSpec | None = None
) -> float:
    """Total forward time of a layer chain on a device."""
    device = device or a100_80gb()
    return sum(layer_forward_time_ms(l, batch_size, device) for l in layers)


def total_train_ms(
    layers: Sequence[LayerSpec], batch_size: float, device: DeviceSpec | None = None
) -> float:
    """Total forward+backward time of a layer chain on a device."""
    device = device or a100_80gb()
    return sum(
        layer_forward_time_ms(l, batch_size, device)
        + layer_backward_time_ms(l, batch_size, device)
        for l in layers
    )


def with_layer_overhead(layers: Sequence[LayerSpec], overhead_ms: float) -> list[LayerSpec]:
    """Copies of ``layers`` with a given fixed per-layer overhead."""
    return [replace(l, fixed_overhead_ms=overhead_ms) for l in layers]
