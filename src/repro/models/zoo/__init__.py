"""Model zoo: the paper's four models plus synthetic test models."""

from .cdm import cdm_imagenet, cdm_lsun, class_embed
from .controlnet import control_branch, controlnet_v1_0, hint_encoder
from .dit import dit_backbone, dit_xl, t5_encoder
from .stable_diffusion import (
    stable_diffusion_v2_1,
    text_encoder,
    unet_backbone,
    vae_encoder,
)
from .synthetic import (
    cascaded_model,
    long_layer_model,
    timed_component,
    timed_layer,
    two_encoder_model,
    uniform_model,
)

__all__ = [
    "cdm_imagenet",
    "cdm_lsun",
    "class_embed",
    "control_branch",
    "controlnet_v1_0",
    "hint_encoder",
    "dit_backbone",
    "dit_xl",
    "t5_encoder",
    "stable_diffusion_v2_1",
    "text_encoder",
    "unet_backbone",
    "vae_encoder",
    "cascaded_model",
    "long_layer_model",
    "timed_component",
    "timed_layer",
    "two_encoder_model",
    "uniform_model",
]
