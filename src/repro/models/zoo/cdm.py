"""Cascaded Diffusion Models (CDM-LSUN, CDM-ImageNet).

CDMs chain several backbones of increasing resolution (Ho et al. 2022).
The paper trains CDM-LSUN's two backbones (64x64 base + 128x128
super-resolution) with bidirectional pipelining and, for CDM-ImageNet,
only backbones 2 and 3 (training all three exceeds GPU memory).  Neither
model has a text encoder: the conditional input is a class embedding, so
the non-trainable part is tiny ("there is little non-trainable part to
fill bubbles", §6.1), and backbone sizes are close to each other.

Self-conditioning is not enabled (Table 5).
"""

from __future__ import annotations

from ...cluster.device import DeviceSpec, a100_80gb
from ..component import ComponentSpec
from ..graph import ModelSpec
from .calibration import layers_from_time_weights
from .stable_diffusion import _unet_forward_target_ms

#: per-layer forward fixed overhead of CDM backbone blocks
CDM_LAYER_OVERHEAD_MS = 0.5

#: calibration at B = 64 on one A100 (ms): forward+backward totals.
#: Backbone sizes "relatively close to each other" (§6.1).
LSUN_BASE_TRAIN_MS = 950.0
LSUN_SR_TRAIN_MS = 1150.0
IMAGENET_SR1_TRAIN_MS = 1100.0
IMAGENET_SR2_TRAIN_MS = 1500.0

#: class-embedding (frozen) forward total: tiny
CLASS_EMBED_MS = 4.0

LSUN_BASE_PARAMS = 350e6 * 2
LSUN_SR_PARAMS = 450e6 * 2
IMAGENET_SR1_PARAMS = 400e6 * 2
IMAGENET_SR2_PARAMS = 600e6 * 2

_BASE_OUTPUT = 256 * 64 * 64 * 2.0
_SR_OUTPUT = 128 * 128 * 128 * 2.0
_SR2_OUTPUT = 64 * 256 * 256 * 2.0

#: stored-activation bytes per sample per block, scaling with the
#: backbone's working resolution (64^2 / 128^2 / 256^2).
_BASE_ACT = 8e6
_SR_ACT = 24e6
_SR2_ACT = 48e6


def _uniformish(n: int) -> list[float]:
    """Near-uniform block weights with a mild mid-network hump."""
    return [1.0 + 0.2 * min(i, n - 1 - i) / max(n // 2, 1) for i in range(n)]


def _backbone(
    name: str,
    train_ms: float,
    n_layers: int,
    param_bytes: float,
    output_bytes: float,
    activation_bytes: float,
    device: DeviceSpec,
    depends_on: tuple[str, ...] = ("class_embed",),
) -> ComponentSpec:
    fwd_total = _unet_forward_target_ms(
        train_ms, n_layers, CDM_LAYER_OVERHEAD_MS, device
    )
    layers = layers_from_time_weights(
        f"{name}_block",
        _uniformish(n_layers),
        fwd_total,
        trainable=True,
        param_bytes_total=param_bytes,
        output_bytes_per_sample=output_bytes,
        activation_bytes_per_sample=activation_bytes,
        device=device,
        fixed_overhead_ms=CDM_LAYER_OVERHEAD_MS,
    )
    return ComponentSpec(name=name, layers=layers, trainable=True, depends_on=depends_on)


def class_embed(device: DeviceSpec | None = None) -> ComponentSpec:
    """The (tiny) frozen class-conditioning embedding."""
    layers = layers_from_time_weights(
        "class_embed",
        [1.0, 1.0],
        CLASS_EMBED_MS,
        trainable=False,
        param_bytes_total=2e6 * 2,
        output_bytes_per_sample=1024 * 2.0,
        device=device or a100_80gb(),
        fixed_overhead_ms=0.02,
    )
    return ComponentSpec(name="class_embed", layers=layers, trainable=False)


def cdm_lsun(device: DeviceSpec | None = None) -> ModelSpec:
    """CDM-LSUN: 64x64 base + 128x128 super-resolution backbones."""
    device = device or a100_80gb()
    return ModelSpec(
        name="cdm-lsun",
        components=[
            class_embed(device),
            _backbone("base_64", LSUN_BASE_TRAIN_MS, 26, LSUN_BASE_PARAMS,
                      _BASE_OUTPUT, _BASE_ACT, device),
            _backbone("sr_128", LSUN_SR_TRAIN_MS, 26, LSUN_SR_PARAMS,
                      _SR_OUTPUT, _SR_ACT, device),
        ],
        backbone_names=("base_64", "sr_128"),
        self_conditioning=False,
    )


def cdm_imagenet(device: DeviceSpec | None = None) -> ModelSpec:
    """CDM-ImageNet restricted to backbones 2 and 3 (as trained in §6).

    The paper trains only the second and third backbones because all
    three exceed GPU memory.
    """
    device = device or a100_80gb()
    return ModelSpec(
        name="cdm-imagenet",
        components=[
            class_embed(device),
            _backbone("sr_128", IMAGENET_SR1_TRAIN_MS, 26, IMAGENET_SR1_PARAMS,
                      _SR_OUTPUT, _SR_ACT, device),
            _backbone("sr_256", IMAGENET_SR2_TRAIN_MS, 30, IMAGENET_SR2_PARAMS,
                      _SR2_OUTPUT, _SR2_ACT, device),
        ],
        backbone_names=("sr_128", "sr_256"),
        self_conditioning=False,
    )
