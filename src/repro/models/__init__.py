"""Model descriptions: layers, components, whole-model graphs, and the zoo."""

from .component import ComponentSpec
from .graph import ModelSpec
from .layers import DTYPE_BYTES, LayerSpec, conv_block, transformer_block

__all__ = [
    "ComponentSpec",
    "ModelSpec",
    "LayerSpec",
    "DTYPE_BYTES",
    "conv_block",
    "transformer_block",
]
