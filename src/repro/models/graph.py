"""Whole-model description: components wired into a DAG.

A :class:`ModelSpec` is what the DiffusionPipe front-end takes as input
(Fig. 7): one or more trainable backbones, a set of frozen components
with dependencies among them, and training-procedure flags
(self-conditioning probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from graphlib import CycleError, TopologicalSorter
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from .component import ComponentSpec


@dataclass(frozen=True)
class ModelSpec:
    """A diffusion model: trainable backbones + frozen component DAG.

    Parameters
    ----------
    name:
        Model name ("stable-diffusion-v2.1", ...).
    components:
        All components, keyed by name.
    backbone_names:
        Ordered names of the trainable backbones (cascaded models list
        several; the order is the cascade order).
    self_conditioning:
        Whether training uses self-conditioning (extra forward pass).
    self_conditioning_prob:
        Probability that a training step activates self-conditioning
        (0.5 in Chen et al. 2022).
    """

    name: str
    components: Mapping[str, ComponentSpec]
    backbone_names: tuple[str, ...]
    self_conditioning: bool = False
    self_conditioning_prob: float = 0.5

    def __init__(
        self,
        name: str,
        components: Sequence[ComponentSpec],
        backbone_names: Sequence[str],
        self_conditioning: bool = False,
        self_conditioning_prob: float = 0.5,
    ):
        comp_map = {c.name: c for c in components}
        if len(comp_map) != len(components):
            raise ConfigurationError(f"model {name}: duplicate component names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "components", comp_map)
        object.__setattr__(self, "backbone_names", tuple(backbone_names))
        object.__setattr__(self, "self_conditioning", bool(self_conditioning))
        object.__setattr__(self, "self_conditioning_prob", float(self_conditioning_prob))
        self._validate()

    def _validate(self) -> None:
        if not self.backbone_names:
            raise ConfigurationError(f"model {self.name} has no backbone")
        for bb in self.backbone_names:
            if bb not in self.components:
                raise ConfigurationError(f"unknown backbone component {bb!r}")
            if not self.components[bb].trainable:
                raise ConfigurationError(f"backbone {bb!r} must be trainable")
        for comp in self.components.values():
            for dep in comp.depends_on:
                if dep not in self.components:
                    raise ConfigurationError(
                        f"component {comp.name} depends on unknown {dep!r}"
                    )
        if not (0.0 <= self.self_conditioning_prob <= 1.0):
            raise ConfigurationError("self_conditioning_prob must be in [0, 1]")
        # A cycle anywhere in the component DAG is a configuration error.
        self.topological_order()

    # -- views ---------------------------------------------------------------

    @property
    def backbones(self) -> list[ComponentSpec]:
        """The trainable backbones, in cascade order."""
        return [self.components[n] for n in self.backbone_names]

    @property
    def backbone(self) -> ComponentSpec:
        """The unique backbone (raises if the model is cascaded)."""
        if len(self.backbone_names) != 1:
            raise ConfigurationError(
                f"model {self.name} has {len(self.backbone_names)} backbones; "
                "use .backbones"
            )
        return self.components[self.backbone_names[0]]

    @property
    def non_trainable(self) -> list[ComponentSpec]:
        """Frozen components in topological (dependency-respecting) order."""
        order = self.topological_order()
        return [
            self.components[n]
            for n in order
            if not self.components[n].trainable
        ]

    def topological_order(self) -> list[str]:
        """Component names in a dependency-respecting order.

        Frozen-component dependencies on backbones are allowed (a frozen
        decoder fed by a backbone) but unusual; trainable backbones are
        sorted like any other node.
        """
        graph = {
            name: set(comp.depends_on) for name, comp in self.components.items()
        }
        try:
            return list(TopologicalSorter(graph).static_order())
        except CycleError as exc:
            raise ConfigurationError(
                f"model {self.name} has a dependency cycle: {exc}"
            ) from exc

    def ready_after(self, done: set[str]) -> list[ComponentSpec]:
        """Frozen components whose dependencies are all in ``done``.

        This is the "ready set" notion used by the bubble-filling
        scheduler (§5): a component becomes ready once every component it
        depends on has fully executed.
        """
        out = []
        for comp in self.non_trainable:
            if comp.name in done:
                continue
            if all(d in done for d in comp.depends_on):
                out.append(comp)
        return out

    # -- aggregates ------------------------------------------------------------

    @property
    def trainable_param_bytes(self) -> float:
        """Total parameter bytes across backbones."""
        return sum(b.param_bytes for b in self.backbones)

    @property
    def frozen_param_bytes(self) -> float:
        """Total parameter bytes across frozen components."""
        return sum(c.param_bytes for c in self.non_trainable)

    def non_trainable_forward_flops(self, batch_size: float) -> float:
        """Total frozen-part forward FLOPs at a batch size."""
        return sum(c.forward_flops(batch_size) for c in self.non_trainable)
