"""Components: linearly-ordered chains of layers.

A diffusion model (Fig. 1 of the paper) is a set of *components*:
trainable backbones (U-Net, DiT) and frozen encoders (CLIP text encoder,
VAE, ControlNet condition encoders).  Layers inside a component are
linearly dependent; components themselves form a DAG (handled by
:mod:`repro.models.graph`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigurationError
from .layers import LayerSpec


@dataclass(frozen=True)
class ComponentSpec:
    """A named, ordered chain of layers.

    Parameters
    ----------
    name:
        Unique component name within the model.
    layers:
        The ordered layer chain.
    trainable:
        Whether this component is part of the trainable backbone set.
        All layers of a trainable component must be trainable and
        vice versa (the paper's model split is at component granularity).
    depends_on:
        Names of components whose outputs feed this component.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    trainable: bool = False
    depends_on: tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        layers: Sequence[LayerSpec],
        trainable: bool = False,
        depends_on: Sequence[str] = (),
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "layers", tuple(layers))
        object.__setattr__(self, "trainable", bool(trainable))
        object.__setattr__(self, "depends_on", tuple(depends_on))
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise ConfigurationError("component name must be non-empty")
        if not self.layers:
            raise ConfigurationError(f"component {self.name} has no layers")
        names = [l.name for l in self.layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"component {self.name} has duplicate layer names"
            )
        for layer in self.layers:
            if layer.trainable != self.trainable:
                raise ConfigurationError(
                    f"component {self.name}: layer {layer.name} trainable flag "
                    f"({layer.trainable}) disagrees with component ({self.trainable})"
                )
        if self.name in self.depends_on:
            raise ConfigurationError(f"component {self.name} depends on itself")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerSpec:
        return self.layers[index]

    # -- aggregates -----------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of layers in the chain."""
        return len(self.layers)

    @property
    def param_bytes(self) -> float:
        """Total parameter bytes."""
        return sum(l.param_bytes for l in self.layers)

    @property
    def grad_bytes(self) -> float:
        """Total gradient bytes (zero for frozen components)."""
        return sum(l.grad_bytes for l in self.layers)

    def forward_flops(self, batch_size: float) -> float:
        """Total forward FLOPs at a batch size."""
        return sum(l.forward_flops(batch_size) for l in self.layers)

    def backward_flops(self, batch_size: float) -> float:
        """Total backward FLOPs at a batch size."""
        return sum(l.backward_flops(batch_size) for l in self.layers)

    def output_bytes(self, batch_size: float) -> float:
        """Output size of the final layer at a batch size."""
        return self.layers[-1].output_bytes(batch_size)

    # -- derived components -----------------------------------------------------

    def slice(self, start: int, stop: int, name: str | None = None) -> "ComponentSpec":
        """A sub-chain ``[start, stop)`` as a new component."""
        if not (0 <= start < stop <= self.num_layers):
            raise ConfigurationError(
                f"invalid slice [{start}, {stop}) of component {self.name} "
                f"with {self.num_layers} layers"
            )
        return ComponentSpec(
            name=name or f"{self.name}[{start}:{stop}]",
            layers=self.layers[start:stop],
            trainable=self.trainable,
            depends_on=self.depends_on,
        )

    def frozen(self, name: str | None = None) -> "ComponentSpec":
        """A non-trainable copy (e.g. the locked U-Net in ControlNet)."""
        return ComponentSpec(
            name=name or self.name,
            layers=[l.frozen() for l in self.layers],
            trainable=False,
            depends_on=self.depends_on,
        )
