"""Layer-level model description.

DiffusionPipe's algorithms never inspect weights — they consume, per
layer: forward/backward time at a batch size, parameter/gradient size,
and output size (for inter-stage communication).  :class:`LayerSpec`
carries exactly that metadata, expressed *per sample* so any batch size
can be derived.

Backward cost is modelled as ``backward_flops_multiplier x`` the forward
FLOPs (2.0 for trainable layers by the usual rule of thumb; irrelevant
for frozen layers, which only run forward).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

#: bytes per parameter / activation element (fp16 storage, fp32 master
#: weights are accounted separately in the memory model).
DTYPE_BYTES = 2


@dataclass(frozen=True)
class LayerSpec:
    """Cost/size description of a single layer.

    Parameters
    ----------
    name:
        Layer name, unique within its component.
    flops_per_sample:
        Forward FLOPs for one sample.
    param_bytes:
        Total parameter bytes (0 for parameter-free layers).
    output_bytes_per_sample:
        Size of the layer's output activation for one sample; this is
        the inter-stage communication volume if a pipeline cut is placed
        after this layer.
    activation_bytes_per_sample:
        Bytes of intermediate state that must be retained for the
        backward pass (defaults to the output size).
    trainable:
        Whether the layer participates in backpropagation.
    backward_flops_multiplier:
        Backward FLOPs = multiplier * forward FLOPs.
    fixed_overhead_ms:
        Extra fixed time per invocation on top of the device kernel
        overhead (e.g. attention softmax setup, python dispatch).
    """

    name: str
    flops_per_sample: float
    param_bytes: float = 0.0
    output_bytes_per_sample: float = 0.0
    activation_bytes_per_sample: float | None = None
    trainable: bool = True
    backward_flops_multiplier: float = 2.0
    fixed_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.flops_per_sample < 0:
            raise ConfigurationError(f"layer {self.name}: negative FLOPs")
        if self.param_bytes < 0:
            raise ConfigurationError(f"layer {self.name}: negative param bytes")
        if self.output_bytes_per_sample < 0:
            raise ConfigurationError(f"layer {self.name}: negative output bytes")
        if self.backward_flops_multiplier < 0:
            raise ConfigurationError(
                f"layer {self.name}: negative backward multiplier"
            )
        if self.activation_bytes_per_sample is None:
            object.__setattr__(
                self, "activation_bytes_per_sample", self.output_bytes_per_sample
            )

    # -- derived sizes -------------------------------------------------------

    @property
    def grad_bytes(self) -> float:
        """Gradient bytes (== parameter bytes for trainable layers)."""
        return self.param_bytes if self.trainable else 0.0

    def output_bytes(self, batch_size: float) -> float:
        """Activation output size at a batch size (paper's ``O_l(B)``)."""
        return self.output_bytes_per_sample * batch_size

    def activation_bytes(self, batch_size: float) -> float:
        """Stored-activation bytes at a batch size."""
        assert self.activation_bytes_per_sample is not None
        return self.activation_bytes_per_sample * batch_size

    # -- derived costs -------------------------------------------------------

    def forward_flops(self, batch_size: float) -> float:
        """Total forward FLOPs at a batch size."""
        return self.flops_per_sample * batch_size

    def backward_flops(self, batch_size: float) -> float:
        """Total backward FLOPs at a batch size (0 for frozen layers)."""
        if not self.trainable:
            return 0.0
        return self.backward_flops_multiplier * self.flops_per_sample * batch_size

    def frozen(self) -> "LayerSpec":
        """A non-trainable copy of this layer."""
        return replace(self, trainable=False)

    def scaled(self, factor: float) -> "LayerSpec":
        """A copy with FLOPs, params and sizes scaled by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        assert self.activation_bytes_per_sample is not None
        return replace(
            self,
            flops_per_sample=self.flops_per_sample * factor,
            param_bytes=self.param_bytes * factor,
            output_bytes_per_sample=self.output_bytes_per_sample * factor,
            activation_bytes_per_sample=self.activation_bytes_per_sample * factor,
        )


def transformer_block(
    name: str,
    hidden: int,
    seq_len: int,
    trainable: bool = True,
    mlp_ratio: float = 4.0,
) -> LayerSpec:
    """A standard transformer block's cost/size footprint.

    FLOPs per sample ~= 2 * (4 h^2 + 2 h^2 mlp_ratio) * seq + 4 h seq^2
    (QKV/out projections + MLP + attention matmuls).  Parameters
    ~= (4 + 2 * mlp_ratio) h^2.
    """
    proj_flops = 2.0 * 4.0 * hidden * hidden * seq_len
    mlp_flops = 2.0 * 2.0 * mlp_ratio * hidden * hidden * seq_len
    attn_flops = 4.0 * hidden * seq_len * seq_len
    params = (4.0 + 2.0 * mlp_ratio) * hidden * hidden * DTYPE_BYTES
    out = hidden * seq_len * DTYPE_BYTES
    return LayerSpec(
        name=name,
        flops_per_sample=proj_flops + mlp_flops + attn_flops,
        param_bytes=params,
        output_bytes_per_sample=out,
        activation_bytes_per_sample=out * 4.0,  # attention keeps several maps
        trainable=trainable,
    )


def conv_block(
    name: str,
    channels_in: int,
    channels_out: int,
    resolution: int,
    kernel: int = 3,
    trainable: bool = True,
) -> LayerSpec:
    """A convolutional (ResNet-style) block footprint at a spatial size."""
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")
    flops = 2.0 * channels_in * channels_out * kernel * kernel * resolution * resolution
    params = channels_in * channels_out * kernel * kernel * DTYPE_BYTES
    out = channels_out * resolution * resolution * DTYPE_BYTES
    return LayerSpec(
        name=name,
        flops_per_sample=flops,
        param_bytes=params,
        output_bytes_per_sample=out,
        activation_bytes_per_sample=out * 2.0,
        trainable=trainable,
    )
