"""Elastic replanning: device churn without cold planner caches.

Training jobs on shared clusters gain and lose machines mid-run
(spot reclamation, maintenance, capacity hand-back).  Each such
*elastic event* changes the cluster identity, and the plan must be
recomputed for the new world — but almost everything the planner
computed before the event is still valid:

* partition DP tables are keyed on *resolved constants* (per-layer
  times from the profile, p2p/all-reduce :class:`CommCosts`, per-group
  batch), not on the cluster object, so any table whose constants are
  unchanged by the event is reused;
* under **weak scaling** — the global batch tracks the world size at a
  fixed per-device batch — the per-group batch ``B/dp = b·D`` is
  world-independent, so batches never split a warm entry across
  events;
* planner-level memos (partitions, evaluations, timelines) key on the
  canonicalised :class:`~repro.cluster.topology.ClusterSpec`, so a
  machine that leaves and later rejoins restores the *same* cluster
  identity and every memo warm-hits.

:class:`ElasticSession` packages this: one model, one profile, one
shared :class:`~repro.core.caches.PlannerCaches` across a stream of
:class:`ElasticEvent`\\ s, with :meth:`ElasticSession.replan` building
a fresh planner per event against the warm stores.  The profile is
taken once, at session start: profiles record *nominal* per-device
layer times, and per-device speed is applied by the planner through
``ClusterSpec.speed_factors`` — re-profiling per event would discard
the weak-keyed DP tables for no information gain.

``benchmarks/test_elastic_replan.py`` gates the payoff: a replan after
a leave/rejoin round-trip must run >= 5x faster than a cold plan of
the same cluster, with bit-identical plan metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.topology import ClusterSpec
from ..errors import ConfigurationError
from ..models.graph import ModelSpec
from ..profiling.profiler import Profiler
from ..profiling.records import ProfileDB
from .caches import PlannerCaches, default_caches
from .planner import DiffusionPipePlanner, EvaluatedConfig, PlannerOptions

__all__ = ["ElasticEvent", "apply_event", "ElasticSession"]

#: event kinds understood by :func:`apply_event`
EVENT_KINDS = ("join", "leave")


@dataclass(frozen=True)
class ElasticEvent:
    """A machine-granularity membership change.

    Machines join at the *end* of the rank order and leave from the
    end, so surviving ranks keep their global ids (the layout is
    machine-major) and every override on a surviving rank stays
    attached to the same physical device.

    ``speed_factor`` applies to every device of a joining machine —
    the common elastic case of backfilling with a slower generation —
    and must be left ``None`` for leaves.
    """

    kind: str
    machines: int = 1
    speed_factor: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown elastic event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.machines < 1:
            raise ConfigurationError(
                f"elastic event must move at least one machine, "
                f"got {self.machines}"
            )
        if self.speed_factor is not None:
            if self.kind != "join":
                raise ConfigurationError(
                    "speed_factor only applies to joining machines"
                )
            if not self.speed_factor > 0:
                raise ConfigurationError(
                    f"joining speed factor must be positive, "
                    f"got {self.speed_factor}"
                )


def apply_event(cluster: ClusterSpec, event: ElasticEvent) -> ClusterSpec:
    """The cluster after an elastic event.

    Pure: returns a new canonicalised :class:`ClusterSpec`; a leave
    followed by an equal join of identity machines reproduces a spec
    that compares *equal* to the original, which is what lets every
    cluster-keyed planner memo warm-hit after a round-trip.
    """
    per = cluster.devices_per_machine
    if event.kind == "leave":
        remaining = cluster.num_machines - event.machines
        if remaining < 1:
            raise ConfigurationError(
                f"cannot remove {event.machines} machine(s) from a "
                f"{cluster.num_machines}-machine cluster"
            )
        world = remaining * per
        return replace(
            cluster,
            num_machines=remaining,
            speed_factors=tuple(
                (r, f) for r, f in cluster.speed_factors if r < world
            ),
            device_specs=tuple(
                (r, s) for r, s in cluster.device_specs if r < world
            ),
            link_overrides=tuple(
                (pair, link)
                for pair, link in cluster.link_overrides
                if max(pair) < remaining
            ),
        )
    total = cluster.num_machines + event.machines
    speed = dict(cluster.speed_factors)
    if event.speed_factor is not None:
        for rank in range(cluster.world_size, total * per):
            speed[rank] = event.speed_factor
    return replace(
        cluster,
        num_machines=total,
        speed_factors=tuple(sorted(speed.items())),
    )


class ElasticSession:
    """A planning session that survives device churn warm.

    Parameters
    ----------
    model / cluster:
        The training job and its initial membership.
    batch_per_device:
        Weak-scaling knob: every replan targets a global batch of
        ``batch_per_device * world_size``, so the per-group batch —
        and with it every batch-keyed DP table — is independent of
        how many machines are currently present.
    profile:
        Pre-computed :class:`ProfileDB`; profiled once on the initial
        cluster when omitted and reused across every event (nominal
        times; per-device speed enters through the cluster spec).
    options / caches:
        Passed to every planner the session builds.  The caches
        default to the process-wide store, mirroring
        :class:`~repro.core.planner.DiffusionPipePlanner`.
    """

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterSpec,
        *,
        batch_per_device: float,
        profile: ProfileDB | None = None,
        options: PlannerOptions | None = None,
        caches: PlannerCaches | None = None,
    ):
        if not batch_per_device > 0:
            raise ConfigurationError(
                f"batch_per_device must be positive, got {batch_per_device}"
            )
        self.model = model
        self.cluster = cluster
        self.batch_per_device = batch_per_device
        self.profile = profile or Profiler(cluster).profile(model)
        self.options = options or PlannerOptions()
        self.caches = caches if caches is not None else default_caches()
        #: every event applied so far, oldest first
        self.events: list[ElasticEvent] = []

    @property
    def global_batch(self) -> float:
        """The weak-scaled global batch of the current membership."""
        return self.batch_per_device * self.cluster.world_size

    def apply(self, event: ElasticEvent) -> ClusterSpec:
        """Apply one membership change and return the new cluster."""
        self.cluster = apply_event(self.cluster, event)
        self.events.append(event)
        return self.cluster

    def replan(self) -> EvaluatedConfig:
        """Plan for the current membership against the warm caches."""
        planner = DiffusionPipePlanner(
            self.model,
            self.cluster,
            profile=self.profile,
            options=self.options,
            caches=self.caches,
        )
        return planner.plan(self.global_batch)
