"""Pipeline instruction IR (Fig. 7, step 6).

After the planner picks the optimal overall schedule, it lowers the
schedule into per-device instruction streams that the back-end engine
executes: load micro-batch, forward/backward a stage, run non-trainable
layers, send/receive activations, all-reduce gradients.  The same IR is
consumed by the numeric execution engine (:mod:`repro.engine`) and
rendered in examples.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import ScheduleError
from ..schedule.tasks import Task, TaskKind
from ..schedule.timeline import Timeline
from .plan import FillItem


class Op(enum.Enum):
    """Instruction opcodes of the back-end (Fig. 7's right column)."""

    LOAD_MICRO_BATCH = "load_micro_batch"
    FORWARD = "forward"
    SC_FORWARD = "sc_forward"
    BACKWARD = "backward"
    NT_FORWARD = "nt_forward"
    SEND = "send"
    RECV = "recv"
    ALLREDUCE_GRADS = "allreduce_grads"
    OPTIMIZER_STEP = "optimizer_step"


@dataclass(frozen=True)
class Instruction:
    """One back-end instruction.

    ``args`` carries op-specific payload: stage/micro-batch indices for
    compute ops, peer device for communication ops, component/layer/
    samples for non-trainable work.
    """

    op: Op
    device: int
    args: Mapping[str, object] = field(default_factory=dict)
    est_ms: float = 0.0

    def describe(self) -> str:
        parts = [self.op.value]
        for k in sorted(self.args):
            parts.append(f"{k}={self.args[k]}")
        return " ".join(parts)


_LINK_RE = re.compile(r"^link:(\d+)->(\d+)$")


def _comm_endpoints(task: Task) -> tuple[int, int]:
    m = _LINK_RE.match(task.resource)
    if not m:
        raise ScheduleError(
            f"comm task {task.task_id} has non-link resource {task.resource}"
        )
    return int(m.group(1)), int(m.group(2))


def lower_timeline(
    timeline: Timeline,
    fill_items: Sequence[FillItem] = (),
    bubbles_by_index: Mapping[int, tuple[float, tuple[int, ...]]] | None = None,
) -> dict[int, list[Instruction]]:
    """Lower a simulated timeline into per-device instruction streams.

    Instructions appear in execution (start-time) order.  Communication
    tasks lower to a SEND on the source and a RECV on the destination.
    Bubble-filling items lower to NT_FORWARD instructions on every idle
    device of their bubble, ordered by the bubble's start time
    (``bubbles_by_index`` maps bubble index -> (start time, devices)).
    """
    events: list[tuple[float, int, Instruction]] = []
    seq = 0
    for iv in sorted(timeline.intervals, key=lambda v: (v.start, v.end)):
        t = iv.task
        if t.kind == TaskKind.COMM:
            src, dst = _comm_endpoints(t)
            if src == dst:
                continue
            payload = dict(t.meta)
            events.append(
                (
                    iv.start,
                    seq,
                    Instruction(Op.SEND, src, {**payload, "peer": dst}, iv.duration),
                )
            )
            seq += 1
            events.append(
                (
                    iv.start,
                    seq,
                    Instruction(Op.RECV, dst, {**payload, "peer": src}, iv.duration),
                )
            )
            seq += 1
            continue
        if t.device is None:
            continue
        op = {
            TaskKind.FORWARD: Op.FORWARD,
            TaskKind.SC_FORWARD: Op.SC_FORWARD,
            TaskKind.BACKWARD: Op.BACKWARD,
            TaskKind.SYNC: Op.ALLREDUCE_GRADS,
            TaskKind.NT_FORWARD: Op.NT_FORWARD,
        }.get(t.kind)
        if op is None:
            continue
        events.append(
            (iv.start, seq, Instruction(op, t.device, dict(t.meta), iv.duration))
        )
        seq += 1

    if fill_items:
        if bubbles_by_index is None:
            raise ScheduleError("fill items require bubble metadata")
        for item in fill_items:
            if item.bubble_index not in bubbles_by_index:
                raise ScheduleError(
                    f"fill item references unknown bubble {item.bubble_index}"
                )
            start, devices = bubbles_by_index[item.bubble_index]
            for dev in devices:
                events.append(
                    (
                        start,
                        seq,
                        Instruction(
                            Op.NT_FORWARD,
                            dev,
                            {
                                "component": item.component,
                                "layer": item.layer,
                                "samples": item.samples,
                                "partial": item.partial,
                            },
                            item.time_ms,
                        ),
                    )
                )
                seq += 1

    streams: dict[int, list[Instruction]] = {
        d: [] for d in range(timeline.num_devices)
    }
    for _, _, instr in sorted(events, key=lambda e: (e[0], e[1])):
        streams.setdefault(instr.device, []).append(instr)

    # Close every stream that ran an all-reduce with an optimiser step.
    for dev, stream in streams.items():
        if any(i.op == Op.ALLREDUCE_GRADS for i in stream):
            stream.append(Instruction(Op.OPTIMIZER_STEP, dev, {}, 0.0))
    return streams


def format_streams(streams: Mapping[int, Sequence[Instruction]]) -> str:
    """Human-readable rendering of per-device instruction streams."""
    lines = []
    for dev in sorted(streams):
        lines.append(f"device {dev}:")
        for instr in streams[dev]:
            lines.append(f"  {instr.describe()}")
    return "\n".join(lines)
