"""Tiny bounded-LRU helpers for the planner/partitioner memo caches.

All the memo stores in this package (DP Pareto tables, partition plans,
simulate-and-fill results, timelines) follow the same policy: move an
entry to the back on hit, evict the least recently used on insert at
capacity.  One implementation here keeps the copies from drifting.
"""

from __future__ import annotations

from collections import OrderedDict


def lru_get(cache: OrderedDict, key):
    """Return ``cache[key]`` (refreshing its recency) or None."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def lru_put(cache: OrderedDict, key, value, max_entries: int) -> None:
    """Insert ``key -> value``, evicting the oldest entries at capacity."""
    if key in cache:
        cache.move_to_end(key)
    else:
        while len(cache) >= max_entries:
            cache.popitem(last=False)
    cache[key] = value
