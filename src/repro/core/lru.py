"""Bounded-LRU stores for the planner/partitioner memo caches.

All the memo stores in this package (DP Pareto tables, partition plans,
simulate-and-fill results, timelines, prefix-time arrays) follow the
same policy: move an entry to the back on hit, evict the least recently
used on insert at capacity.  One implementation here keeps the copies
from drifting.

Two store classes wrap the raw helpers for :class:`~repro.core.caches.
PlannerCaches` ownership:

* :class:`LruStore` — a flat bounded LRU with hit/miss/eviction
  counters and a coarse lock for concurrent writers.
* :class:`ProfileKeyedStore` — the per-profile pattern previously
  duplicated across partition.py, partition_cdm.py and filling.py: a
  ``WeakKeyDictionary[ProfileDB, OrderedDict]`` whose inner dicts are
  bounded LRUs, so tables die with their profile and a long-lived
  service sweeping arbitrary (float) batch keys stays bounded.

Reads take a lock-free fast path: CPython dict operations are atomic
under the GIL, values are pure functions of their keys, and the worst
a racing eviction can cause is a spurious miss (recomputed
identically).  Mutation (inserts, evictions, clears) is serialized by
the store's lock so capacity bookkeeping never corrupts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from weakref import WeakKeyDictionary


def lru_get(cache: OrderedDict, key):
    """Return ``cache[key]`` (refreshing its recency) or None."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def lru_put(cache: OrderedDict, key, value, max_entries: int) -> None:
    """Insert ``key -> value``, evicting the oldest entries at capacity."""
    if key in cache:
        cache.move_to_end(key)
    else:
        while len(cache) >= max_entries:
            cache.popitem(last=False)
    cache[key] = value


@dataclass
class StoreStats:
    """Hit/miss/eviction counters plus the live entry count of a store."""

    name: str
    hits: int
    misses: int
    evictions: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class LruStore:
    """A flat bounded LRU with counters, safe for concurrent readers.

    ``max_entries=None`` disables eviction (for stores whose key space
    is naturally bounded, like the per-topology comm constants).
    ``None`` values cannot be stored — like :func:`lru_get`, a ``None``
    from :meth:`get` always means *miss*.
    """

    def __init__(self, max_entries: int | None, *, name: str = ""):
        self.name = name
        self.max_entries = max_entries
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        try:
            # repro: allow[lock-discipline] GIL-atomic read-path refresh
            self._data.move_to_end(key)
        except KeyError:
            # Lost a race with an eviction; the value itself is still
            # valid (entries are pure functions of their keys).
            pass
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            elif self.max_entries is not None:
                while len(data) >= self.max_entries:
                    data.popitem(last=False)
                    self.evictions += 1
            data[key] = value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def items(self):
        """Snapshot of (key, value) pairs (for persistence/tests)."""
        with self._lock:
            return list(self._data.items())

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def stats(self) -> StoreStats:
        return StoreStats(
            name=self.name,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._data),
        )


class ProfileKeyedStore:
    """Weak per-profile tables of bounded LRU entries.

    The outer mapping is keyed weakly by :class:`ProfileDB`, so every
    table dies with its profile; each profile's inner dict is a bounded
    LRU capped at ``max_entries`` (the keys typically contain continuous
    float batch values, so a long-lived sweep must not accumulate
    entries without bound).
    """

    def __init__(self, max_entries: int, *, name: str = ""):
        self.name = name
        self.max_entries = max_entries
        self._by_profile: WeakKeyDictionary = WeakKeyDictionary()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, profile, key):
        per = self._by_profile.get(profile)
        if per is None:
            self.misses += 1
            return None
        value = per.get(key)
        if value is None:
            self.misses += 1
            return None
        try:
            per.move_to_end(key)
        except KeyError:
            pass
        self.hits += 1
        return value

    def put(self, profile, key, value) -> None:
        with self._lock:
            per = self._by_profile.get(profile)
            if per is None:
                per = self._by_profile.setdefault(profile, OrderedDict())
            if key in per:
                per.move_to_end(key)
            else:
                while len(per) >= self.max_entries:
                    per.popitem(last=False)
                    self.evictions += 1
            per[key] = value

    def clear(self, profile=None) -> None:
        """Drop all tables, or only the given profile's."""
        with self._lock:
            if profile is None:
                self._by_profile.clear()
            else:
                self._by_profile.pop(profile, None)

    def profiles(self) -> list:
        """Live profiles that currently own a table."""
        with self._lock:
            return list(self._by_profile.keys())

    def entry_count(self, profile=None) -> int:
        """Number of entries in one profile's table, or in all tables."""
        with self._lock:
            if profile is not None:
                return len(self._by_profile.get(profile, ()))
            return sum(len(per) for per in self._by_profile.values())

    def items(self):
        """Snapshot of (profile, key, value) triples (for persistence)."""
        with self._lock:
            return [
                (profile, key, value)
                for profile, per in self._by_profile.items()
                for key, value in per.items()
            ]

    def __len__(self) -> int:
        return self.entry_count()

    def stats(self) -> StoreStats:
        return StoreStats(
            name=self.name,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=self.entry_count(),
        )
