"""Ownership of all planner memoisation: :class:`PlannerCaches`.

Every warm table the planner builds — the partition DP Pareto
histories (single-backbone, heterogeneous, and the bidirectional CDM
variants), the filling prefix-time arrays, the lookahead fill shape
cache, the simulated-timeline memo, the partition/evaluation memos and
the communication constants — lives in fields of one
:class:`PlannerCaches` instance.  Nothing in :mod:`repro.core` reaches
for a module-level cache global; functions that historically did now
take a ``caches`` handle and fall back to the process-wide
:func:`default_caches` instance, which preserves the old cross-planner
warm sharing for callers that never pass one.

On top of ownership this module provides:

* :meth:`PlannerCaches.stats` — hit/miss/eviction counters per store,
  as a :class:`CacheStats` report;
* :meth:`PlannerCaches.snapshot` / :meth:`PlannerCaches.load` — a
  versioned on-disk format for the M-independent DP tables, the
  prefix/fill-shape entries and the timeline memo.  Weak profile
  references (both the weak outer keys of the per-profile stores and
  the ``weakref.ref`` values embedded in fill-shape keys) are re-keyed
  by :meth:`~repro.profiling.records.ProfileDB.fingerprint` — a
  content hash of the structural model signature plus every measured
  value — so snapshots survive re-profiling and cross process
  boundaries.  Unknown format versions are rejected with a clear
  :class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import pickle
import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..errors import SnapshotError
from .lru import LruStore, ProfileKeyedStore, StoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.records import ProfileDB


#: default capacities, unchanged from the retired module globals
PARTITION_CACHE_MAX = 16384
EVAL_CACHE_MAX = 4096
TIMELINE_CACHE_MAX = 8192
CHAIN_CACHE_MAX_TABLES = 1024
HET_CACHE_MAX_TABLES = 256
CDM_CACHE_MAX_TABLES = 256
CDM_HET_CACHE_MAX_TABLES = 256
PREFIX_CACHE_MAX = 8192
KERNEL_PLAN_CACHE_MAX = 256

SNAPSHOT_MAGIC = "repro-planner-caches"
SNAPSHOT_VERSION = 1


class FillShapeCache:
    """Cross-evaluation memo for the lookahead fill, keyed by *shape*.

    The lookahead search depends on the bubbles only through their
    chronological (duration, weight) sequence — absolute start times
    never enter the DP — plus the filler's context (profile, model,
    batch, partial-batch knobs, beam settings, initial component
    states).  A planner sweeping (S, M, D) combinations therefore
    re-runs the same search whenever two timelines share that shape;
    this cache lets every evaluation after the first reuse

    * the per-bubble *expansion tables* (FFC candidates and the
      partial-batch menus, keyed by ready-state signature + bubble
      duration + weight),
    * *beam prefixes* — the surviving state set after each bubble
      position, so a shape sharing only a prefix resumes mid-search, and
    * the *final plan* (items, per-bubble utilizations, telemetry and
      terminal component states), replayed without any search at all.

    Everything stored is immutable and profile-content-free (keys hold
    a ``weakref`` to the :class:`ProfileDB`), and the three stores are
    bounded :class:`~repro.core.lru.LruStore` LRUs, so a shared
    instance inside :class:`PlannerCaches` neither pins retired
    profiles nor grows without bound.
    """

    def __init__(
        self,
        *,
        max_expansions: int = 8192,
        max_prefixes: int = 2048,
        max_finals: int = 1024,
    ):
        self.expansions = LruStore(max_expansions, name="fills.expansions")
        self.prefixes = LruStore(max_prefixes, name="fills.prefixes")
        self.finals = LruStore(max_finals, name="fills.finals")
        #: telemetry: warm final-plan hits / cold searches stored
        self.final_hits = 0
        self.final_misses = 0

    def clear(self) -> None:
        """Drop every memoised expansion table, beam prefix and plan."""
        self.expansions.clear()
        self.prefixes.clear()
        self.finals.clear()
        self.final_hits = 0
        self.final_misses = 0

    def stats(self) -> list[StoreStats]:
        return [
            self.expansions.stats(),
            self.prefixes.stats(),
            self.finals.stats(),
        ]


@dataclass(frozen=True)
class CacheStats:
    """Per-store hit/miss/eviction counters of one :class:`PlannerCaches`.

    ``fill_plan_hits`` / ``fill_plan_misses`` count warm final-plan
    replays versus cold lookahead searches (the
    :class:`FillShapeCache` telemetry).
    """

    stores: tuple[StoreStats, ...]
    fill_plan_hits: int
    fill_plan_misses: int

    def store(self, name: str) -> StoreStats:
        for s in self.stores:
            if s.name == name:
                return s
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "stores": {s.name: s.as_dict() for s in self.stores},
            "fill_plan_hits": self.fill_plan_hits,
            "fill_plan_misses": self.fill_plan_misses,
        }

    def format(self) -> str:
        lines = [
            f"{'store':<18} {'entries':>8} {'hits':>9} {'misses':>9} "
            f"{'evict':>7} {'hit%':>6}"
        ]
        for s in self.stores:
            lines.append(
                f"{s.name:<18} {s.entries:>8} {s.hits:>9} {s.misses:>9} "
                f"{s.evictions:>7} {100 * s.hit_rate:>5.1f}%"
            )
        lines.append(
            f"fill plan replays: {self.fill_plan_hits} warm / "
            f"{self.fill_plan_misses} cold"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _ProfileKey:
    """Serialized stand-in for a ``weakref.ref(ProfileDB)`` inside a
    snapshotted cache key: the profile's content fingerprint."""

    fingerprint: str


def _freeze(obj, fp_of):
    """Replace live profile weakrefs with fingerprints, recursively
    through tuples.  Raises :class:`_DeadRef` when a referent died."""
    if isinstance(obj, weakref.ref):
        profile = obj()
        if profile is None:
            raise _DeadRef
        return _ProfileKey(fp_of(profile))
    if type(obj) is tuple:
        return tuple(_freeze(x, fp_of) for x in obj)
    return obj


def _thaw(obj, profile_by_fp: Mapping[str, "ProfileDB"]):
    """Inverse of :func:`_freeze`: swap fingerprints back to weakrefs
    of live profiles.  Raises :class:`_DeadRef` for unknown ones."""
    if isinstance(obj, _ProfileKey):
        profile = profile_by_fp.get(obj.fingerprint)
        if profile is None:
            raise _DeadRef
        return weakref.ref(profile)
    if type(obj) is tuple:
        return tuple(_thaw(x, profile_by_fp) for x in obj)
    return obj


class _DeadRef(Exception):
    """A profile referenced by a cache entry is gone; drop the entry."""


class PlannerCaches:
    """Single owner of all planner memoisation.

    One instance may be shared by several planners (e.g. DiffusionPipe +
    SPP in a throughput sweep, or the Fig. 15 ablation variants) and by
    several threads: every store takes a coarse per-store lock on
    mutation, and entries are pure functions of their keys, so
    concurrent use can at worst recompute a value it then stores twice.
    Cache keys include the full :class:`ClusterSpec` (a frozen value
    type) and weak references to the :class:`ProfileDB`, so planners on
    different topologies or re-profiled models never alias each other's
    entries (and retired profiles are not pinned by the cache).

    Stores
    ------
    ``partition``
        (profile, cluster, batch_per_group, D, S, M, ...) -> the
        partitioner's output (or the PartitionError it raised).
    ``comm``
        per-(D, r) communication constants; unbounded — its keys are
        (cluster, small ints) and its values two floats, bounded by the
        topologies actually used.
    ``evals``
        simulate-and-fill outcomes, with the filling-relevant
        :class:`PlannerOptions` knobs in the key so planners with
        different filling ablations never alias each other's entries.
    ``chains`` / ``het`` / ``cdm`` / ``cdm_het``
        the per-profile M-independent DP Pareto tables of
        :mod:`repro.core.partition` and :mod:`repro.core.partition_cdm`.
    ``prefixes``
        the per-profile filling prefix-time arrays of
        :mod:`repro.core.filling`.
    ``timelines``
        simulated pipeline timelines keyed by every input of the
        task-graph build (stage execs, micro-batch count,
        self-conditioning flag, feedback time, device weights), so
        identical configurations reached from different planners or
        batches share one simulation.
    ``fills``
        the lookahead :class:`FillShapeCache`.
    ``kernel_plans``
        geometry-only transition plans of the array DP kernels
        (:mod:`repro.core.partition_kernels`): per-stage batch index
        arrays keyed by lattice geometry alone, so adjacent
        stage-local batches in a sweep re-scale shared cut-grid
        segment arrays instead of re-enumerating them.
        Profile-independent (plain :class:`LruStore`) and deliberately
        not snapshotted: plans rebuild in microseconds.

    ``partition``, ``evals`` and ``timelines`` are bounded LRUs:
    re-profiling strands their weak-keyed entries, and their values pin
    :class:`Timeline` objects, so an unbounded store in a long-lived
    service would grow forever.
    """

    def __init__(
        self,
        *,
        partition_max: int = PARTITION_CACHE_MAX,
        eval_max: int = EVAL_CACHE_MAX,
        timeline_max: int = TIMELINE_CACHE_MAX,
        chain_tables: int = CHAIN_CACHE_MAX_TABLES,
        het_tables: int = HET_CACHE_MAX_TABLES,
        cdm_tables: int = CDM_CACHE_MAX_TABLES,
        cdm_het_tables: int = CDM_HET_CACHE_MAX_TABLES,
        prefix_max: int = PREFIX_CACHE_MAX,
        kernel_plan_max: int = KERNEL_PLAN_CACHE_MAX,
        fills: FillShapeCache | None = None,
    ):
        self.partition = LruStore(partition_max, name="partition")
        self.comm = LruStore(None, name="comm")
        self.evals = LruStore(eval_max, name="evals")
        self.chains = ProfileKeyedStore(chain_tables, name="chains")
        self.het = ProfileKeyedStore(het_tables, name="het")
        self.cdm = ProfileKeyedStore(cdm_tables, name="cdm")
        self.cdm_het = ProfileKeyedStore(cdm_het_tables, name="cdm_het")
        self.prefixes = ProfileKeyedStore(prefix_max, name="prefixes")
        self.kernel_plans = LruStore(kernel_plan_max, name="kernel_plans")
        self.timelines = LruStore(timeline_max, name="timelines")
        self.fills = fills if fills is not None else FillShapeCache()

    # -- maintenance ---------------------------------------------------------

    def clear(self, profiles: Sequence["ProfileDB"] = ()) -> None:
        """Epoch reset for long-lived services.

        Empties every store this instance owns and — for each profile
        passed — wholesale-clears the float-keyed interpolation caches
        that have no per-hit LRU bookkeeping (``ProfileDB._stage_cache``
        and each ``LayerProfile``'s forward/backward memos).
        Everything is recomputed identically on the next query, so a
        periodic ``clear`` bounds a service sweeping unbounded distinct
        batch values without slowing the hot interpolation path."""
        self.partition.clear()
        self.comm.clear()
        self.evals.clear()
        self.chains.clear()
        self.het.clear()
        self.cdm.clear()
        self.cdm_het.clear()
        self.prefixes.clear()
        self.kernel_plans.clear()
        self.timelines.clear()
        self.fills.clear()
        for profile in profiles:
            profile.reset_caches()

    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters per store."""
        stores = [
            self.partition.stats(),
            self.comm.stats(),
            self.evals.stats(),
            self.chains.stats(),
            self.het.stats(),
            self.cdm.stats(),
            self.cdm_het.stats(),
            self.prefixes.stats(),
            self.kernel_plans.stats(),
            self.timelines.stats(),
            *self.fills.stats(),
        ]
        return CacheStats(
            stores=tuple(stores),
            fill_plan_hits=self.fills.final_hits,
            fill_plan_misses=self.fills.final_misses,
        )

    # -- persistence ---------------------------------------------------------

    _PROFILE_STORES = ("chains", "het", "cdm", "cdm_het", "prefixes")
    _FILL_STORES = ("expansions", "prefixes", "finals")

    def snapshot(self, path, *, include_timelines: bool = True) -> dict:
        """Write the warm M-independent DP tables, the prefix/fill-shape
        entries and (by default) the timeline memo to ``path``.

        Entries are re-keyed by profile content fingerprint (see
        :meth:`ProfileDB.fingerprint`), so the snapshot can be restored
        in another process onto freshly re-profiled models.  The
        ``partition``/``evals``/``comm`` memos are deliberately *not*
        persisted: they rebuild in milliseconds from the warm tables,
        and their values pin report/timeline objects better re-derived.

        The profiles whose tables should be captured must still be
        alive: the per-profile stores are weak-keyed, so tables of an
        already-collected :class:`ProfileDB` are silently gone.

        Returns a per-store count of the entries written.
        """
        fingerprints: dict[int, str] = {}

        def fp_of(profile) -> str:
            # repro: allow[determinism] per-call identity memo only
            fp = fingerprints.get(id(profile))
            if fp is None:
                # repro: allow[determinism] snapshot stores fingerprints
                fp = fingerprints[id(profile)] = profile.fingerprint()
            return fp

        stores: dict[str, object] = {}
        counts: dict[str, int] = {}
        for name in self._PROFILE_STORES:
            store: ProfileKeyedStore = getattr(self, name)
            by_fp: dict[str, list] = {}
            for profile, key, value in store.items():
                by_fp.setdefault(fp_of(profile), []).append((key, value))
            stores[name] = by_fp
            counts[name] = sum(len(v) for v in by_fp.values())
        if include_timelines:
            entries = self.timelines.items()
            stores["timelines"] = entries
            counts["timelines"] = len(entries)
        fills: dict[str, list] = {}
        for name in self._FILL_STORES:
            store = getattr(self.fills, name)
            kept = []
            for key, value in store.items():
                try:
                    kept.append((_freeze(key, fp_of), _freeze(value, fp_of)))
                except _DeadRef:
                    continue
            fills[name] = kept
            counts[f"fills.{name}"] = len(kept)
        stores["fills"] = fills

        payload = {
            "magic": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "stores": stores,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return counts

    def load(self, path, profiles: Sequence["ProfileDB"]) -> dict:
        """Merge a snapshot written by :meth:`snapshot` into this
        instance, re-keying entries onto the given live ``profiles``.

        Entries whose fingerprint matches none of the given profiles
        are skipped (counted under ``"skipped"``), so a snapshot taken
        for several models restores cleanly for any subset.  Raises
        :class:`SnapshotError` for unknown format versions or corrupt
        payloads.

        Returns a per-store count of the entries restored.
        """
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as e:
            raise SnapshotError(f"cannot read cache snapshot {path}: {e}") from e
        if (
            not isinstance(payload, dict)
            or payload.get("magic") != SNAPSHOT_MAGIC
        ):
            raise SnapshotError(
                f"{path} is not a planner-cache snapshot (bad magic)"
            )
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported cache snapshot version {version!r} in {path}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        profile_by_fp = {p.fingerprint(): p for p in profiles}
        stores = payload["stores"]
        counts: dict[str, int] = {"skipped": 0}
        for name in self._PROFILE_STORES:
            store: ProfileKeyedStore = getattr(self, name)
            restored = 0
            for fp, entries in stores.get(name, {}).items():
                profile = profile_by_fp.get(fp)
                if profile is None:
                    counts["skipped"] += len(entries)
                    continue
                for key, value in entries:
                    store.put(profile, key, value)
                    restored += 1
            counts[name] = restored
        for key, value in stores.get("timelines", ()):
            self.timelines.put(key, value)
        counts["timelines"] = len(stores.get("timelines", ()))
        for name in self._FILL_STORES:
            store = getattr(self.fills, name)
            restored = 0
            for key, value in stores.get("fills", {}).get(name, ()):
                try:
                    store.put(
                        _thaw(key, profile_by_fp), _thaw(value, profile_by_fp)
                    )
                    restored += 1
                except _DeadRef:
                    counts["skipped"] += 1
            counts[f"fills.{name}"] = restored
        return counts


_default_caches: PlannerCaches | None = None
_default_lock = threading.Lock()


def default_caches() -> PlannerCaches:
    """The process-wide default :class:`PlannerCaches`.

    Library functions called without an explicit ``caches`` handle
    (including planners constructed with ``caches=None``) share this
    instance, preserving the cross-planner warm sharing the retired
    module-level globals provided.  Code that needs isolation — tests,
    workers with seeded stores, leak-sensitive services — passes its
    own instance instead and never touches this one.
    """
    global _default_caches
    if _default_caches is None:
        with _default_lock:
            if _default_caches is None:
                _default_caches = PlannerCaches()
    return _default_caches
