"""Pipeline-bubble identification (§5).

A bubble is a tuple ``(start time, end time, idle devices)`` — a maximal
time span over which the *same* set of devices is idle.  Bubbles shorter
than 10 ms are discarded (the cost of staging inputs/outputs for filling
exceeds the gain, paper footnote 3).

Extraction is a single sweep-line over idle-span *edge events*: every
span start adds its device to an incrementally maintained idle set,
every span end removes it, and a bubble closes whenever the set changes.
Sorting the ``E`` edges dominates — O(E log E) — versus the quadratic
reference (kept as :func:`extract_bubbles_reference`), which rescans
every device's span list for every breakpoint segment.

For filling purposes, synchronisation (all-reduce) intervals count as
*available* — the non-trainable part may overlap gradient sync
(Fig. 9's ``N(F)``) — while for bubble-ratio reporting they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import FillingError
from ..schedule.timeline import Timeline

#: paper footnote 3: only bubbles longer than 10 ms are worth filling
DEFAULT_MIN_BUBBLE_MS = 10.0


@dataclass(frozen=True)
class Bubble:
    """A maximal constant-idle-set span of the pipeline timeline.

    ``devices`` are logical device indices; ``weight`` is the number of
    physical devices they represent (sum of stage replication factors)
    — the ``d`` used when running non-trainable layers data-parallel in
    the bubble.
    """

    start: float
    end: float
    devices: tuple[int, ...]
    weight: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise FillingError("bubble must have positive duration")
        if not self.devices:
            raise FillingError("bubble must have at least one idle device")
        if self.weight <= 0:
            raise FillingError("bubble weight must be positive")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def device_time(self) -> float:
        """Idle device-time of the bubble (``T_b * d_b``)."""
        return self.duration * self.weight


def extract_bubbles(
    timeline: Timeline,
    *,
    min_duration_ms: float = DEFAULT_MIN_BUBBLE_MS,
    include_sync_spans: bool = True,
    horizon: float | None = None,
) -> list[Bubble]:
    """Identify bubbles in a simulated timeline, chronologically.

    ``include_sync_spans=True`` treats gradient-sync intervals as
    available time (the filling view); ``False`` gives the strict-idle
    view used for bubble-ratio metrics.
    """
    if min_duration_ms < 0:
        raise FillingError("min_duration_ms must be non-negative")
    horizon = timeline.makespan if horizon is None else horizon
    if horizon <= 0:
        return []

    # Edge events: +device at a span start, -device at its end.  A
    # device's idle spans are disjoint and non-touching, so pairing
    # events per device is unambiguous; at one timestamp, removals run
    # before additions (the departing device is idle up to ``t``, the
    # arriving one from ``t``) — encoded in the sort key.
    events: list[tuple[float, int, int]] = []
    for d in range(timeline.num_devices):
        for sp in timeline.idle_spans(
            d, horizon, include_sync_as_busy=not include_sync_spans
        ):
            events.append((sp.start, 1, d))
            events.append((sp.end, 0, d))
    if not events:
        return []
    events.sort()

    bubbles: list[Bubble] = []
    idle: set[int] = set()
    cur_set: tuple[int, ...] = ()
    cur_start = 0.0
    i, n = 0, len(events)
    while i < n:
        t = events[i][0]
        while i < n and events[i][0] == t:
            _, kind, d = events[i]
            if kind:
                idle.add(d)
            else:
                idle.discard(d)
            i += 1
        s = tuple(sorted(idle))
        if s != cur_set:
            if cur_set and t > cur_start:
                bubbles.append(_mk_bubble(timeline, cur_start, t, cur_set))
            cur_set = s
            cur_start = t
    if cur_set and horizon > cur_start:  # pragma: no cover - spans end <= horizon
        bubbles.append(_mk_bubble(timeline, cur_start, horizon, cur_set))

    return [b for b in bubbles if b.duration >= min_duration_ms]


def extract_bubbles_reference(
    timeline: Timeline,
    *,
    min_duration_ms: float = DEFAULT_MIN_BUBBLE_MS,
    include_sync_spans: bool = True,
    horizon: float | None = None,
) -> list[Bubble]:
    """The original breakpoint-scan extraction, kept as the semantic
    oracle for the sweep-line (O(segments x devices x spans)): every
    span edge is a breakpoint, and each inter-breakpoint segment rescans
    every device's span list to recover the idle set at its midpoint.
    """
    if min_duration_ms < 0:
        raise FillingError("min_duration_ms must be non-negative")
    horizon = timeline.makespan if horizon is None else horizon
    if horizon <= 0:
        return []

    idle_by_device = {
        d: timeline.idle_spans(
            d, horizon, include_sync_as_busy=not include_sync_spans
        )
        for d in range(timeline.num_devices)
    }

    # Breakpoints at every idle-span edge.
    edges = {0.0, horizon}
    for spans in idle_by_device.values():
        for sp in spans:
            edges.add(sp.start)
            edges.add(sp.end)
    points = sorted(edges)

    def idle_set_at(t0: float, t1: float) -> tuple[int, ...]:
        mid = (t0 + t1) / 2.0
        out = []
        for d, spans in idle_by_device.items():
            for sp in spans:
                if sp.start <= mid < sp.end:
                    out.append(d)
                    break
        return tuple(out)

    bubbles: list[Bubble] = []
    cur_set: tuple[int, ...] = ()
    cur_start = 0.0
    for i in range(len(points) - 1):
        t0, t1 = points[i], points[i + 1]
        if t1 <= t0:
            continue
        s = idle_set_at(t0, t1)
        if s != cur_set:
            if cur_set:
                bubbles.append(_mk_bubble(timeline, cur_start, t0, cur_set))
            cur_set = s
            cur_start = t0
    if cur_set:
        bubbles.append(_mk_bubble(timeline, cur_start, points[-1], cur_set))

    return [b for b in bubbles if b.duration >= min_duration_ms]


def _mk_bubble(
    timeline: Timeline, start: float, end: float, devices: tuple[int, ...]
) -> Bubble:
    weight = sum(timeline.device_weights[d] for d in devices)
    return Bubble(start=start, end=end, devices=devices, weight=weight)


def total_bubble_device_time(bubbles: Sequence[Bubble]) -> float:
    """Sum of ``T_b * d_b`` over bubbles."""
    return sum(b.device_time for b in bubbles)


def longest_bubble(bubbles: Sequence[Bubble]) -> Bubble | None:
    """The bubble with the longest duration (Fig. 6's comparison line)."""
    return max(bubbles, key=lambda b: b.duration, default=None)
