"""Cross-iteration pipelining (§3.2).

DiffusionPipe fills the bubbles of iteration *k*'s backbone pipeline
with the non-trainable computation of iteration *k+1*: the frozen
encoders of the next batch run inside the current pipeline's idle time,
their outputs are collected into micro-batches at the iteration
boundary, and the next iteration's backbone training starts from them.
Only the very first iteration pays the non-trainable part eagerly.

The steady-state iteration time is therefore

    iteration = pipeline makespan + leftover NT work after the flush,

and the schedule remains mathematically equivalent to synchronous
data-parallel training (verified numerically by
:mod:`repro.engine.equivalence`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..schedule.timeline import Timeline
from .bubbles import Bubble
from .plan import FillReport


@dataclass(frozen=True)
class IterationEstimate:
    """Steady-state and warm-up timing of one training configuration."""

    pipeline_ms: float            # simulated backbone pipeline makespan
    leftover_ms: float            # NT remainder executed after the flush
    iteration_ms: float           # steady-state iteration time
    warmup_extra_ms: float        # extra time of iteration 0 (eager NT run)
    bubble_ratio_unfilled: float  # before filling (strict idle / iter)
    bubble_ratio_filled: float    # after filling

    @property
    def saved_ms(self) -> float:
        """Time saved per iteration vs running NT serially before the
        pipeline (the Fig. 9 'saved time')."""
        return max(0.0, self.warmup_extra_ms - self.leftover_ms)


def _strict_window_overlap(
    timeline: Timeline,
    spans_by_device: dict,
    device: int,
    lo: float,
    hi: float,
) -> float:
    """Replication-weighted overlap of ``[lo, hi)`` with ``device``'s
    strict idle spans (sync counts as busy).  ``spans_by_device``
    memoises the per-device span lists across calls so both strict
    accounting paths share one definition of "strict idle"."""
    spans = spans_by_device.get(device)
    if spans is None:
        spans = spans_by_device[device] = timeline.idle_spans(
            device, include_sync_as_busy=True
        )
    overlap = 0.0
    for sp in spans:
        a = max(sp.start, lo)
        b = min(sp.end, hi)
        if b > a:
            overlap += b - a
    return overlap * timeline.device_weights[device]


def strict_idle_in_bubbles(
    timeline: Timeline, bubbles: Sequence[Bubble]
) -> float:
    """Strict-idle device-time lying *inside* the given bubbles.

    Bubbles are extracted in the sync-inclusive (fillable) view, so a
    bubble may span intervals where a device is running its gradient
    all-reduce — available for overlap-filling, but busy in the strict
    bubble-ratio metric.  This returns the replication-weighted overlap
    of each bubble with its devices' strict idle spans: the part of the
    fillable pool that filled work can actually remove from the strict
    metric.
    """
    total = 0.0
    spans_by_device: dict[int, list] = {}
    for b in bubbles:
        for d in b.devices:
            total += _strict_window_overlap(
                timeline, spans_by_device, d, b.start, b.end
            )
    return total


def packed_fill_strict_credit(
    timeline: Timeline, bubbles: Sequence[Bubble], fill: FillReport
) -> float:
    """Strict-idle device-time the fill actually removes, placement-aware.

    The filler packs each bubble's work from the bubble *start*: the
    items of bubble ``b`` occupy ``[b.start, b.start + filled_ms)`` on
    every device of the bubble (exactly how the Chrome-trace export
    draws them).  The strict bubble-ratio metric only improves where
    that window overlaps a device's *strict* idle spans — work riding a
    gradient all-reduce keeps the device "busy" in the strict view.
    This intersects the per-bubble fill window with each device's
    strict-idle spans (replication-weighted), replacing the
    work-on-strict-idle-first assumption, which credited sync-overlapped
    work as if it had been placed on strict idle time and thereby
    overstated utilization on sync-prefixed bubbles.
    """
    filled_by_index = {u.bubble_index: u.filled_ms for u in fill.per_bubble}
    total = 0.0
    spans_by_device: dict[int, list] = {}
    for index, b in enumerate(bubbles):
        filled = filled_by_index.get(index, 0.0)
        if filled <= 0.0:
            continue
        for d in b.devices:
            total += _strict_window_overlap(
                timeline, spans_by_device, d, b.start, b.start + filled
            )
    return total


def compose_iteration(
    timeline: Timeline,
    fill: FillReport | None,
    nt_total_ms: float,
    *,
    total_devices: int | None = None,
    bubbles: Sequence[Bubble] | None = None,
) -> IterationEstimate:
    """Combine a simulated backbone timeline with a filling outcome.

    Parameters
    ----------
    timeline:
        The simulated backbone pipeline (one iteration, no NT work).
    fill:
        Bubble-filling report, or None when filling is disabled —
        in which case the whole NT part runs serially before the
        pipeline (the backbone-pipeline-only mode of Fig. 9 top).
    nt_total_ms:
        The NT part's serial execution time (data-parallel across the
        pipeline group) — used for the unfilled baseline and warm-up.
    bubbles:
        The bubbles the fill was computed over (the fillable,
        sync-inclusive view).  When given, the filled bubble-ratio
        credits filled work only up to the strict-idle capacity inside
        those bubbles; without them the whole strict view is assumed
        creditable (the historical accounting).
    """
    pipeline_ms = timeline.makespan
    devices = (
        total_devices if total_devices is not None else timeline.total_physical_devices
    )

    if fill is None:
        iteration = pipeline_ms + nt_total_ms
        denom = iteration * devices
        ratio = timeline.bubble_device_time() / denom if denom > 0 else 0.0
        return IterationEstimate(
            pipeline_ms=pipeline_ms,
            leftover_ms=nt_total_ms,
            iteration_ms=iteration,
            warmup_extra_ms=0.0,
            bubble_ratio_unfilled=ratio,
            bubble_ratio_filled=ratio,
        )

    iteration = pipeline_ms + fill.leftover_ms
    idle_before = timeline.bubble_device_time()
    denom_before = (pipeline_ms + nt_total_ms) * devices
    ratio_before = idle_before / denom_before if denom_before > 0 else 0.0

    # ``idle_before`` is the strict-idle view (sync counts as busy)
    # while ``fill.filled_device_time_ms`` was drawn from the fillable
    # pool (sync-inclusive) — work placed over a gradient all-reduce
    # never removes strict idle time.  With the bubbles and the fill's
    # per-bubble placement available, credit exactly the strict idle the
    # packed fill windows cover (:func:`packed_fill_strict_credit`); on
    # sync-free bubbles every window lies on strict idle, so this
    # reduces verbatim to the historical subtraction.  Without placement
    # data (pre-refactor reports, or no bubble metadata) fall back to
    # capping the credit at the strict capacity inside the bubbles —
    # the work-on-strict-idle-first assumption.
    if bubbles is not None and fill.per_bubble:
        credit = packed_fill_strict_credit(timeline, bubbles, fill)
        idle_after = max(0.0, idle_before - credit)
    else:
        strict_in = (
            idle_before
            if bubbles is None
            else strict_idle_in_bubbles(timeline, bubbles)
        )
        if fill.filled_device_time_ms <= strict_in:
            idle_after = max(0.0, idle_before - fill.filled_device_time_ms)
        else:
            idle_after = idle_before - strict_in
    denom_after = iteration * devices
    ratio_after = idle_after / denom_after if denom_after > 0 else 0.0

    return IterationEstimate(
        pipeline_ms=pipeline_ms,
        leftover_ms=fill.leftover_ms,
        iteration_ms=iteration,
        warmup_extra_ms=nt_total_ms,
        bubble_ratio_unfilled=ratio_before,
        bubble_ratio_filled=ratio_after,
    )
