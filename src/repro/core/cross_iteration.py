"""Cross-iteration pipelining (§3.2).

DiffusionPipe fills the bubbles of iteration *k*'s backbone pipeline
with the non-trainable computation of iteration *k+1*: the frozen
encoders of the next batch run inside the current pipeline's idle time,
their outputs are collected into micro-batches at the iteration
boundary, and the next iteration's backbone training starts from them.
Only the very first iteration pays the non-trainable part eagerly.

The steady-state iteration time is therefore

    iteration = pipeline makespan + leftover NT work after the flush,

and the schedule remains mathematically equivalent to synchronous
data-parallel training (verified numerically by
:mod:`repro.engine.equivalence`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schedule.timeline import Timeline
from .plan import FillReport


@dataclass(frozen=True)
class IterationEstimate:
    """Steady-state and warm-up timing of one training configuration."""

    pipeline_ms: float            # simulated backbone pipeline makespan
    leftover_ms: float            # NT remainder executed after the flush
    iteration_ms: float           # steady-state iteration time
    warmup_extra_ms: float        # extra time of iteration 0 (eager NT run)
    bubble_ratio_unfilled: float  # before filling (strict idle / iter)
    bubble_ratio_filled: float    # after filling

    @property
    def saved_ms(self) -> float:
        """Time saved per iteration vs running NT serially before the
        pipeline (the Fig. 9 'saved time')."""
        return max(0.0, self.warmup_extra_ms - self.leftover_ms)


def compose_iteration(
    timeline: Timeline,
    fill: FillReport | None,
    nt_total_ms: float,
    *,
    total_devices: int | None = None,
) -> IterationEstimate:
    """Combine a simulated backbone timeline with a filling outcome.

    Parameters
    ----------
    timeline:
        The simulated backbone pipeline (one iteration, no NT work).
    fill:
        Bubble-filling report, or None when filling is disabled —
        in which case the whole NT part runs serially before the
        pipeline (the backbone-pipeline-only mode of Fig. 9 top).
    nt_total_ms:
        The NT part's serial execution time (data-parallel across the
        pipeline group) — used for the unfilled baseline and warm-up.
    """
    pipeline_ms = timeline.makespan
    devices = (
        total_devices if total_devices is not None else timeline.total_physical_devices
    )

    if fill is None:
        iteration = pipeline_ms + nt_total_ms
        denom = iteration * devices
        ratio = timeline.bubble_device_time() / denom if denom > 0 else 0.0
        return IterationEstimate(
            pipeline_ms=pipeline_ms,
            leftover_ms=nt_total_ms,
            iteration_ms=iteration,
            warmup_extra_ms=0.0,
            bubble_ratio_unfilled=ratio,
            bubble_ratio_filled=ratio,
        )

    iteration = pipeline_ms + fill.leftover_ms
    idle_before = timeline.bubble_device_time()
    denom_before = (pipeline_ms + nt_total_ms) * devices
    ratio_before = idle_before / denom_before if denom_before > 0 else 0.0

    idle_after = max(0.0, idle_before - fill.filled_device_time_ms)
    denom_after = iteration * devices
    ratio_after = idle_after / denom_after if denom_after > 0 else 0.0

    return IterationEstimate(
        pipeline_ms=pipeline_ms,
        leftover_ms=fill.leftover_ms,
        iteration_ms=iteration,
        warmup_extra_ms=nt_total_ms,
        bubble_ratio_unfilled=ratio_before,
        bubble_ratio_filled=ratio_after,
    )
