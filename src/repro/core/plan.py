"""Plan dataclasses shared across the DiffusionPipe front-end.

A :class:`PartitionPlan` is the output of the dynamic-programming
partitioner (§4); an :class:`ExecutionPlan` is the planner's final
product for one (S, M, D) configuration: partition + schedule metrics +
bubble-filling outcome + memory report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError


@dataclass(frozen=True)
class StageAssignment:
    """One pipeline stage: a contiguous layer slice of a component.

    ``replicas`` is the number of physical devices the stage replicates
    over inside one pipeline-parallel group (the paper's ``r``).
    """

    component: str
    lo: int
    hi: int
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ConfigurationError(
                f"invalid stage slice [{self.lo}, {self.hi}) of {self.component}"
            )
        if self.replicas <= 0:
            raise ConfigurationError("stage replicas must be positive")

    @property
    def num_layers(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class PartitionPlan:
    """Output of the backbone partitioner for one hyper-parameter combo.

    ``down`` holds the stage chain of the (single or down-direction)
    backbone; ``up`` is empty for single-backbone models and holds the
    up-direction backbone's chain for cascaded models (§4.2).

    ``t_max_ms`` is the partitioner's upper bound on pipeline execution
    time (Eqn. 1 / 12 / 18); ``w_ms`` and ``y_ms`` are the chosen
    solution's ``T0`` and ``T0^{S-C}`` values.
    """

    down: tuple[StageAssignment, ...]
    up: tuple[StageAssignment, ...] = ()
    num_stages: int = 0
    num_micro_batches: int = 0
    group_size: int = 0
    batch_per_group: float = 0.0
    t_max_ms: float = 0.0
    w_ms: float = 0.0
    y_ms: float = 0.0
    self_conditioning: bool = False

    def __post_init__(self) -> None:
        if not self.down:
            raise ConfigurationError("partition plan has no stages")
        if len(self.down) != self.num_stages:
            raise ConfigurationError(
                f"down chain has {len(self.down)} stages, expected {self.num_stages}"
            )
        if self.up and len(self.up) != self.num_stages:
            raise ConfigurationError(
                f"up chain has {len(self.up)} stages, expected {self.num_stages}"
            )

    @property
    def is_bidirectional(self) -> bool:
        return bool(self.up)

    @property
    def micro_batch(self) -> float:
        """Micro-batch size (pipeline-group batch / M)."""
        return self.batch_per_group / self.num_micro_batches


@dataclass(frozen=True)
class FillItem:
    """One piece of non-trainable work placed into a bubble."""

    component: str
    layer: int
    samples: float           # total samples processed (across the d devices)
    time_ms: float           # execution time at local batch samples/d
    bubble_index: int
    partial: bool = False    # True if placed via the partial-batch rule


@dataclass(frozen=True)
class BubbleUtilization:
    """Filling outcome of one bubble (for the per-bubble report)."""

    bubble_index: int
    duration_ms: float
    weight: int
    filled_ms: float                 # wall-clock time of the work placed

    @property
    def utilization(self) -> float:
        """Fraction of the bubble's wall-clock capacity consumed."""
        if self.duration_ms <= 0:
            return 0.0
        return min(1.0, self.filled_ms / self.duration_ms)


@dataclass(frozen=True)
class FillReport:
    """Outcome of bubble filling for one schedule."""

    items: tuple[FillItem, ...]
    filled_device_time_ms: float     # sum of item time * idle devices
    bubble_device_time_ms: float     # pre-filling idle device-time
    leftover_ms: float               # NT work executed after the flush
    num_bubbles: int
    complete: bool                   # True if all NT work fit in bubbles
    strategy: str = "greedy"         # registry name of the fill strategy
    #: candidates discarded by the FFC enumeration cap — non-zero means
    #: the search was truncated, not that the fill is invalid
    candidates_dropped: int = 0
    per_bubble: tuple[BubbleUtilization, ...] = ()
    #: lookahead telemetry: states dropped by dominance pruning and beam
    #: cuts during the search (0 for the non-searching strategies)
    states_pruned: int = 0
    #: lookahead telemetry: peak reachable-state count after dominance
    #: pruning, before any beam cut (0 for the non-searching strategies)
    beam_peak: int = 0

    @property
    def fill_fraction(self) -> float:
        """Fraction of bubble device-time consumed by filled work."""
        if self.bubble_device_time_ms <= 0:
            return 0.0
        return min(1.0, self.filled_device_time_ms / self.bubble_device_time_ms)


@dataclass(frozen=True)
class MemoryReport:
    """Peak per-device memory of a plan and the device capacity."""

    peak_bytes: float
    capacity_bytes: float
    breakdown: Mapping[str, float] = field(default_factory=dict)

    @property
    def fits(self) -> bool:
        return self.peak_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully-evaluated configuration, ready for instruction generation.

    ``iteration_ms`` is the steady-state (cross-iteration pipelined)
    training iteration time; ``throughput`` is in samples per second
    over the whole cluster.
    """

    model_name: str
    partition: PartitionPlan
    #: registry name of the schedule family the plan was evaluated
    #: under (see :mod:`repro.schedule.families`)
    schedule: str
    data_parallel_degree: int
    global_batch: float
    pipeline_ms: float
    leftover_ms: float
    iteration_ms: float
    throughput: float
    bubble_ratio_unfilled: float
    bubble_ratio_filled: float
    fill: FillReport | None
    memory: MemoryReport | None
    notes: tuple[str, ...] = ()

    @property
    def config_label(self) -> str:
        """Compact S/M/D/dp label for tables."""
        p = self.partition
        return (
            f"S={p.num_stages} M={p.num_micro_batches} "
            f"D={p.group_size} dp={self.data_parallel_degree}"
        )
