"""Bidirectional partitioning for cascaded diffusion models (§4.2).

Two backbones pipeline over the same device chain in opposite
directions.  Device-chain position ``k`` hosts the down backbone's stage
``k`` and the up backbone's stage ``S-1-k``, so walking the chain
forward assigns a growing *prefix* of the down backbone and a growing
*suffix* of the up backbone.  The DP state is therefore
``(down-prefix, up-suffix, positions-filled)`` with a Pareto frontier of
``(W, Y)`` values, where

    W = max over placed stages of T0 (Eqn. 10, using the 2x-enlarged
        communication of competing bidirectional transfers),
    Y = max over placed stages of T_S - T_C (Eqn. 11),

and the objective is ``(M_CDM + 2S - 2) W + Y`` (Eqn. 12) with
``M_CDM = M_down + M_up`` paired forward/backward stages in the stable
phase.

Replication comes in two flavours, mirroring the single-backbone
partitioner: the default pins every chain position to ``r = D / S``
devices (the paper's evaluation setting), while ``heterogeneous=True``
lets each position pick its own replica count — shared by the
co-located down and up stages, which live on the same devices — with
the devices-consumed count joining the DP state (the general recursion
of Eqns. 7-9 applied to the bidirectional objective).

Models with more than two backbones are split into two direction groups
whose stage chains are concatenated (§4.2's grouping rule); see
:func:`group_backbones`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, PartitionError
from ..profiling.records import ProfileDB
from .caches import PlannerCaches, default_caches
from .partition import (
    PartitionContext,
    StageCosts,
    _LazyStageCosts,
    pareto_insert,
)
from .plan import PartitionPlan, StageAssignment

#: the paper enlarges communication by 2x for bidirectional pipelines
CDM_COMM_SCALE = 2.0


@dataclass(frozen=True)
class CDMPartitionContext:
    """Inputs for the two-backbone partitioner.

    ``down`` / ``up`` are single-backbone contexts sharing batch and
    communication constants; their ``component`` fields name the two
    backbones.  Communication inside stage costs is scaled by
    ``comm_scale`` to model link competition.

    Both contexts must agree on the micro-batch count: the bidirectional
    schedule runs ``M`` paired micro-batches per direction, and the
    objective coefficient ``M_CDM = M_down + M_up`` must describe the
    same schedule the planner simulates.
    """

    down: PartitionContext
    up: PartitionContext
    comm_scale: float = CDM_COMM_SCALE

    def __post_init__(self) -> None:
        if self.down.num_micro_batches <= 0 or self.up.num_micro_batches <= 0:
            raise ConfigurationError("micro-batch counts must be positive")
        if self.down.num_micro_batches != self.up.num_micro_batches:
            raise ConfigurationError(
                "bidirectional pipelines run equal micro-batch counts in "
                f"both directions (got down={self.down.num_micro_batches}, "
                f"up={self.up.num_micro_batches}); the schedule builder and "
                "the Eqn. 12 coefficient would otherwise disagree"
            )
        if self.comm_scale <= 0:
            raise ConfigurationError("comm_scale must be positive")
        if self.down.speed_scales != self.up.speed_scales:
            raise ConfigurationError(
                "bidirectional contexts share one device chain, so their "
                "speed_scales must be identical (got "
                f"down={self.down.speed_scales}, up={self.up.speed_scales})"
            )

    @property
    def m_cdm(self) -> int:
        """Paired forward/backward stage count of the stable phase."""
        return self.down.num_micro_batches + self.up.num_micro_batches


class _ScaledCosts(StageCosts):
    """Stage costs with the bidirectional communication enlargement."""

    def __init__(self, ctx: PartitionContext, replicas: int, comm_scale: float):
        super().__init__(ctx, replicas)
        self._comm_scale = comm_scale

    def boundary_comm_ms(self, lo: int, forwards: int = 1) -> float:
        return super().boundary_comm_ms(lo, forwards) * self._comm_scale


def _lazy_scaled_costs(ctx: PartitionContext, comm_scale: float):
    """Per-replica-count :class:`_ScaledCosts`, built on first use."""
    return _LazyStageCosts(ctx, lambda c, r: _ScaledCosts(c, r, comm_scale))


def _cut_points(n: int, cut_step: int) -> list[int]:
    """Boundary positions allowed by ``cut_step`` (chain ends always)."""
    return sorted({p for p in range(0, n + 1) if p % cut_step == 0} | {0, n})


def _min_gap(pts: list[int]) -> int:
    """Smallest positive slice the cut grid admits."""
    return min(b - a for a, b in zip(pts, pts[1:]))


def _seg_eval(costs_for, comp_scale: float | None = None):
    """Lazy per-``(r, lo, hi, window-scale)`` segment ``(t0, sync_gap)``
    memo.

    The eager predecessor tabulated every cut-point pair up front; the
    DPs' feasibility pruning touches far fewer slices (only lengths
    ``<= L - (S-1) * min-cut`` can appear in a completable partition),
    so slices are now evaluated on first use and memoized.  The uniform
    DP calls it with its one fixed replica count; the heterogeneous DP
    spans every ``r``.  A window scale ``w`` (``None`` on homogeneous
    groups) routes the slice through the speed-scaled bounds; equal
    windows share a memo entry.
    """
    memo: dict[tuple, tuple[float, float]] = {}

    def get(r: int, lo: int, hi: int, w: float | None = None):
        key = (r, lo, hi, w)
        v = memo.get(key)
        if v is None:
            costs = costs_for(r)
            if w is None:
                v = memo[key] = (costs.t0(lo, hi), costs.sync_gap(lo, hi))
            else:
                v = memo[key] = (
                    costs.t0_scaled(lo, hi, w),
                    costs.sync_gap_scaled(lo, hi, comp_scale),
                )
        return v

    return get


def _cdm_dp_table(
    ctx: CDMPartitionContext,
    S: int,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
    D: int,
    r_cap: int,
    fixed_r: int | None,
    dp_kernel: str = "array",
    plans=None,
) -> list[dict[tuple[int, int, int], tuple[tuple, ...]]]:
    """Shared DP engine for both replication flavours.

    ``frontiers[k][(a, b, d)]`` is the Pareto set of
    (W, Y, prev_a, prev_b, replicas, parent_index) after placing ``k``
    chain positions with down prefix ``a``, up suffix ``b`` and ``d``
    devices consumed.  Each position's replica count is shared by its
    co-located down and up stages — they live on the same devices.
    ``fixed_r`` pins every position to one count (uniform replication;
    the device coordinate is then deterministic); ``fixed_r=None`` lets
    each position choose ``r`` within the device budget and ``r_cap``.
    Frontiers are frozen to tuples, so the read-only contract is
    engine-enforced.

    ``dp_kernel`` dispatches between the vectorized numpy engine
    (:func:`~.partition_kernels.cdm_table_array`, bit-identical by
    contract and differential test) and the pure-Python
    :func:`_cdm_dp_table_reference` oracle.  ``plans`` is an optional
    store of geometry transition plans the array engine shares across
    adjacent stage-local batches in a sweep
    (``PlannerCaches.kernel_plans``).
    """
    if dp_kernel == "array":
        from . import partition_kernels

        frontiers = partition_kernels.cdm_table_array(
            ctx, S, cut_step=cut_step, max_frontier=max_frontier,
            ld=ld, lu=lu, D=D, r_cap=r_cap, fixed_r=fixed_r, plans=plans,
        )
    elif dp_kernel == "reference":
        frontiers = _cdm_dp_table_reference(
            ctx, S, cut_step=cut_step, max_frontier=max_frontier,
            ld=ld, lu=lu, D=D, r_cap=r_cap, fixed_r=fixed_r,
        )
    else:
        raise ConfigurationError(
            f"unknown dp_kernel {dp_kernel!r}; "
            "expected 'array' or 'reference'"
        )
    return [
        {state: tuple(entries) for state, entries in stage.items()}
        for stage in frontiers
    ]


def _cdm_dp_table_reference(
    ctx: CDMPartitionContext,
    S: int,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
    D: int,
    r_cap: int,
    fixed_r: int | None,
) -> list[dict[tuple[int, int, int], list[tuple]]]:
    """Pure-Python differential oracle of :func:`_cdm_dp_table`.

    Retained verbatim as the bit-identity ground truth for the array
    kernel (the ``simulate_reference`` discipline); selected via
    ``dp_kernel="reference"``.
    """
    scaled = ctx.down.speed_scales is not None
    comp_scale = ctx.down.comp_scale
    eval_d = _seg_eval(_lazy_scaled_costs(ctx.down, ctx.comm_scale), comp_scale)
    eval_u = _seg_eval(_lazy_scaled_costs(ctx.up, ctx.comm_scale), comp_scale)

    cuts_d = _cut_points(ld, cut_step)
    # Up-backbone boundaries are addressed as suffix lengths ``b``; the
    # layer positions they induce are ``lu - b``.
    cuts_u = _cut_points(lu, cut_step)
    pts_u = sorted({lu - b for b in cuts_u})

    # Feasibility bounds from the cut grid: every stage covers at least
    # one inter-cut gap, so no slice in a completable partition exceeds
    # ``L - (S-1) * min-gap`` and a prefix must leave the remaining
    # positions ``remaining * min-gap`` layers of room.  States outside
    # these bounds can never reach full coverage; pruning them shrinks
    # the quadratic transition space without changing any reachable
    # final frontier.
    gap_d = _min_gap(cuts_d)
    gap_u = _min_gap(pts_u)
    max_len_d = ld - (S - 1) * gap_d
    max_len_u = lu - (S - 1) * gap_u

    frontiers: list[dict[tuple[int, int, int], list[tuple]]] = [
        {(0, 0, 0): [(0.0, float("-inf"), -1, -1, 0, -1)]}
    ]
    for k in range(1, S + 1):
        cur: dict[tuple[int, int, int], list[tuple]] = {}
        remaining = S - k
        room_d = ld - remaining * gap_d
        room_u = lu - remaining * gap_u
        for (pa, pb, pd), parents in frontiers[k - 1].items():
            if fixed_r is not None:
                r_iter = (fixed_r,)
            else:
                # Device-count pruning: every remaining position needs
                # at least one device, so replica counts beyond
                # ``D - pd - remaining`` lead to unreachable states and
                # are never generated (nor their prefix sums built).
                max_r = min(D - pd - remaining, r_cap)
                if max_r <= 0:
                    continue
                r_iter = range(1, max_r + 1)
            # Down stage k-1 covers [pa, a); up stage S-k covers
            # [lu - b, lu - pb).
            if remaining:
                hi_a = min(room_d, pa + max_len_d)
                hi_b = min(room_u, pb + max_len_u)
                a_iter = [a for a in cuts_d if pa < a <= hi_a]
                b_iter = [b for b in cuts_u if pb < b <= hi_b]
            else:
                # Last position: only full-coverage states can become a
                # feasible plan; partial pairs are dead states.
                a_iter = (ld,)
                b_iter = (lu,)
            for a in a_iter:
                for r in r_iter:
                    # Position k-1 occupies the device window
                    # [pd, pd+r); its down AND up stage are co-located
                    # there, so one bottleneck factor scales both.
                    w = ctx.down.window_scale(pd, r) if scaled else None
                    td, gd = eval_d(r, pa, a, w)
                    for b in b_iter:
                        tu, gu = eval_u(r, lu - b, lu - pb, w)
                        w_stage = max(td, tu)
                        y_stage = max(gd, gu)
                        skey = (a, b, pd + r)
                        frontier = cur.setdefault(skey, [])
                        for pi, parent in enumerate(parents):
                            cand = (
                                max(parent[0], w_stage),
                                max(parent[1], y_stage),
                                pa,
                                pb,
                                r,
                                pi,
                            )
                            pareto_insert(frontier, cand, 2)
                        if len(frontier) > max_frontier:
                            frontier.sort(key=lambda e: (e[0], e[1]))
                            del frontier[max_frontier:]
        frontiers.append(cur)
    return frontiers


def _cdm_frontiers(
    ctx: CDMPartitionContext,
    S: int,
    r: int,
    caches: PlannerCaches,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
    dp_kernel: str = "array",
) -> list[dict[tuple[int, int, int], tuple[tuple, ...]]]:
    """The (memoized) uniform-replication CDM DP table.

    A :func:`_cdm_dp_table` run with every position pinned to ``r``
    replicas.  The table depends on stage costs (local batches, comm
    constants, comm scale) but not on the micro-batch counts, so it is
    keyed by the stage-local batches — two (micro-batch, r) combos
    sharing a local batch and sync constants share one table (the
    backtracker applies its caller's own ``r`` to the assignments).
    Tables live in ``caches.cdm``, keyed by the shared profile; the
    rare split-profile contexts stay uncached.
    """
    cacheable = ctx.down.profile is ctx.up.profile
    key = (
        ctx.down.component,
        ctx.up.component,
        S,
        # Stage-local batch sizes, computed exactly as StageCosts does;
        # the O(L) prefix-sum tables themselves are built only on a
        # cache miss.
        ctx.down.micro_batch / r,
        ctx.up.micro_batch / r,
        ctx.down.p2p,
        # Sync constants resolved for the uniform replica count: with a
        # per-replica-count resolver these differ across r even at one
        # stage-local batch, so the flat pair must not stand in.
        ctx.down.allreduce_for(r),
        ctx.up.p2p,
        ctx.up.allreduce_for(r),
        ctx.comm_scale,
        cut_step,
        max_frontier,
        # The bidirectional family always prices with the default mode
        # today, but the contexts carry the field, so the key does too.
        ctx.down.pricing,
        ctx.up.pricing,
        # Engines are bit-identical by contract, but tables must still
        # never alias across them (differential runs build both).
        dp_kernel,
        # Speed factors: position k's device window is [k*r, (k+1)*r),
        # so a scaled table depends on the tuple AND on r — two
        # (micro-batch, r) combos sharing a stage-local batch slice
        # different windows.  None keeps homogeneous keys stable.
        None if ctx.down.speed_scales is None else (r, ctx.down.speed_scales),
    )
    if cacheable:
        cached = caches.cdm.get(ctx.down.profile, key)
        if cached is not None:
            return cached
    frontiers = _cdm_dp_table(
        ctx, S, cut_step=cut_step, max_frontier=max_frontier, ld=ld, lu=lu,
        D=S * r, r_cap=r, fixed_r=r,
        dp_kernel=dp_kernel, plans=caches.kernel_plans,
    )
    if cacheable:
        caches.cdm.put(ctx.down.profile, key, frontiers)
    return frontiers


def _cdm_het_frontiers(
    ctx: CDMPartitionContext,
    S: int,
    D: int,
    caches: PlannerCaches,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
    dp_kernel: str = "array",
) -> list[dict[tuple[int, int, int], tuple[tuple, ...]]]:
    """The (memoized) heterogeneous CDM DP table (Eqns. 7-9 applied to
    the bidirectional objective).

    A :func:`_cdm_dp_table` run with free per-position replica counts.
    Like the uniform table, the frontier values depend on the per-group
    micro-batch (per-``r`` local batches are derived inside) but not on
    the micro-batch counts, which only scale the final selection.
    Tables live in ``caches.cdm_het``.
    """
    cacheable = ctx.down.profile is ctx.up.profile
    key = (
        ctx.down.component,
        ctx.up.component,
        S,
        D,
        ctx.down.micro_batch,
        ctx.up.micro_batch,
        ctx.down.p2p,
        # One table spans every replica count, so the key carries the
        # sync model's identity (the per-r resolver's constant tuple, or
        # the flat CommCosts pair), exactly like ``PlannerCaches.het``.
        ctx.down.sync_key,
        ctx.up.p2p,
        ctx.up.sync_key,
        ctx.comm_scale,
        cut_step,
        max_frontier,
        ctx.down.pricing,
        ctx.up.pricing,
        dp_kernel,
        # Per-device speed factors (windows are internal DP state; D is
        # above), matching ``_het_frontiers``.
        ctx.down.speed_scales,
    )
    if cacheable:
        cached = caches.cdm_het.get(ctx.down.profile, key)
        if cached is not None:
            return cached
    # Physical feasibility: every replica of either co-located stage
    # must see at least one sample per micro-batch (the same floor the
    # single-backbone DPs enforce).  Larger r always lowers a stage's
    # modeled compute, so without this cap the DP would happily pick
    # unrunnable sub-sample local batches.
    r_cap = int(min(ctx.down.micro_batch, ctx.up.micro_batch))
    frontiers = _cdm_dp_table(
        ctx, S, cut_step=cut_step, max_frontier=max_frontier, ld=ld, lu=lu,
        D=D, r_cap=r_cap, fixed_r=None,
        dp_kernel=dp_kernel, plans=caches.kernel_plans,
    )
    if cacheable:
        caches.cdm_het.put(ctx.down.profile, key, frontiers)
    return frontiers


def _cdm_select_plan(
    ctx: CDMPartitionContext,
    S: int,
    D: int,
    frontiers: list[dict[tuple[int, int, int], list[tuple]]],
    ld: int,
    lu: int,
    *,
    replicas: int | None,
) -> PartitionPlan:
    """Final objective selection + backtrack over a CDM DP table.

    ``replicas`` overrides the per-position count for uniform tables —
    they may be shared across (micro-batch, r) combos with one stage-
    local batch, so the entries' own ``r`` labels the *builder's* call,
    not necessarily this one.  ``None`` keeps each entry's count
    (heterogeneous tables).
    """
    # Accept any full assignment covering both chains; devices may be
    # partially used but using all of them never hurts, so prefer d = D.
    finals = [
        (state, e)
        for state, entries in frontiers[S].items()
        if state[0] == ld and state[1] == lu
        for e in entries
    ]
    if not finals:
        flavour = "heterogeneous bidirectional" if replicas is None else (
            "bidirectional"
        )
        raise PartitionError(
            f"no feasible {flavour} partition into {S} stages on {D} devices"
        )
    coeff = ctx.m_cdm + 2 * S - 2
    best_state, best = min(
        finals,
        key=lambda se: (coeff * se[1][0] + se[1][1], se[1][0], -se[0][2]),
    )
    obj = coeff * best[0] + best[1]

    # Backtrack both chains plus the per-position replica counts.  The
    # loop walks chain positions S-1..0; down slices are collected in
    # reverse chain order, while the up slice of position S-1-j is up
    # stage j, so the up collection is already in stage order.
    down_cuts: list[tuple[int, int, int]] = []
    up_cuts: list[tuple[int, int, int]] = []
    a, b, d, entry = ld, lu, best_state[2], best
    for k in range(S, 0, -1):
        pa, pb, r = entry[2], entry[3], entry[4]
        pos_r = replicas if replicas is not None else r
        down_cuts.append((pa, a, pos_r))
        up_cuts.append((lu - b, lu - pb, pos_r))
        entry = frontiers[k - 1][(pa, pb, d - r)][entry[5]]
        a, b, d = pa, pb, d - r
    down_cuts.reverse()

    down = tuple(
        StageAssignment(ctx.down.component, lo, hi, replicas=r)
        for lo, hi, r in down_cuts
    )
    up = tuple(
        StageAssignment(ctx.up.component, lo, hi, replicas=r)
        for lo, hi, r in up_cuts
    )
    for chain in (down, up):
        for i in range(1, len(chain)):
            if chain[i].lo != chain[i - 1].hi:
                raise PartitionError(
                    "backtracking produced a non-contiguous chain"
                )
    return PartitionPlan(
        down=down,
        up=up,
        num_stages=S,
        num_micro_batches=ctx.down.num_micro_batches,
        group_size=D,
        batch_per_group=ctx.down.batch_per_group,
        t_max_ms=obj,
        w_ms=best[0],
        y_ms=best[1],
        self_conditioning=False,
    )


def partition_cdm(
    ctx: CDMPartitionContext,
    num_stages: int,
    group_size: int,
    *,
    cut_step: int = 1,
    max_frontier: int = 8,
    heterogeneous: bool = False,
    caches: PlannerCaches | None = None,
    dp_kernel: str = "array",
) -> PartitionPlan:
    """Optimal bidirectional partition of two backbones (Eqns. 13-16).

    With ``heterogeneous=False`` every chain position replicates on
    ``group_size / num_stages`` devices (the paper's evaluation
    setting); with ``heterogeneous=True`` each position picks its own
    replica count — shared by its co-located down and up stages — so
    non-divisible ``(S, D)`` combinations become plannable.

    ``cut_step > 1`` restricts stage boundaries to multiples of the step
    (chain ends always allowed), shrinking the O(L^2) transition space
    for long backbones at negligible quality cost on near-uniform
    chains.  ``max_frontier`` caps each state's Pareto set, keeping the
    lowest-``W`` entries (frontiers are tiny in practice; the cap is a
    worst-case guard).

    DP tables are memoized in ``caches`` (the process-wide default
    instance when ``None``).
    """
    caches = caches if caches is not None else default_caches()
    S = num_stages
    D = group_size
    if S <= 0 or D <= 0:
        raise ConfigurationError("num_stages and group_size must be positive")
    if cut_step <= 0:
        raise ConfigurationError("cut_step must be positive")
    if S > D:
        raise PartitionError(f"cannot place {S} stages on {D} devices")
    if (
        ctx.down.speed_scales is not None
        and len(ctx.down.speed_scales) != D
    ):
        raise ConfigurationError(
            f"speed_scales must carry one factor per group device "
            f"(got {len(ctx.down.speed_scales)} for group size {D})"
        )

    ld = ctx.down.profile.num_layers(ctx.down.component)
    lu = ctx.up.profile.num_layers(ctx.up.component)
    if S > ld or S > lu:
        raise PartitionError(
            f"cannot cut backbones of {ld}/{lu} layers into {S} stages"
        )

    if heterogeneous:
        frontiers = _cdm_het_frontiers(
            ctx, S, D, caches, cut_step=cut_step, max_frontier=max_frontier,
            ld=ld, lu=lu, dp_kernel=dp_kernel,
        )
        return _cdm_select_plan(
            ctx, S, D, frontiers, ld, lu, replicas=None
        )

    if D % S != 0:
        raise PartitionError(
            f"uniform CDM replication needs S | D (got S={S}, D={D}); "
            "use heterogeneous=True otherwise"
        )
    r = D // S
    if ctx.down.micro_batch < r or ctx.up.micro_batch < r:
        # Same per-replica sample floor the heterogeneous DP enforces
        # (r_cap), keeping the het-CDM <= uniform-CDM invariant exact.
        raise PartitionError(
            f"uniform replication r={r} needs at least {r} samples per "
            f"micro-batch in both directions (got "
            f"{ctx.down.micro_batch:g}/{ctx.up.micro_batch:g})"
        )
    frontiers = _cdm_frontiers(
        ctx, S, r, caches, cut_step=cut_step, max_frontier=max_frontier,
        ld=ld, lu=lu, dp_kernel=dp_kernel,
    )
    return _cdm_select_plan(ctx, S, D, frontiers, ld, lu, replicas=r)


def group_backbones(
    profile: ProfileDB, backbones: list[str], batch: float
) -> tuple[list[str], list[str]]:
    """Split >2 backbones into two direction groups (§4.2).

    Groups are balanced greedily by total forward+backward time so the
    two concatenated chains have similar load (longest-processing-time
    heuristic).  Returns (down group, up group), each in cascade order.
    """
    if len(backbones) < 2:
        raise ConfigurationError("grouping needs at least two backbones")
    weights = {
        name: profile.component_train_ms(name, batch) for name in backbones
    }
    down: list[str] = []
    up: list[str] = []
    down_w = up_w = 0.0
    for name in sorted(backbones, key=lambda n: -weights[n]):
        if down_w <= up_w:
            down.append(name)
            down_w += weights[name]
        else:
            up.append(name)
            up_w += weights[name]
    # Restore cascade order within each group.
    order = {name: i for i, name in enumerate(backbones)}
    down.sort(key=order.__getitem__)
    up.sort(key=order.__getitem__)
    return down, up
