"""Bidirectional partitioning for cascaded diffusion models (§4.2).

Two backbones pipeline over the same device chain in opposite
directions.  Device-chain position ``k`` hosts the down backbone's stage
``k`` and the up backbone's stage ``S-1-k``, so walking the chain
forward assigns a growing *prefix* of the down backbone and a growing
*suffix* of the up backbone.  The DP state is therefore
``(down-prefix, up-suffix, positions-filled)`` with a Pareto frontier of
``(W, Y)`` values, where

    W = max over placed stages of T0 (Eqn. 10, using the 2x-enlarged
        communication of competing bidirectional transfers),
    Y = max over placed stages of T_S - T_C (Eqn. 11),

and the objective is ``(M_CDM + 2S - 2) W + Y`` (Eqn. 12) with
``M_CDM = M_down + M_up`` paired forward/backward stages in the stable
phase.

Models with more than two backbones are split into two direction groups
whose stage chains are concatenated (§4.2's grouping rule); see
:func:`group_backbones`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from weakref import WeakKeyDictionary

from ..errors import ConfigurationError, PartitionError
from ..profiling.records import ProfileDB
from .lru import lru_get, lru_put
from .partition import PartitionContext, StageCosts, pareto_insert
from .plan import PartitionPlan, StageAssignment

#: the paper enlarges communication by 2x for bidirectional pipelines
CDM_COMM_SCALE = 2.0

#: per-ProfileDB memo of CDM DP tables (see ``_cdm_frontiers``): like
#: the single-backbone frontier cache, the table is independent of the
#: micro-batch counts, which only scale the final objective selection.
#: The per-profile dict is a bounded LRU like its partition.py siblings:
#: the stage-local batch keys are continuous floats, so a long-lived
#: service sweeping arbitrary batches must not pin O(S * L^2) tables
#: without bound.
_CDM_CACHE: "WeakKeyDictionary[ProfileDB, OrderedDict]" = WeakKeyDictionary()
_CDM_CACHE_MAX_TABLES = 256


@dataclass(frozen=True)
class CDMPartitionContext:
    """Inputs for the two-backbone partitioner.

    ``down`` / ``up`` are single-backbone contexts sharing batch and
    communication constants; their ``component`` fields name the two
    backbones.  Communication inside stage costs is scaled by
    ``comm_scale`` to model link competition.
    """

    down: PartitionContext
    up: PartitionContext
    comm_scale: float = CDM_COMM_SCALE

    def __post_init__(self) -> None:
        if self.down.num_micro_batches <= 0 or self.up.num_micro_batches <= 0:
            raise ConfigurationError("micro-batch counts must be positive")
        if self.comm_scale <= 0:
            raise ConfigurationError("comm_scale must be positive")

    @property
    def m_cdm(self) -> int:
        """Paired forward/backward stage count of the stable phase."""
        return self.down.num_micro_batches + self.up.num_micro_batches


class _ScaledCosts(StageCosts):
    """Stage costs with the bidirectional communication enlargement."""

    def __init__(self, ctx: PartitionContext, replicas: int, comm_scale: float):
        super().__init__(ctx, replicas)
        self._comm_scale = comm_scale

    def boundary_comm_ms(self, lo: int, forwards: int = 1) -> float:
        return super().boundary_comm_ms(lo, forwards) * self._comm_scale


def _cdm_frontiers(
    ctx: CDMPartitionContext,
    S: int,
    r: int,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
) -> list[dict[tuple[int, int], list[tuple]]]:
    """The (memoized) CDM DP table.

    ``frontiers[k][(a, b)]`` is the Pareto set of
    (W, Y, prev_a, prev_b, parent_index) after placing ``k`` chain
    positions with down prefix ``a`` and up suffix ``b`` assigned.
    Entries are immutable: callers must only read them.  The table
    depends on stage costs (local batches, comm constants, comm scale)
    but not on the micro-batch counts.
    """
    cacheable = ctx.down.profile is ctx.up.profile
    db_cache = None
    if cacheable:
        db_cache = _CDM_CACHE.get(ctx.down.profile)
        if db_cache is None:
            db_cache = _CDM_CACHE.setdefault(ctx.down.profile, OrderedDict())
    key = (
        ctx.down.component,
        ctx.up.component,
        S,
        # Stage-local batch sizes, computed exactly as StageCosts does;
        # the O(L) prefix-sum tables themselves are built only on a
        # cache miss.
        ctx.down.micro_batch / r,
        ctx.up.micro_batch / r,
        ctx.down.p2p,
        ctx.down.allreduce,
        ctx.up.p2p,
        ctx.up.allreduce,
        ctx.comm_scale,
        cut_step,
        max_frontier,
    )
    if db_cache is not None:
        cached = lru_get(db_cache, key)
        if cached is not None:
            return cached
    down_costs = _ScaledCosts(ctx.down, r, ctx.comm_scale)
    up_costs = _ScaledCosts(ctx.up, r, ctx.comm_scale)

    def cut_points(n: int) -> list[int]:
        """Interior boundary positions allowed by ``cut_step``."""
        pts = sorted({p for p in range(0, n + 1) if p % cut_step == 0} | {0, n})
        return pts

    cuts_d = cut_points(ld)
    # Up-backbone boundaries are addressed as suffix lengths ``b``; the
    # layer positions they induce are ``lu - b``.
    cuts_u = cut_points(lu)
    pts_u = sorted({lu - b for b in cuts_u})

    # Pre-compute per-slice stage bounds for both backbones.
    def slice_tables(costs: StageCosts, pts: list[int]):
        t0 = {}
        gap = {}
        for i, a in enumerate(pts):
            for b in pts[i + 1:]:
                t0[(a, b)] = costs.t0(a, b)
                gap[(a, b)] = costs.sync_gap(a, b)
        return t0, gap

    t0_d, gap_d = slice_tables(down_costs, cuts_d)
    t0_u, gap_u = slice_tables(up_costs, pts_u)

    # DP over chain positions.  State (a, b): down prefix a assigned,
    # up suffix of length b assigned.  Frontier entries:
    # (W, Y, prev_a, prev_b, parent_index).
    frontiers: list[dict[tuple[int, int], list[tuple]]] = [
        {(0, 0): [(0.0, float("-inf"), -1, -1, -1)]}
    ]
    for k in range(1, S + 1):
        cur: dict[tuple[int, int], list[tuple]] = {}
        remaining = S - k
        for (pa, pb), parents in frontiers[k - 1].items():
            # Down stage k-1 covers [pa, a); up stage S-k covers
            # [lu - b, lu - pb).
            for a in cuts_d:
                if a <= pa or a > ld - remaining:
                    continue
                if remaining > 0 and a == ld:
                    continue
                td = t0_d[(pa, a)]
                gd = gap_d[(pa, a)]
                for b in cuts_u:
                    if b <= pb or b > lu - remaining:
                        continue
                    u_lo, u_hi = lu - b, lu - pb
                    tu = t0_u[(u_lo, u_hi)]
                    gu = gap_u[(u_lo, u_hi)]
                    w_stage = max(td, tu)
                    y_stage = max(gd, gu)
                    skey = (a, b)
                    frontier = cur.setdefault(skey, [])
                    for pi, parent in enumerate(parents):
                        cand = (
                            max(parent[0], w_stage),
                            max(parent[1], y_stage),
                            pa,
                            pb,
                            pi,
                        )
                        pareto_insert(frontier, cand, 2)
                    if len(frontier) > max_frontier:
                        frontier.sort(key=lambda e: (e[0], e[1]))
                        del frontier[max_frontier:]
        frontiers.append(cur)

    if db_cache is not None:
        lru_put(db_cache, key, frontiers, _CDM_CACHE_MAX_TABLES)
    return frontiers


def partition_cdm(
    ctx: CDMPartitionContext,
    num_stages: int,
    group_size: int,
    *,
    cut_step: int = 1,
    max_frontier: int = 8,
) -> PartitionPlan:
    """Optimal bidirectional partition of two backbones (Eqns. 13-16).

    Homogeneous replication (r = D / S) as in the paper's evaluation.

    ``cut_step > 1`` restricts stage boundaries to multiples of the step
    (chain ends always allowed), shrinking the O(L^2) transition space
    for long backbones at negligible quality cost on near-uniform
    chains.  ``max_frontier`` caps each state's Pareto set, keeping the
    lowest-``W`` entries (frontiers are tiny in practice; the cap is a
    worst-case guard).
    """
    S = num_stages
    D = group_size
    if S <= 0 or D <= 0:
        raise ConfigurationError("num_stages and group_size must be positive")
    if cut_step <= 0:
        raise ConfigurationError("cut_step must be positive")
    if D % S != 0:
        raise PartitionError(f"homogeneous replication needs S | D (S={S}, D={D})")
    r = D // S

    ld = ctx.down.profile.num_layers(ctx.down.component)
    lu = ctx.up.profile.num_layers(ctx.up.component)
    if S > ld or S > lu:
        raise PartitionError(
            f"cannot cut backbones of {ld}/{lu} layers into {S} stages"
        )

    frontiers = _cdm_frontiers(
        ctx, S, r, cut_step=cut_step, max_frontier=max_frontier, ld=ld, lu=lu
    )

    final = frontiers[S].get((ld, lu), [])
    if not final:
        raise PartitionError(
            f"no feasible bidirectional partition into {S} stages"
        )
    coeff = ctx.m_cdm + 2 * S - 2
    best = min(final, key=lambda e: (coeff * e[0] + e[1], e[0]))
    obj = coeff * best[0] + best[1]

    # Backtrack both chains.
    down_cuts: list[tuple[int, int]] = []
    up_cuts: list[tuple[int, int]] = []
    a, b, entry = ld, lu, best
    for k in range(S, 0, -1):
        pa, pb = entry[2], entry[3]
        down_cuts.append((pa, a))
        up_cuts.append((lu - b, lu - pb))
        entry = frontiers[k - 1][(pa, pb)][entry[4]]
        a, b = pa, pb
    down_cuts.reverse()
    # up stage index j runs the slice assigned at chain position S-1-j;
    # up_cuts was collected for positions S-1..0, i.e. up stages 0..S-1.
    up_slices = up_cuts

    down = tuple(
        StageAssignment(ctx.down.component, lo, hi, replicas=r)
        for lo, hi in down_cuts
    )
    up = tuple(
        StageAssignment(ctx.up.component, lo, hi, replicas=r)
        for lo, hi in up_slices
    )
    return PartitionPlan(
        down=down,
        up=up,
        num_stages=S,
        num_micro_batches=ctx.down.num_micro_batches,
        group_size=D,
        batch_per_group=ctx.down.batch_per_group,
        t_max_ms=obj,
        w_ms=best[0],
        y_ms=best[1],
        self_conditioning=False,
    )


def group_backbones(
    profile: ProfileDB, backbones: list[str], batch: float
) -> tuple[list[str], list[str]]:
    """Split >2 backbones into two direction groups (§4.2).

    Groups are balanced greedily by total forward+backward time so the
    two concatenated chains have similar load (longest-processing-time
    heuristic).  Returns (down group, up group), each in cascade order.
    """
    if len(backbones) < 2:
        raise ConfigurationError("grouping needs at least two backbones")
    weights = {
        name: profile.component_train_ms(name, batch) for name in backbones
    }
    down: list[str] = []
    up: list[str] = []
    down_w = up_w = 0.0
    for name in sorted(backbones, key=lambda n: -weights[n]):
        if down_w <= up_w:
            down.append(name)
            down_w += weights[name]
        else:
            up.append(name)
            up_w += weights[name]
    # Restore cascade order within each group.
    order = {name: i for i, name in enumerate(backbones)}
    down.sort(key=order.__getitem__)
    up.sort(key=order.__getitem__)
    return down, up
