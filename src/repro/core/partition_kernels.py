"""Vectorized numpy engines for the partition DP table builds.

The pure-Python Pareto DPs in :mod:`.partition` and
:mod:`.partition_cdm` spend essentially all of their cold time in loop
overhead: profiling shows tens of thousands of ``max``/``pareto_insert``
calls against a few hundred distinct segment-cost evaluations.  This
module rebuilds the three hot table builds — ``_chain_frontiers``,
``_het_frontiers`` and the shared ``_cdm_dp_table`` engine — as array
kernels:

* per-``(cut, prefix)`` stage costs (``t0`` / ``t0_sc`` / ``t0_ramp`` /
  ``sync_gap``) become dense ``(L+1, L+1)`` slabs built from the same
  prefix-sum lists :class:`~.partition.StageCosts` already maintains;
* each stage's transitions are enumerated as flat index arrays (the
  boolean device-budget and cut-grid feasibility masks turn into
  ``searchsorted`` ranges) and the full candidate slab is one
  ``np.maximum(parent_coords, slice_costs)`` broadcast;
* Pareto reduction runs as grouped pairwise dominance filtering over
  sorted candidate segments.

The kernels are *differential twins* of the ``*_reference`` builders:
they evaluate the same ``max``/``+`` compositions in the same
associativity, reconstruct the same backtracking pointers, and emit the
same frontier entries in the same order — bit-identical tables, not
just equal objectives.  The discipline mirrors ``simulate_reference``
and ``lookahead_reference``: the reference stays as the oracle, the
fuzz suite (``tests/test_partition_kernels.py``) diffs the two.

Exactness notes
---------------

``pareto_insert`` keeps a candidate iff no other candidate in the same
frontier dominates-or-equals it from an earlier generation position or
strictly dominates it from a later one, and lists survivors in
generation order — so the reduction needs exact comparisons, never
arithmetic on the coordinates.  The CDM engine additionally truncates
each state's frontier to ``max_frontier`` after every transition batch;
:func:`_truncation_safe` proves (per state, from killer-batch interval
counts) that the fold can never truncate, in which case the vectorized
survivors are exact; the rare unprovable states replay the reference
fold on the precomputed candidate values.
"""

from __future__ import annotations

import numpy as np

from .partition import StageCosts, pareto_insert

__all__ = [
    "chain_table_array",
    "het_table_array",
    "cdm_table_array",
]

#: element budget of one padded pairwise-dominance chunk
_PAIRWISE_BUDGET = 1 << 21

#: killer sentinel: the candidate survives the whole fold
_NO_KILLER = np.iinfo(np.int64).max


# -- shared machinery --------------------------------------------------------


def _order_bits(a: np.ndarray) -> np.ndarray:
    """Total-order-preserving ``int64`` view of a float64 array.

    ``-0.0`` is normalised to ``+0.0`` first so numerically equal
    floats map to equal keys; negative values are flipped into
    two's-complement order.  Sorting the keys with an *unstable*
    integer sort is several times faster than numpy's stable float
    sort, and exactness is restored by a separate tie-repair pass.
    """
    b = (a + 0.0).view(np.int64)
    return b ^ ((b >> 63) & 0x7FFFFFFFFFFFFFFF)


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for an int array of segment sizes."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _cost_slabs(
    costs: StageCosts,
    L: int,
    *,
    sc: bool,
    zb: bool,
    scale: float | None = None,
    comp_scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense ``[lo, hi]`` slabs of ``(t0, alt, sync_gap)``.

    ``alt`` is the frontier's second coordinate: ``t0_sc`` under
    self-conditioning, ``t0_ramp`` under zero-bubble pricing, ``t0``
    otherwise.  Every element reproduces the scalar methods' float
    compositions exactly (prefix-difference, then add, then max), and
    the boundary-communication columns are produced by the *instance*
    method, so subclasses (the CDM comm-scaled costs) price themselves.

    ``scale``/``comp_scale`` select the speed-scaled bound variants
    (``t0_scaled`` etc.): compute divided by the hosting window's
    bottleneck factor, compensation deflated by the group maximum —
    unconditionally, matching the scalar methods' op sequence, so 1.0
    stays bit-identical to the unscaled slab.  ``None`` (the
    homogeneous default) keeps the original op sequence byte-for-byte.
    """
    F = np.asarray(costs._fwd)
    B = np.asarray(costs._bwd)
    fw = F[None, :] - F[:, None]
    bw = B[None, :] - B[:, None]
    comm1 = np.asarray([costs.boundary_comm_ms(lo) for lo in range(L + 1)])
    if scale is None:
        t0 = np.maximum(fw + bw, comm1[:, None])
    else:
        t0 = np.maximum((fw + bw) / scale, comm1[:, None])
    if sc:
        comm2 = np.asarray(
            [costs.boundary_comm_ms(lo, forwards=2) for lo in range(L + 1)]
        )
        if scale is None:
            alt = np.maximum(2.0 * fw + bw, comm2[:, None])
        else:
            alt = np.maximum((2.0 * fw + bw) / scale, comm2[:, None])
    elif zb:
        W = np.asarray(costs._bww)
        bb = np.maximum(0.0, bw - (W[None, :] - W[:, None]))
        if scale is None:
            alt = np.maximum(fw + bb, comm1[:, None])
        else:
            alt = np.maximum((fw + bb) / scale, comm1[:, None])
    else:
        alt = t0
    G = np.asarray(costs._grad)
    g = G[None, :] - G[:, None]
    sync = np.where(
        g == 0, 0.0, g / costs.sync_costs.bandwidth + costs.sync_costs.latency
    )
    comp = B - costs._bwd[0]
    if comp_scale is None:
        gap = sync - comp[:, None]
    else:
        gap = sync - (comp / comp_scale)[:, None]
    return t0, alt, gap


def _chunks_by_budget(
    counts: np.ndarray, budget: int
) -> list[tuple[int, int]]:
    """Contiguous segment chunks with bounded padded pairwise size.

    Chunk width is uniform, derived from the globally widest segment —
    every caller bounds per-segment counts (hierarchical reduction,
    within-batch prefilter, truncated parents), so the padding waste
    stays small and the construction stays O(number of chunks).
    """
    nseg = len(counts)
    m = int(counts.max(initial=0))
    rows = max(1, budget // max(1, m * m))
    return [(lo, min(lo + rows, nseg)) for lo in range(0, nseg, rows)]


def _grouped_pareto(
    cols: tuple[np.ndarray, ...],
    counts: np.ndarray,
    batch: np.ndarray | None = None,
    budget: int = _PAIRWISE_BUDGET,
):
    """Per-segment Pareto reduction by padded pairwise dominance.

    Candidates lie contiguously per segment, in generation order.
    ``drop[i]`` is True iff some candidate of the same segment
    dominates-or-equals ``i`` from an earlier position or strictly
    dominates it from anywhere — exactly the set ``pareto_insert``
    removes over a full fold, so survivors (in order) are the fold's
    final frontier.

    With ``batch`` (monotone per-candidate batch ids), also returns
    ``killer[i]``: the smallest batch id of a *surviving* dominator of
    ``i`` (``_NO_KILLER`` for survivors).  Every dropped candidate has
    one, and it is an upper bound on the batch at which the sequential
    fold actually removes ``i`` — the slack the truncation-safety
    screen is allowed.
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    drop = np.zeros(n, dtype=bool)
    killer = np.full(n, _NO_KILLER, dtype=np.int64) if batch is not None else None
    if n == 0:
        return (drop, killer) if batch is not None else drop
    starts = np.cumsum(counts) - counts
    if batch is not None:
        budget = max(budget // 4, 1)
    for lo, hi in _chunks_by_budget(counts, budget):
        cnt = counts[lo:hi]
        m = int(cnt.max(initial=0))
        if m == 0:
            continue
        st = starts[lo:hi]
        pos = np.arange(m, dtype=np.int64)
        valid = pos[None, :] < cnt[:, None]
        idx = np.where(valid, st[:, None] + pos[None, :], 0)
        le = None
        lt = None
        for col in cols:
            V = np.where(valid, col[idx], np.inf)
            cle = V[:, :, None] <= V[:, None, :]
            clt = V[:, :, None] < V[:, None, :]
            le = cle if le is None else (le & cle)
            lt = clt if lt is None else (lt | clt)
        # j removes i iff j dominates-or-equals i and (strictly, or j
        # is earlier in generation order).  j == i never qualifies.
        domo = le & (lt | (pos[:, None] < pos[None, :]))
        drop_c = domo.any(axis=1)
        drop[idx[valid]] = drop_c[valid]
        if killer is not None:
            keep = (~drop_c) & valid
            B = np.where(valid, batch[idx], 0)
            kb = np.where(keep[:, :, None] & domo, B[:, :, None], _NO_KILLER)
            killer[idx[valid]] = kb.min(axis=1)[valid]
    return (drop, killer) if batch is not None else drop


def _staircase_drop(
    w: np.ndarray,
    y: np.ndarray,
    counts: np.ndarray,
    batch: np.ndarray | None = None,
    cap: int | None = None,
):
    """Exact two-column per-segment Pareto drop mask in O(n log n).

    Stable-sorted by ``(w, y)`` within a segment (ties fall back to the
    incoming array order), candidate ``i`` is killed iff some
    sort-predecessor ``j`` of its segment has ``y_j <= y_i``: the
    predecessor's ``w`` is ``<=`` by sort order, and on full value ties
    the stable sort leaves ``j`` earlier — exactly the
    dominates-or-equals-from-earlier / strictly-dominates rule
    ``pareto_insert`` applies, provided the caller's array order ranks
    every equal-valued pair by arrival (generation order does; so does
    the elbow emission order, whose equal pairs are always cross-batch
    and batch-major).  Survivors are the strict running minima of
    ``y``, so one cumulative minimum replaces the quadratic pairwise
    comparison tensor.

    Segments are contiguous, so instead of one global three-key lexsort
    the sort runs per power-of-two width class as two row-wise stable
    ``argsort`` passes over padded 2-D slabs — much smaller sorts, no
    segment key, and the padding (``+inf``) stays glued to the row
    ends.

    With ``batch`` (per-candidate batch ids), also returns
    ``killer[i]``: the batch id of one *surviving* dominator of every
    dropped candidate (``_NO_KILLER`` for survivors).  It is an upper
    bound on the batch at which the sequential fold removes ``i`` —
    sound for the truncation-safety screen, which only errs toward
    ``unsafe`` on slack.

    With ``cap`` (requires ``batch``), additionally returns ``rej[i]``:
    True for candidates a *capped* sequential fold provably rejects on
    arrival — dominated-or-equal by an earlier-arriving candidate
    whose final ``(w, y, arrival)`` rank in its segment is below
    ``cap``.  Such an "elite" ranks below the cap against every
    arrival prefix (its rank only grows as candidates arrive, and
    within-batch kills complete before batch-end truncations), so it
    is in the frontier whenever a later victim arrives — or was pruned
    by a strictly lex-better dominator that transitively rejects the
    same victims.  Rejected candidates never occupy frontier space, so
    they can be excluded from truncation-replay streams and from the
    safety screen's live counts.
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = len(w)
    drop = np.zeros(n, dtype=bool)
    killer = (
        np.full(n, _NO_KILLER, dtype=np.int64) if batch is not None else None
    )
    rej = np.zeros(n, dtype=bool) if cap is not None else None
    starts = np.cumsum(counts) - counts
    nzseg = np.flatnonzero(counts > 1)
    widths = counts[nzseg]
    rstarts = starts[nzseg]
    if n == 0 or not len(nzseg):
        if rej is not None:
            return drop, killer, rej
        return (drop, killer) if batch is not None else drop
    if batch is None and int(widths.sum()) >= 100_000:
        # Bucket prefilter: on big plain streams, kill candidates that
        # have a dominator in a strictly earlier ``w`` bucket of their
        # segment before the sort ever sees them.  Bucket edges are
        # strict (the bucket map is nondecreasing in ``w``), so such a
        # dominator has strictly smaller ``w`` and ``y <= y_i`` — a
        # kill under the ``pareto_insert`` rule regardless of arrival
        # order.  Survivors keep arrival order, and every killed
        # dominator has a strictly lex-better one (the chain bottoms
        # out at a prefilter survivor), so the staircase restricted to
        # the survivors reproduces the exact reference drop set.
        nb = 128
        big = np.iinfo(np.int64).max
        nr = len(nzseg)
        fidx = np.repeat(rstarts, widths) + _ragged_arange(widths)
        sid = np.repeat(np.arange(nr, dtype=np.int64), widths)
        wf = w[fidx]
        yb0 = _order_bits(y[fidx])
        offs = np.cumsum(widths) - widths
        lo = np.minimum.reduceat(wf, offs)
        span = np.maximum.reduceat(wf, offs) - lo
        good = np.isfinite(span) & (span > 0)
        scale = np.where(good, nb / np.where(good, span, 1.0), 0.0)
        with np.errstate(invalid="ignore"):
            bf = (wf - lo[sid]) * scale[sid]
        bf = np.nan_to_num(bf, nan=0.0, posinf=float(nb - 1), neginf=0.0)
        bk = np.clip(bf.astype(np.int64), 0, nb - 1)
        bmin = np.full(nr * nb, big, dtype=np.int64)
        np.minimum.at(bmin, sid * nb + bk, yb0)
        excl = np.empty((nr, nb), dtype=np.int64)
        excl[:, 0] = big
        np.minimum.accumulate(
            bmin.reshape(nr, nb)[:, :-1], axis=1, out=excl[:, 1:]
        )
        dead = excl[sid, bk] <= yb0
        if dead.any():
            keep = ~dead
            sub_counts = np.zeros_like(counts)
            sub_counts[nzseg] = np.bincount(sid[keep], minlength=nr)
            svi = fidx[keep]
            drop[fidx[dead]] = True
            drop[svi] = _staircase_drop(w[svi], y[svi], sub_counts)
            return drop
    sent = np.iinfo(np.int64).max
    wb = np.empty(n + 1, dtype=np.int64)
    wb[:n] = _order_bits(w)
    wb[n] = sent
    yb = np.empty(n + 1, dtype=np.int64)
    yb[:n] = _order_bits(y)
    yb[n] = sent
    cls = np.ceil(np.log2(widths.astype(np.float64))).astype(np.int64)
    for c in np.unique(cls).tolist():
        members = np.flatnonzero(cls == c)
        padw = 1 << int(c)
        rs = rstarts[members]
        wid = widths[members]
        pos = np.arange(padw, dtype=np.int64)
        # Pads point at the sentinel slot: its key is strictly above
        # every real key (even ``+inf``), so the unstable sort keeps
        # pads glued to the row ends and one gather serves both the
        # keys and the original (= arrival) positions.
        gidx = np.where(
            pos[None, :] < wid[:, None], rs[:, None] + pos[None, :], n
        )
        o = np.argsort(wb[gidx], axis=1)  # unstable introsort on int64
        Gs = np.take_along_axis(gidx, o, axis=1)
        Kws = wb[Gs]
        # Tie repair: the unstable sort scrambles runs of equal ``w``;
        # re-order each run by ``(y, arrival)``.  Runs are rare — pads
        # never join them (sentinel keys are excluded).
        dup = (Kws[:, 1:] == Kws[:, :-1]) & (Kws[:, 1:] != sent)
        if dup.any():
            in_run = np.zeros((len(members), padw), dtype=bool)
            in_run[:, 1:] = dup
            in_run[:, :-1] |= dup
            rr, cc = np.nonzero(in_run)
            conn = np.zeros(len(rr), dtype=bool)
            if len(rr) > 1:
                conn[1:] = (
                    (rr[1:] == rr[:-1])
                    & (cc[1:] == cc[:-1] + 1)
                    & dup[rr[1:], cc[1:] - 1]
                )
            rid = np.cumsum(~conn)
            gv = Gs[rr, cc]
            srt = np.lexsort((gv, yb[gv], rid))
            Gs[rr, cc] = gv[srt]
        Kys = yb[Gs]
        valid = Gs != n
        cm = np.minimum.accumulate(Kys, axis=1)
        excl = np.empty_like(cm)
        excl[:, 0] = sent
        excl[:, 1:] = cm[:, :-1]
        kill = (excl <= Kys) & valid
        drop[Gs[kill]] = True
        if killer is not None and kill.any():
            # The running-minimum holder is a survivor and dominates
            # every cell it kills; its column is the last strict-minimum
            # position at or before each cell.
            setters = Kys < excl
            sp = np.where(setters, pos[None, :], -1)
            last = np.maximum.accumulate(sp, axis=1)
            kr, kc = np.nonzero(kill)
            src = Gs[kr, last[kr, kc]]
            killer[Gs[kr, kc]] = batch[src]
        if rej is not None:
            # Arrival-order rejection against the cap elites: ``Gs``
            # holds each sorted cell's original (= arrival) slot, so
            # one broadcast per elite column covers every victim.
            r2 = np.zeros_like(kill)
            for q in range(min(cap, padw)):
                r2 |= (
                    (Kws[:, q : q + 1] <= Kws)
                    & (Kys[:, q : q + 1] <= Kys)
                    & (Gs[:, q : q + 1] < Gs)
                )
            r2 &= valid
            rej[Gs[r2]] = True
    if rej is not None:
        return drop, killer, rej
    return (drop, killer) if batch is not None else drop


def _csr_count_before(
    vals: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    targets: np.ndarray,
    *,
    strict: bool,
) -> np.ndarray:
    """Per-query count of leading slab elements ``<= target`` (``<``
    when ``strict``).  ``starts``/``counts`` select one ascending-sorted
    slab of ``vals`` per query; all queries bisect in lockstep."""
    nq = len(targets)
    lo = np.zeros(nq, dtype=np.int64)
    hi = counts.astype(np.int64).copy()
    if nq == 0 or not hi.any():
        return lo
    for _ in range(int(hi.max()).bit_length()):
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        gi = np.where(active, starts + mid, 0)
        v = vals[gi]
        go = active & ((v < targets) if strict else (v <= targets))
        lo = np.where(go, mid + 1, lo)
        hi = np.where(active & ~go, mid, hi)
    return lo


def _rmq_table(a: np.ndarray, max_width: int) -> np.ndarray:
    """Sparse min table: row ``k`` holds ``min(a[i:i + 2**k])`` (clipped
    at the end), answering in-slab range-min queries up to
    ``max_width`` wide with two gathers."""
    rows = [a]
    k = 1
    while (1 << k) <= max_width:
        half = 1 << (k - 1)
        prev = rows[-1]
        cur = prev.copy()
        if len(a) > half:
            np.minimum(prev[:-half], prev[half:], out=cur[:-half])
        rows.append(cur)
        k += 1
    return np.stack(rows)


def _clamp_elbow(
    PW: np.ndarray,
    PY: np.ndarray,
    pstarts: np.ndarray,
    pcounts: np.ndarray,
    cell_b: np.ndarray,
    A_b: np.ndarray,
    B_b: np.ndarray,
):
    """Exact within-batch Pareto survivors of corner-clamped frontiers.

    Every batch ``b`` emits one candidate per entry of parent frontier
    ``cell_b[b]``: ``(max(w, A_b), max(y, B_b))``, in parent-list order.
    Parent frontiers are mutually incomparable (distinct ``w``, distinct
    ``y``; sorted by ``w`` ascending their ``y`` is strictly
    descending), so the candidates a batch's own members fail to kill —
    the kill rule of ``pareto_insert``, dominates-or-equals from an
    earlier arrival or strictly dominates from anywhere — are exactly:

    * the parents strictly above the elbow (``w > A`` and ``y > B``),
      clamped to themselves, and
    * at most two corner entries — the clamp of the last ``w <= A``
      parent and the clamp of the first ``y <= B`` parent.  When some
      parent has both (it clamps to exactly ``(A, B)``), the corners
      merge and value ties resolve to the first-arriving such parent.

    Two lockstep binary searches per batch find the elbow; a sparse-min
    table over parent-list positions resolves the merged-corner tie.
    Returns ``(bidx, pil, CW, CY)`` in emission order: batch-major,
    and ``[C1, band, C2]`` (ascending ``w``, descending ``y``) within a
    batch.  That is NOT parent-list order, but every equal-``(w, y)``
    pair is cross-batch (a batch's survivors are strictly
    incomparable), so stability over emission order still resolves
    value ties by arrival — callers need only re-sort the few
    *survivors* by ``(bidx, pil)`` before emitting entries.  Dropping
    the killed candidates is sound because the sequential fold
    completes every within-batch kill before the batch-end truncation
    point.
    """
    nb = len(cell_b)
    n_par = len(PW)
    if n_par == 0 or nb == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, np.zeros(0), np.zeros(0)
    ncell = len(pcounts)
    lidx = _ragged_arange(pcounts)
    cell_of = np.repeat(np.arange(ncell, dtype=np.int64), pcounts)
    order = np.lexsort((PW, cell_of))
    ws = PW[order]
    ys = PY[order]
    nys = -ys
    pis = lidx[order]
    maxc = int(pcounts.max())
    T = _rmq_table(pis, maxc)

    st = pstarts[cell_b]
    m = pcounts[cell_b]
    k0 = _csr_count_before(ws, st, m, A_b, strict=False)  # parents w <= A
    jy = _csr_count_before(nys, st, m, -B_b, strict=True)  # parents y > B

    above_cnt = np.maximum(jy - k0, 0)
    tie = jy < k0  # some parent clamps to exactly (A, B)
    has_c1 = k0 > 0
    has_c2 = ~tie & (jy < m)

    i1 = np.where(has_c1, st + k0 - 1, 0)
    c1y = np.where(tie, B_b, ys[i1])
    c1pi = pis[i1]
    if tie.any():
        lo = st + jy
        hi = st + k0
        lens = hi - lo
        kq = np.where(tie, np.frexp(lens.astype(np.float64))[1] - 1, 0)
        a1 = np.where(tie, lo, 0)
        a2 = np.where(tie, hi - (1 << kq), 0)
        mn = np.minimum(T[kq, a1], T[kq, a2])
        c1pi = np.where(tie, mn, c1pi)

    i2 = np.where(has_c2, st + jy, 0)
    c2w = ws[i2]
    c2pi = pis[i2]

    ab_b = np.repeat(np.arange(nb, dtype=np.int64), above_cnt)
    ga = (st + k0)[ab_b] + _ragged_arange(above_cnt)

    b1 = np.flatnonzero(has_c1)
    b2 = np.flatnonzero(has_c2)
    cnt_out = has_c1.astype(np.int64) + above_cnt + has_c2.astype(np.int64)
    ostarts = np.cumsum(cnt_out) - cnt_out
    n_out = int(cnt_out.sum())
    bidx = np.repeat(np.arange(nb, dtype=np.int64), cnt_out)
    pil = np.empty(n_out, dtype=np.int64)
    CW = np.empty(n_out)
    CY = np.empty(n_out)
    d1 = ostarts[b1]
    pil[d1] = c1pi[b1]
    CW[d1] = A_b[b1]
    CY[d1] = c1y[b1]
    dband = (ostarts + has_c1)[ab_b] + _ragged_arange(above_cnt)
    pil[dband] = pis[ga]
    CW[dband] = ws[ga]
    CY[dband] = ys[ga]
    d2 = (ostarts + has_c1 + above_cnt)[b2]
    pil[d2] = c2pi[b2]
    CW[d2] = c2w[b2]
    CY[d2] = B_b[b2]
    return bidx, pil, CW, CY


def _segmented_pareto(
    cols: tuple[np.ndarray, ...],
    counts: np.ndarray,
    chunk: int = 64,
) -> np.ndarray:
    """Exact per-segment Pareto drop mask via hierarchical reduction.

    The kill relation (dominates-or-equals from an earlier position, or
    strictly dominates from anywhere) is transitive, so any candidate a
    chunk-mate kills is killed by a *final* survivor too: filtering
    bounded chunks first, then re-filtering the survivors at full
    segment granularity, yields exactly the pairwise drop mask while
    never materialising a quadratic-in-segment comparison tensor.
    Only sound without mid-fold truncation (chain/heterogeneous DPs).
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    drop = np.zeros(n, dtype=bool)
    if n == 0:
        return drop
    alive = np.arange(n, dtype=np.int64)
    seg_alive = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    cur = counts
    while True:
        big = cur > chunk
        final = not big.any()
        if final:
            sub = cur
        else:
            q, rem = np.divmod(cur, chunk)
            nsub = q + (rem > 0)
            sub = np.full(int(nsub.sum()), chunk, dtype=np.int64)
            ends = np.cumsum(nsub) - 1
            has_rem = rem > 0
            sub[ends[has_rem]] = rem[has_rem]
        d = _grouped_pareto(tuple(c[alive] for c in cols), sub)
        if final:
            drop[alive[d]] = True
            return drop
        keep = ~d
        alive = alive[keep]
        seg_alive = seg_alive[keep]
        new = np.bincount(seg_alive, minlength=len(counts))
        drop[:] = True
        drop[alive] = False
        if (new == cur).all():
            # No shrinkage: the true frontiers really are this wide.
            # Finish with one full-granularity pass (exact by
            # transitivity — every true killer is still alive).
            d = _grouped_pareto(tuple(c[alive] for c in cols), new)
            drop[alive[d]] = True
            return drop
        cur = new


def _truncation_safe(
    counts: np.ndarray,
    batch: np.ndarray,
    killer: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Per-segment proof that per-batch truncation never fires.

    Candidate ``i`` occupies a frontier slot during batches
    ``[batch_i, max(killer_i, batch_i))`` at most (its true removal is
    never later than a surviving dominator's batch, and never after
    insertion for candidates killed in or before their own batch).
    The segment's frontier size after any batch is therefore bounded by
    the interval count at that batch; when the running maximum stays
    within ``cap``, the reference fold provably never truncates and the
    canonical Pareto survivors *are* the fold result.  Exact integer
    arithmetic throughout — the bound errs only toward ``unsafe``.
    """
    nseg = len(counts)
    safe = np.ones(nseg, dtype=bool)
    n = batch.shape[0]
    if n == 0:
        return safe
    nz = counts > 0
    seg = np.repeat(np.arange(nseg, dtype=np.int64), counts)
    end = np.maximum(killer, batch)
    ev_seg = np.concatenate([seg, seg])
    ev_time = np.concatenate([batch, end])
    ev_delta = np.concatenate(
        [np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)]
    )
    # Starts sort before ends at equal (segment, time): ties then only
    # overestimate the alive count, keeping the screen conservative.
    ev_kind = np.concatenate(
        [np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64)]
    )
    order = np.lexsort((ev_kind, ev_time, ev_seg))
    deltas = ev_delta[order]
    run = np.cumsum(deltas)
    ev_counts = 2 * counts[nz]
    ev_starts = np.cumsum(ev_counts) - ev_counts
    base = np.where(ev_starts > 0, run[ev_starts - 1], 0)
    rel = run - np.repeat(base, ev_counts)
    safe[nz] = np.maximum.reduceat(rel, ev_starts) <= cap
    return safe


def _fold_reference(
    cand_rows: list[tuple],
    batches: list[int],
    max_frontier: int,
) -> list[tuple]:
    """Replay the reference CDM fold on precomputed candidate values:
    ``pareto_insert`` per candidate, truncation after each batch."""
    frontier: list[tuple] = []
    prev_batch = batches[0]
    for row, b in zip(cand_rows, batches):
        if b != prev_batch:
            if len(frontier) > max_frontier:
                frontier.sort(key=lambda e: (e[0], e[1]))
                del frontier[max_frontier:]
            prev_batch = b
        pareto_insert(frontier, row, 2)
    if len(frontier) > max_frontier:
        frontier.sort(key=lambda e: (e[0], e[1]))
        del frontier[max_frontier:]
    return frontier


#: hybrid replay cost model: approximate wall-clock of one lockstep
#: numpy round vs one python ``pareto_insert`` row.  Only the ratio
#: matters, and only for speed — any split is bit-identical.
_REPLAY_ROUND_COST = 3.5e-4
_REPLAY_ROW_COST = 1.5e-6


def _lockstep_fold(
    w: np.ndarray,
    y: np.ndarray,
    bidx: np.ndarray,
    pil: np.ndarray,
    seg_of: np.ndarray,
    sel: np.ndarray,
    uts: np.ndarray,
    cap: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Replay the capped fold for every target in ``uts`` at once.

    Vectorized twin of ``_fold_reference`` across segments: one numpy
    round per batch depth, each round merging the next batch of every
    still-active target into its frontier state.  The state is kept in
    reference *list* order (insertion order, re-sorted by ``(w, y)``
    exactly when a truncation fires), so the final slot order is
    bit-identical to the python fold's output list — the merged rows
    order full value ties by column position, which is list-then-
    arrival order just like ``pareto_insert``.

    The round count is set by the deepest target, so the handful of
    targets with the most batches are peeled off to the python fold
    when the cost model says the saved rounds outweigh their row count
    (``_REPLAY_ROUND_COST`` / ``_REPLAY_ROW_COST``); either path is
    exact, the split only moves wall-clock.

    ``sel`` masks the candidates to replay (callers exclude
    arrival-rejected candidates — they never occupy frontier space).
    Returns ``(scnt, idx)``: per ``uts`` target, the final frontier
    size and the flat candidate indices of its entries, row-wise in
    emission order (``-1`` pads).
    """
    uidx = np.flatnonzero(sel)
    uidx = uidx[np.lexsort((pil[uidx], bidx[uidx]))]
    nU = len(uidx)
    ub = bidx[uidx]
    new = np.ones(nU, dtype=bool)
    new[1:] = ub[1:] != ub[:-1]
    rstart = np.flatnonzero(new)
    rcnt = np.diff(np.append(rstart, nU))
    nu = len(uts)
    row_of = np.full(int(uts[-1]) + 1, -1, dtype=np.int64)
    row_of[uts] = np.arange(nu, dtype=np.int64)
    rrow = row_of[seg_of[uidx[rstart]]]
    nbk = np.bincount(rrow, minlength=nu)
    wstarts = np.cumsum(nbk) - nbk
    rows_t = np.bincount(rrow, weights=rcnt, minlength=nu).astype(np.int64)
    scnt = np.zeros(nu, dtype=np.int64)
    idx = np.full((nu, cap), -1, dtype=np.int64)

    # Deepest-first split: python-fold the ``j`` deepest targets when
    # that prices lower than the lockstep rounds they would force.
    order = np.argsort(-nbk, kind="stable")
    depth = nbk[order]
    crows = np.zeros(nu + 1, dtype=np.int64)
    np.cumsum(rows_t[order], out=crows[1:])
    rounds_if = np.append(depth, 0)
    split_cost = _REPLAY_ROUND_COST * rounds_if + _REPLAY_ROW_COST * crows
    j = int(np.argmin(split_cost))

    for t in order[:j].tolist():
        lo = int(rstart[wstarts[t]])
        hi = lo + int(rows_t[t])
        fi = uidx[lo:hi]
        res = _fold_reference(
            list(zip(w[fi].tolist(), y[fi].tolist(), fi.tolist())),
            ub[lo:hi].tolist(),
            cap,
        )
        scnt[t] = len(res)
        idx[t, : len(res)] = [e[2] for e in res]

    lock = order[j:]
    nl = len(lock)
    if nl == 0:
        return scnt, idx
    sent = np.iinfo(np.int64).max
    UW = np.empty(nU + 1, dtype=np.int64)
    UW[:nU] = _order_bits(w[uidx])
    UW[nU] = sent
    UY = np.empty(nU + 1, dtype=np.int64)
    UY[:nU] = _order_bits(y[uidx])
    UY[nU] = sent
    nbk_l = nbk[lock]
    neg = -nbk_l  # ascending: rows are in depth-descending order
    wstarts_l = wstarts[lock]
    SI = np.full((nl, cap), nU, dtype=np.int64)
    SC = np.zeros(nl, dtype=np.int64)
    ARR = np.arange(nl, dtype=np.int64)[:, None]
    COLS = np.arange(int(rcnt.max(initial=0)), dtype=np.int64)
    for k in range(int(nbk_l.max(initial=0))):
        na = int(np.searchsorted(neg, -k, side="left"))
        if na == 0:
            break
        ridx = wstarts_l[:na] + k
        bst = rstart[ridx]
        bw = rcnt[ridx]
        mbw = int(bw.max())
        gp = np.where(
            COLS[None, :mbw] < bw[:, None], bst[:, None] + COLS[:mbw], nU
        )
        # Merged row = [frontier state | batch arrivals]: column order
        # is exactly the order ``pareto_insert`` ranks equal values.
        MI = np.concatenate([SI[:na], gp], axis=1)
        MW = UW[MI]
        MY = UY[MI]
        arr = ARR[:na]
        o1 = np.argsort(MY, axis=1, kind="stable")
        o2 = np.argsort(MW[arr, o1], axis=1, kind="stable")
        o12 = o1[arr, o2]
        MIs = MI[arr, o12]
        Kys = MY[arr, o12]
        cm = np.minimum.accumulate(Kys, axis=1)
        excl = np.empty_like(cm)
        excl[:, 0] = sent
        excl[:, 1:] = cm[:, :-1]
        surv = (excl > Kys) & (MIs != nU)
        KO = np.zeros_like(surv)
        KO[arr, o12] = surv
        ordi = np.argsort(~KO, axis=1, kind="stable")
        newSI = MI[arr, ordi[:, :cap]]
        sc2 = surv.sum(axis=1)
        tr = sc2 > cap
        if tr.any():
            # Truncation reorders the list to ``(w, y)``-sorted before
            # cutting — compact the *sorted* layout for those rows.
            ords = np.argsort(~surv, axis=1, kind="stable")
            tSI = MIs[arr, ords[:, :cap]]
            newSI = np.where(tr[:, None], tSI, newSI)
        SI[:na] = newSI
        SC[:na] = np.minimum(sc2, cap)
    uix = np.append(uidx, -1)
    scnt[lock] = SC
    idx[lock] = uix[np.minimum(SI, nU)]
    return scnt, idx


def _flatten_entries(
    stage_lists: list[list[tuple]], value_dims: int
) -> tuple[np.ndarray, ...]:
    """Column arrays + per-list counts for a stage's frontier lists."""
    cols: list[list[float]] = [[] for _ in range(value_dims)]
    counts = np.zeros(len(stage_lists), dtype=np.int64)
    for i, entries in enumerate(stage_lists):
        counts[i] = len(entries)
        for e in entries:
            for d in range(value_dims):
                cols[d].append(e[d])
    return tuple(np.asarray(c, dtype=np.float64) for c in cols) + (counts,)


# -- chain (uniform 1F1B) ----------------------------------------------------


def chain_table_array(ctx, r: int, L: int, S: int):
    """Array twin of ``_chain_frontiers_reference`` — same ``(history,
    tf)``, bit-identical entries in identical order."""
    costs = StageCosts(ctx, r)
    sc = ctx.self_conditioning
    zb = ctx.zb_pricing
    scaled = ctx.speed_scales is not None
    if not scaled:
        t0, alt, gap = _cost_slabs(costs, L, sc=sc, zb=zb)
    else:
        # One slab triple per distinct per-stage window factor: stage s
        # covers group-local devices [(s-1)r, sr), and equal bottleneck
        # factors share a slab.
        comp_scale = ctx.comp_scale
        slabs_by_sigma: dict[float, tuple] = {}

    prev: list[list[tuple]] = [[] for _ in range(L + 1)]
    prev[0] = [(0.0, 0.0, float("-inf"), -1, -1)]
    history: list[list[list[tuple]]] = [prev]
    for s in range(1, S + 1):
        if scaled:
            sigma = ctx.window_scale((s - 1) * r, r)
            slab = slabs_by_sigma.get(sigma)
            if slab is None:
                slab = slabs_by_sigma[sigma] = _cost_slabs(
                    costs, L, sc=sc, zb=zb,
                    scale=sigma, comp_scale=comp_scale,
                )
            t0, alt, gap = slab
        cur: list[list[tuple]] = [[] for _ in range(L + 1)]
        # Flatten parents in (cell, entry) order — candidate generation
        # order for every target l is exactly this flat order filtered
        # to cells < l, which is a prefix (cells ascend).
        pc: list[int] = []
        pw: list[float] = []
        ps: list[float] = []
        py: list[float] = []
        ppi: list[int] = []
        for c in range(L + 1):
            for pi, e in enumerate(prev[c]):
                pc.append(c)
                pw.append(e[0])
                ps.append(e[1])
                py.append(e[2])
                ppi.append(pi)
        ls = np.arange(s, L - (S - s) + 1, dtype=np.int64)
        if pc and len(ls):
            PC = np.asarray(pc, dtype=np.int64)
            PW = np.asarray(pw)
            PS = np.asarray(ps)
            PY = np.asarray(py)
            PPI = np.asarray(ppi, dtype=np.int64)
            counts = np.searchsorted(PC, ls, side="left")
            cpi = _ragged_arange(counts)
            LL = np.repeat(ls, counts)
            CC = PC[cpi]
            CW = np.maximum(PW[cpi], t0[CC, LL])
            CS = np.maximum(PS[cpi], alt[CC, LL])
            CY = np.maximum(PY[cpi], gap[CC, LL])
            if not sc and not zb:
                # Default pricing reuses t0 for the second coordinate
                # (partition.py), so CS == CW for every entry by
                # induction from the (0.0, 0.0, ...) root — dominance
                # over the triple degenerates to two columns and the
                # sort-based staircase applies.
                drop = _staircase_drop(CW, CY, counts)
            else:
                drop = _segmented_pareto((CW, CS, CY), counts)
            kidx = np.flatnonzero(~drop)
            seg_of = np.repeat(np.arange(len(ls), dtype=np.int64), counts)
            rows = zip(
                CW[kidx].tolist(),
                CS[kidx].tolist(),
                CY[kidx].tolist(),
                CC[kidx].tolist(),
                PPI[cpi][kidx].tolist(),
                seg_of[kidx].tolist(),
            )
            lsl = ls.tolist()
            for w, w2, y, c, pi, sg in rows:
                cur[lsl[sg]].append((w, w2, y, c, pi))
        history.append(cur)
        prev = cur

    tf = costs.feedback_ms() if ctx.self_conditioning else 0.0
    return history, tf


# -- heterogeneous 1F1B ------------------------------------------------------


def het_table_array(ctx, L: int, S: int, D: int):
    """Array twin of ``_het_frontiers_reference`` — same ``(history,
    tf_by_r)``, bit-identical entries and dict orders."""
    sc = ctx.self_conditioning
    zb = ctx.zb_pricing
    r_cap = int(ctx.micro_batch)
    rmax = min(D - S + 1, r_cap)
    costs_by_r: dict[int, StageCosts] = {}

    def costs_for(r: int) -> StageCosts:
        costs = costs_by_r.get(r)
        if costs is None:
            costs = costs_by_r[r] = StageCosts(ctx, r)
        return costs

    scaled = ctx.speed_scales is not None
    if not scaled:
        shape = (rmax + 1, L + 1, L + 1)
        ST0 = np.zeros(shape)
        SALT = np.zeros(shape)
        SGAP = np.zeros(shape)
        for r in range(1, rmax + 1):
            ST0[r], SALT[r], SGAP[r] = _cost_slabs(
                costs_for(r), L, sc=sc, zb=zb
            )
        SID = None
    else:
        # Slab per distinct (r, window factor): a stage of r replicas
        # starting at group-local device pd runs at the bottleneck of
        # scales[pd:pd+r].  SID maps (pd, r) to its slab, so the value
        # gathers below stay single fancy-index expressions.
        comp_scale = ctx.comp_scale
        SID = np.zeros((D + 1, rmax + 1), dtype=np.int64)
        slab_id: dict[tuple[int, float], int] = {}
        slab_params: list[tuple[int, float]] = []
        for r in range(1, rmax + 1):
            for pd in range(D - r + 1):
                key = (r, ctx.window_scale(pd, r))
                sid = slab_id.get(key)
                if sid is None:
                    sid = slab_id[key] = len(slab_params)
                    slab_params.append(key)
                SID[pd, r] = sid
        shape = (len(slab_params), L + 1, L + 1)
        ST0 = np.zeros(shape)
        SALT = np.zeros(shape)
        SGAP = np.zeros(shape)
        for sid, (r, w) in enumerate(slab_params):
            ST0[sid], SALT[sid], SGAP[sid] = _cost_slabs(
                costs_for(r), L, sc=sc, zb=zb,
                scale=w, comp_scale=comp_scale,
            )

    history: list[dict[tuple, list[tuple]]] = [
        {(0, 0): [(0.0, 0.0, float("-inf"), -1, 0, -1)]}
    ]
    for s in range(1, S + 1):
        stages_left = S - s
        states = list(history[s - 1])
        PL = np.asarray([st[0] for st in states], dtype=np.int64)
        PD = np.asarray([st[1] for st in states], dtype=np.int64)
        entry_lists = list(history[s - 1].values())
        EW, ES, EY, ecounts = _flatten_entries(entry_lists, 3)
        estarts = np.cumsum(ecounts) - ecounts

        # Batch enumeration (one batch per (parent, l, r), in reference
        # loop order: parents in dict order, l outer, r inner).
        nr = np.minimum(D - PD - stages_left, r_cap)
        nr = np.maximum(nr, 0)
        if stages_left:
            nl = np.maximum(L - stages_left - PL, 0)
        else:
            nl = np.ones(len(states), dtype=np.int64)
        n_per_p = nl * nr
        total_b = int(n_per_p.sum())
        if total_b == 0:
            history.append({})
            continue
        P_b = np.repeat(np.arange(len(states), dtype=np.int64), n_per_p)
        local = _ragged_arange(n_per_p)
        nr_b = nr[P_b]
        il = local // nr_b
        R_b = 1 + (local % nr_b)
        if stages_left:
            L_b = PL[P_b] + 1 + il
        else:
            L_b = np.full(total_b, L, dtype=np.int64)
        PL_b = PL[P_b]
        D_b = PD[P_b] + R_b

        # Group batches by target state, preserving within-target
        # construction order (stable sort by first-occurrence rank).
        if stages_left:
            code = L_b * (D + 1) + D_b
        else:
            code = (L_b * (D + 1) + D_b) * (rmax + 1) + R_b
        uniq, first, inverse = np.unique(
            code, return_index=True, return_inverse=True
        )
        rank_of_uniq = np.empty(len(uniq), dtype=np.int64)
        rank_of_uniq[np.argsort(first, kind="stable")] = np.arange(
            len(uniq), dtype=np.int64
        )
        t_rank = rank_of_uniq[inverse]
        perm = np.argsort(t_rank, kind="stable")
        P_b, R_b, L_b, PL_b, D_b, t_rank = (
            P_b[perm], R_b[perm], L_b[perm], PL_b[perm], D_b[perm],
            t_rank[perm],
        )
        nt = len(uniq)
        tb_counts = np.bincount(t_rank, minlength=nt)
        tb_starts = np.cumsum(tb_counts) - tb_counts

        # Candidate expansion: one candidate per (batch, parent entry).
        # Under mixed speeds the slab axis is the (pd, r) window's slab
        # id; otherwise it is r itself — the original gather unchanged.
        K_b = SID[PD[P_b], R_b] if scaled else R_b
        T0_b = ST0[K_b, PL_b, L_b]
        GA_b = SGAP[K_b, PL_b, L_b]
        if not sc and not zb:
            # CS == CW under default pricing (see chain_table_array):
            # dominance degenerates to two columns, so each batch is a
            # corner-clamped frontier — prune it to its elbow survivors
            # before the cross-batch staircase ever sees it.
            bidx, pil, CW, CY = _clamp_elbow(
                EW, EY, estarts, ecounts, P_b, T0_b, GA_b
            )
            CS = CW
            t_of_b = np.repeat(np.arange(nt, dtype=np.int64), tb_counts)
            ct_counts = np.bincount(t_of_b[bidx], minlength=nt)
            drop = _staircase_drop(CW, CY, ct_counts)
            # Survivors back to arrival order before emission (the
            # elbow emits w-sorted runs, not parent-list order).
            kidx = np.flatnonzero(~drop)
            kidx = kidx[np.lexsort((pil[kidx], bidx[kidx]))]
        else:
            counts_e = ecounts[P_b]
            bidx = np.repeat(
                np.arange(total_b, dtype=np.int64), counts_e
            )
            pil = _ragged_arange(counts_e)
            eidx = estarts[P_b][bidx] + pil
            AL_b = SALT[K_b, PL_b, L_b]
            CW = np.maximum(EW[eidx], T0_b[bidx])
            CS = np.maximum(ES[eidx], AL_b[bidx])
            CY = np.maximum(EY[eidx], GA_b[bidx])
            ct_counts = np.add.reduceat(counts_e, tb_starts)
            drop = _segmented_pareto((CW, CS, CY), ct_counts)
            kidx = np.flatnonzero(~drop)

        # Target states in creation order; assemble surviving entries.
        seg_of = np.repeat(np.arange(nt, dtype=np.int64), ct_counts)
        TL = L_b[tb_starts]
        TD = D_b[tb_starts]
        TR = R_b[tb_starts]
        if stages_left:
            target_states = [
                (int(TL[t]), int(TD[t])) for t in range(nt)
            ]
        else:
            target_states = [
                (int(TL[t]), int(TD[t]), int(TR[t])) for t in range(nt)
            ]
        cur: dict[tuple, list[tuple]] = {st: [] for st in target_states}
        rows = zip(
            CW[kidx].tolist(),
            CS[kidx].tolist(),
            CY[kidx].tolist(),
            PL_b[bidx][kidx].tolist(),
            R_b[bidx][kidx].tolist(),
            pil[kidx].tolist(),
            seg_of[kidx].tolist(),
        )
        for w, w2, y, pl, rr, pi, sg in rows:
            cur[target_states[sg]].append((w, w2, y, pl, rr, pi))
        history.append(cur)

    tf_by_r: dict[int, float] = {}
    if ctx.self_conditioning:
        for state in history[S]:
            r = state[2]
            if r not in tf_by_r:
                tf_by_r[r] = costs_for(r).feedback_ms()
    return history, tf_by_r


# -- bidirectional CDM -------------------------------------------------------


def _build_cdm_plan(
    *,
    S: int,
    ld: int,
    lu: int,
    cuts_d: list[int],
    cuts_u: list[int],
    gap_d: int,
    gap_u: int,
    max_len_d: int,
    max_len_u: int,
    D: int,
    r_cap: int,
    fixed_r: int | None,
) -> list[dict]:
    """Geometry-only transition plan shared across table builds.

    State sets, batch enumeration and target creation order of the CDM
    DP depend only on the lattice geometry — frontiers are never empty,
    so no value ever changes which states exist.  The plan tabulates,
    per chain position, the parent states and the (parent, a, r, b)
    batches grouped by target in creation order; a table build then
    only fills in values.  Plans are cached in
    ``PlannerCaches.kernel_plans`` so adjacent stage-local batches in a
    sweep rebuild values over shared index arrays instead of
    re-enumerating the cut grid.
    """
    cuts_d_arr = np.asarray(cuts_d, dtype=np.int64)
    cuts_u_arr = np.asarray(cuts_u, dtype=np.int64)
    plan: list[dict] = []
    PA = np.zeros(1, dtype=np.int64)
    PB = np.zeros(1, dtype=np.int64)
    PD = np.zeros(1, dtype=np.int64)
    for k in range(1, S + 1):
        remaining = S - k
        room_d = ld - remaining * gap_d
        room_u = lu - remaining * gap_u
        if fixed_r is not None:
            nr = np.ones(len(PA), dtype=np.int64)
        else:
            nr = np.maximum(
                np.minimum(D - PD - remaining, r_cap), 0
            )
        if remaining:
            a_lo = np.searchsorted(cuts_d_arr, PA, side="right")
            a_hi = np.searchsorted(
                cuts_d_arr, np.minimum(room_d, PA + max_len_d), side="right"
            )
            b_lo = np.searchsorted(cuts_u_arr, PB, side="right")
            b_hi = np.searchsorted(
                cuts_u_arr, np.minimum(room_u, PB + max_len_u), side="right"
            )
            na = np.maximum(a_hi - a_lo, 0)
            nb = np.maximum(b_hi - b_lo, 0)
        else:
            a_lo = np.searchsorted(cuts_d_arr, ld, side="left") * np.ones(
                len(PA), dtype=np.int64
            )
            b_lo = np.searchsorted(cuts_u_arr, lu, side="left") * np.ones(
                len(PB), dtype=np.int64
            )
            na = np.ones(len(PA), dtype=np.int64)
            nb = np.ones(len(PB), dtype=np.int64)
        n_per_p = na * nr * nb
        total_b = int(n_per_p.sum())
        if total_b == 0:
            plan.append(
                {
                    "P": np.zeros(0, dtype=np.int64),
                    "A": np.zeros(0, dtype=np.int64),
                    "B": np.zeros(0, dtype=np.int64),
                    "R": np.zeros(0, dtype=np.int64),
                    "PA": PA, "PB": PB, "PD": PD,
                    "tb_starts": np.zeros(0, dtype=np.int64),
                    "tb_counts": np.zeros(0, dtype=np.int64),
                    "TA": np.zeros(0, dtype=np.int64),
                    "TB": np.zeros(0, dtype=np.int64),
                    "TD": np.zeros(0, dtype=np.int64),
                }
            )
            PA = PB = PD = np.zeros(0, dtype=np.int64)
            continue
        P_b = np.repeat(np.arange(len(PA), dtype=np.int64), n_per_p)
        local = _ragged_arange(n_per_p)
        nrnb = (nr * nb)[P_b]
        nb_b = nb[P_b]
        ia = local // nrnb
        ir = (local % nrnb) // nb_b
        ib = local % nb_b
        A_b = cuts_d_arr[a_lo[P_b] + ia]
        B_b = cuts_u_arr[b_lo[P_b] + ib]
        if fixed_r is not None:
            R_b = np.full(total_b, fixed_r, dtype=np.int64)
        else:
            R_b = 1 + ir
        D_b = PD[P_b] + R_b

        code = (A_b * (lu + 1) + B_b) * (D + 1) + D_b
        uniq, first, inverse = np.unique(
            code, return_index=True, return_inverse=True
        )
        rank_of_uniq = np.empty(len(uniq), dtype=np.int64)
        rank_of_uniq[np.argsort(first, kind="stable")] = np.arange(
            len(uniq), dtype=np.int64
        )
        t_rank = rank_of_uniq[inverse]
        perm = np.argsort(t_rank, kind="stable")
        P_b, A_b, B_b, R_b, D_b, t_rank = (
            P_b[perm], A_b[perm], B_b[perm], R_b[perm], D_b[perm],
            t_rank[perm],
        )
        nt = len(uniq)
        tb_counts = np.bincount(t_rank, minlength=nt)
        tb_starts = np.cumsum(tb_counts) - tb_counts
        plan.append(
            {
                "P": P_b, "A": A_b, "B": B_b, "R": R_b,
                "PA": PA, "PB": PB, "PD": PD,
                "tb_starts": tb_starts, "tb_counts": tb_counts,
                "TA": A_b[tb_starts], "TB": B_b[tb_starts],
                "TD": D_b[tb_starts],
            }
        )
        PA, PB, PD = A_b[tb_starts], B_b[tb_starts], D_b[tb_starts]
    return plan


def cdm_table_array(
    ctx,
    S: int,
    *,
    cut_step: int,
    max_frontier: int,
    ld: int,
    lu: int,
    D: int,
    r_cap: int,
    fixed_r: int | None,
    plans=None,
):
    """Array twin of ``_cdm_dp_table_reference`` — same frontier list,
    bit-identical entries, dict orders and truncation behaviour.

    ``plans`` is an optional mapping-like store (``LruStore``) of
    geometry transition plans, shared across table builds of one sweep.
    """
    from .partition_cdm import (
        _cut_points,
        _lazy_scaled_costs,
        _min_gap,
    )

    cuts_d = _cut_points(ld, cut_step)
    cuts_u = _cut_points(lu, cut_step)
    pts_u = sorted({lu - b for b in cuts_u})
    gap_d = _min_gap(cuts_d)
    gap_u = _min_gap(pts_u)

    plan_key = ("cdm", S, ld, lu, cut_step, D, r_cap, fixed_r)
    plan = plans.get(plan_key) if plans is not None else None
    if plan is None:
        plan = _build_cdm_plan(
            S=S, ld=ld, lu=lu, cuts_d=cuts_d, cuts_u=cuts_u,
            gap_d=gap_d, gap_u=gap_u,
            max_len_d=ld - (S - 1) * gap_d,
            max_len_u=lu - (S - 1) * gap_u,
            D=D, r_cap=r_cap, fixed_r=fixed_r,
        )
        if plans is not None:
            plans.put(plan_key, plan)

    costs_d_for = _lazy_scaled_costs(ctx.down, ctx.comm_scale)
    costs_u_for = _lazy_scaled_costs(ctx.up, ctx.comm_scale)
    r_used = sorted(
        set().union(*(np.unique(stage["R"]).tolist() for stage in plan))
    )
    rmax = max(r_used, default=0)
    scaled = ctx.down.speed_scales is not None
    if not scaled:
        STD = np.zeros((rmax + 1, ld + 1, ld + 1))
        SGD = np.zeros((rmax + 1, ld + 1, ld + 1))
        STU = np.zeros((rmax + 1, lu + 1, lu + 1))
        SGU = np.zeros((rmax + 1, lu + 1, lu + 1))
        for r in r_used:
            STD[r], _, SGD[r] = _cost_slabs(
                costs_d_for(r), ld, sc=False, zb=False
            )
            STU[r], _, SGU[r] = _cost_slabs(
                costs_u_for(r), lu, sc=False, zb=False
            )
        SID = None
    else:
        # Chain position k hosts its down AND up stage on the same
        # device window [pd, pd+r), so one (r, window factor) slab id
        # serves both chains' gathers (see het_table_array).
        comp_scale = ctx.down.comp_scale
        SID = np.zeros((D + 1, rmax + 1), dtype=np.int64)
        slab_id: dict[tuple[int, float], int] = {}
        slab_params: list[tuple[int, float]] = []
        for r in r_used:
            for pd in range(D - r + 1):
                key = (r, ctx.down.window_scale(pd, r))
                sid = slab_id.get(key)
                if sid is None:
                    sid = slab_id[key] = len(slab_params)
                    slab_params.append(key)
                SID[pd, r] = sid
        nslab = len(slab_params)
        STD = np.zeros((nslab, ld + 1, ld + 1))
        SGD = np.zeros((nslab, ld + 1, ld + 1))
        STU = np.zeros((nslab, lu + 1, lu + 1))
        SGU = np.zeros((nslab, lu + 1, lu + 1))
        for sid, (r, w) in enumerate(slab_params):
            STD[sid], _, SGD[sid] = _cost_slabs(
                costs_d_for(r), ld, sc=False, zb=False,
                scale=w, comp_scale=comp_scale,
            )
            STU[sid], _, SGU[sid] = _cost_slabs(
                costs_u_for(r), lu, sc=False, zb=False,
                scale=w, comp_scale=comp_scale,
            )

    frontiers: list[dict[tuple[int, int, int], list[tuple]]] = [
        {(0, 0, 0): [(0.0, float("-inf"), -1, -1, 0, -1)]}
    ]
    for k in range(1, S + 1):
        st = plan[k - 1]
        P_b, A_b, B_b, R_b = st["P"], st["A"], st["B"], st["R"]
        PA, PB = st["PA"], st["PB"]
        tb_starts, tb_counts = st["tb_starts"], st["tb_counts"]
        total_b = len(P_b)
        if total_b == 0:
            frontiers.append({})
            continue
        entry_lists = list(frontiers[k - 1].values())
        EW, EY, ecounts = _flatten_entries(entry_lists, 2)
        estarts = np.cumsum(ecounts) - ecounts

        PA_b = PA[P_b]
        PB_b = PB[P_b]
        K_b = SID[st["PD"][P_b], R_b] if scaled else R_b
        td = STD[K_b, PA_b, A_b]
        gd = SGD[K_b, PA_b, A_b]
        tu = STU[K_b, lu - B_b, lu - PB_b]
        gu = SGU[K_b, lu - B_b, lu - PB_b]
        WS = np.maximum(td, tu)
        YS = np.maximum(gd, gu)

        # Candidate expansion fused with the exact within-batch
        # prefilter: every batch is one parent frontier clamped by a
        # single ``(WS, YS)`` corner, so only its elbow survivors (the
        # strictly-above-elbow band plus at most two corner entries)
        # can ever touch the fold — the sequential fold completes all
        # within-batch kills before any batch-end truncation.  The
        # clamp collapses most entries onto the corner, so this is also
        # where the candidate stream loses most of its mass.
        bidx, pil, CW, CY = _clamp_elbow(
            EW, EY, estarts, ecounts, P_b, WS, YS
        )
        nt = len(tb_counts)
        t_of_b = np.repeat(np.arange(nt, dtype=np.int64), tb_counts)
        seg_of = t_of_b[bidx]
        ct_counts = np.bincount(seg_of, minlength=nt)

        oversized = ct_counts > max_frontier
        if oversized.any():
            drop, killer, rej = _staircase_drop(
                CW, CY, ct_counts, batch=bidx, cap=max_frontier
            )
            # Arrival-rejected candidates never occupy frontier space:
            # exclude them from the screen's live counts (tighter, still
            # sound) and from the replay streams below.
            live = ~rej
            safe = _truncation_safe(
                np.bincount(seg_of[live], minlength=nt),
                bidx[live],
                killer[live],
                max_frontier,
            )
        else:
            drop = _staircase_drop(CW, CY, ct_counts)
            safe = np.ones(nt, dtype=bool)
            rej = None

        kidx = np.flatnonzero(~drop & safe[seg_of])
        # Survivors back to arrival order before emission (the elbow
        # emits w-sorted runs, not parent-list order).
        kidx = kidx[np.lexsort((pil[kidx], bidx[kidx]))]
        target_states = [
            (int(st["TA"][t]), int(st["TB"][t]), int(st["TD"][t]))
            for t in range(nt)
        ]
        cur: dict[tuple[int, int, int], list[tuple]] = {
            s_: [] for s_ in target_states
        }
        rows = zip(
            CW[kidx].tolist(),
            CY[kidx].tolist(),
            PA_b[bidx][kidx].tolist(),
            PB_b[bidx][kidx].tolist(),
            R_b[bidx][kidx].tolist(),
            pil[kidx].tolist(),
            seg_of[kidx].tolist(),
        )
        for w, y, pa, pb, rr, pi, sg in rows:
            cur[target_states[sg]].append((w, y, pa, pb, rr, pi))
        if not safe.all():
            # The screen could not rule out mid-build truncation for
            # these targets: replay the capped fold for all of them at
            # once, one vectorized round per batch depth.
            uts = np.flatnonzero(~safe)
            scnt_u, idx_u = _lockstep_fold(
                CW,
                CY,
                bidx,
                pil,
                seg_of,
                ~safe[seg_of] & ~rej,
                uts,
                max_frontier,
            )
            emask = (
                np.arange(max_frontier, dtype=np.int64)[None, :]
                < scnt_u[:, None]
            )
            flat = idx_u[emask]
            fb = bidx[flat]
            tup = list(
                zip(
                    CW[flat].tolist(),
                    CY[flat].tolist(),
                    PA_b[fb].tolist(),
                    PB_b[fb].tolist(),
                    R_b[fb].tolist(),
                    pil[flat].tolist(),
                )
            )
            ustarts = np.cumsum(scnt_u) - scnt_u
            for j, t in enumerate(uts.tolist()):
                lo = int(ustarts[j])
                cur[target_states[t]] = tup[lo : lo + int(scnt_u[j])]
        frontiers.append(cur)
    return frontiers
