"""Pluggable bubble-filling strategies (§5) behind a named registry.

The seed implementation hard-wired one policy: fill bubbles
chronologically, choosing per bubble the longest-running candidate
(Algorithms 1+2).  That policy is now one entry — ``greedy`` — of a
registry of :class:`FillStrategy` implementations, so filling policies
can be ablated the same way Fig. 15 ablates the partial-batch rule:

``greedy``
    The paper's myopic per-bubble choice, bit-identical to the seed.
``lookahead``
    Plans *across* bubbles: a forward DP over component-chain states
    (exact while the reachable state set stays small, beam-bounded
    otherwise) that finds trades the greedy misses — e.g. holding a
    short layer back so it can ride the next, wider bubble together
    with its successor.  Never worse than ``greedy``: the greedy
    trajectory is evaluated as a candidate plan and replaces the beam's
    whenever it is strictly better (on a leftover tie the beam plan,
    which maximised filled device-time, is kept).
``none``
    Fills nothing; the whole non-trainable part runs after the flush.
    The filling-path twin of the Fig. 15 "bubble filling disabled"
    ablation (which bypasses the filler entirely).

Strategies receive the :class:`~repro.core.filling.BubbleFiller` (which
owns the model DAG, the profile, the partial-batch knobs and the
component states) plus the bubble list, and return a complete
:class:`~repro.core.plan.FillReport` including per-bubble utilization
and dropped-candidate accounting.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from ..errors import FillingError
from .bubbles import Bubble
from .plan import BubbleUtilization, FillItem, FillReport
from .filling import (
    BubbleFill,
    ComponentState,
    _Candidate,
    _candidate_items,
    apply_fill,
    fill_one_bubble,
    full_batch_candidates,
    prefix_times_raw,
    valid_partial_samples,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .filling import BubbleFiller


class FillStrategy(Protocol):
    """A bubble-filling policy: consumes the filler's component states,
    produces the complete fill report."""

    name: str

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        ...  # pragma: no cover - protocol


FILL_STRATEGIES: dict[str, Callable[[], FillStrategy]] = {}


def register_fill_strategy(name: str):
    """Class decorator adding a strategy factory under ``name``."""

    def deco(cls):
        FILL_STRATEGIES[name] = cls
        return cls

    return deco


def get_fill_strategy(name: str) -> FillStrategy:
    """Instantiate the strategy registered under ``name``."""
    factory = FILL_STRATEGIES.get(name)
    if factory is None:
        raise FillingError(
            f"unknown fill strategy {name!r}; "
            f"registered: {fill_strategy_names()}"
        )
    return factory()


def fill_strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted (CLI choices, docs)."""
    return tuple(sorted(FILL_STRATEGIES))


def _chronological(bubbles: Sequence[Bubble]) -> list[tuple[int, Bubble]]:
    return sorted(enumerate(bubbles), key=lambda ib: ib[1].start)


def _utilization(index: int, bubble: Bubble, filled_ms: float) -> BubbleUtilization:
    return BubbleUtilization(
        bubble_index=index,
        duration_ms=bubble.duration,
        weight=bubble.weight,
        filled_ms=filled_ms,
    )


# ---------------------------------------------------------------------------
# none
# ---------------------------------------------------------------------------


@register_fill_strategy("none")
class NoneFill:
    """Fill nothing: every bubble stays idle, all NT work is leftover."""

    name = "none"

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        per_bubble = [_utilization(i, b, 0.0) for i, b in _chronological(bubbles)]
        return filler.build_report(
            bubbles, (), 0.0, leftover_devices, per_bubble=per_bubble
        )


# ---------------------------------------------------------------------------
# greedy (Algorithms 1 + 2)
# ---------------------------------------------------------------------------


@register_fill_strategy("greedy")
class GreedyFill:
    """The paper's policy: bubbles chronologically, per bubble the
    longest-running candidate (bit-identical to the seed implementation).
    """

    name = "greedy"

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        all_items: list[FillItem] = []
        per_bubble: list[BubbleUtilization] = []
        filled_device_time = 0.0
        dropped = 0
        for index, bubble in _chronological(bubbles):
            ready = filler.ready_components()
            if not ready:
                if all(s.done for s in filler.states.values()):
                    break
                per_bubble.append(_utilization(index, bubble, 0.0))
                continue
            fill = fill_one_bubble(
                filler.profile,
                ready,
                bubble,
                index,
                enable_partial_batch=filler.enable_partial_batch,
                partial_batch_menu=filler.partial_batch_menu,
                max_candidates=filler.max_candidates,
            )
            dropped += fill.candidates_dropped
            per_bubble.append(_utilization(index, bubble, fill.time_ms))
            if not fill.items:
                continue
            apply_fill(filler.states, fill)
            all_items.extend(fill.items)
            filled_device_time += fill.time_ms * bubble.weight
        # Bubbles skipped by the early all-done break still get a
        # zero-utilization entry, so every strategy reports exactly one
        # entry per bubble.
        seen = {u.bubble_index for u in per_bubble}
        for index, bubble in _chronological(bubbles):
            if index not in seen:
                per_bubble.append(_utilization(index, bubble, 0.0))
        return filler.build_report(
            bubbles,
            all_items,
            filled_device_time,
            leftover_devices,
            candidates_dropped=dropped,
            per_bubble=per_bubble,
        )


# ---------------------------------------------------------------------------
# lookahead (cross-bubble DP / beam search)
# ---------------------------------------------------------------------------


#: a component-chain state: per-component (next_layer, remaining)
_StateKey = tuple[tuple[int, float], ...]

#: one recorded per-bubble decision on a search path:
#: (bubble position in chronological order, counts aligned with the
#:  ready list at that state, optional partial (ready idx, layer,
#:  samples, time), total wall-clock time of the fill)
_Move = tuple[int, tuple[int, ...], tuple[int, int, float, float] | None, float]

#: search paths are singly-linked (move, parent) chains — a beam offer
#: is O(1) instead of copying the whole move tuple per successor
_MoveNode = tuple[_Move, "object"] | None


def _walk_moves(node: _MoveNode) -> list[_Move]:
    """Flatten a linked move chain into chronological order."""
    out: list[_Move] = []
    while node is not None:
        move, node = node
        out.append(move)
    out.reverse()
    return out


class _SearchCtx:
    """Per-fill constants of the lookahead search, computed once.

    ``model.non_trainable`` re-derives a topological order on every
    access, and the search visits thousands of states per bubble — so
    the component order, layer counts, dependency lists and the
    always-done (trainable) name set are snapshotted here, and state
    keys are expanded against these arrays instead of the model.
    """

    def __init__(self, filler: "BubbleFiller", leftover_devices: int):
        self.filler = filler
        self.profile = filler.profile
        self.batch = filler.batch
        self.leftover_devices = leftover_devices
        comps = list(filler.model.non_trainable)
        self.names = [c.name for c in comps]
        self.index = {n: i for i, n in enumerate(self.names)}
        self.num_layers = [filler.states[n].num_layers for n in self.names]
        self.deps = [tuple(c.depends_on) for c in comps]
        self.always_done = {
            c.name for c in filler.model.components.values() if c.trainable
        }
        self._estimates: dict[_StateKey, float] = {}

    def initial_key(self) -> _StateKey:
        return tuple(
            (self.filler.states[n].next_layer, self.filler.states[n].remaining)
            for n in self.names
        )

    def ready_indices(self, key: _StateKey) -> list[int]:
        """Indices of non-done components with all dependencies done
        (same order/semantics as ``BubbleFiller.ready_components``)."""
        done = set(self.always_done)
        for i, (next_layer, _) in enumerate(key):
            if next_layer >= self.num_layers[i]:
                done.add(self.names[i])
        return [
            i
            for i, (next_layer, _) in enumerate(key)
            if next_layer < self.num_layers[i]
            and all(dep in done for dep in self.deps[i])
        ]

    def ready_states(self, key: _StateKey, indices: Sequence[int]) -> list[ComponentState]:
        return [
            ComponentState(
                name=self.names[i],
                num_layers=self.num_layers[i],
                batch=self.batch,
                next_layer=key[i][0],
                remaining=key[i][1],
            )
            for i in indices
        ]

    def states_from(self, key: _StateKey) -> dict[str, ComponentState]:
        return {
            n: ComponentState(
                name=n,
                num_layers=self.num_layers[i],
                batch=self.batch,
                next_layer=key[i][0],
                remaining=key[i][1],
            )
            for i, n in enumerate(self.names)
        }

    def estimate(self, key: _StateKey) -> float:
        """Fast leftover estimate for beam ranking (prefix-cache sums)."""
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for i, (next_layer, remaining) in enumerate(key):
            total += prefix_times_raw(
                self.profile,
                self.names[i],
                self.num_layers[i],
                next_layer,
                remaining,
                self.batch,
                self.leftover_devices,
            )[-1]
        self._estimates[key] = total
        return total


@register_fill_strategy("lookahead")
class LookaheadFill:
    """Cross-bubble planner: forward DP over component-chain states.

    Processes bubbles chronologically like ``greedy``, but instead of
    committing to the per-bubble maximum it carries a set of reachable
    component-chain states forward.  Two paths reaching the same state
    have identical futures, so states are deduplicated (a DP over chain
    states); while the reachable set stays within ``beam_width`` the
    search is exhaustive over the per-bubble action space, beyond it
    only the most promising states survive (beam search).  Expansion
    enumerates every FFC candidate and every partial-batch sample count
    — not just the greedy maximum — which is what finds trades like
    holding a short layer for the next, wider bubble.

    The final plan is the terminal state with the smallest exact
    ``leftover_ms``; the greedy trajectory is evaluated alongside and
    adopted whenever it is strictly better (on a tie the beam plan is
    kept — it maximised filled device-time), so ``lookahead`` never
    reports a larger leftover than ``greedy`` on the same instance.
    """

    name = "lookahead"

    #: reachable-state cap: exact DP below, beam search above
    beam_width = 64
    #: per-(state, bubble) FFC enumeration cap during the search
    max_candidates = 256

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        ordered = _chronological(bubbles)
        ctx = _SearchCtx(filler, leftover_devices)

        # beam: state key -> (filled_device_time, dropped, move chain)
        beam: dict[_StateKey, tuple[float, int, _MoveNode]] = {
            ctx.initial_key(): (0.0, 0, None)
        }
        for pos, (index, bubble) in enumerate(ordered):
            nxt: dict[_StateKey, tuple[float, int, _MoveNode]] = {}
            for key, (filled, dropped, moves) in beam.items():
                self._expand(ctx, key, filled, dropped, moves, pos, bubble, nxt)
            if len(nxt) > self.beam_width:
                # Beam cut: keep the states closest to completion
                # (smallest estimated leftover, then most device-time
                # filled, then a deterministic key tie-break).
                ranked = sorted(
                    nxt.items(),
                    key=lambda kv: (ctx.estimate(kv[0]), -kv[1][0], kv[0]),
                )
                nxt = dict(ranked[: self.beam_width])
            beam = nxt

        best = self._select(ctx, beam)
        greedy, scratch = self._greedy_baseline(filler, bubbles, leftover_devices)
        if best is None or greedy.leftover_ms < best[0]:
            # The beam (or its estimates) lost the greedy trajectory:
            # fall back to it so lookahead is never strictly worse than
            # greedy.  Adopt the scratch filler's final states so the
            # caller's filler stays consistent with the returned report.
            for name, state in scratch.states.items():
                filler.states[name].next_layer = state.next_layer
                filler.states[name].remaining = state.remaining
            return replace(greedy, strategy=self.name)
        leftover, filled, dropped, moves = best
        return self._materialize(
            filler,
            ordered,
            bubbles,
            _walk_moves(moves),
            filled,
            dropped,
            leftover_devices,
        )

    # -- expansion ----------------------------------------------------------

    def _expand(
        self,
        ctx: _SearchCtx,
        key: _StateKey,
        filled: float,
        dropped: int,
        moves: _MoveNode,
        pos: int,
        bubble: Bubble,
        out: dict[_StateKey, tuple[float, int, _MoveNode]],
    ) -> None:
        """Add every reachable successor of ``key`` through ``bubble``."""

        def offer(new_key, new_filled, new_dropped, new_moves):
            cur = out.get(new_key)
            # Same state, same future: keep the path that filled the
            # most device-time (ties: the incumbent, deterministic
            # because expansion order is deterministic).
            if cur is None or new_filled > cur[0]:
                out[new_key] = (new_filled, new_dropped, new_moves)

        ready_idx = ctx.ready_indices(key)
        if not ready_idx:
            offer(key, filled, dropped, moves)
            return
        ready = ctx.ready_states(key, ready_idx)

        filler = ctx.filler
        d = bubble.weight
        tb = bubble.duration
        candidates, cand_dropped = full_batch_candidates(
            ctx.profile,
            ready,
            tb,
            d,
            max_candidates=min(filler.max_candidates, self.max_candidates),
        )
        dropped += cand_dropped
        # Partial options depend only on (ready slot, full-batch count),
        # which many candidates share — enumerate each once.
        partial_menu: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for cand in candidates:
            base_key = self._advance(key, ready_idx, cand.counts, ctx.batch)
            if any(cand.counts):
                offer(
                    base_key,
                    filled + cand.time_ms * d,
                    dropped,
                    ((pos, cand.counts, None, cand.time_ms), moves),
                )
            else:
                offer(base_key, filled, dropped, moves)
            if not filler.enable_partial_batch:
                continue
            budget = tb - cand.time_ms
            for h, comp in enumerate(ready):
                layer = comp.next_layer + cand.counts[h]
                if layer >= comp.num_layers:
                    continue
                options = partial_menu.get((h, cand.counts[h]))
                if options is None:
                    remaining = comp.layer_batch(cand.counts[h])
                    options = [
                        (samples, ctx.profile.fwd_ms(comp.name, layer, samples / d))
                        for samples in valid_partial_samples(
                            comp.batch, d, remaining, filler.partial_batch_menu
                        )
                    ]
                    partial_menu[(h, cand.counts[h])] = options
                for samples, t in options:
                    if t > budget + 1e-9:
                        continue
                    pkey = self._advance_partial(
                        base_key, ready_idx[h], ctx.batch, samples
                    )
                    offer(
                        pkey,
                        filled + (cand.time_ms + t) * d,
                        dropped,
                        (
                            (
                                pos,
                                cand.counts,
                                (h, layer, samples, t),
                                cand.time_ms + t,
                            ),
                            moves,
                        ),
                    )

    @staticmethod
    def _advance(
        key: _StateKey,
        ready_idx: Sequence[int],
        counts: tuple[int, ...],
        batch: float,
    ) -> _StateKey:
        """Apply full-batch counts to a state key (consume_full mirror)."""
        cells = list(key)
        for h, i in enumerate(ready_idx):
            k = counts[h]
            if k > 0:
                next_layer, _ = cells[i]
                cells[i] = (next_layer + k, batch)
        return tuple(cells)

    @staticmethod
    def _advance_partial(
        key: _StateKey, comp_i: int, batch: float, samples: float
    ) -> _StateKey:
        """Apply a partial-batch layer to a state key (consume_partial
        mirror, same epsilon)."""
        cells = list(key)
        next_layer, remaining = cells[comp_i]
        remaining -= samples
        if remaining <= 1e-9:
            cells[comp_i] = (next_layer + 1, batch)
        else:
            cells[comp_i] = (next_layer, remaining)
        return tuple(cells)

    # -- selection ----------------------------------------------------------

    def _select(
        self,
        ctx: _SearchCtx,
        beam: dict[_StateKey, tuple[float, int, _MoveNode]],
    ) -> tuple[float, float, int, _MoveNode] | None:
        """Best terminal state by *exact* leftover (ties: most filled)."""
        best = None
        for key, (filled, dropped, moves) in sorted(beam.items()):
            states = ctx.states_from(key)
            leftover = ctx.filler.leftover_ms(
                ctx.leftover_devices, states=states
            )
            if (
                best is None
                or leftover < best[0] - 1e-12
                or (abs(leftover - best[0]) <= 1e-12 and filled > best[1])
            ):
                best = (leftover, filled, dropped, moves)
        return best

    def _greedy_baseline(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> tuple[FillReport, "BubbleFiller"]:
        """Run the greedy policy on a scratch filler (same knobs);
        returns the report and the scratch filler so the fallback path
        can adopt its final states."""
        # Deferred import: BubbleFiller's constructor lives in filling,
        # which this module otherwise only depends on for primitives.
        from .filling import BubbleFiller

        scratch = BubbleFiller(
            filler.profile,
            filler.model,
            filler.batch,
            enable_partial_batch=filler.enable_partial_batch,
            partial_batch_menu=filler.partial_batch_menu,
            max_candidates=filler.max_candidates,
            strategy="greedy",
        )
        for name, state in filler.states.items():
            scratch.states[name].next_layer = state.next_layer
            scratch.states[name].remaining = state.remaining
        return scratch.fill(bubbles, leftover_devices), scratch

    # -- materialisation ----------------------------------------------------

    def _materialize(
        self,
        filler: "BubbleFiller",
        ordered: Sequence[tuple[int, Bubble]],
        bubbles: Sequence[Bubble],
        moves: Sequence[_Move],
        filled_device_time: float,
        dropped: int,
        leftover_devices: int,
    ) -> FillReport:
        """Replay the winning path, mutating the filler's states and
        emitting the concrete :class:`FillItem` placements."""
        by_pos = {m[0]: m for m in moves}
        all_items: list[FillItem] = []
        per_bubble: list[BubbleUtilization] = []
        for pos, (index, bubble) in enumerate(ordered):
            move = by_pos.get(pos)
            if move is None:
                per_bubble.append(_utilization(index, bubble, 0.0))
                continue
            _, counts, partial, time_ms = move
            ready = filler.ready_components()
            cand = _Candidate(counts=counts, time_ms=time_ms)
            items = _candidate_items(
                filler.profile, ready, cand, bubble.weight, index
            )
            if partial is not None:
                h, layer, samples, t = partial
                items.append(
                    FillItem(
                        component=ready[h].name,
                        layer=layer,
                        samples=samples,
                        time_ms=t,
                        bubble_index=index,
                        partial=True,
                    )
                )
            apply_fill(filler.states, BubbleFill(index, tuple(items), time_ms))
            all_items.extend(items)
            per_bubble.append(_utilization(index, bubble, time_ms))
        return filler.build_report(
            bubbles,
            all_items,
            filled_device_time,
            leftover_devices,
            candidates_dropped=dropped,
            per_bubble=per_bubble,
        )
