"""Pluggable bubble-filling strategies (§5) behind a named registry.

The seed implementation hard-wired one policy: fill bubbles
chronologically, choosing per bubble the longest-running candidate
(Algorithms 1+2).  That policy is now one entry — ``greedy`` — of a
registry of :class:`FillStrategy` implementations, so filling policies
can be ablated the same way Fig. 15 ablates the partial-batch rule:

``greedy``
    The paper's myopic per-bubble choice, bit-identical to the seed.
``lookahead``
    Plans *across* bubbles: a forward DP over component-chain states
    that finds trades the greedy misses — e.g. holding a short layer
    back so it can ride the next, wider bubble together with its
    successor.  The production search: dominance pruning of beam
    states, shape-keyed reuse of expansion tables / beam prefixes /
    final plans across planner evaluations, and an adaptive beam that
    runs narrow except at decision points.  Never worse than
    ``greedy``: the greedy trajectory is evaluated as a candidate plan
    and replaces the beam's whenever it is strictly better (on a
    leftover tie the beam plan, which maximised filled device-time, is
    kept).
``lookahead_reference``
    The pre-optimization lookahead retained verbatim (exhaustive
    expansion, no pruning, no caching) — the oracle the differential
    suite holds ``lookahead`` bit-identical to.
``none``
    Fills nothing; the whole non-trainable part runs after the flush.
    The filling-path twin of the Fig. 15 "bubble filling disabled"
    ablation (which bypasses the filler entirely).

Strategies receive the :class:`~repro.core.filling.BubbleFiller` (which
owns the model DAG, the profile, the partial-batch knobs and the
component states) plus the bubble list, and return a complete
:class:`~repro.core.plan.FillReport` including per-bubble utilization
and dropped-candidate accounting.
"""

from __future__ import annotations

import weakref
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from ..errors import FillingError
from .bubbles import Bubble
from .plan import BubbleUtilization, FillItem, FillReport
from .filling import (
    BubbleFill,
    ComponentState,
    _Candidate,
    _candidate_items,
    apply_fill,
    fill_one_bubble,
    full_batch_candidates,
    prefix_times_raw,
    valid_partial_samples,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .filling import BubbleFiller


class FillStrategy(Protocol):
    """A bubble-filling policy: consumes the filler's component states,
    produces the complete fill report."""

    name: str

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        ...  # pragma: no cover - protocol


FILL_STRATEGIES: dict[str, Callable[[], FillStrategy]] = {}


def register_fill_strategy(name: str):
    """Class decorator adding a strategy factory under ``name``."""

    def deco(cls):
        FILL_STRATEGIES[name] = cls
        return cls

    return deco


def get_fill_strategy(name: str) -> FillStrategy:
    """Instantiate the strategy registered under ``name``."""
    factory = FILL_STRATEGIES.get(name)
    if factory is None:
        raise FillingError(
            f"unknown fill strategy {name!r}; "
            f"registered: {fill_strategy_names()}"
        )
    return factory()


def fill_strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted (CLI choices, docs)."""
    return tuple(sorted(FILL_STRATEGIES))


def _chronological(bubbles: Sequence[Bubble]) -> list[tuple[int, Bubble]]:
    return sorted(enumerate(bubbles), key=lambda ib: ib[1].start)


def _utilization(index: int, bubble: Bubble, filled_ms: float) -> BubbleUtilization:
    return BubbleUtilization(
        bubble_index=index,
        duration_ms=bubble.duration,
        weight=bubble.weight,
        filled_ms=filled_ms,
    )


# ---------------------------------------------------------------------------
# none
# ---------------------------------------------------------------------------


@register_fill_strategy("none")
class NoneFill:
    """Fill nothing: every bubble stays idle, all NT work is leftover."""

    name = "none"

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        per_bubble = [_utilization(i, b, 0.0) for i, b in _chronological(bubbles)]
        return filler.build_report(
            bubbles, (), 0.0, leftover_devices, per_bubble=per_bubble
        )


# ---------------------------------------------------------------------------
# greedy (Algorithms 1 + 2)
# ---------------------------------------------------------------------------


@register_fill_strategy("greedy")
class GreedyFill:
    """The paper's policy: bubbles chronologically, per bubble the
    longest-running candidate (bit-identical to the seed implementation).
    """

    name = "greedy"

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        all_items: list[FillItem] = []
        per_bubble: list[BubbleUtilization] = []
        filled_device_time = 0.0
        dropped = 0
        for index, bubble in _chronological(bubbles):
            ready = filler.ready_components()
            if not ready:
                if all(s.done for s in filler.states.values()):
                    break
                per_bubble.append(_utilization(index, bubble, 0.0))
                continue
            fill = fill_one_bubble(
                filler.profile,
                ready,
                bubble,
                index,
                enable_partial_batch=filler.enable_partial_batch,
                partial_batch_menu=filler.partial_batch_menu,
                max_candidates=filler.max_candidates,
                store=filler.caches.prefixes,
            )
            dropped += fill.candidates_dropped
            per_bubble.append(_utilization(index, bubble, fill.time_ms))
            if not fill.items:
                continue
            apply_fill(filler.states, fill)
            all_items.extend(fill.items)
            filled_device_time += fill.time_ms * bubble.weight
        # Bubbles skipped by the early all-done break still get a
        # zero-utilization entry, so every strategy reports exactly one
        # entry per bubble.
        seen = {u.bubble_index for u in per_bubble}
        for index, bubble in _chronological(bubbles):
            if index not in seen:
                per_bubble.append(_utilization(index, bubble, 0.0))
        return filler.build_report(
            bubbles,
            all_items,
            filled_device_time,
            leftover_devices,
            candidates_dropped=dropped,
            per_bubble=per_bubble,
        )


# ---------------------------------------------------------------------------
# lookahead (cross-bubble DP / beam search)
# ---------------------------------------------------------------------------


#: a component-chain state: per-component (next_layer, remaining)
_StateKey = tuple[tuple[int, float], ...]


def _state_dominates(a: _StateKey, b: _StateKey) -> bool:
    """Componentwise search-state dominance.

    ``a`` dominates ``b`` when every component of ``a`` is at least as
    far along: a strictly later head layer, or the same head layer with
    no more fresh-head samples remaining.  Comparing the fresh-head
    remaining is what makes the relation safe — two states at the same
    ``next_layer`` vector can still differ in how much of each head is
    left, and the one with *more* remaining has strictly more work (see
    the naive-dominance trap tests).  Under batch-monotone layer times
    the dominating state can mimic any continuation of the dominated
    one within the same bubble budgets, so its optimal leftover is never
    larger.
    """
    for (la, ra), (lb, rb) in zip(a, b):
        if la < lb or (la == lb and ra > rb):
            return False
    return True

#: one recorded per-bubble decision on a search path:
#: (bubble position in chronological order, counts aligned with the
#:  ready list at that state, optional partial (ready idx, layer,
#:  samples, time), total wall-clock time of the fill)
_Move = tuple[int, tuple[int, ...], tuple[int, int, float, float] | None, float]

#: search paths are singly-linked (move, parent) chains — a beam offer
#: is O(1) instead of copying the whole move tuple per successor
_MoveNode = tuple[_Move, "object"] | None


def _walk_moves(node: _MoveNode) -> list[_Move]:
    """Flatten a linked move chain into chronological order."""
    out: list[_Move] = []
    while node is not None:
        move, node = node
        out.append(move)
    out.reverse()
    return out


class _SearchCtx:
    """Per-fill constants of the lookahead search, computed once.

    ``model.non_trainable`` re-derives a topological order on every
    access, and the search visits thousands of states per bubble — so
    the component order, layer counts, dependency lists and the
    always-done (trainable) name set are snapshotted here, and state
    keys are expanded against these arrays instead of the model.
    """

    def __init__(
        self,
        filler: "BubbleFiller",
        leftover_devices: int,
        ordered: Sequence[tuple[int, Bubble]] = (),
    ):
        self.filler = filler
        self.profile = filler.profile
        self.batch = filler.batch
        self.prefix_store = filler.caches.prefixes
        self.leftover_devices = leftover_devices
        comps = list(filler.model.non_trainable)
        self.names = [c.name for c in comps]
        self.index = {n: i for i, n in enumerate(self.names)}
        self.num_layers = [filler.states[n].num_layers for n in self.names]
        self.deps = [tuple(c.depends_on) for c in comps]
        self.always_done = {
            c.name for c in filler.model.components.values() if c.trainable
        }
        #: distinct bubble weights — the device widths any remaining
        #: layer could still be placed at (earn-bound computation)
        self.weights = tuple(sorted({b.weight for _, b in ordered})) or (1,)
        self._estimates: dict[_StateKey, float] = {}
        self._earns: dict[_StateKey, float] = {}
        # Both metrics decompose per component, and beam states share
        # most of their cells — per-cell memos make the per-key value a
        # handful of dict hits once a cell has been seen anywhere.
        self._est_cell: dict[tuple[int, tuple[int, float]], float] = {}
        self._earn_cell: dict[tuple[int, tuple[int, float]], float] = {}
        self._ready: dict[_StateKey, tuple[int, ...]] = {}
        self._ready_states: dict[_StateKey, list[ComponentState]] = {}

    def initial_key(self) -> _StateKey:
        return tuple(
            (self.filler.states[n].next_layer, self.filler.states[n].remaining)
            for n in self.names
        )

    def ready_indices(self, key: _StateKey) -> tuple[int, ...]:
        """Indices of non-done components with all dependencies done
        (same order/semantics as ``BubbleFiller.ready_components``)."""
        cached = self._ready.get(key)
        if cached is not None:
            return cached
        done = set(self.always_done)
        for i, (next_layer, _) in enumerate(key):
            if next_layer >= self.num_layers[i]:
                done.add(self.names[i])
        out = tuple(
            i
            for i, (next_layer, _) in enumerate(key)
            if next_layer < self.num_layers[i]
            and all(dep in done for dep in self.deps[i])
        )
        self._ready[key] = out
        return out

    def ready_states(self, key: _StateKey, indices: Sequence[int]) -> list[ComponentState]:
        cached = self._ready_states.get(key)
        if cached is not None:
            return cached
        out = [
            ComponentState(
                name=self.names[i],
                num_layers=self.num_layers[i],
                batch=self.batch,
                next_layer=key[i][0],
                remaining=key[i][1],
            )
            for i in indices
        ]
        self._ready_states[key] = out
        return out

    def states_from(self, key: _StateKey) -> dict[str, ComponentState]:
        return {
            n: ComponentState(
                name=n,
                num_layers=self.num_layers[i],
                batch=self.batch,
                next_layer=key[i][0],
                remaining=key[i][1],
            )
            for i, n in enumerate(self.names)
        }

    def estimate(self, key: _StateKey) -> float:
        """Fast leftover estimate for beam ranking (prefix-cache sums)."""
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        cells = self._est_cell
        total = 0.0
        for i, cell in enumerate(key):
            v = cells.get((i, cell))
            if v is None:
                v = prefix_times_raw(
                    self.profile,
                    self.names[i],
                    self.num_layers[i],
                    cell[0],
                    cell[1],
                    self.batch,
                    self.leftover_devices,
                    self.prefix_store,
                )[-1]
                cells[(i, cell)] = v
            total += v
        self._estimates[key] = total
        return total

    def earn_bound(self, key: _StateKey) -> float:
        """Upper bound on the filled device-time the state's *remaining*
        work could still earn: each remaining layer at the most
        profitable width among the timeline's bubble weights.

        Used by the dominance filter's filled-time compensation: a
        dominator whose filled lead covers the dominated state's extra
        earn potential also wins the downstream filled tie-breaks, so
        pruning cannot flip which plan the selection reports.

        The bound prices each layer as a *single* placement.  Under the
        partial-batch rule a layer may be split across several
        placements, each paying its own width-dependent share, so for
        profiles whose layer time is not linear in batch a dominated
        state can out-earn this bound by splitting — the plan-selection
        guarantee is exact only when layers are placed whole (partial
        batching off) or times are batch-linear.  The *leftover*
        guarantee never depends on this bound (see
        :meth:`LookaheadFill._dominance_scan`).
        """
        cached = self._earns.get(key)
        if cached is not None:
            return cached
        cells = self._earn_cell
        total = 0.0
        for i, cell in enumerate(key):
            v = cells.get((i, cell))
            if v is None:
                v = 0.0
                next_layer, remaining = cell
                n = self.num_layers[i]
                if next_layer < n:
                    arrs = [
                        prefix_times_raw(
                            self.profile, self.names[i], n, next_layer,
                            remaining, self.batch, d, self.prefix_store,
                        )
                        for d in self.weights
                    ]
                    for k in range(n - next_layer):
                        best = 0.0
                        for arr, d in zip(arrs, self.weights):
                            e = (arr[k + 1] - arr[k]) * d
                            if e > best:
                                best = e
                        v += best
                cells[(i, cell)] = v
            total += v
        self._earns[key] = total
        return total


def _advance(
    key: _StateKey,
    ready_idx: Sequence[int],
    counts: tuple[int, ...],
    batch: float,
) -> _StateKey:
    """Apply full-batch counts to a state key (consume_full mirror)."""
    cells = list(key)
    for h, i in enumerate(ready_idx):
        k = counts[h]
        if k > 0:
            next_layer, _ = cells[i]
            cells[i] = (next_layer + k, batch)
    return tuple(cells)


def _advance_partial(
    key: _StateKey, comp_i: int, batch: float, samples: float
) -> _StateKey:
    """Apply a partial-batch layer to a state key (consume_partial
    mirror, same epsilon)."""
    cells = list(key)
    next_layer, remaining = cells[comp_i]
    remaining -= samples
    if remaining <= 1e-9:
        cells[comp_i] = (next_layer + 1, batch)
    else:
        cells[comp_i] = (next_layer, remaining)
    return tuple(cells)


class _ExpansionTable:
    """Per-bubble expansion memo: (ready signature, duration, weight) ->
    (FFC candidates, dropped count, lazily-filled partial menus).

    Backed either by a per-fill dict (the reference strategy) or by the
    shared :class:`~repro.core.caches.FillShapeCache`'s bounded
    ``expansions`` store with a context-identity prefix (the production
    strategy), so a planner sweep enumerates each distinct (state,
    bubble shape) point once.  Entries are pure functions of their key,
    so sharing them never changes results.
    """

    def __init__(self, store, prefix=None):
        self._store = store
        self._prefix = prefix
        self._plain = isinstance(store, dict)

    def get(self, sig):
        key = sig if self._prefix is None else (self._prefix, sig)
        return self._store.get(key)

    def put(self, sig, value) -> None:
        key = sig if self._prefix is None else (self._prefix, sig)
        if self._plain:
            self._store[key] = value
        else:
            self._store.put(key, value)


def _expand_state(
    ctx: _SearchCtx,
    key: _StateKey,
    filled: float,
    dropped: int,
    moves: _MoveNode,
    pos: int,
    bubble: Bubble,
    out: dict[_StateKey, tuple[float, int, _MoveNode]],
    table: _ExpansionTable,
    cap: int,
) -> None:
    """Add every reachable successor of ``key`` through ``bubble``.

    Shared by both lookahead strategies: the reference runs it over the
    full beam with a per-fill memo, the pruned strategy with the shared
    shape-cache table.  The memo only skips recomputation — enumeration
    order and values are identical either way, so the two strategies see
    the same successor sets.
    """

    # Offers are inlined (this is the hottest loop of the search): same
    # state, same future — keep the path that filled the most
    # device-time (ties: the incumbent, deterministic because expansion
    # order is deterministic).
    get = out.get
    ready_idx = ctx.ready_indices(key)
    if not ready_idx:
        cur = get(key)
        if cur is None or filled > cur[0]:
            out[key] = (filled, dropped, moves)
        return
    ready = ctx.ready_states(key, ready_idx)

    filler = ctx.filler
    batch = ctx.batch
    d = bubble.weight
    tb = bubble.duration
    sig = (tuple((i, key[i]) for i in ready_idx), tb, d, cap)
    entry = table.get(sig)
    if entry is None:
        candidates, cand_dropped = full_batch_candidates(
            ctx.profile, ready, tb, d, max_candidates=cap,
            store=ctx.prefix_store,
        )
        # Partial options depend only on (ready slot, full-batch count),
        # which many candidates share — enumerated once, lazily, into
        # the entry's menu dict.
        entry = (tuple(candidates), cand_dropped, {})
        table.put(sig, entry)
    candidates, cand_dropped, partial_menu = entry
    dropped += cand_dropped
    partials_on = filler.enable_partial_batch
    menu_get = partial_menu.get
    for cand in candidates:
        counts = cand.counts
        base_key = _advance(key, ready_idx, counts, batch)
        if any(counts):
            new_filled = filled + cand.time_ms * d
            cur = get(base_key)
            if cur is None or new_filled > cur[0]:
                out[base_key] = (
                    new_filled,
                    dropped,
                    ((pos, counts, None, cand.time_ms), moves),
                )
        else:
            cur = get(base_key)
            if cur is None or filled > cur[0]:
                out[base_key] = (filled, dropped, moves)
        if not partials_on:
            continue
        budget = tb - cand.time_ms + 1e-9
        for h, comp in enumerate(ready):
            layer = comp.next_layer + counts[h]
            if layer >= comp.num_layers:
                continue
            options = menu_get((h, counts[h]))
            if options is None:
                remaining = comp.layer_batch(counts[h])
                options = [
                    (samples, ctx.profile.fwd_ms(comp.name, layer, samples / d))
                    for samples in valid_partial_samples(
                        comp.batch, d, remaining, filler.partial_batch_menu
                    )
                ]
                partial_menu[(h, counts[h])] = options
            for samples, t in options:
                if t > budget:
                    continue
                pkey = _advance_partial(base_key, ready_idx[h], batch, samples)
                new_filled = filled + (cand.time_ms + t) * d
                cur = get(pkey)
                if cur is None or new_filled > cur[0]:
                    out[pkey] = (
                        new_filled,
                        dropped,
                        (
                            (
                                pos,
                                counts,
                                (h, layer, samples, t),
                                cand.time_ms + t,
                            ),
                            moves,
                        ),
                    )


def _rank_cut(
    ctx: _SearchCtx,
    states: dict[_StateKey, tuple[float, int, _MoveNode]],
    width: int,
) -> dict[_StateKey, tuple[float, int, _MoveNode]]:
    """Beam cut: keep the ``width`` states closest to completion
    (smallest estimated leftover, then most device-time filled, then a
    deterministic key tie-break)."""
    ranked = sorted(
        states.items(),
        key=lambda kv: (ctx.estimate(kv[0]), -kv[1][0], kv[0]),
    )
    return dict(ranked[:width])


def _select(
    ctx: _SearchCtx,
    beam: dict[_StateKey, tuple[float, int, _MoveNode]],
) -> tuple[float, float, int, _MoveNode] | None:
    """Best terminal state by *exact* leftover (ties: most filled)."""
    best = None
    for key, (filled, dropped, moves) in sorted(beam.items()):
        states = ctx.states_from(key)
        leftover = ctx.filler.leftover_ms(ctx.leftover_devices, states=states)
        if (
            best is None
            or leftover < best[0] - 1e-12
            or (abs(leftover - best[0]) <= 1e-12 and filled > best[1])
        ):
            best = (leftover, filled, dropped, moves)
    return best


def _greedy_baseline(
    filler: "BubbleFiller",
    bubbles: Sequence[Bubble],
    leftover_devices: int,
) -> tuple[FillReport, "BubbleFiller"]:
    """Run the greedy policy on a scratch filler (same knobs); returns
    the report and the scratch filler so the fallback path can adopt its
    final states."""
    # Deferred import: BubbleFiller's constructor lives in filling,
    # which this module otherwise only depends on for primitives.
    from .filling import BubbleFiller

    scratch = BubbleFiller(
        filler.profile,
        filler.model,
        filler.batch,
        enable_partial_batch=filler.enable_partial_batch,
        partial_batch_menu=filler.partial_batch_menu,
        max_candidates=filler.max_candidates,
        strategy="greedy",
        caches=filler.caches,
    )
    for name, state in filler.states.items():
        scratch.states[name].next_layer = state.next_layer
        scratch.states[name].remaining = state.remaining
    return scratch.fill(bubbles, leftover_devices), scratch


def _materialize(
    filler: "BubbleFiller",
    ordered: Sequence[tuple[int, Bubble]],
    bubbles: Sequence[Bubble],
    moves: Sequence[_Move],
    filled_device_time: float,
    dropped: int,
    leftover_devices: int,
    *,
    states_pruned: int = 0,
    beam_peak: int = 0,
) -> FillReport:
    """Replay the winning path, mutating the filler's states and
    emitting the concrete :class:`FillItem` placements."""
    by_pos = {m[0]: m for m in moves}
    all_items: list[FillItem] = []
    per_bubble: list[BubbleUtilization] = []
    for pos, (index, bubble) in enumerate(ordered):
        move = by_pos.get(pos)
        if move is None:
            per_bubble.append(_utilization(index, bubble, 0.0))
            continue
        _, counts, partial, time_ms = move
        ready = filler.ready_components()
        cand = _Candidate(counts=counts, time_ms=time_ms)
        items = _candidate_items(
            filler.profile, ready, cand, bubble.weight, index
        )
        if partial is not None:
            h, layer, samples, t = partial
            items.append(
                FillItem(
                    component=ready[h].name,
                    layer=layer,
                    samples=samples,
                    time_ms=t,
                    bubble_index=index,
                    partial=True,
                )
            )
        apply_fill(filler.states, BubbleFill(index, tuple(items), time_ms))
        all_items.extend(items)
        per_bubble.append(_utilization(index, bubble, time_ms))
    return filler.build_report(
        bubbles,
        all_items,
        filled_device_time,
        leftover_devices,
        candidates_dropped=dropped,
        per_bubble=per_bubble,
        states_pruned=states_pruned,
        beam_peak=beam_peak,
    )


def _plan_desc(
    filler: "BubbleFiller",
    ordered: Sequence[tuple[int, Bubble]],
    report: FillReport,
) -> tuple:
    """Shape-cache value for a finished fill: the report's content keyed
    by chronological bubble *position* (bubble indices are call-local)
    plus the filler's terminal component states."""
    pos_of = {index: pos for pos, (index, _) in enumerate(ordered)}
    items = tuple(
        (pos_of[i.bubble_index], i.component, i.layer, i.samples, i.time_ms,
         i.partial)
        for i in report.items
    )
    per_bubble = tuple(
        (pos_of[u.bubble_index], u.filled_ms) for u in report.per_bubble
    )
    finals = tuple(
        (name, state.next_layer, state.remaining)
        for name, state in sorted(filler.states.items())
    )
    return (
        items,
        per_bubble,
        report.filled_device_time_ms,
        report.candidates_dropped,
        report.states_pruned,
        report.beam_peak,
        finals,
    )


def _replay_plan(
    filler: "BubbleFiller",
    ordered: Sequence[tuple[int, Bubble]],
    bubbles: Sequence[Bubble],
    desc: tuple,
    leftover_devices: int,
) -> FillReport:
    """Materialise a shape-cache hit: rebind the cached plan to this
    call's bubble indices, restore the terminal component states, and
    rebuild the report — bit-identical to the cold search's."""
    items_d, per_bubble_d, filled, dropped, pruned, peak, finals = desc
    index_of = {pos: index for pos, (index, _) in enumerate(ordered)}
    bubble_at = {pos: b for pos, (_, b) in enumerate(ordered)}
    items = [
        FillItem(
            component=c, layer=layer, samples=s, time_ms=t,
            bubble_index=index_of[p], partial=partial,
        )
        for p, c, layer, s, t, partial in items_d
    ]
    per_bubble = [
        BubbleUtilization(
            bubble_index=index_of[p],
            duration_ms=bubble_at[p].duration,
            weight=bubble_at[p].weight,
            filled_ms=f,
        )
        for p, f in per_bubble_d
    ]
    for name, next_layer, remaining in finals:
        state = filler.states[name]
        state.next_layer = next_layer
        state.remaining = remaining
    return filler.build_report(
        bubbles,
        items,
        filled,
        leftover_devices,
        candidates_dropped=dropped,
        per_bubble=per_bubble,
        states_pruned=pruned,
        beam_peak=peak,
    )


@register_fill_strategy("lookahead_reference")
class LookaheadReferenceFill:
    """The unpruned cross-bubble DP — the differential-testing oracle.

    Processes bubbles chronologically like ``greedy``, but instead of
    committing to the per-bubble maximum it carries a set of reachable
    component-chain states forward.  Two paths reaching the same state
    have identical futures, so states are deduplicated (a DP over chain
    states); while the reachable set stays within the beam cap the
    search is exhaustive over the per-bubble action space, beyond it
    only the most promising states survive (beam search).  Expansion
    enumerates every FFC candidate and every partial-batch sample count
    — not just the greedy maximum — which is what finds trades like
    holding a short layer for the next, wider bubble.

    The final plan is the terminal state with the smallest exact
    ``leftover_ms``; the greedy trajectory is evaluated alongside and
    adopted whenever it is strictly better (on a tie the beam plan is
    kept — it maximised filled device-time), so the result never reports
    a larger leftover than ``greedy`` on the same instance.

    This is the pre-optimization ``lookahead`` retained verbatim: no
    dominance pruning, no shape cache, no adaptive schedule.  The
    production ``lookahead`` must stay bit-identical to it on every
    instance where neither search hits a beam cut and the FFC
    enumeration stays within the production strategy's tighter
    candidate cap (the differential suite's property; its instances
    are sized well inside both conditions).
    """

    name = "lookahead_reference"

    #: reachable-state cap: exact DP below, beam search above
    #: (overridden by ``BubbleFiller.lookahead_beam`` when set)
    beam_width = 64
    #: per-(state, bubble) FFC enumeration cap during the search
    max_candidates = 256

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        ordered = _chronological(bubbles)
        ctx = _SearchCtx(filler, leftover_devices, ordered)
        beam_cap = filler.lookahead_beam or self.beam_width
        cap = min(filler.max_candidates, self.max_candidates)
        table = _ExpansionTable({})

        # beam: state key -> (filled_device_time, dropped, move chain)
        beam: dict[_StateKey, tuple[float, int, _MoveNode]] = {
            ctx.initial_key(): (0.0, 0, None)
        }
        pruned = 0
        peak = len(beam)
        for pos, (index, bubble) in enumerate(ordered):
            nxt: dict[_StateKey, tuple[float, int, _MoveNode]] = {}
            for key, (filled, dropped, moves) in beam.items():
                _expand_state(
                    ctx, key, filled, dropped, moves, pos, bubble, nxt,
                    table, cap,
                )
            if len(nxt) > peak:
                peak = len(nxt)
            if len(nxt) > beam_cap:
                pruned += len(nxt) - beam_cap
                nxt = _rank_cut(ctx, nxt, beam_cap)
            beam = nxt

        best = _select(ctx, beam)
        if best is None or best[0] > 0.0:
            # Greedy floor: only worth running when the beam left work
            # over — a zero leftover cannot be beaten, and on a tie the
            # beam plan is kept anyway, so skipping changes nothing.
            greedy, scratch = _greedy_baseline(filler, bubbles, leftover_devices)
            if best is None or greedy.leftover_ms < best[0]:
                # The beam (or its estimates) lost the greedy
                # trajectory: fall back to it so the search is never
                # strictly worse than greedy.  Adopt the scratch
                # filler's final states so the caller's filler stays
                # consistent with the returned report.
                for name, state in scratch.states.items():
                    filler.states[name].next_layer = state.next_layer
                    filler.states[name].remaining = state.remaining
                return replace(
                    greedy, strategy=self.name,
                    states_pruned=pruned, beam_peak=peak,
                )
        leftover, filled, dropped, moves = best
        return _materialize(
            filler,
            ordered,
            bubbles,
            _walk_moves(moves),
            filled,
            dropped,
            leftover_devices,
            states_pruned=pruned,
            beam_peak=peak,
        )


@register_fill_strategy("lookahead")
class LookaheadFill:
    """Planner-grade cross-bubble search: the reference DP plus the
    three cost levers that make it a planner default —

    * **dominance pruning** — a state is dropped when another beam state
      componentwise-dominates it on per-component progress *and*
      fresh-head remaining (see :func:`_state_dominates`) and has banked
      at least the dominated state's extra earn potential
      (:meth:`_SearchCtx.earn_bound`), so pruning always preserves the
      optimal leftover, and the reported plan wherever layers are
      placed whole or times are batch-linear;
    * **shape-cache reuse** — expansion tables, per-position beam
      prefixes and final plans are keyed by the timeline *shape*
      (chronological (duration, weight) pairs; absolute starts never
      enter the DP), so a planner's (S, M, D) sweep over the same shape
      pays one cold search (``PlannerCaches.fills``);
    * an **adaptive beam schedule** — the beam runs at ``narrow`` width
      by default and widens to the full cap only at decision points
      where the best candidate future diverges from the greedy-aligned
      candidates' (:meth:`_diverged`).

    Telemetry lands in ``FillReport.states_pruned`` (dominance + beam
    cuts) and ``FillReport.beam_peak`` (peak post-dominance state
    count).  The greedy trajectory remains the fallback, so ``lookahead``
    never reports a larger leftover than ``greedy``; on instances where
    no beam cut fires *and* the per-(state, bubble) FFC enumeration
    stays within this strategy's tighter candidate cap (32 vs the
    reference's 256 — truncation surfaces in ``candidates_dropped``) it
    is bit-identical to ``lookahead_reference``.
    """

    name = "lookahead"

    #: maximum (wide) beam width — overridden by
    #: ``BubbleFiller.lookahead_beam`` / ``PlannerOptions.lookahead_beam``
    beam_width = 64
    #: per-(state, bubble) FFC enumeration cap during the search.
    #: Tighter than the reference's 256: the cap cut keeps the
    #: longest-time candidates deterministically, and instances small
    #: enough for the differential suite never reach it.
    max_candidates = 32
    #: the default narrow width is ``beam / narrow_divisor`` (>= floor);
    #: decision points widen to ``beam / wide_divisor``
    narrow_divisor = 32
    narrow_floor = 2
    wide_divisor = 4
    #: cheap pre-cut cap (x beam) before the pairwise dominance pass
    overflow_factor = 1
    #: relative tolerance of the greedy/lookahead divergence test
    divergence_tol = 1e-9

    def fill(
        self,
        filler: "BubbleFiller",
        bubbles: Sequence[Bubble],
        leftover_devices: int,
    ) -> FillReport:
        ordered = _chronological(bubbles)
        ctx = _SearchCtx(filler, leftover_devices, ordered)
        beam_cap = filler.lookahead_beam or self.beam_width
        narrow = min(
            beam_cap, max(self.narrow_floor, beam_cap // self.narrow_divisor)
        )
        cap = min(filler.max_candidates, self.max_candidates)
        init = ctx.initial_key()
        # Shape identity of the timeline's bubbles.  A positive quantum
        # snaps durations to a grid so near-identical timelines (e.g.
        # adjacent M values whose bubbles differ by microseconds) share
        # cache entries; weights are integral device counts and pass
        # through unchanged.  At quantum 0 the key holds the exact
        # durations — bit-identical caching.  Replays always re-bind to
        # the actual bubbles, so quantisation never perturbs the
        # returned report's arithmetic, only which searches are skipped.
        q = filler.shape_quantum
        if q > 0.0:
            shape = tuple(
                (round(b.duration / q) * q, b.weight) for _, b in ordered
            )
        else:
            shape = tuple((b.duration, b.weight) for _, b in ordered)

        cache = filler.fill_cache
        ckey = None
        table = _ExpansionTable({})
        if cache is not None:
            # Context identity: everything besides the bubble shape that
            # the search outcome depends on.  The expansion sub-key is
            # beam-independent (tables are pure enumerations).
            ident = (
                weakref.ref(filler.profile),
                # Structural model identity, not just the name: two
                # ModelSpecs sharing a name but differing in layer
                # counts or dependencies must never alias.
                filler.model.name,
                tuple(ctx.names),
                tuple(ctx.num_layers),
                tuple(ctx.deps),
                filler.batch,
                filler.enable_partial_batch,
                filler.partial_batch_menu,
                # Both caps: ``cap`` keys the search's expansion tables,
                # but the cached plan may come from the greedy-baseline
                # fallback, which enumerates at the filler's *raw*
                # candidate cap.
                filler.max_candidates,
                cap,
                # Schedule family the bubbles came from: shapes can
                # coincide across families, and keeping the identities
                # apart makes hit statistics attributable per family.
                filler.schedule,
                # The duration grid the shape keys were snapped to:
                # entries written under one quantum must never be read
                # under another (a coarse key would otherwise shadow an
                # exact one).
                filler.shape_quantum,
            )
            ckey = (ident, beam_cap, narrow, leftover_devices, init)
            final = cache.finals.get((ckey, shape))
            if final is not None:
                cache.final_hits += 1
                return _replay_plan(
                    filler, ordered, bubbles, final, leftover_devices
                )
            cache.final_misses += 1
            table = _ExpansionTable(cache.expansions, ident)

        beam: dict[_StateKey, tuple[float, int, _MoveNode]] = {
            init: (0.0, 0, None)
        }
        pruned_total = 0
        peak = len(beam)
        start = 0
        if cache is not None:
            # Beam-prefix reuse: resume after the longest stored prefix
            # of this shape (snapshots are taken after every position).
            for p in range(len(ordered) - 2, -1, -1):
                # The dominance earn bound prices remaining work at the
                # timeline's distinct bubble weights, so a snapshot is
                # only valid for timelines sharing that weight set —
                # hence ``ctx.weights`` in the key next to the prefix.
                snap = cache.prefixes.get(
                    (ckey, ctx.weights, shape[: p + 1])
                )
                if snap is not None:
                    beam = dict(snap[0])
                    pruned_total, peak = snap[1], snap[2]
                    start = p + 1
                    break

        overflow = self.overflow_factor * beam_cap
        wide = max(narrow, beam_cap // self.wide_divisor)
        for pos in range(start, len(ordered)):
            index, bubble = ordered[pos]
            nxt: dict[_StateKey, tuple[float, int, _MoveNode]] = {}
            for key, (filled, dropped, moves) in beam.items():
                _expand_state(
                    ctx, key, filled, dropped, moves, pos, bubble, nxt,
                    table, cap,
                )
            if len(nxt) > narrow:
                # One estimate-ranked sort serves the overflow cut, the
                # dominance scan (dominators sort first) and the beam
                # cut.
                estimate = ctx.estimate
                entries = sorted(
                    nxt.items(),
                    key=lambda kv: (estimate(kv[0]), -kv[1][0], kv[0]),
                )
                if len(entries) > overflow:
                    # The dominance pass is pairwise: bound its input.
                    pruned_total += len(entries) - overflow
                    entries = entries[:overflow]
                survivors, dominated = self._dominance_scan(ctx, entries)
                pruned_total += dominated
                if len(survivors) > peak:
                    peak = len(survivors)
                cut = False
                if len(survivors) > narrow:
                    width = (
                        wide
                        if self._diverged(ctx, survivors, pos)
                        else narrow
                    )
                    if len(survivors) > width:
                        pruned_total += len(survivors) - width
                        survivors = survivors[:width]
                        cut = True
                if len(survivors) == len(nxt):
                    pass  # nothing dropped: keep insertion order
                elif cut:
                    nxt = dict(survivors)
                else:
                    keep = {k for k, _ in survivors}
                    nxt = {k: v for k, v in nxt.items() if k in keep}
            elif len(nxt) > peak:
                peak = len(nxt)
            beam = nxt
            if cache is not None and pos + 1 < len(ordered):
                cache.prefixes.put(
                    (ckey, ctx.weights, shape[: pos + 1]),
                    (tuple(beam.items()), pruned_total, peak),
                )

        best = _select(ctx, beam)
        use_greedy = False
        if best is None or best[0] > 0.0:
            # Greedy floor, skipped when the beam already left nothing
            # over (a zero leftover cannot be beaten, and ties keep the
            # beam plan anyway — the report is identical either way).
            greedy, scratch = _greedy_baseline(filler, bubbles, leftover_devices)
            use_greedy = best is None or greedy.leftover_ms < best[0]
        if use_greedy:
            for name, state in scratch.states.items():
                filler.states[name].next_layer = state.next_layer
                filler.states[name].remaining = state.remaining
            report = replace(
                greedy, strategy=self.name,
                states_pruned=pruned_total, beam_peak=peak,
            )
        else:
            leftover, filled, dropped, moves = best
            report = _materialize(
                filler,
                ordered,
                bubbles,
                _walk_moves(moves),
                filled,
                dropped,
                leftover_devices,
                states_pruned=pruned_total,
                beam_peak=peak,
            )
        if cache is not None:
            cache.finals.put((ckey, shape), _plan_desc(filler, ordered, report))
        return report

    # -- pruning -------------------------------------------------------------

    def _dominance_scan(
        self,
        ctx: _SearchCtx,
        entries: list[tuple[_StateKey, tuple[float, int, _MoveNode]]],
    ) -> tuple[list[tuple[_StateKey, tuple[float, int, _MoveNode]]], int]:
        """Drop states another state componentwise-dominates.

        A dominator must (a) be at least as far along on *every*
        component — comparing both head layer and fresh-head remaining
        (:func:`_state_dominates`) — and (b) have filled at least the
        dominated state's extra earn potential more device-time
        (``earn_bound`` compensation).  (a) alone guarantees the
        dominator's optimal continuation never reports a larger
        leftover (it can mimic any continuation of the dominated state
        under batch-monotone layer times); (b) additionally guarantees
        the mimic wins the filled-device-time tie-breaks wherever each
        layer is placed whole or times are batch-linear, so pruning
        then cannot change which plan the final selection reports (with
        partial batching on non-linear profiles an equal-leftover
        selection may tie-break differently than the reference — the
        leftover itself is unaffected; see
        :meth:`_SearchCtx.earn_bound`).

        ``entries`` must be sorted by estimate: a dominator's remaining
        time never exceeds the dominated state's, so candidate
        dominators always appear earlier.  Returns the surviving
        entries (still in rank order) and the dominated count.
        """
        earn = ctx.earn_bound
        survivors: list[tuple[_StateKey, tuple[float, int, _MoveNode]]] = []
        kept: list[tuple[_StateKey, float, float]] = []
        pruned = 0
        for key, val in entries:
            filled = val[0]
            key_earn = None
            dominated = False
            for kkey, kfilled, kearn in kept:
                if kfilled < filled:
                    continue
                if not _state_dominates(kkey, key):
                    continue
                if key_earn is None:
                    key_earn = earn(key)
                if kfilled - filled >= key_earn - kearn:
                    dominated = True
                    break
            if dominated:
                pruned += 1
            else:
                kept.append(
                    (key, filled, earn(key) if key_earn is None else key_earn)
                )
                survivors.append((key, val))
        return survivors, pruned

    # -- adaptive schedule ---------------------------------------------------

    def _diverged(
        self,
        ctx: _SearchCtx,
        entries: list[tuple[_StateKey, tuple[float, int, _MoveNode]]],
        pos: int,
    ) -> bool:
        """Decision-point test for the adaptive beam.

        A position is greedy-like when the best future (smallest
        estimated leftover) among the successors is achieved by a
        greedy-aligned successor — one produced by a maximal-immediate-
        time move.  Then the narrow beam (ranked by the same estimate)
        already carries the interesting states.  When a *non*-greedy
        successor's future estimate beats every greedy-aligned one
        beyond the tolerance, greedy and lookahead scores diverge: the
        position is a real decision point and the beam widens to the
        full cap.
        """
        max_t = 0.0
        scored = []
        for key, (filled, dropped, moves) in entries:
            t = (
                moves[0][3]
                if moves is not None and moves[0][0] == pos
                else 0.0
            )
            scored.append((ctx.estimate(key), t))
            if t > max_t:
                max_t = t
        best = min(e for e, _ in scored)
        greedy_best = min(e for e, t in scored if t >= max_t - 1e-9)
        return best < greedy_best - self.divergence_tol * max(
            1.0, abs(greedy_best)
        )
